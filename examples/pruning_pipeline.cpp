// k-core decomposition as a pruning preprocessor (paper §I: "an effective
// lightweight preprocessing to prune unpromising vertices when computing
// denser structures"). This example hunts for a large clique: the k-core
// bound says a c-clique can only live inside the (c-1)-core, so peeling
// first shrinks the search space by orders of magnitude.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/core_analysis.h"
#include "common/timer.h"
#include "core/gpu_peel.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace {

using namespace kcore;

/// Greedy clique growth inside `graph` along a degeneracy ordering; returns
/// the best clique found (a lower bound, good enough to showcase pruning).
std::vector<VertexId> GreedyClique(const CsrGraph& graph) {
  std::vector<VertexId> best;
  const std::vector<VertexId> order = DegeneracyOrdering(graph);
  std::vector<uint32_t> position(order.size());
  for (uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (VertexId seed : order) {
    std::vector<VertexId> clique = {seed};
    for (VertexId u : graph.Neighbors(seed)) {
      if (position[u] < position[seed]) continue;  // forward neighbors only
      const auto nu = graph.Neighbors(u);
      const bool adjacent_to_all =
          std::all_of(clique.begin(), clique.end(), [&](VertexId w) {
            return std::binary_search(nu.begin(), nu.end(), w);
          });
      if (adjacent_to_all) clique.push_back(u);
    }
    if (clique.size() > best.size()) best = clique;
  }
  return best;
}

}  // namespace

int main() {
  // Sparse background with a hidden 24-clique.
  EdgeList edges = GenerateChungLuPowerLaw(50000, 150000, 2.5, 3);
  PlantedCoreOptions planted;
  planted.core_size = 24;
  planted.core_density = 1.0;  // a true clique
  edges = OverlayPlantedCore(std::move(edges), 50000, planted, 5);
  const CsrGraph graph = BuildUndirectedGraph(edges);
  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumUndirectedEdges()));

  // Step 1: decompose (the cheap O(m) preprocessing).
  auto cores = RunGpuPeel(graph);
  if (!cores.ok()) {
    std::fprintf(stderr, "%s\n", cores.status().ToString().c_str());
    return 1;
  }
  const uint32_t k_max = cores->MaxCore();
  std::printf("k_max = %u  =>  no clique larger than %u can exist\n", k_max,
              k_max + 1);

  // Step 2: search only inside the k-core that can still hold a clique of
  // the current best size.
  WallTimer unpruned_timer;
  const std::vector<VertexId> baseline = GreedyClique(graph);
  const double unpruned_ms = unpruned_timer.ElapsedMillis();

  WallTimer pruned_timer;
  const InducedSubgraph pruned = KCoreSubgraph(graph, cores->core, k_max);
  const std::vector<VertexId> in_core = GreedyClique(pruned.graph);
  const double pruned_ms = pruned_timer.ElapsedMillis();

  std::printf("search space after pruning: %u vertices (was %u)\n",
              pruned.graph.NumVertices(), graph.NumVertices());
  std::printf("clique found: unpruned %zu-clique in %.1f ms; "
              "pruned %zu-clique in %.2f ms\n",
              baseline.size(), unpruned_ms, in_core.size(), pruned_ms);
  std::printf("the planted 24-clique lives in the %u-core; peeling shrank "
              "the search %.0fx\n",
              k_max,
              static_cast<double>(graph.NumVertices()) /
                  std::max<uint32_t>(1, pruned.graph.NumVertices()));
  return 0;
}
