// Influential-spreader detection (paper application [55], Kitsak et al.):
// the k-core ranking beats plain degree at identifying vertices embedded in
// densely connected regions. This example builds a social network with a
// planted tight community plus a few high-degree-but-peripheral hubs, then
// contrasts the top vertices by degree vs by core number.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/core_analysis.h"
#include "common/random.h"
#include "core/gpu_peel.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"

int main() {
  using namespace kcore;

  // A sparse social background...
  EdgeList edges = GenerateChungLuPowerLaw(30000, 90000, 2.4, 7);
  // ...with a planted 60-member tight community (the true influencers)...
  PlantedCoreOptions planted;
  planted.core_size = 60;
  planted.core_density = 0.7;
  edges = OverlayPlantedCore(std::move(edges), 30000, planted, 11);
  // ...and three "celebrity" hubs: huge degree, but only weakly embedded.
  Rng rng(13);
  for (uint32_t hub = 30000; hub < 30003; ++hub) {
    for (int i = 0; i < 3000; ++i) {
      edges.push_back({hub, rng.UniformInt(30000)});
    }
  }
  const CsrGraph graph = BuildUndirectedGraph(edges);

  auto result = RunGpuPeel(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint32_t>& core = result->core;

  // Degree ranking: the celebrity hubs dominate.
  std::vector<VertexId> by_degree(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return graph.Degree(a) > graph.Degree(b);
  });

  // Core ranking: the embedded community dominates.
  const std::vector<VertexId> by_core = TopSpreaders(graph, core, 10);

  std::printf("%-28s %-28s\n", "top by degree", "top by core number");
  for (int i = 0; i < 10; ++i) {
    const VertexId d = by_degree[i];
    const VertexId c = by_core[i];
    std::printf("v%-6u deg=%-5u core=%-4u  v%-6u deg=%-5u core=%-4u\n", d,
                graph.Degree(d), core[d], c, graph.Degree(c), core[c]);
  }

  int hubs_in_degree_top = 0;
  int community_in_core_top = 0;
  for (int i = 0; i < 10; ++i) {
    if (by_degree[i] >= 30000) ++hubs_in_degree_top;
    if (core[by_core[i]] == result->MaxCore()) ++community_in_core_top;
  }
  std::printf(
      "\ncelebrity hubs in degree top-10: %d; k_max-core members in core "
      "top-10: %d\n",
      hubs_in_degree_top, community_in_core_top);
  std::printf(
      "The core ranking surfaces the embedded community (core=%u) instead of"
      " the\nweakly-embedded celebrity hubs — the spreaders k-core analysis"
      " is built for.\n",
      result->MaxCore());
  return 0;
}
