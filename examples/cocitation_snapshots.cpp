// Temporal co-citation analysis (the paper's §VI case study as a library
// walkthrough): track how the most-active author core of a citation network
// evolves across yearly snapshots — the "lightning fast decomposition lets
// you re-run k-core per snapshot" use case motivating the paper.
#include <cstdio>

#include "analysis/snapshots.h"
#include "generators/citation.h"

int main() {
  using namespace kcore;

  CitationOptions options;
  options.num_papers = 12000;
  options.num_authors = 2000;
  options.num_topics = 8;
  options.first_year = 1985;
  options.last_year = 2000;
  options.seed = 77;
  const CitationCorpus corpus = GenerateCitationCorpus(options);
  std::printf("corpus: %zu papers by %u authors (%u-%u)\n\n",
              corpus.papers.size(), options.num_authors, options.first_year,
              options.last_year);

  // Decompose every 3-year snapshot and watch the densest core grow.
  std::printf("%-8s %10s %10s %6s %12s\n", "cutoff", "authors", "edges",
              "k_max", "|k_max-core|");
  SnapshotCore previous;
  bool have_previous = false;
  for (uint32_t year = 1988; year <= 2000; year += 3) {
    const SnapshotCore snapshot = AnalyzeSnapshot(corpus, year);
    std::printf("%-8u %10llu %10llu %6u %12zu\n", year,
                static_cast<unsigned long long>(snapshot.num_authors),
                static_cast<unsigned long long>(snapshot.num_edges),
                snapshot.k_max, snapshot.kmax_core_authors.size());
    if (have_previous) {
      const SnapshotComparison cmp = CompareSnapshots(previous, snapshot);
      std::printf("         vs %u: stayed %zu, entered %zu, dropped %zu\n",
                  previous.cutoff_year, cmp.in_both.size(),
                  cmp.only_second.size(), cmp.only_first.size());
    }
    previous = snapshot;
    have_previous = true;
  }

  std::printf(
      "\nEach row is one full k-core decomposition of the snapshot's author"
      "\ninteraction network; 'entered'/'dropped' are the Fig. 10 ring and"
      "\nbottom sets between consecutive snapshots.\n");
  return 0;
}
