// Quickstart: build a graph, run the GPU peeling decomposer, inspect cores.
//
//   ./quickstart [edge_list.txt]
//
// Without an argument a small synthetic social network is generated. With a
// path, a SNAP-style whitespace edge list is loaded (comments start with
// '#'; IDs may be sparse — they are recoded automatically).
#include <cstdio>
#include <string>

#include "analysis/core_analysis.h"
#include "common/strings.h"
#include "core/gpu_peel.h"
#include "cpu/bz.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"

int main(int argc, char** argv) {
  using namespace kcore;

  // 1. Get a graph: load from disk or generate a Barabási–Albert network.
  CsrGraph graph;
  if (argc > 1) {
    auto edges = LoadEdgeListText(argv[1]);
    if (!edges.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   edges.status().ToString().c_str());
      return 1;
    }
    auto built = BuildGraph(*edges);  // undirected, dedup, dense recode
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    graph = std::move(built->graph);
  } else {
    graph = BuildUndirectedGraph(GenerateBarabasiAlbert(20000, 5, 42));
  }

  const GraphStats stats = ComputeGraphStats(graph);
  std::printf("Graph: %s vertices, %s edges, avg degree %.1f, max %u\n",
              WithCommas(stats.num_vertices).c_str(),
              WithCommas(stats.num_edges).c_str(), stats.avg_degree,
              stats.max_degree);

  // 2. Decompose on the simulated GPU (paper Algorithms 1-3).
  auto result = RunGpuPeel(graph);
  if (!result.ok()) {
    std::fprintf(stderr, "decomposition failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("k_max (degeneracy): %u\n", result->MaxCore());
  std::printf("rounds: %u, modeled GPU time: %.3f ms, peak device mem: %s\n",
              result->metrics.rounds, result->metrics.modeled_ms,
              HumanBytes(result->metrics.peak_device_bytes).c_str());

  // 3. Cross-check against the serial BZ algorithm.
  const DecomposeResult bz = RunBz(graph);
  std::printf("BZ agreement: %s (BZ modeled %.3f ms)\n",
              bz.core == result->core ? "OK" : "MISMATCH",
              bz.metrics.modeled_ms);

  // 4. Inspect the core hierarchy.
  const auto histogram = CoreHistogram(result->core);
  std::printf("shell sizes:");
  for (size_t k = 0; k < histogram.size(); ++k) {
    if (histogram[k] != 0) {
      std::printf(" %zu-shell:%s", k, WithCommas(histogram[k]).c_str());
    }
  }
  std::printf("\n");
  const InducedSubgraph top =
      KCoreSubgraph(graph, result->core, result->MaxCore());
  std::printf("the %u-core has %u vertices and %s edges\n", result->MaxCore(),
              top.graph.NumVertices(),
              WithCommas(top.graph.NumUndirectedEdges()).c_str());
  return 0;
}
