file(REMOVE_RECURSE
  "CMakeFiles/cocitation_snapshots.dir/cocitation_snapshots.cpp.o"
  "CMakeFiles/cocitation_snapshots.dir/cocitation_snapshots.cpp.o.d"
  "cocitation_snapshots"
  "cocitation_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocitation_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
