# Empty dependencies file for cocitation_snapshots.
# This may be replaced when dependencies are built.
