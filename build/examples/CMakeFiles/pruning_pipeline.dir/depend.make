# Empty dependencies file for pruning_pipeline.
# This may be replaced when dependencies are built.
