file(REMOVE_RECURSE
  "CMakeFiles/pruning_pipeline.dir/pruning_pipeline.cpp.o"
  "CMakeFiles/pruning_pipeline.dir/pruning_pipeline.cpp.o.d"
  "pruning_pipeline"
  "pruning_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruning_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
