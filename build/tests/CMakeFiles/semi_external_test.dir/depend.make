# Empty dependencies file for semi_external_test.
# This may be replaced when dependencies are built.
