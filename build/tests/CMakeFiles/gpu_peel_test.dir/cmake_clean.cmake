file(REMOVE_RECURSE
  "CMakeFiles/gpu_peel_test.dir/gpu_peel_test.cc.o"
  "CMakeFiles/gpu_peel_test.dir/gpu_peel_test.cc.o.d"
  "gpu_peel_test"
  "gpu_peel_test.pdb"
  "gpu_peel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_peel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
