# Empty dependencies file for gpu_peel_test.
# This may be replaced when dependencies are built.
