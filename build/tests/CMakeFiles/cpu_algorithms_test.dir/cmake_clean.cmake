file(REMOVE_RECURSE
  "CMakeFiles/cpu_algorithms_test.dir/cpu_algorithms_test.cc.o"
  "CMakeFiles/cpu_algorithms_test.dir/cpu_algorithms_test.cc.o.d"
  "cpu_algorithms_test"
  "cpu_algorithms_test.pdb"
  "cpu_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
