
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpu_algorithms_test.cc" "tests/CMakeFiles/cpu_algorithms_test.dir/cpu_algorithms_test.cc.o" "gcc" "tests/CMakeFiles/cpu_algorithms_test.dir/cpu_algorithms_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/kcore_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/kcore_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/vetga/CMakeFiles/kcore_vetga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kcore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/kcore_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cusim/CMakeFiles/kcore_cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kcore_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/generators/CMakeFiles/kcore_generators.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/kcore_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kcore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
