file(REMOVE_RECURSE
  "CMakeFiles/cusim_test.dir/cusim_test.cc.o"
  "CMakeFiles/cusim_test.dir/cusim_test.cc.o.d"
  "cusim_test"
  "cusim_test.pdb"
  "cusim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cusim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
