file(REMOVE_RECURSE
  "CMakeFiles/vetga_test.dir/vetga_test.cc.o"
  "CMakeFiles/vetga_test.dir/vetga_test.cc.o.d"
  "vetga_test"
  "vetga_test.pdb"
  "vetga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vetga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
