# Empty dependencies file for vetga_test.
# This may be replaced when dependencies are built.
