# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/cusim_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_peel_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/systems_test[1]_include.cmake")
include("/root/repo/build/tests/vetga_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/multi_gpu_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_core_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
include("/root/repo/build/tests/semi_external_test[1]_include.cmake")
