# Empty dependencies file for kcore_cli.
# This may be replaced when dependencies are built.
