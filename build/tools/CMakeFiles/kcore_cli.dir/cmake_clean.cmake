file(REMOVE_RECURSE
  "CMakeFiles/kcore_cli.dir/kcore_cli.cpp.o"
  "CMakeFiles/kcore_cli.dir/kcore_cli.cpp.o.d"
  "kcore_cli"
  "kcore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
