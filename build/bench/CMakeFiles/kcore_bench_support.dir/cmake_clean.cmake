file(REMOVE_RECURSE
  "CMakeFiles/kcore_bench_support.dir/bench_support.cc.o"
  "CMakeFiles/kcore_bench_support.dir/bench_support.cc.o.d"
  "libkcore_bench_support.a"
  "libkcore_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
