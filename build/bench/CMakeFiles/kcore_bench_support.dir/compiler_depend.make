# Empty compiler generated dependencies file for kcore_bench_support.
# This may be replaced when dependencies are built.
