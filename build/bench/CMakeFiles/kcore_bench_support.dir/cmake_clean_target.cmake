file(REMOVE_RECURSE
  "libkcore_bench_support.a"
)
