# Empty dependencies file for bench_micro_hindex.
# This may be replaced when dependencies are built.
