file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hindex.dir/bench_micro_hindex.cc.o"
  "CMakeFiles/bench_micro_hindex.dir/bench_micro_hindex.cc.o.d"
  "bench_micro_hindex"
  "bench_micro_hindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
