file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cpu.dir/bench_table4_cpu.cc.o"
  "CMakeFiles/bench_table4_cpu.dir/bench_table4_cpu.cc.o.d"
  "bench_table4_cpu"
  "bench_table4_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
