file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_scan.dir/bench_micro_scan.cc.o"
  "CMakeFiles/bench_micro_scan.dir/bench_micro_scan.cc.o.d"
  "bench_micro_scan"
  "bench_micro_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
