# Empty compiler generated dependencies file for bench_micro_append.
# This may be replaced when dependencies are built.
