file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_append.dir/bench_micro_append.cc.o"
  "CMakeFiles/bench_micro_append.dir/bench_micro_append.cc.o.d"
  "bench_micro_append"
  "bench_micro_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
