# Empty compiler generated dependencies file for kcore_perf.
# This may be replaced when dependencies are built.
