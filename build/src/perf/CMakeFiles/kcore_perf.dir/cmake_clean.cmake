file(REMOVE_RECURSE
  "CMakeFiles/kcore_perf.dir/cost_model.cc.o"
  "CMakeFiles/kcore_perf.dir/cost_model.cc.o.d"
  "libkcore_perf.a"
  "libkcore_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
