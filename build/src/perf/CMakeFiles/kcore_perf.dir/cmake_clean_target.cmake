file(REMOVE_RECURSE
  "libkcore_perf.a"
)
