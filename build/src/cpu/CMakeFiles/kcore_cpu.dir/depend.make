# Empty dependencies file for kcore_cpu.
# This may be replaced when dependencies are built.
