
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/bz.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/bz.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/bz.cc.o.d"
  "/root/repo/src/cpu/dynamic_core.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/dynamic_core.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/dynamic_core.cc.o.d"
  "/root/repo/src/cpu/hindex.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/hindex.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/hindex.cc.o.d"
  "/root/repo/src/cpu/mpm.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/mpm.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/mpm.cc.o.d"
  "/root/repo/src/cpu/naive_ref.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/naive_ref.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/naive_ref.cc.o.d"
  "/root/repo/src/cpu/park.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/park.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/park.cc.o.d"
  "/root/repo/src/cpu/pkc.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/pkc.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/pkc.cc.o.d"
  "/root/repo/src/cpu/semi_external.cc" "src/cpu/CMakeFiles/kcore_cpu.dir/semi_external.cc.o" "gcc" "src/cpu/CMakeFiles/kcore_cpu.dir/semi_external.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kcore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kcore_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/kcore_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
