file(REMOVE_RECURSE
  "libkcore_cpu.a"
)
