file(REMOVE_RECURSE
  "CMakeFiles/kcore_cpu.dir/bz.cc.o"
  "CMakeFiles/kcore_cpu.dir/bz.cc.o.d"
  "CMakeFiles/kcore_cpu.dir/dynamic_core.cc.o"
  "CMakeFiles/kcore_cpu.dir/dynamic_core.cc.o.d"
  "CMakeFiles/kcore_cpu.dir/hindex.cc.o"
  "CMakeFiles/kcore_cpu.dir/hindex.cc.o.d"
  "CMakeFiles/kcore_cpu.dir/mpm.cc.o"
  "CMakeFiles/kcore_cpu.dir/mpm.cc.o.d"
  "CMakeFiles/kcore_cpu.dir/naive_ref.cc.o"
  "CMakeFiles/kcore_cpu.dir/naive_ref.cc.o.d"
  "CMakeFiles/kcore_cpu.dir/park.cc.o"
  "CMakeFiles/kcore_cpu.dir/park.cc.o.d"
  "CMakeFiles/kcore_cpu.dir/pkc.cc.o"
  "CMakeFiles/kcore_cpu.dir/pkc.cc.o.d"
  "CMakeFiles/kcore_cpu.dir/semi_external.cc.o"
  "CMakeFiles/kcore_cpu.dir/semi_external.cc.o.d"
  "libkcore_cpu.a"
  "libkcore_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
