# Empty compiler generated dependencies file for kcore_common.
# This may be replaced when dependencies are built.
