file(REMOVE_RECURSE
  "libkcore_common.a"
)
