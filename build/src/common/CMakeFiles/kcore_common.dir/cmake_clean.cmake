file(REMOVE_RECURSE
  "CMakeFiles/kcore_common.dir/status.cc.o"
  "CMakeFiles/kcore_common.dir/status.cc.o.d"
  "CMakeFiles/kcore_common.dir/strings.cc.o"
  "CMakeFiles/kcore_common.dir/strings.cc.o.d"
  "CMakeFiles/kcore_common.dir/thread_pool.cc.o"
  "CMakeFiles/kcore_common.dir/thread_pool.cc.o.d"
  "libkcore_common.a"
  "libkcore_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
