# Empty compiler generated dependencies file for kcore_cusim.
# This may be replaced when dependencies are built.
