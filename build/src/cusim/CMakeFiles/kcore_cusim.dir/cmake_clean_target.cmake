file(REMOVE_RECURSE
  "libkcore_cusim.a"
)
