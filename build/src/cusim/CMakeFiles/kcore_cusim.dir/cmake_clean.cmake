file(REMOVE_RECURSE
  "CMakeFiles/kcore_cusim.dir/device.cc.o"
  "CMakeFiles/kcore_cusim.dir/device.cc.o.d"
  "CMakeFiles/kcore_cusim.dir/warp_scan.cc.o"
  "CMakeFiles/kcore_cusim.dir/warp_scan.cc.o.d"
  "libkcore_cusim.a"
  "libkcore_cusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_cusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
