file(REMOVE_RECURSE
  "CMakeFiles/kcore_generators.dir/citation.cc.o"
  "CMakeFiles/kcore_generators.dir/citation.cc.o.d"
  "CMakeFiles/kcore_generators.dir/generators.cc.o"
  "CMakeFiles/kcore_generators.dir/generators.cc.o.d"
  "libkcore_generators.a"
  "libkcore_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
