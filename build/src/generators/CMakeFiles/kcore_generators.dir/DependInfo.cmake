
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generators/citation.cc" "src/generators/CMakeFiles/kcore_generators.dir/citation.cc.o" "gcc" "src/generators/CMakeFiles/kcore_generators.dir/citation.cc.o.d"
  "/root/repo/src/generators/generators.cc" "src/generators/CMakeFiles/kcore_generators.dir/generators.cc.o" "gcc" "src/generators/CMakeFiles/kcore_generators.dir/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kcore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kcore_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
