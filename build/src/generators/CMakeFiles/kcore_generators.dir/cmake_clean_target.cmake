file(REMOVE_RECURSE
  "libkcore_generators.a"
)
