# Empty compiler generated dependencies file for kcore_generators.
# This may be replaced when dependencies are built.
