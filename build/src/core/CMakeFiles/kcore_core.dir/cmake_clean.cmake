file(REMOVE_RECURSE
  "CMakeFiles/kcore_core.dir/gpu_peel.cc.o"
  "CMakeFiles/kcore_core.dir/gpu_peel.cc.o.d"
  "CMakeFiles/kcore_core.dir/gpu_peel_options.cc.o"
  "CMakeFiles/kcore_core.dir/gpu_peel_options.cc.o.d"
  "CMakeFiles/kcore_core.dir/multi_gpu_peel.cc.o"
  "CMakeFiles/kcore_core.dir/multi_gpu_peel.cc.o.d"
  "libkcore_core.a"
  "libkcore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
