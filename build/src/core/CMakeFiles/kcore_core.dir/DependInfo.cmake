
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gpu_peel.cc" "src/core/CMakeFiles/kcore_core.dir/gpu_peel.cc.o" "gcc" "src/core/CMakeFiles/kcore_core.dir/gpu_peel.cc.o.d"
  "/root/repo/src/core/gpu_peel_options.cc" "src/core/CMakeFiles/kcore_core.dir/gpu_peel_options.cc.o" "gcc" "src/core/CMakeFiles/kcore_core.dir/gpu_peel_options.cc.o.d"
  "/root/repo/src/core/multi_gpu_peel.cc" "src/core/CMakeFiles/kcore_core.dir/multi_gpu_peel.cc.o" "gcc" "src/core/CMakeFiles/kcore_core.dir/multi_gpu_peel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kcore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kcore_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cusim/CMakeFiles/kcore_cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/kcore_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
