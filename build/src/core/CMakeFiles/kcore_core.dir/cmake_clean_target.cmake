file(REMOVE_RECURSE
  "libkcore_core.a"
)
