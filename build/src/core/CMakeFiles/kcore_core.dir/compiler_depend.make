# Empty compiler generated dependencies file for kcore_core.
# This may be replaced when dependencies are built.
