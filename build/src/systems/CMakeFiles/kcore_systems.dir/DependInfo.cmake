
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/gswitch.cc" "src/systems/CMakeFiles/kcore_systems.dir/gswitch.cc.o" "gcc" "src/systems/CMakeFiles/kcore_systems.dir/gswitch.cc.o.d"
  "/root/repo/src/systems/gunrock.cc" "src/systems/CMakeFiles/kcore_systems.dir/gunrock.cc.o" "gcc" "src/systems/CMakeFiles/kcore_systems.dir/gunrock.cc.o.d"
  "/root/repo/src/systems/medusa.cc" "src/systems/CMakeFiles/kcore_systems.dir/medusa.cc.o" "gcc" "src/systems/CMakeFiles/kcore_systems.dir/medusa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kcore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/kcore_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cusim/CMakeFiles/kcore_cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kcore_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/kcore_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
