# Empty dependencies file for kcore_systems.
# This may be replaced when dependencies are built.
