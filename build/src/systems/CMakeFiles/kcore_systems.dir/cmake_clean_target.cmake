file(REMOVE_RECURSE
  "libkcore_systems.a"
)
