file(REMOVE_RECURSE
  "CMakeFiles/kcore_systems.dir/gswitch.cc.o"
  "CMakeFiles/kcore_systems.dir/gswitch.cc.o.d"
  "CMakeFiles/kcore_systems.dir/gunrock.cc.o"
  "CMakeFiles/kcore_systems.dir/gunrock.cc.o.d"
  "CMakeFiles/kcore_systems.dir/medusa.cc.o"
  "CMakeFiles/kcore_systems.dir/medusa.cc.o.d"
  "libkcore_systems.a"
  "libkcore_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
