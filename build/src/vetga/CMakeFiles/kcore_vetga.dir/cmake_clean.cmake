file(REMOVE_RECURSE
  "CMakeFiles/kcore_vetga.dir/vetga.cc.o"
  "CMakeFiles/kcore_vetga.dir/vetga.cc.o.d"
  "libkcore_vetga.a"
  "libkcore_vetga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_vetga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
