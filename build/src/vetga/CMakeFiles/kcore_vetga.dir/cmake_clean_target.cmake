file(REMOVE_RECURSE
  "libkcore_vetga.a"
)
