# Empty compiler generated dependencies file for kcore_vetga.
# This may be replaced when dependencies are built.
