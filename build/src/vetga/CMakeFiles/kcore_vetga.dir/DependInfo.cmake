
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vetga/vetga.cc" "src/vetga/CMakeFiles/kcore_vetga.dir/vetga.cc.o" "gcc" "src/vetga/CMakeFiles/kcore_vetga.dir/vetga.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kcore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cusim/CMakeFiles/kcore_cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kcore_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/kcore_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
