file(REMOVE_RECURSE
  "libkcore_graph.a"
)
