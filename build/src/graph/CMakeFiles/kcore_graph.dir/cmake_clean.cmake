file(REMOVE_RECURSE
  "CMakeFiles/kcore_graph.dir/csr_graph.cc.o"
  "CMakeFiles/kcore_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/kcore_graph.dir/digraph.cc.o"
  "CMakeFiles/kcore_graph.dir/digraph.cc.o.d"
  "CMakeFiles/kcore_graph.dir/graph_builder.cc.o"
  "CMakeFiles/kcore_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/kcore_graph.dir/graph_io.cc.o"
  "CMakeFiles/kcore_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/kcore_graph.dir/graph_stats.cc.o"
  "CMakeFiles/kcore_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/kcore_graph.dir/subgraph.cc.o"
  "CMakeFiles/kcore_graph.dir/subgraph.cc.o.d"
  "libkcore_graph.a"
  "libkcore_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
