# Empty compiler generated dependencies file for kcore_graph.
# This may be replaced when dependencies are built.
