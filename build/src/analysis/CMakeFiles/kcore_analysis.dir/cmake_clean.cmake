file(REMOVE_RECURSE
  "CMakeFiles/kcore_analysis.dir/core_analysis.cc.o"
  "CMakeFiles/kcore_analysis.dir/core_analysis.cc.o.d"
  "CMakeFiles/kcore_analysis.dir/dcore.cc.o"
  "CMakeFiles/kcore_analysis.dir/dcore.cc.o.d"
  "CMakeFiles/kcore_analysis.dir/hierarchy.cc.o"
  "CMakeFiles/kcore_analysis.dir/hierarchy.cc.o.d"
  "CMakeFiles/kcore_analysis.dir/khcore.cc.o"
  "CMakeFiles/kcore_analysis.dir/khcore.cc.o.d"
  "CMakeFiles/kcore_analysis.dir/snapshots.cc.o"
  "CMakeFiles/kcore_analysis.dir/snapshots.cc.o.d"
  "libkcore_analysis.a"
  "libkcore_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcore_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
