file(REMOVE_RECURSE
  "libkcore_analysis.a"
)
