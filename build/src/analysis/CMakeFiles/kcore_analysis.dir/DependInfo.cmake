
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/core_analysis.cc" "src/analysis/CMakeFiles/kcore_analysis.dir/core_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/kcore_analysis.dir/core_analysis.cc.o.d"
  "/root/repo/src/analysis/dcore.cc" "src/analysis/CMakeFiles/kcore_analysis.dir/dcore.cc.o" "gcc" "src/analysis/CMakeFiles/kcore_analysis.dir/dcore.cc.o.d"
  "/root/repo/src/analysis/hierarchy.cc" "src/analysis/CMakeFiles/kcore_analysis.dir/hierarchy.cc.o" "gcc" "src/analysis/CMakeFiles/kcore_analysis.dir/hierarchy.cc.o.d"
  "/root/repo/src/analysis/khcore.cc" "src/analysis/CMakeFiles/kcore_analysis.dir/khcore.cc.o" "gcc" "src/analysis/CMakeFiles/kcore_analysis.dir/khcore.cc.o.d"
  "/root/repo/src/analysis/snapshots.cc" "src/analysis/CMakeFiles/kcore_analysis.dir/snapshots.cc.o" "gcc" "src/analysis/CMakeFiles/kcore_analysis.dir/snapshots.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kcore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/kcore_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/generators/CMakeFiles/kcore_generators.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kcore_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/kcore_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
