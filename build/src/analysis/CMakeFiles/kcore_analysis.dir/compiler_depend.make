# Empty compiler generated dependencies file for kcore_analysis.
# This may be replaced when dependencies are built.
