// Regenerates the paper's Table III: computation time of the GPU programs —
// Ours vs VETGA (vector primitives), Medusa-MPM, Medusa-Peel (vertex-centric
// BSP), Gunrock and GSWITCH (frontier engines). "OOM", "> 1hr*" and
// "LD > 1hr*" cells reproduce the paper's failure markers at the scaled
// device-memory (40 MB) and time (9 s modeled ~ 1 hr / 400) budgets.
#include <cstdio>

#include "bench_support.h"
#include "core/gpu_peel.h"
#include "cpu/bz.h"
#include "systems/gswitch.h"
#include "systems/gunrock.h"
#include "systems/medusa.h"
#include "vetga/vetga.h"

int main() {
  using namespace kcore;
  using namespace kcore::bench;

  std::printf(
      "=== Table III: GPU programs (modeled ms; scaled budgets) ===\n");
  TablePrinter table({"Dataset", "Ours", "VETGA", "Medusa-MPM", "Medusa-Peel",
                      "Gunrock", "GSwitch"});

  const uint64_t max_edges = MaxEdgesFromEnv();

  auto cell = [](const StatusOr<DecomposeResult>& result) -> std::string {
    if (result.ok()) return FormatCellMs(result->metrics.modeled_ms);
    if (result.status().IsOutOfMemory()) return kCellOom;
    if (result.status().IsTimeout()) return kCellTimeout;
    return result.status().ToString();
  };

  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    SystemConfig system;
    system.device = ScaledP100Options();
    system.modeled_timeout_ms = kScaledHourMs;

    GpuPeelOptions ours_options;
    ours_options.buffer_capacity = ScaledBufferCapacity(*graph);
    const auto ours = RunGpuPeel(*graph, ours_options, ScaledP100Options());

    // VETGA: its Python loader is modeled first; past the budget the paper
    // marks the row "LD > 1hr" without running the computation.
    VetgaConfig vetga_config;
    vetga_config.device = ScaledP100Options();
    vetga_config.modeled_timeout_ms = kScaledHourMs;
    const double vetga_load_ms =
        static_cast<double>(graph->NumUndirectedEdges()) *
        vetga_config.load_ns_per_edge / 1e6;
    std::string vetga_cell;
    if (vetga_load_ms > kScaledHourMs) {
      vetga_cell = kCellLoadTimeout;
    } else {
      vetga_cell = cell(RunVetga(*graph, vetga_config));
    }

    const auto medusa_mpm = RunMedusaMpm(*graph, system);
    const auto medusa_peel = RunMedusaPeel(*graph, system);
    const auto gunrock = RunGunrockKCore(*graph, system);
    // GSWITCH needs the round count hardcoded per input (paper §V); the
    // paper's authors used each graph's known core number.
    const uint32_t k_max = RunBz(*graph).MaxCore();
    const auto gswitch = RunGSwitchKCore(*graph, k_max, system);

    table.AddRow({spec.name, cell(ours), vetga_cell, cell(medusa_mpm),
                  cell(medusa_peel), cell(gunrock), cell(gswitch)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §VI): Ours wins every row; GSwitch < Gunrock"
      "\n< Medusa-Peel; VETGA 1-2 orders slower than Ours and cannot load the"
      "\nlargest graphs; Medusa/Gunrock OOM from arabic-2005 on, GSwitch on"
      "\nthe last two. Miniaturization compresses the absolute ratios and"
      "\nshrinks Medusa-MPM's superstep count (see EXPERIMENTS.md).\n");
  return 0;
}
