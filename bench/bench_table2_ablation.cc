// Regenerates the paper's Table II: the ablation study of the GPU peeling
// algorithm — Ours vs SM / VP (memory-latency optimizations) and BC / EC
// (compaction-based buffer appending), each also combined with SM / VP.
// Reports avg +/- std of modeled milliseconds over repeated runs; the best
// variant per dataset is starred.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "common/strings.h"
#include "core/gpu_peel.h"

int main() {
  using namespace kcore;
  using namespace kcore::bench;

  const uint32_t reps = RepsFromEnv(3);
  const uint64_t max_edges = MaxEdgesFromEnv();
  const std::vector<GpuPeelOptions> variants =
      GpuPeelOptions::AblationVariants();

  std::printf("=== Table II: Ablation study (modeled ms, avg +/- std, %u runs) ===\n",
              reps);
  std::vector<std::string> headers = {"Dataset"};
  for (const auto& v : variants) headers.push_back(v.VariantName());
  TablePrinter table(headers);

  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    std::vector<std::string> row = {spec.name};
    std::vector<double> means(variants.size());
    std::vector<double> stds(variants.size());
    size_t best = 0;
    for (size_t i = 0; i < variants.size(); ++i) {
      GpuPeelOptions options = variants[i];
      options.buffer_capacity = ScaledBufferCapacity(*graph);
      double sum = 0;
      double sum_sq = 0;
      for (uint32_t r = 0; r < reps; ++r) {
        auto result = RunGpuPeel(*graph, options, ScaledP100Options());
        if (!result.ok()) {
          std::fprintf(stderr, "%s/%s: %s\n", spec.name.c_str(),
                       options.VariantName().c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        sum += result->metrics.modeled_ms;
        sum_sq += result->metrics.modeled_ms * result->metrics.modeled_ms;
      }
      means[i] = sum / reps;
      const double variance =
          std::max(0.0, sum_sq / reps - means[i] * means[i]);
      stds[i] = std::sqrt(variance);
      if (means[i] < means[best]) best = i;
    }
    for (size_t i = 0; i < variants.size(); ++i) {
      row.push_back(StrFormat("%s%s±%s", i == best ? "*" : "",
                              FormatCellMs(means[i]).c_str(),
                              FormatCellMs(stds[i]).c_str()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §VI): the basic algorithm (Ours) wins nearly"
      "\neverywhere; SM/VP add instructions that rarely pay off (VP can win on"
      "\nextreme-skew graphs like trackers); BC is ~2x slower and EC ~4x"
      "\nslower because optimized atomics beat compaction ('Occam's razor').\n");
  return 0;
}
