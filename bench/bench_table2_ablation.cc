// Regenerates the paper's Table II: the ablation study of the GPU peeling
// algorithm — Ours vs SM / VP (memory-latency optimizations) and BC / EC
// (compaction-based buffer appending), each also combined with SM / VP.
// Reports avg +/- std of modeled milliseconds over repeated runs; the best
// variant per dataset is starred.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "common/strings.h"
#include "core/gpu_peel.h"

int main() {
  using namespace kcore;
  using namespace kcore::bench;

  const uint32_t reps = RepsFromEnv(3);
  const uint64_t max_edges = MaxEdgesFromEnv();
  const std::vector<GpuPeelOptions> variants =
      GpuPeelOptions::AblationVariants();

  std::printf("=== Table II: Ablation study (modeled ms, avg +/- std, %u runs) ===\n",
              reps);
  std::vector<std::string> headers = {"Dataset"};
  for (const auto& v : variants) headers.push_back(v.VariantName());
  TablePrinter table(headers);

  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    std::vector<std::string> row = {spec.name};
    std::vector<double> means(variants.size());
    std::vector<double> stds(variants.size());
    size_t best = 0;
    for (size_t i = 0; i < variants.size(); ++i) {
      GpuPeelOptions options = variants[i];
      options.buffer_capacity = ScaledBufferCapacity(*graph);
      double sum = 0;
      double sum_sq = 0;
      for (uint32_t r = 0; r < reps; ++r) {
        auto result = RunGpuPeel(*graph, options, ScaledP100Options());
        if (!result.ok()) {
          std::fprintf(stderr, "%s/%s: %s\n", spec.name.c_str(),
                       options.VariantName().c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        sum += result->metrics.modeled_ms;
        sum_sq += result->metrics.modeled_ms * result->metrics.modeled_ms;
      }
      means[i] = sum / reps;
      const double variance =
          std::max(0.0, sum_sq / reps - means[i] * means[i]);
      stds[i] = std::sqrt(variance);
      if (means[i] < means[best]) best = i;
    }
    for (size_t i = 0; i < variants.size(); ++i) {
      row.push_back(StrFormat("%s%s±%s", i == best ? "*" : "",
                              FormatCellMs(means[i]).c_str(),
                              FormatCellMs(stds[i]).c_str()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §VI): the basic algorithm (Ours) wins nearly"
      "\neverywhere; SM/VP add instructions that rarely pay off (VP can win on"
      "\nextreme-skew graphs like trackers); BC is ~2x slower and EC ~4x"
      "\nslower because optimized atomics beat compaction ('Occam's razor').\n");

  // --- Active-vertex compaction (AC) on/off row, per dataset. ---
  // The Table II variants above all run with AC (the default). This section
  // isolates AC itself on the baseline variant: scan work with the full
  // [0, n) sweep vs. the compacted active array.
  std::printf("\n=== Active-vertex compaction ablation (variant: Ours) ===\n");
  TablePrinter ac_table({"Dataset", "AC off (ms)", "AC on (ms)",
                         "scan off (ms)", "scan on (ms)", "scanned off",
                         "scanned on", "scan reduction", "compactions",
                         "skipped"});
  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions on = GpuPeelOptions::Ours();
    on.buffer_capacity = ScaledBufferCapacity(*graph);
    const GpuPeelOptions off = on.WithoutCompaction();
    auto on_result = RunGpuPeel(*graph, on, ScaledP100Options());
    auto off_result = RunGpuPeel(*graph, off, ScaledP100Options());
    if (!on_result.ok() || !off_result.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   (!on_result.ok() ? on_result : off_result)
                       .status()
                       .ToString()
                       .c_str());
      return 1;
    }
    if (on_result->core != off_result->core) {
      std::fprintf(stderr, "%s: AC on/off core numbers diverge!\n",
                   spec.name.c_str());
      return 1;
    }
    const uint64_t scanned_on = on_result->metrics.counters.vertices_scanned;
    const uint64_t scanned_off = off_result->metrics.counters.vertices_scanned;
    ac_table.AddRow(
        {spec.name, FormatCellMs(off_result->metrics.modeled_ms),
         FormatCellMs(on_result->metrics.modeled_ms),
         FormatCellMs(off_result->metrics.scan_ms),
         FormatCellMs(on_result->metrics.scan_ms),
         StrFormat("%llu", static_cast<unsigned long long>(scanned_off)),
         StrFormat("%llu", static_cast<unsigned long long>(scanned_on)),
         StrFormat("%.1fx", scanned_on == 0
                                ? 0.0
                                : static_cast<double>(scanned_off) /
                                      static_cast<double>(scanned_on)),
         StrFormat("%llu", static_cast<unsigned long long>(
                               on_result->metrics.counters.compactions)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(
                       on_result->metrics.counters.scan_vertices_skipped))});
  }
  ac_table.Print();
  std::printf(
      "\nAC rebuilds the dense survivor array at every halving (threshold"
      "\n0.5) and sweeps it instead of [0, n): high-k_max graphs shed most"
      "\nof their O(n * k_max) scan work (see the scan-phase ms columns);"
      "\noutput is bit-identical (checked above per dataset). At this"
      "\nminiature scale the fixed per-launch cost of the CompactKernel can"
      "\noffset the scan savings in total modeled ms; the counted work and"
      "\nhost wall-clock both drop.\n");

  // --- Loop-phase expansion-strategy ablation (DESIGN.md §8). ---
  // Runs the paper roster plus the skew datasets under every frontier
  // expansion granularity; loop_ms isolates the phase the strategies touch.
  std::printf("\n=== Expansion-strategy ablation (variant: Ours, loop ms) ===\n");
  TablePrinter ex_table({"Dataset", "warp", "thread", "block", "auto",
                         "auto win", "imbal warp->auto", "auto bins t/w/b"});
  std::vector<DatasetSpec> ex_roster = PaperRoster();
  ex_roster.insert(ex_roster.end(), ExpandRoster().begin(),
                   ExpandRoster().end());
  for (const DatasetSpec& spec : ex_roster) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions base = GpuPeelOptions::Ours();
    base.buffer_capacity = ScaledBufferCapacity(*graph);
    static const ExpandStrategy kStrategies[] = {
        ExpandStrategy::kWarp, ExpandStrategy::kThread, ExpandStrategy::kBlock,
        ExpandStrategy::kAuto};
    std::vector<Metrics> metrics;
    std::vector<uint32_t> warp_core;
    for (ExpandStrategy strategy : kStrategies) {
      auto result =
          RunGpuPeel(*graph, base.WithExpand(strategy), ScaledP100Options());
      if (!result.ok()) {
        std::fprintf(stderr, "%s/expand=%s: %s\n", spec.name.c_str(),
                     ExpandStrategyName(strategy),
                     result.status().ToString().c_str());
        return 1;
      }
      if (strategy == ExpandStrategy::kWarp) {
        warp_core = result->core;
      } else if (result->core != warp_core) {
        std::fprintf(stderr, "%s: expand=%s core numbers diverge!\n",
                     spec.name.c_str(), ExpandStrategyName(strategy));
        return 1;
      }
      metrics.push_back(result->metrics);
    }
    const Metrics& warp_m = metrics[0];
    const Metrics& auto_m = metrics[3];
    const PerfCounters& ac = auto_m.counters;
    ex_table.AddRow(
        {spec.name, FormatCellMs(warp_m.loop_ms),
         FormatCellMs(metrics[1].loop_ms), FormatCellMs(metrics[2].loop_ms),
         FormatCellMs(auto_m.loop_ms),
         StrFormat("%.0f%%", warp_m.loop_ms == 0.0
                                 ? 0.0
                                 : 100.0 * (1.0 - auto_m.loop_ms /
                                                      warp_m.loop_ms)),
         StrFormat("%.2f -> %.2f", warp_m.loop_imbalance,
                   auto_m.loop_imbalance),
         StrFormat("%llu/%llu/%llu",
                   static_cast<unsigned long long>(ac.loop_bin_thread),
                   static_cast<unsigned long long>(ac.loop_bin_warp),
                   static_cast<unsigned long long>(ac.loop_bin_block))});
  }
  ex_table.Print();
  std::printf(
      "\nThe warp column is the paper's Alg. 3 (one warp per frontier"
      "\nvertex, instruction-identical to all rows above). thread retires 32"
      "\nsmall vertices per warp pass and dominates on power-law tails;"
      "\nblock pays a barrier per vertex and only makes sense for hubs,"
      "\nwhich is exactly how auto routes them (bins column; threshold"
      "\n4096 via bench_micro_expand's crossover sweep). auto's known tax:"
      "\none block-wide sync per loop window to drain the shared hub list,"
      "\nso dense crawls with many windows and no hubs (bins .../0) give a"
      "\nfew percent back while skewed graphs gain 40%%+.\n");
  return 0;
}
