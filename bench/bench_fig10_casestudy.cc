// Regenerates the paper's Fig. 10 case study: co-citation network analysis.
// A synthetic temporal citation corpus (the ArnetMiner stand-in) is cut at
// two years; the k_max-core of each author interaction network is computed
// and the word-cloud sets are printed: S1 ∩ S2 (active in both periods),
// S2 − S1 (newly most-active), S1 − S2 (dropped out of the densest core).
#include <cstdio>

#include "analysis/snapshots.h"
#include "common/strings.h"
#include "generators/citation.h"

namespace {

void PrintAuthorSet(const char* title, const std::vector<uint64_t>& authors) {
  std::printf("%s (%zu authors):\n  ", title, authors.size());
  size_t printed = 0;
  for (uint64_t a : authors) {
    std::printf("Author%04llu ", static_cast<unsigned long long>(a));
    if (++printed % 8 == 0) std::printf("\n  ");
    if (printed >= 48) {
      std::printf("... (+%zu more)", authors.size() - printed);
      break;
    }
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  using namespace kcore;

  CitationOptions options;
  options.num_papers = 2500;
  options.num_authors = 3000;
  options.num_topics = 10;  // as in the ArnetMiner subset the paper uses
  options.first_year = 1980;
  options.last_year = 2000;
  options.max_authors_per_paper = 3;
  options.citations_per_paper = 3;
  options.active_fraction = 0.25;
  options.seed = 2023;
  const CitationCorpus corpus = GenerateCitationCorpus(options);

  std::printf("=== Fig. 10: Co-citation network case study ===\n");
  std::printf(
      "Corpus: %zu papers, %u authors, %u topics, years %u-%u (synthetic"
      " ArnetMiner stand-in)\n\n",
      corpus.papers.size(), options.num_authors, options.num_topics,
      options.first_year, options.last_year);

  const SnapshotCore s1 = AnalyzeSnapshot(corpus, 1995);
  const SnapshotCore s2 = AnalyzeSnapshot(corpus, 2000);

  std::printf("G1 (papers <= 1995): %llu authors, %llu edges, k_max = %u, "
              "|S1| = %zu\n",
              static_cast<unsigned long long>(s1.num_authors),
              static_cast<unsigned long long>(s1.num_edges), s1.k_max,
              s1.kmax_core_authors.size());
  std::printf("G2 (papers <= 2000): %llu authors, %llu edges, k_max = %u, "
              "|S2| = %zu\n\n",
              static_cast<unsigned long long>(s2.num_authors),
              static_cast<unsigned long long>(s2.num_edges), s2.k_max,
              s2.kmax_core_authors.size());

  const SnapshotComparison cmp = CompareSnapshots(s1, s2);
  PrintAuthorSet("S1 ∩ S2  — most active in both periods (cloud center)",
                 cmp.in_both);
  PrintAuthorSet("S2 − S1  — became most active by 2000 (middle ring)",
                 cmp.only_second);
  PrintAuthorSet("S1 − S2  — fell out of the densest core (bottom)",
                 cmp.only_first);

  std::printf(
      "Expected shape (paper §VI): G2's k_max and core exceed G1's (paper:"
      "\n12->18, 81->107 authors); the center set is non-empty (persistently"
      "\nactive authors) and both difference sets are non-empty (rising and"
      "\nfading authors), driven by the corpus's sliding activity windows.\n");
  return 0;
}
