// Micro-benchmark for the ablation's central design question (paper §IV-C):
// appending frontier vertices via one shared-memory atomicAdd per element
// vs batching through a warp-level ballot compaction. Reports the simulated
// cost-model nanoseconds per appended element, which is what decides
// Table II's "Occam's razor" outcome.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "cusim/atomics.h"
#include "cusim/warp_scan.h"
#include "perf/cost_model.h"

namespace kcore::sim {
namespace {

void BM_AtomicAppend(benchmark::State& state) {
  const double fill = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(3);
  PerfCounters counters;
  std::vector<uint32_t> buffer(1 << 16);
  uint64_t e = 0;
  for (auto _ : state) {
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      if (rng.UniformReal() < fill) {
        const uint64_t pos =
            AtomicAdd(&e, uint64_t{1}, counters, MemSpace::kShared);
        buffer[pos % buffer.size()] = lane;
        ++counters.global_writes;
      }
    }
  }
  benchmark::DoNotOptimize(e);
  const CostModel cost = GpuNativeCostModel();
  state.counters["modeled_ns_per_warp"] =
      cost.UnitTimeNs(counters) / state.iterations();
}
BENCHMARK(BM_AtomicAppend)->Arg(10)->Arg(50)->Arg(100);

void BM_BallotCompactAppend(benchmark::State& state) {
  const double fill = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(3);
  PerfCounters counters;
  WarpCtx warp(0, 1, &counters);
  std::vector<uint32_t> buffer(1 << 16);
  uint64_t e = 0;
  for (auto _ : state) {
    uint32_t flags[kWarpSize];
    for (auto& f : flags) f = rng.UniformReal() < fill ? 1 : 0;
    uint32_t exclusive[kWarpSize];
    const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
    if (total != 0) {
      const uint64_t e_old =
          AtomicAdd(&e, uint64_t{total}, counters, MemSpace::kShared);
      for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        if (flags[lane] != 0) {
          buffer[(e_old + exclusive[lane]) % buffer.size()] = lane;
          ++counters.global_writes;
        }
      }
    }
  }
  benchmark::DoNotOptimize(e);
  const CostModel cost = GpuNativeCostModel();
  state.counters["modeled_ns_per_warp"] =
      cost.UnitTimeNs(counters) / state.iterations();
}
BENCHMARK(BM_BallotCompactAppend)->Arg(10)->Arg(50)->Arg(100);

}  // namespace
}  // namespace kcore::sim

BENCHMARK_MAIN();
