// Micro-benchmark: the h-index operator at the heart of MPM (paper Fig. 2),
// across neighborhood sizes and value skews. Demonstrates the O(d)
// histogram evaluation that all MPM-style engines in this repo share.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "cpu/hindex.h"

namespace kcore {
namespace {

std::vector<uint32_t> MakeValues(size_t count, uint32_t bound,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> values(count);
  for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(bound));
  return values;
}

void BM_HIndexUniform(benchmark::State& state) {
  const auto degree = static_cast<size_t>(state.range(0));
  const auto values = MakeValues(degree, static_cast<uint32_t>(degree), 7);
  HIndexEvaluator evaluator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator.Evaluate(values, static_cast<uint32_t>(degree)));
  }
  state.SetItemsProcessed(state.iterations() * degree);
}
BENCHMARK(BM_HIndexUniform)->Arg(8)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HIndexSkewed(benchmark::State& state) {
  // Power-law-ish values: most small, a few huge (hub neighborhoods).
  const auto degree = static_cast<size_t>(state.range(0));
  Rng rng(13);
  std::vector<uint32_t> values(degree);
  for (auto& v : values) {
    const double u = rng.UniformReal();
    v = static_cast<uint32_t>(1.0 / (u + 1e-4));
  }
  HIndexEvaluator evaluator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluator.Evaluate(values, static_cast<uint32_t>(degree)));
  }
  state.SetItemsProcessed(state.iterations() * degree);
}
BENCHMARK(BM_HIndexSkewed)->Arg(64)->Arg(4096);

void BM_HIndexCapped(benchmark::State& state) {
  // MPM caps by the current estimate, which shrinks the histogram.
  const auto values = MakeValues(4096, 4096, 21);
  HIndexEvaluator evaluator;
  const auto cap = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(values, cap));
  }
}
BENCHMARK(BM_HIndexCapped)->Arg(8)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace kcore

BENCHMARK_MAIN();
