// Micro-benchmark: loop-phase expansion strategies (DESIGN.md §8) across a
// degree sweep. Star graphs with a fixed total edge budget isolate the
// expansion engine: every frontier mixes degree-1 leaves with degree-d hubs,
// and the sweep shows each bin's modeled cost per frontier vertex.
//
// What the numbers say (and how block_expand_threshold's default fell out):
//  - thread granularity wins whenever adjacencies fit under a warp
//    (d < 32): one lane per vertex retires 32 frontier vertices per pass.
//  - warp granularity (the paper's Alg. 3) is the mid-range workhorse.
//  - block granularity pays one entry barrier per hub plus a block scan per
//    appending batch. The overhead per edge is ~150ns/d, so it undercuts
//    the per-edge lane cost (~0.04 ns at d = 4096) only once adjacencies
//    span several full block batches — hence the 4096 default: below it the
//    barrier tax dominates, above it the cooperative sweep is fixed-cost
//    noise while spreading the hub across every warp of the block.
//  - auto composes all three and should track the per-degree winner.
#include <benchmark/benchmark.h>

#include "core/gpu_peel.h"
#include "graph/graph_builder.h"

namespace kcore {
namespace {

/// Fixed edge budget per graph so the sweep varies only the degree shape.
constexpr uint64_t kEdgeBudget = 1 << 16;

/// num_hubs stars of degree d: every frontier holds degree-1 leaves (thread
/// bin) and degree-d hubs (warp or block bin, depending on the threshold).
CsrGraph MakeStarGraph(uint32_t degree) {
  const uint32_t num_hubs =
      static_cast<uint32_t>(std::max<uint64_t>(1, kEdgeBudget / degree));
  EdgeList edges;
  edges.reserve(static_cast<size_t>(num_hubs) * degree);
  uint32_t next = num_hubs;  // hubs are [0, num_hubs), leaves follow
  for (uint32_t h = 0; h < num_hubs; ++h) {
    for (uint32_t i = 0; i < degree; ++i) edges.push_back({h, next++});
  }
  return BuildUndirectedGraphWithVertexCount(edges, next);
}

void BM_ExpandStrategy(benchmark::State& state) {
  const auto degree = static_cast<uint32_t>(state.range(0));
  const auto strategy = static_cast<ExpandStrategy>(state.range(1));
  const CsrGraph graph = MakeStarGraph(degree);

  GpuPeelOptions options = GpuPeelOptions::Ours().WithExpand(strategy);
  double loop_ms = 0.0;
  double imbalance = 0.0;
  uint64_t bin_thread = 0;
  uint64_t bin_warp = 0;
  uint64_t bin_block = 0;
  uint64_t runs = 0;
  for (auto _ : state) {
    auto result = RunGpuPeel(graph, options);
    KCORE_CHECK(result.ok());
    loop_ms += result->metrics.loop_ms;
    imbalance += result->metrics.loop_imbalance;
    bin_thread += result->metrics.counters.loop_bin_thread;
    bin_warp += result->metrics.counters.loop_bin_warp;
    bin_block += result->metrics.counters.loop_bin_block;
    ++runs;
    benchmark::DoNotOptimize(result->core.data());
  }
  const double frontier = static_cast<double>(graph.NumVertices()) * runs;
  state.counters["loop_ns_per_vertex"] = loop_ms * 1e6 / frontier;
  state.counters["loop_imbalance"] = imbalance / static_cast<double>(runs);
  state.counters["bin_thread"] =
      static_cast<double>(bin_thread) / static_cast<double>(runs);
  state.counters["bin_warp"] =
      static_cast<double>(bin_warp) / static_cast<double>(runs);
  state.counters["bin_block"] =
      static_cast<double>(bin_block) / static_cast<double>(runs);
}
BENCHMARK(BM_ExpandStrategy)
    ->ArgNames({"deg", "expand"})
    ->ArgsProduct({{4, 16, 64, 256, 1024, 4096, 16384},
                   {static_cast<int>(ExpandStrategy::kThread),
                    static_cast<int>(ExpandStrategy::kWarp),
                    static_cast<int>(ExpandStrategy::kBlock),
                    static_cast<int>(ExpandStrategy::kAuto)}});

/// The block bin's fixed tax in isolation: the same auto run with hubs
/// routed to the block bin (threshold = d) versus kept on the warp path
/// (threshold = infinity) — leaves ride the thread bin either way, so the
/// gap is purely the cooperative sweep's barriers. The per-hub-edge tax
/// closes as ~1/d, which is the crossover argument behind the
/// block_expand_threshold default.
void BM_BlockBinOverhead(benchmark::State& state) {
  const auto degree = static_cast<uint32_t>(state.range(0));
  const CsrGraph graph = MakeStarGraph(degree);
  GpuPeelOptions to_block = GpuPeelOptions::Ours()
                                .WithExpand(ExpandStrategy::kAuto);
  to_block.block_expand_threshold = degree;
  GpuPeelOptions to_warp = to_block;
  to_warp.block_expand_threshold = ~0u;
  double gap_ms = 0.0;
  uint64_t runs = 0;
  for (auto _ : state) {
    auto block_run = RunGpuPeel(graph, to_block);
    auto warp_run = RunGpuPeel(graph, to_warp);
    KCORE_CHECK(block_run.ok());
    KCORE_CHECK(warp_run.ok());
    KCORE_CHECK(block_run->metrics.counters.loop_bin_block > 0);
    KCORE_CHECK(warp_run->metrics.counters.loop_bin_block == 0);
    gap_ms += block_run->metrics.loop_ms - warp_run->metrics.loop_ms;
    ++runs;
  }
  const double hub_edges =
      static_cast<double>(kEdgeBudget / degree) * degree * runs;
  state.counters["block_tax_ns_per_hub_edge"] = gap_ms * 1e6 / hub_edges;
}
BENCHMARK(BM_BlockBinOverhead)->ArgName("deg")->Arg(256)->Arg(1024)->Arg(4096)
    ->Arg(16384);

}  // namespace
}  // namespace kcore

BENCHMARK_MAIN();
