// Machine-readable perf harness: runs the GPU peeling engine over the paper
// roster and writes BENCH_gpu_peel.json so the perf trajectory (modeled_ms /
// wall_ms / operation counters) can be tracked across PRs by diffing the
// committed file. Each dataset is run with active-vertex compaction off and
// on; the harness fails if the two disagree on core numbers.
//
// A second "expand" section runs the ExpandRoster skew datasets under every
// loop-phase expansion strategy (DESIGN.md §8); the harness fails if any
// strategy's core numbers diverge from expand=warp's.
//
// A third "trace_phases" section re-runs each roster dataset once with
// simprof enabled and reports the phase breakdown derived from the trace's
// kernel spans (the cross-check that the timeline and the Metrics phase
// accumulators agree); the harness fails if any phase diverges from that
// run's own Metrics by more than 1%. The tracked compaction_on/off numbers
// above always come from unprofiled runs.
//
// A fourth "single_k" section benchmarks the direct single-k miners
// (DESIGN.md §10) against the only alternative the engine had before:
// fully decomposing and filtering at k. Both the GPU pipeline and the CPU
// Xiang cascade must reproduce the filtered membership exactly.
//
// A fifth "renumber" section runs the skew rosters with degree-ordered
// renumbering off and on and reports loop_imbalance + modeled_ms; cores
// must be bit-identical either way.
//
// A sixth "fusion" section runs each roster dataset with the fused
// scan->compact sweep off and on and reports the kernel-launch reduction;
// again the cores must match.
//
// A seventh "incremental" section is a drift guard, not a tracker: it
// re-measures the incremental-maintenance sweep cells and fails the run if
// any committed BENCH_incremental.json cell ($KCORE_BENCH_INCREMENTAL_JSON,
// else ./BENCH_incremental.json) drifts by more than 15%; absent committed
// file = loud skip. BENCH_incremental.json itself is written by
// bench_incremental, never by this harness.
//
// An eighth "cluster" section is the same kind of check-only drift guard
// over the committed BENCH_cluster.json ($KCORE_BENCH_CLUSTER_JSON, else
// ./BENCH_cluster.json): every committed (dataset, nodes, partition) cell's
// modeled_ms is re-measured with RunClusterPeel and must stay within 15%.
// BENCH_cluster.json itself is written by bench_cluster, never by this
// harness.
//
// Output path: argv[1] if given, else $KCORE_BENCH_JSON_PATH, else
// ./BENCH_gpu_peel.json. Respects KCORE_BENCH_MAX_EDGES.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support.h"
#include "cluster/cluster_peel.h"
#include "cluster/partition.h"
#include "common/strings.h"
#include "core/gpu_peel.h"
#include "cpu/xiang.h"
#include "perf/trace.h"

namespace {

using namespace kcore;
using namespace kcore::bench;

std::string U64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

/// One run's metrics as a JSON object (modeled time first — the tracked
/// number; wall_ms is the host's simulation time and is machine-noisy).
std::string MetricsJson(const Metrics& m) {
  const PerfCounters& c = m.counters;
  std::string json = "{";
  json += StrFormat("\"modeled_ms\": %.4f, ", m.modeled_ms);
  json += StrFormat("\"scan_ms\": %.4f, ", m.scan_ms);
  json += StrFormat("\"loop_ms\": %.4f, ", m.loop_ms);
  json += StrFormat("\"compact_ms\": %.4f, ", m.compact_ms);
  json += StrFormat("\"wall_ms\": %.2f, ", m.wall_ms);
  json += "\"peak_device_bytes\": " + U64(m.peak_device_bytes) + ", ";
  json += StrFormat("\"rounds\": %u, ", m.rounds);
  json += StrFormat("\"loop_imbalance\": %.3f, ", m.loop_imbalance);
  json += "\"counters\": {";
  json += "\"loop_bin_thread\": " + U64(c.loop_bin_thread) + ", ";
  json += "\"loop_bin_warp\": " + U64(c.loop_bin_warp) + ", ";
  json += "\"loop_bin_block\": " + U64(c.loop_bin_block) + ", ";
  json += "\"kernel_launches\": " + U64(c.kernel_launches) + ", ";
  json += "\"vertices_scanned\": " + U64(c.vertices_scanned) + ", ";
  json += "\"scan_vertices_skipped\": " + U64(c.scan_vertices_skipped) + ", ";
  json += "\"compactions\": " + U64(c.compactions) + ", ";
  json += "\"edges_traversed\": " + U64(c.edges_traversed) + ", ";
  json += "\"buffer_appends\": " + U64(c.buffer_appends) + ", ";
  json += "\"global_reads\": " + U64(c.global_reads) + ", ";
  json += "\"global_writes\": " + U64(c.global_writes) + ", ";
  json += "\"global_atomics\": " + U64(c.global_atomics) + ", ";
  json += "\"shared_ops\": " + U64(c.shared_ops) + ", ";
  json += "\"shared_atomics\": " + U64(c.shared_atomics) + ", ";
  json += "\"barriers\": " + U64(c.barriers);
  json += "}}";
  return json;
}

/// Relative disagreement between a trace-derived phase total and the engine's
/// own Metrics accumulator, tolerant of both being ~0.
bool PhaseMismatch(double trace_ms, double metrics_ms) {
  const double scale = std::max(std::abs(metrics_ms), 1e-6);
  return std::abs(trace_ms - metrics_ms) > 0.01 * scale;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_gpu_peel.json";
  if (argc > 1) {
    path = argv[1];
  } else if (const char* env = std::getenv("KCORE_BENCH_JSON_PATH")) {
    path = env;
  }
  const uint64_t max_edges = MaxEdgesFromEnv();

  std::string json = "{\n  \"bench\": \"gpu_peel\",\n";
  json += "  \"device\": \"scaled_p100\",\n  \"variant\": \"Ours\",\n";
  json += "  \"datasets\": [\n";

  bool first = true;
  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions on = GpuPeelOptions::Ours();
    on.buffer_capacity = ScaledBufferCapacity(*graph);
    auto on_result = RunGpuPeel(*graph, on, ScaledP100Options());
    auto off_result =
        RunGpuPeel(*graph, on.WithoutCompaction(), ScaledP100Options());
    if (!on_result.ok() || !off_result.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   (!on_result.ok() ? on_result : off_result)
                       .status()
                       .ToString()
                       .c_str());
      return 1;
    }
    if (on_result->core != off_result->core) {
      std::fprintf(stderr, "%s: compaction on/off core numbers diverge\n",
                   spec.name.c_str());
      return 1;
    }

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += "\"vertices\": " + U64(graph->NumVertices()) + ", ";
    json += "\"edges\": " + U64(graph->NumUndirectedEdges()) + ", ";
    json += StrFormat("\"kmax\": %u,\n", on_result->MaxCore());
    json += "     \"compaction_off\": " + MetricsJson(off_result->metrics) +
            ",\n";
    json += "     \"compaction_on\": " + MetricsJson(on_result->metrics);
    json += "}";
  }
  json += "\n  ],\n  \"expand\": [\n";

  static const ExpandStrategy kStrategies[] = {
      ExpandStrategy::kWarp, ExpandStrategy::kAuto, ExpandStrategy::kThread,
      ExpandStrategy::kBlock};
  first = true;
  for (const DatasetSpec& spec : ExpandRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions base = GpuPeelOptions::Ours();
    base.buffer_capacity = ScaledBufferCapacity(*graph);

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += "\"vertices\": " + U64(graph->NumVertices()) + ", ";
    json += "\"edges\": " + U64(graph->NumUndirectedEdges()) + ", ";

    std::vector<uint32_t> warp_core;
    bool first_strategy = true;
    for (ExpandStrategy strategy : kStrategies) {
      auto result =
          RunGpuPeel(*graph, base.WithExpand(strategy), ScaledP100Options());
      if (!result.ok()) {
        std::fprintf(stderr, "%s expand=%s: %s\n", spec.name.c_str(),
                     ExpandStrategyName(strategy),
                     result.status().ToString().c_str());
        return 1;
      }
      if (strategy == ExpandStrategy::kWarp) {
        warp_core = result->core;
        json += StrFormat("\"kmax\": %u,\n", result->MaxCore());
      } else if (result->core != warp_core) {
        std::fprintf(stderr, "%s: expand=%s core numbers diverge from warp\n",
                     spec.name.c_str(), ExpandStrategyName(strategy));
        return 1;
      }
      if (!first_strategy) json += ",\n";
      first_strategy = false;
      json += StrFormat("     \"expand_%s\": ", ExpandStrategyName(strategy)) +
              MetricsJson(result->metrics);
    }
    json += "}";
  }
  json += "\n  ],\n  \"trace_phases\": [\n";

  first = true;
  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions options = GpuPeelOptions::Ours();
    options.buffer_capacity = ScaledBufferCapacity(*graph);
    sim::DeviceOptions device_options = ScaledP100Options();
    device_options.profile = true;
    sim::Device device(device_options);
    GpuPeelDecomposer decomposer(&device, options);
    auto result = decomposer.Decompose(*graph);
    if (!result.ok()) {
      std::fprintf(stderr, "%s (profiled): %s\n", spec.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    const Trace& trace = device.profiler()->trace();
    const double scan_ms = trace.TotalDurNs(kTraceCatKernel, "scan") / 1e6;
    const double loop_ms = trace.TotalDurNs(kTraceCatKernel, "loop") / 1e6;
    const double compact_ms =
        trace.TotalDurNs(kTraceCatKernel, "compact") / 1e6;
    const Metrics& m = result->metrics;
    if (PhaseMismatch(scan_ms, m.scan_ms) ||
        PhaseMismatch(loop_ms, m.loop_ms) ||
        PhaseMismatch(compact_ms, m.compact_ms)) {
      std::fprintf(stderr,
                   "%s: trace phase totals diverge from Metrics "
                   "(scan %.4f vs %.4f, loop %.4f vs %.4f, "
                   "compact %.4f vs %.4f ms)\n",
                   spec.name.c_str(), scan_ms, m.scan_ms, loop_ms, m.loop_ms,
                   compact_ms, m.compact_ms);
      return 1;
    }

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += "\"trace_events\": " + U64(trace.num_events()) + ", ";
    json += StrFormat("\"scan_ms\": %.4f, ", scan_ms);
    json += StrFormat("\"loop_ms\": %.4f, ", loop_ms);
    json += StrFormat("\"compact_ms\": %.4f, ", compact_ms);
    json += StrFormat("\"modeled_ms\": %.4f", m.modeled_ms);
    json += "}";
  }
  json += "\n  ],\n  \"single_k\": [\n";

  first = true;
  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions options = GpuPeelOptions::Ours();
    options.buffer_capacity = ScaledBufferCapacity(*graph);
    auto full = RunGpuPeel(*graph, options, ScaledP100Options());
    if (!full.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   full.status().ToString().c_str());
      return 1;
    }
    // Query the mid-shell: high enough that most of the graph is pruned,
    // low enough that the core is non-trivial on every roster graph.
    const uint32_t k = std::max<uint32_t>(2, (full->MaxCore() + 1) / 2);
    std::vector<uint8_t> filtered(full->core.size(), 0);
    uint64_t core_size = 0;
    for (size_t v = 0; v < full->core.size(); ++v) {
      filtered[v] = full->core[v] >= k;
      core_size += filtered[v];
    }

    auto direct = RunGpuSingleKCore(*graph, k, options, ScaledP100Options());
    if (!direct.ok()) {
      std::fprintf(stderr, "%s single-k: %s\n", spec.name.c_str(),
                   direct.status().ToString().c_str());
      return 1;
    }
    const SingleKCoreResult cpu = XiangSingleKCore(*graph, k);
    if (direct->in_core != filtered || cpu.in_core != filtered) {
      std::fprintf(stderr,
                   "%s: single-k membership diverges from full-peel filter "
                   "at k=%u\n",
                   spec.name.c_str(), k);
      return 1;
    }

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += StrFormat("\"k\": %u, ", k);
    json += StrFormat("\"kmax\": %u, ", full->MaxCore());
    json += "\"core_size\": " + U64(core_size) + ", ";
    json += StrFormat("\"speedup_vs_full_peel\": %.2f,\n",
                      full->metrics.modeled_ms /
                          std::max(direct->metrics.modeled_ms, 1e-9));
    json += "     \"full_peel_filter\": " + MetricsJson(full->metrics) +
            ",\n";
    json += "     \"gpu_direct\": " + MetricsJson(direct->metrics) + ",\n";
    json += "     \"cpu_xiang\": " + MetricsJson(cpu.metrics);
    json += "}";
  }
  json += "\n  ],\n  \"renumber\": [\n";

  first = true;
  for (const DatasetSpec& spec : ExpandRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions off_options = GpuPeelOptions::Ours();
    off_options.buffer_capacity = ScaledBufferCapacity(*graph);
    auto off = RunGpuPeel(*graph, off_options, ScaledP100Options());
    auto on =
        RunGpuPeel(*graph, off_options.WithRenumber(), ScaledP100Options());
    if (!off.ok() || !on.ok()) {
      std::fprintf(stderr, "%s renumber: %s\n", spec.name.c_str(),
                   (!off.ok() ? off : on).status().ToString().c_str());
      return 1;
    }
    if (on->core != off->core) {
      std::fprintf(stderr, "%s: renumber on/off core numbers diverge\n",
                   spec.name.c_str());
      return 1;
    }

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += StrFormat("\"kmax\": %u,\n", on->MaxCore());
    json += "     \"renumber_off\": " + MetricsJson(off->metrics) + ",\n";
    json += "     \"renumber_on\": " + MetricsJson(on->metrics);
    json += "}";
  }
  json += "\n  ],\n  \"fusion\": [\n";

  first = true;
  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions unfused = GpuPeelOptions::Ours();
    unfused.buffer_capacity = ScaledBufferCapacity(*graph);
    auto off = RunGpuPeel(*graph, unfused, ScaledP100Options());
    auto on = RunGpuPeel(*graph, unfused.WithFusion(), ScaledP100Options());
    if (!off.ok() || !on.ok()) {
      std::fprintf(stderr, "%s fusion: %s\n", spec.name.c_str(),
                   (!off.ok() ? off : on).status().ToString().c_str());
      return 1;
    }
    if (on->core != off->core) {
      std::fprintf(stderr, "%s: fusion on/off core numbers diverge\n",
                   spec.name.c_str());
      return 1;
    }
    const uint64_t before = off->metrics.counters.kernel_launches;
    const uint64_t after = on->metrics.counters.kernel_launches;

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += StrFormat("\"kmax\": %u, ", on->MaxCore());
    json += "\"launches_unfused\": " + U64(before) + ", ";
    json += "\"launches_fused\": " + U64(after) + ", ";
    json += StrFormat(
        "\"launch_reduction_pct\": %.1f,\n",
        before == 0 ? 0.0 : 100.0 * (before - after) / double(before));
    json += "     \"fused_off\": " + MetricsJson(off->metrics) + ",\n";
    json += "     \"fused_on\": " + MetricsJson(on->metrics);
    json += "}";
  }
  json += "\n  ],\n  \"incremental\": ";

  // ---- Seventh section: incremental-maintenance drift guard -------------
  // Re-measures the per-cell mean modeled ms of the incremental sweeps and
  // compares them against the committed BENCH_incremental.json
  // ($KCORE_BENCH_INCREMENTAL_JSON, else ./BENCH_incremental.json). The
  // committed file is produced by bench_incremental; this guard fails the
  // run when any committed cell drifts by more than 15% — regenerate
  // BENCH_incremental.json alongside the change that moved it. Skipped
  // loudly (and recorded in the JSON) when the committed file is absent,
  // e.g. when writing to a scratch directory. The sweeps are deterministic
  // (fixed seeds, modeled time), so an in-tolerance rerun is the normal
  // outcome. This section only checks; the tracked peel numbers above are
  // untouched by it.
  {
    std::string inc_path = "BENCH_incremental.json";
    if (const char* env = std::getenv("KCORE_BENCH_INCREMENTAL_JSON")) {
      inc_path = env;
    }
    std::string committed;
    if (std::FILE* in = std::fopen(inc_path.c_str(), "rb")) {
      char buf[4096];
      size_t got;
      while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        committed.append(buf, got);
      }
      std::fclose(in);
    }
    if (committed.empty()) {
      std::fprintf(stderr,
                   "incremental drift guard: %s not found, skipping\n",
                   inc_path.c_str());
      json += "{\"guard\": \"skipped\", \"reason\": \"no committed file\"}";
    } else {
      // Scan the machine-written committed file for
      //   {"name": "<dataset>", ... "sweeps": [{"batch": N,
      //    "mean_batch_ms": M, ...}, ...]}
      // and re-measure every cell whose dataset is in the (possibly
      // capped) roster.
      const auto find_number = [](const std::string& text, size_t from,
                                  const char* key, size_t until,
                                  double* out) {
        const size_t at = text.find(key, from);
        if (at == std::string::npos || at >= until) return false;
        *out = std::strtod(text.c_str() + at + std::strlen(key), nullptr);
        return true;
      };
      uint64_t cells_checked = 0;
      double max_drift = 0.0;
      bool drifted = false;
      json += "{\"guard\": \"checked\", \"tolerance\": 0.15, \"cells\": [\n";
      bool first_cell = true;
      for (const DatasetSpec& spec : PaperRoster()) {
        const std::string tag = "{\"name\": \"" + spec.name + "\"";
        const size_t entry = committed.find(tag);
        if (entry == std::string::npos) continue;
        const size_t entry_end = committed.find("]}", entry);
        if (entry_end == std::string::npos) continue;
        double committed_edges = 0.0;
        if (find_number(committed, entry, "\"edges\": ", entry_end,
                        &committed_edges) &&
            max_edges != 0 && committed_edges > static_cast<double>(max_edges)) {
          continue;
        }
        auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
        if (!graph.ok()) {
          std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                       graph.status().ToString().c_str());
          return 1;
        }
        size_t cursor = committed.find("\"sweeps\"", entry);
        while (cursor != std::string::npos && cursor < entry_end) {
          const size_t cell = committed.find("{\"batch\": ", cursor);
          if (cell == std::string::npos || cell >= entry_end) break;
          double batch = 0.0;
          double committed_ms = 0.0;
          if (!find_number(committed, cell, "\"batch\": ", entry_end,
                           &batch) ||
              !find_number(committed, cell, "\"mean_batch_ms\": ", entry_end,
                           &committed_ms)) {
            break;
          }
          IncrementalSweepResult sweep;
          const auto batch_size = static_cast<size_t>(batch);
          if (!RunIncrementalSweep(*graph, batch_size, /*full_peel_ms=*/0.0,
                                   500 + batch_size, &sweep)) {
            std::fprintf(stderr, "%s: drift-guard sweep batch=%zu failed\n",
                         spec.name.c_str(), batch_size);
            return 1;
          }
          const double scale = std::max(committed_ms, 1e-6);
          const double drift =
              std::abs(sweep.mean_batch_ms - committed_ms) / scale;
          max_drift = std::max(max_drift, drift);
          ++cells_checked;
          if (drift > 0.15) {
            drifted = true;
            std::fprintf(stderr,
                         "incremental drift: %s batch=%zu committed %.4f ms "
                         "vs measured %.4f ms (%.1f%%)\n",
                         spec.name.c_str(), batch_size, committed_ms,
                         sweep.mean_batch_ms, 100.0 * drift);
          }
          if (!first_cell) json += ",\n";
          first_cell = false;
          json += StrFormat(
              "    {\"name\": \"%s\", \"batch\": %zu, "
              "\"committed_ms\": %.4f, \"measured_ms\": %.4f, "
              "\"drift_pct\": %.1f}",
              spec.name.c_str(), batch_size, committed_ms,
              sweep.mean_batch_ms,
              100.0 * std::abs(sweep.mean_batch_ms - committed_ms) / scale);
          cursor = cell + 1;
        }
      }
      json += StrFormat(
          "\n  ], \"cells_checked\": %llu, \"max_drift_pct\": %.1f}",
          static_cast<unsigned long long>(cells_checked),
          100.0 * max_drift);
      if (drifted) {
        std::fprintf(stderr,
                     "incremental drift guard failed: regenerate "
                     "BENCH_incremental.json (tolerance 15%%)\n");
        return 1;
      }
      std::printf("incremental drift guard: %llu cells within 15%%\n",
                  static_cast<unsigned long long>(cells_checked));
    }
  }
  json += ",\n  \"cluster\": ";

  // ---- Eighth section: simulated-cluster drift guard --------------------
  // Re-measures every committed (dataset, nodes, partition) cell of
  // BENCH_cluster.json and fails on > 15% modeled-ms drift. The cluster
  // clock is deterministic, so an in-tolerance rerun is the normal outcome;
  // regenerate BENCH_cluster.json (bench_cluster) alongside any change that
  // moves it. Check-only, like the incremental guard above.
  {
    std::string cluster_path = "BENCH_cluster.json";
    if (const char* env = std::getenv("KCORE_BENCH_CLUSTER_JSON")) {
      cluster_path = env;
    }
    std::string committed;
    if (std::FILE* in = std::fopen(cluster_path.c_str(), "rb")) {
      char buf[4096];
      size_t got;
      while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        committed.append(buf, got);
      }
      std::fclose(in);
    }
    if (committed.empty()) {
      std::fprintf(stderr, "cluster drift guard: %s not found, skipping\n",
                   cluster_path.c_str());
      json += "{\"guard\": \"skipped\", \"reason\": \"no committed file\"}";
    } else {
      const auto find_number = [](const std::string& text, size_t from,
                                  const char* key, size_t until,
                                  double* out) {
        const size_t at = text.find(key, from);
        if (at == std::string::npos || at >= until) return false;
        *out = std::strtod(text.c_str() + at + std::strlen(key), nullptr);
        return true;
      };
      uint64_t cells_checked = 0;
      double max_drift = 0.0;
      bool drifted = false;
      json += "{\"guard\": \"checked\", \"tolerance\": 0.15, \"cells\": [\n";
      bool first_cell = true;
      for (const DatasetSpec& spec : ClusterRoster()) {
        const std::string tag = "{\"name\": \"" + spec.name + "\"";
        const size_t entry = committed.find(tag);
        if (entry == std::string::npos) continue;
        const size_t entry_end = committed.find("]}", entry);
        if (entry_end == std::string::npos) continue;
        double committed_edges = 0.0;
        if (find_number(committed, entry, "\"edges\": ", entry_end,
                        &committed_edges) &&
            max_edges != 0 &&
            committed_edges > static_cast<double>(max_edges)) {
          continue;
        }
        auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
        if (!graph.ok()) {
          std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                       graph.status().ToString().c_str());
          return 1;
        }
        size_t cursor = committed.find("\"cells\"", entry);
        while (cursor != std::string::npos && cursor < entry_end) {
          const size_t cell = committed.find("{\"nodes\": ", cursor);
          if (cell == std::string::npos || cell >= entry_end) break;
          double nodes = 0.0;
          double committed_ms = 0.0;
          const size_t name_at = committed.find("\"partition\": \"", cell);
          if (!find_number(committed, cell, "\"nodes\": ", entry_end,
                           &nodes) ||
              !find_number(committed, cell, "\"modeled_ms\": ", entry_end,
                           &committed_ms) ||
              name_at == std::string::npos || name_at >= entry_end) {
            break;
          }
          const size_t name_from = name_at + std::strlen("\"partition\": \"");
          const size_t name_to = committed.find('"', name_from);
          const std::string partition_token =
              committed.substr(name_from, name_to - name_from);
          ClusterOptions options;
          options.num_nodes = static_cast<uint32_t>(nodes);
          if (!ParsePartitionStrategy(partition_token, &options.partition)) {
            std::fprintf(stderr,
                         "cluster drift guard: bad partition token \"%s\" "
                         "in %s\n",
                         partition_token.c_str(), cluster_path.c_str());
            return 1;
          }
          auto result = RunClusterPeel(*graph, options);
          if (!result.ok()) {
            std::fprintf(stderr, "%s: drift-guard nodes=%u %s: %s\n",
                         spec.name.c_str(), options.num_nodes,
                         partition_token.c_str(),
                         result.status().ToString().c_str());
            return 1;
          }
          const double measured_ms = result->metrics.modeled_ms;
          const double scale = std::max(committed_ms, 1e-6);
          const double drift = std::abs(measured_ms - committed_ms) / scale;
          max_drift = std::max(max_drift, drift);
          ++cells_checked;
          if (drift > 0.15) {
            drifted = true;
            std::fprintf(stderr,
                         "cluster drift: %s nodes=%u %s committed %.4f ms "
                         "vs measured %.4f ms (%.1f%%)\n",
                         spec.name.c_str(), options.num_nodes,
                         partition_token.c_str(), committed_ms, measured_ms,
                         100.0 * drift);
          }
          if (!first_cell) json += ",\n";
          first_cell = false;
          json += StrFormat(
              "    {\"name\": \"%s\", \"nodes\": %u, \"partition\": \"%s\", "
              "\"committed_ms\": %.4f, \"measured_ms\": %.4f, "
              "\"drift_pct\": %.1f}",
              spec.name.c_str(), options.num_nodes, partition_token.c_str(),
              committed_ms, measured_ms, 100.0 * drift);
          cursor = cell + 1;
        }
      }
      json += StrFormat(
          "\n  ], \"cells_checked\": %llu, \"max_drift_pct\": %.1f}",
          static_cast<unsigned long long>(cells_checked),
          100.0 * max_drift);
      if (drifted) {
        std::fprintf(stderr,
                     "cluster drift guard failed: regenerate "
                     "BENCH_cluster.json (tolerance 15%%)\n");
        return 1;
      }
      std::printf("cluster drift guard: %llu cells within 15%%\n",
                  static_cast<unsigned long long>(cells_checked));
    }
  }
  json += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
