// Regenerates the paper's Table I: the dataset roster with |V|, |E|, d_avg,
// degree std, d_max and k_max, computed from the actual synthetic stand-in
// graphs (paper k_max shown for reference).
#include <cstdio>

#include "bench_support.h"
#include "common/strings.h"
#include "cpu/bz.h"
#include "graph/graph_stats.h"

int main() {
  using namespace kcore;
  using namespace kcore::bench;

  std::printf("=== Table I: Datasets (synthetic 1/400-scale stand-ins) ===\n");
  TablePrinter table({"Dataset", "|V|", "|E|", "davg", "std", "dmax", "kmax",
                      "paper kmax", "Category"});

  const uint64_t max_edges = MaxEdgesFromEnv();
  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;
    const GraphStats stats = ComputeGraphStats(*graph);
    const DecomposeResult bz = RunBz(*graph);
    table.AddRow({spec.name, WithCommas(stats.num_vertices),
                  WithCommas(stats.num_edges),
                  StrFormat("%.1f", stats.avg_degree),
                  StrFormat("%.0f", stats.degree_stddev),
                  WithCommas(stats.max_degree), WithCommas(bz.MaxCore()),
                  WithCommas(spec.paper_kmax), spec.category});
  }
  table.Print();
  std::printf(
      "\nNote: graphs are deterministic synthetic stand-ins (see DESIGN.md);"
      "\nk_max is scaled down with graph size, but the roster preserves the"
      "\npaper's |E| ordering, skew outliers (trackers) and high-k_max rows"
      "\n(indochina-2004, it-2004).\n");
  return 0;
}
