// Regenerates the paper's Table V: peak device (global) memory usage per
// GPU program, from the simulated device's allocation high-watermark.
// "N/A" marks programs that could not complete the dataset (OOM/timeout),
// as in the paper.
#include <cstdio>

#include "bench_support.h"
#include "common/strings.h"
#include "core/gpu_peel.h"
#include "cpu/bz.h"
#include "systems/gswitch.h"
#include "systems/gunrock.h"
#include "systems/medusa.h"
#include "vetga/vetga.h"

int main() {
  using namespace kcore;
  using namespace kcore::bench;

  std::printf("=== Table V: Peak device memory (MB) ===\n");
  TablePrinter table({"Dataset", "Ours", "SM", "VP", "EC", "BC", "VETGA",
                      "Medusa-MPM", "Medusa-Peel", "Gunrock", "GSwitch"});

  const uint64_t max_edges = MaxEdgesFromEnv();

  auto mb = [](uint64_t bytes) {
    return StrFormat("%.1f", static_cast<double>(bytes) / (1 << 20));
  };
  auto cell = [&](const StatusOr<DecomposeResult>& result) -> std::string {
    return result.ok() ? mb(result->metrics.peak_device_bytes) : "N/A";
  };

  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    auto run_variant = [&](GpuPeelOptions options) {
      options.buffer_capacity = ScaledBufferCapacity(*graph);
      return RunGpuPeel(*graph, options, ScaledP100Options());
    };

    SystemConfig system;
    system.device = ScaledP100Options();
    system.modeled_timeout_ms = kScaledHourMs;

    VetgaConfig vetga_config;
    vetga_config.device = ScaledP100Options();
    vetga_config.modeled_timeout_ms = kScaledHourMs;
    const double vetga_load_ms =
        static_cast<double>(graph->NumUndirectedEdges()) *
        vetga_config.load_ns_per_edge / 1e6;

    const uint32_t k_max = RunBz(*graph).MaxCore();
    table.AddRow(
        {spec.name, cell(run_variant(GpuPeelOptions::Ours())),
         cell(run_variant(GpuPeelOptions::Sm())),
         cell(run_variant(GpuPeelOptions::Vp())),
         cell(run_variant(GpuPeelOptions::Ec())),
         cell(run_variant(GpuPeelOptions::Bc())),
         vetga_load_ms > kScaledHourMs
             ? "N/A"
             : cell(RunVetga(*graph, vetga_config)),
         cell(RunMedusaMpm(*graph, system)),
         cell(RunMedusaPeel(*graph, system)),
         cell(RunGunrockKCore(*graph, system)),
         cell(RunGSwitchKCore(*graph, k_max, system))});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §VI): the peeling kernels are the overall"
      "\nwinner (graph + fixed block buffers); VETGA's int64 tensors ~2x;"
      "\nMedusa's per-edge messages + reverse index dominate; Gunrock's"
      "\n|E|-sized frontier buffers exceed GSwitch's single edge auxiliary.\n");
  return 0;
}
