#ifndef KCORE_BENCH_BENCH_SUPPORT_H_
#define KCORE_BENCH_BENCH_SUPPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"

namespace kcore::bench {

/// How one roster dataset is synthesized (the offline stand-ins for the
/// paper's 20 public graphs; see DESIGN.md "Substitutions").
struct GeneratorSpec {
  enum class Kind {
    kBarabasiAlbert,  ///< Collaboration / co-purchase networks.
    kChungLu,         ///< Power-law web/social graphs.
    kHub,             ///< Extreme-skew graphs (wiki-Talk, trackers).
    kErdosRenyi,      ///< Low-variance graphs (patentcite, hollywood).
    kSkewed,          ///< Power-law tail + mega-hubs (expansion benchmarks).
  };
  Kind kind = Kind::kChungLu;
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;   ///< Background edges (ChungLu / ER / hub extra).
  uint32_t ba_edges_per_vertex = 0;
  double chung_lu_exponent = 2.3;
  uint32_t hub_count = 0;
  uint32_t hub_degree = 0;  ///< Spokes per mega-hub (kSkewed only).
  /// Planted dense community lifting k_max to web-crawl levels (0 = none).
  uint32_t planted_core_size = 0;
  double planted_density = 0.0;
  uint64_t seed = 1;
};

/// One row of the Table I roster.
struct DatasetSpec {
  std::string name;      ///< Paper dataset name (amazon0601, it-2004, ...).
  std::string category;  ///< Paper's category column.
  uint32_t paper_kmax;   ///< The paper's measured k_max (for reference).
  GeneratorSpec generator;
};

/// The 20-dataset roster in the paper's Table I order (ascending |E|).
const std::vector<DatasetSpec>& PaperRoster();

/// Extra datasets for the loop-phase expansion benchmarks (DESIGN.md §8) —
/// not part of the paper's Table I, so the Table II-V reproductions stay
/// byte-stable. Skewed power-law graphs: degree-1-4 tails plus mega-hubs.
const std::vector<DatasetSpec>& ExpandRoster();

/// Datasets for the simulated-cluster benchmarks (DESIGN.md §14) — also
/// kept out of PaperRoster so Table II-V stay byte-stable. A quick
/// power-law warm-up, a mega-hub skew graph where partition strategies
/// separate, and a billion-edge-class stand-in (twitter-2010's ~1.5B
/// directed edges at the repo's ~1/400 scale).
const std::vector<DatasetSpec>& ClusterRoster();

/// Generates `spec` (or loads it from the binary cache in `cache_dir`,
/// writing the cache on first generation). Deterministic per spec.
StatusOr<CsrGraph> LoadOrGenerateDataset(const DatasetSpec& spec,
                                         const std::string& cache_dir);

/// Default cache directory (`<repo>/data`, overridable via KCORE_DATA_DIR).
std::string DefaultCacheDir();

/// Benchmark-wide environment knobs.
///  KCORE_BENCH_MAX_EDGES: skip roster datasets above this |E| (0 = all).
///  KCORE_BENCH_REPS: repetitions for avg/std columns (default 3).
uint64_t MaxEdgesFromEnv();
uint32_t RepsFromEnv(uint32_t default_reps);

/// The miniature P100: the paper's 16 GB device scaled by the ~1/400
/// dataset scale (40 MB), which reproduces Table III/V's OOM pattern.
sim::DeviceOptions ScaledP100Options();

/// Per-block buffer capacity for the peeling kernels, scaled with the graph
/// (the paper fixes 1M IDs/block on full-size graphs; the miniature roster
/// scales it so Table V's footprint comparisons stay meaningful).
uint64_t ScaledBufferCapacity(const CsrGraph& graph);

/// Modeled-time budget standing in for the paper's 1-hour cutoff, scaled
/// like the datasets (3600 s / 400).
inline constexpr double kScaledHourMs = 9000.0;

/// One (dataset, batch-size) incremental-maintenance sweep's aggregates,
/// shared by bench_incremental (which writes BENCH_incremental.json) and
/// bench_perf_json's drift guard (which re-measures and compares).
struct IncrementalSweepResult {
  double mean_batch_ms = 0.0;
  double updates_per_sec = 0.0;
  double mean_affected = 0.0;
  /// Mean fraction of the directed edge mass incident to the affected
  /// region — the measured "batch touched x% of edges".
  double touched_edge_share = 0.0;
  double speedup = 0.0;
  uint64_t full_repeels = 0;
  uint64_t compactions = 0;
};

/// Batches per incremental sweep (fixed so re-measured cells are
/// bit-comparable with the committed BENCH_incremental.json).
inline constexpr int kIncrementalBatchesPerSweep = 5;

/// One incremental sweep: fresh IncrementalCoreEngine over `graph`, a
/// seeded stream of kIncrementalBatchesPerSweep mixed insert/delete batches
/// of `batch_size`, then a bit-exact verify of the final coreness against a
/// fresh BZ of the engine's current graph. Deterministic per (graph, seed,
/// batch_size). Returns false (with a stderr diagnostic) on any failure.
bool RunIncrementalSweep(const CsrGraph& graph, size_t batch_size,
                         double full_peel_ms, uint64_t seed,
                         IncrementalSweepResult* out);

/// Table III/IV cell formatting: a time in ms, or the paper's special
/// markers.
std::string FormatCellMs(double ms);
inline const char* kCellOom = "OOM";
inline const char* kCellTimeout = "> 1hr*";
inline const char* kCellLoadTimeout = "LD > 1hr*";

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Renders the table to stdout with a separator under the header.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kcore::bench

#endif  // KCORE_BENCH_BENCH_SUPPORT_H_
