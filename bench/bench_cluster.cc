// Machine-readable simulated-cluster harness: sweeps the ClusterRoster over
// node counts x partition strategies and writes BENCH_cluster.json so the
// distributed engine's modeled-time trajectory can be tracked across PRs by
// diffing the committed file.
//
// Each cell runs RunClusterPeel under the default interconnect model (5 us
// link latency, 10 GB/s links) and reports modeled ms, the comm slice
// (comm_ms, bytes on wire, aggregated messages), the comm/compute ratio,
// and the partition's static shape (cut edges, edge-mass balance ratio).
// nodes=1 runs once (no border, no network) as the per-graph baseline;
// multi-node rows sweep all three strategies. Every cell's coreness is
// verified bit-for-bit against one BZ run of the same graph — a bench run
// that drifts from the oracle exits nonzero rather than writing numbers.
//
// The acceptance gate: on the skewed roster graph (cluster-skew, mega-hubs
// over a power-law tail) at the widest node count, at least one of the
// degree-balanced / edge-cut strategies must beat contiguous on modeled ms
// — the separation the partitioners exist for.
//
// Output path: argv[1] if given, else $KCORE_BENCH_JSON_PATH, else
// ./BENCH_cluster.json. Respects KCORE_BENCH_MAX_EDGES.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support.h"
#include "cluster/cluster_peel.h"
#include "cluster/partition.h"
#include "common/strings.h"
#include "cpu/bz.h"

namespace {

using namespace kcore;
using namespace kcore::bench;

constexpr uint32_t kNodeCounts[] = {1, 2, 4};

std::string U64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_cluster.json";
  if (argc > 1) {
    path = argv[1];
  } else if (const char* env = std::getenv("KCORE_BENCH_JSON_PATH")) {
    path = env;
  }
  const uint64_t max_edges = MaxEdgesFromEnv();
  const NetworkOptions network;  // The default interconnect model.

  std::string json = "{\n  \"bench\": \"cluster\",\n";
  json += StrFormat("  \"network\": {\"link_latency_us\": %.1f, "
                    "\"link_bandwidth_gbps\": %.1f},\n",
                    network.link_latency_us, network.link_bandwidth_gbps);
  json += "  \"datasets\": [\n";

  TablePrinter table({"dataset", "nodes", "partition", "modeled_ms",
                      "comm_ms", "comm/compute", "bytes", "msgs", "cut",
                      "balance"});

  bool first = true;
  bool separation_checked = false;
  for (const DatasetSpec& spec : ClusterRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    const DecomposeResult oracle = RunBz(*graph);

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += "\"vertices\": " + U64(graph->NumVertices()) + ", ";
    json += "\"edges\": " + U64(graph->NumUndirectedEdges()) + ", ";
    json += StrFormat("\"k_max\": %u,\n", oracle.MaxCore());
    json += "     \"cells\": [";

    // The skewed separation gate compares strategies at the widest sweep
    // point.
    double skew_contiguous_ms = 0.0;
    double skew_best_other_ms = 0.0;

    bool first_cell = true;
    for (uint32_t nodes : kNodeCounts) {
      for (PartitionStrategy strategy : AllPartitionStrategies()) {
        // One node admits no border traffic, so the strategies only move
        // which vertices sit on which device slice; keep the contiguous
        // cell as the baseline row.
        if (nodes == 1 && strategy != PartitionStrategy::kContiguous) {
          continue;
        }
        auto partition = BuildPartition(*graph, strategy, nodes);
        if (!partition.ok()) {
          std::fprintf(stderr, "%s: partition: %s\n", spec.name.c_str(),
                       partition.status().ToString().c_str());
          return 1;
        }

        ClusterOptions options;
        options.num_nodes = nodes;
        options.partition = strategy;
        options.network = network;
        auto result = RunClusterPeel(*graph, options);
        if (!result.ok()) {
          std::fprintf(stderr, "%s: nodes=%u %s: %s\n", spec.name.c_str(),
                       nodes, PartitionStrategyName(strategy),
                       result.status().ToString().c_str());
          return 1;
        }
        if (result->core != oracle.core) {
          std::fprintf(stderr,
                       "%s: nodes=%u %s: coreness drifted from the BZ "
                       "oracle\n",
                       spec.name.c_str(), nodes,
                       PartitionStrategyName(strategy));
          return 1;
        }

        const Metrics& m = result->metrics;
        const double compute_ms = m.modeled_ms - m.comm_ms;
        const double ratio = compute_ms > 0.0 ? m.comm_ms / compute_ms : 0.0;
        if (spec.name == "cluster-skew" && nodes == kNodeCounts[2]) {
          if (strategy == PartitionStrategy::kContiguous) {
            skew_contiguous_ms = m.modeled_ms;
          } else if (skew_best_other_ms == 0.0 ||
                     m.modeled_ms < skew_best_other_ms) {
            skew_best_other_ms = m.modeled_ms;
          }
        }

        if (!first_cell) json += ",\n               ";
        first_cell = false;
        json += StrFormat(
            "{\"nodes\": %u, \"partition\": \"%s\", "
            "\"modeled_ms\": %.4f, \"comm_ms\": %.4f, "
            "\"comm_compute_ratio\": %.3f, \"comm_bytes\": %llu, "
            "\"comm_messages\": %llu, \"sub_rounds\": %u, "
            "\"cut_edges\": %llu, \"balance_ratio\": %.3f}",
            nodes, PartitionStrategyName(strategy), m.modeled_ms, m.comm_ms,
            ratio, static_cast<unsigned long long>(m.comm_bytes),
            static_cast<unsigned long long>(m.comm_messages), m.iterations,
            static_cast<unsigned long long>(partition->total_cut_edges),
            partition->BalanceRatio());
        table.AddRow({spec.name, U64(nodes), PartitionStrategyName(strategy),
                      StrFormat("%.4f", m.modeled_ms),
                      StrFormat("%.4f", m.comm_ms), StrFormat("%.3f", ratio),
                      U64(m.comm_bytes), U64(m.comm_messages),
                      U64(partition->total_cut_edges),
                      StrFormat("%.3f", partition->BalanceRatio())});
      }
    }
    json += "]}";

    if (skew_contiguous_ms > 0.0 && skew_best_other_ms > 0.0) {
      separation_checked = true;
      if (skew_best_other_ms >= skew_contiguous_ms) {
        std::fprintf(stderr,
                     "acceptance gate failed: no strategy beat contiguous "
                     "on cluster-skew at %u nodes (contiguous %.4f ms, best "
                     "other %.4f ms)\n",
                     kNodeCounts[2], skew_contiguous_ms, skew_best_other_ms);
        return 1;
      }
      std::fprintf(stderr,
                   "separation gate ok: cluster-skew@%u contiguous %.4f ms "
                   "vs best other %.4f ms\n",
                   kNodeCounts[2], skew_contiguous_ms, skew_best_other_ms);
    }
    std::fprintf(stderr, "%s done\n", spec.name.c_str());
  }
  json += "\n  ]\n}\n";

  table.Print();
  if (!separation_checked && max_edges == 0) {
    std::fprintf(stderr, "acceptance gate failed: cluster-skew never ran\n");
    return 1;
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}
