// Micro-benchmark: the three warp-scan algorithms of paper Fig. 8 plus the
// two-stage block scan of Fig. 9, on host execution of the simulated
// primitives. Wall time here tracks simulated instruction counts, so the
// relative ordering mirrors the paper's discussion (HS beats Blelloch at
// warp width; ballot scan beats both for 0/1 flags; block scan pays
// multi-stage overhead).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "cusim/block.h"
#include "cusim/warp_scan.h"

namespace kcore::sim {
namespace {

void FillRandom(uint32_t* values, size_t count, uint64_t seed,
                uint32_t bound) {
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    values[i] = static_cast<uint32_t>(rng.UniformInt(bound));
  }
}

void BM_HillisSteeleWarpScan(benchmark::State& state) {
  uint32_t values[kWarpSize];
  PerfCounters counters;
  uint64_t seed = 1;
  for (auto _ : state) {
    FillRandom(values, kWarpSize, seed++, 64);
    HillisSteeleInclusiveScan(values, counters);
    benchmark::DoNotOptimize(values[kWarpSize - 1]);
  }
  state.counters["sim_steps_per_scan"] =
      static_cast<double>(counters.scan_steps) / state.iterations();
}
BENCHMARK(BM_HillisSteeleWarpScan);

void BM_BlellochWarpScan(benchmark::State& state) {
  uint32_t values[kWarpSize];
  PerfCounters counters;
  uint64_t seed = 1;
  for (auto _ : state) {
    FillRandom(values, kWarpSize, seed++, 64);
    benchmark::DoNotOptimize(BlellochExclusiveScan(values, counters));
  }
  state.counters["sim_steps_per_scan"] =
      static_cast<double>(counters.scan_steps) / state.iterations();
}
BENCHMARK(BM_BlellochWarpScan);

void BM_BallotWarpScan(benchmark::State& state) {
  uint32_t flags[kWarpSize];
  uint32_t exclusive[kWarpSize];
  PerfCounters counters;
  WarpCtx warp(0, 1, &counters);
  uint64_t seed = 1;
  for (auto _ : state) {
    FillRandom(flags, kWarpSize, seed++, 2);
    benchmark::DoNotOptimize(BallotExclusiveScan(warp, flags, exclusive));
  }
  state.counters["sim_steps_per_scan"] =
      static_cast<double>(counters.scan_steps) / state.iterations();
}
BENCHMARK(BM_BallotWarpScan);

void BM_BlockScan(benchmark::State& state) {
  const auto warps = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> flags(warps * kWarpSize);
  std::vector<uint32_t> exclusive(flags.size());
  uint64_t seed = 1;
  for (auto _ : state) {
    BlockCtx block(0, 1, warps * kWarpSize, 48 << 10);
    FillRandom(flags.data(), flags.size(), seed++, 2);
    benchmark::DoNotOptimize(
        BlockExclusiveScan(block, flags.data(), exclusive.data()));
  }
}
BENCHMARK(BM_BlockScan)->Arg(2)->Arg(8)->Arg(32);

void BM_BlockBallotScan(benchmark::State& state) {
  const auto warps = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> flags(warps * kWarpSize);
  std::vector<uint32_t> exclusive(flags.size());
  uint64_t seed = 1;
  for (auto _ : state) {
    BlockCtx block(0, 1, warps * kWarpSize, 48 << 10);
    FillRandom(flags.data(), flags.size(), seed++, 2);
    benchmark::DoNotOptimize(
        BlockBallotExclusiveScan(block, flags.data(), exclusive.data()));
  }
}
BENCHMARK(BM_BlockBallotScan)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace kcore::sim

BENCHMARK_MAIN();
