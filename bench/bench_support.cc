#include "bench_support.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/random.h"
#include "common/strings.h"
#include "core/gpu_peel.h"
#include "core/incremental_core.h"
#include "cpu/bz.h"
#include "generators/generators.h"
#include "graph/edge_update.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace kcore::bench {

namespace {

GeneratorSpec Ba(uint32_t v, uint32_t m, uint32_t core, double density,
                 uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kBarabasiAlbert;
  g.num_vertices = v;
  g.ba_edges_per_vertex = m;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Cl(uint32_t v, uint64_t e, double exponent, uint32_t core,
                 double density, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kChungLu;
  g.num_vertices = v;
  g.num_edges = e;
  g.chung_lu_exponent = exponent;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Hub(uint32_t v, uint32_t hubs, uint64_t background,
                  uint32_t core, double density, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kHub;
  g.num_vertices = v;
  g.hub_count = hubs;
  g.num_edges = background;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Er(uint32_t v, uint64_t e, uint32_t core, double density,
                 uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kErdosRenyi;
  g.num_vertices = v;
  g.num_edges = e;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Skew(uint32_t v, uint64_t tail, double exponent, uint32_t hubs,
                   uint32_t hub_degree, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kSkewed;
  g.num_vertices = v;
  g.num_edges = tail;
  g.chung_lu_exponent = exponent;
  g.hub_count = hubs;
  g.hub_degree = hub_degree;
  g.seed = seed;
  return g;
}

}  // namespace

const std::vector<DatasetSpec>& PaperRoster() {
  // ~1/400-scale stand-ins, ordered by |E| like Table I. Generators are
  // chosen per category: BA for co-purchase/collaboration, hub graphs for
  // the extreme-skew rows (wiki-Talk, trackers), ER for the low-variance
  // rows (patentcite, hollywood), Chung-Lu power-law + a planted dense
  // community (raising k_max) for web crawls.
  static const std::vector<DatasetSpec>* roster = new std::vector<DatasetSpec>{
      {"amazon0601", "Co-purchasing", 10, Ba(1008, 8, 0, 0, 101)},
      {"wiki-Talk", "Communication", 131, Hub(5986, 40, 1500, 0, 0, 102)},
      {"web-Google", "Web Graph", 44, Cl(2189, 11500, 2.5, 30, 0.6, 103)},
      {"web-BerkStan", "Web Graph", 201, Cl(1713, 17000, 2.2, 80, 0.6, 104)},
      {"as-Skitter", "Internet Topology", 111,
       Cl(4241, 26800, 2.3, 55, 0.6, 105)},
      {"patentcite", "Citation Network", 64, Er(9437, 41000, 30, 0.6, 106)},
      {"in-2004", "Web Graph", 488, Cl(3457, 35500, 2.2, 150, 0.6, 107)},
      {"dblp-author", "Collaboration", 14, Ba(14060, 4, 18, 0.9, 108)},
      {"wb-edu", "Web Graph", 448, Cl(24614, 133000, 2.3, 180, 0.6, 109)},
      {"soc-LiveJournal1", "Social Network", 372,
       Cl(12118, 165000, 2.4, 150, 0.65, 110)},
      {"wikipedia-link-de", "Web Graph", 837,
       Cl(9009, 223000, 2.15, 230, 0.7, 111)},
      {"hollywood-2009", "Collaboration", 2208,
       Er(2849, 215000, 420, 0.8, 112)},
      {"com-Orkut", "Social Network", 253,
       Cl(7681, 282000, 2.6, 170, 0.75, 113)},
      {"trackers", "Web Graph", 438, Hub(69164, 60, 200000, 140, 0.75, 114)},
      {"indochina-2004", "Web Graph", 6869,
       Cl(18537, 360000, 2.2, 560, 0.8, 115)},
      {"uk-2002", "Web Graph", 943, Cl(46301, 718000, 2.3, 300, 0.6, 116)},
      {"arabic-2005", "Web Graph", 3247,
       Cl(56860, 1530000, 2.25, 460, 0.7, 117)},
      {"uk-2005", "Web Graph", 588,
       Cl(98650, 2320000, 2.35, 240, 0.65, 118)},
      {"webbase-2001", "Web Graph", 1506,
       Cl(295355, 2510000, 2.4, 380, 0.6, 119)},
      {"it-2004", "Web Graph", 3224,
       Cl(103229, 2740000, 2.3, 640, 0.7, 120)},
  };
  return *roster;
}

const std::vector<DatasetSpec>& ExpandRoster() {
  // Skewed stand-ins for the hub-dominated crawls where one-warp-per-vertex
  // expansion stalls: ~75k-edge tails of degree 1-4 under a handful of
  // mega-hubs whose adjacencies clear the default block_expand_threshold.
  static const std::vector<DatasetSpec>* roster = new std::vector<DatasetSpec>{
      {"skew-hub", "Synthetic (skew)", 0, Skew(60000, 45000, 2.6, 4, 8000, 201)},
      {"skew-tail", "Synthetic (skew)", 0, Skew(120000, 90000, 2.8, 2, 6000, 202)},
  };
  return *roster;
}

const std::vector<DatasetSpec>& ClusterRoster() {
  // The cluster engine's own roster (bench_cluster). web-BerkStan reuses
  // the Table I spec (and its cache) as the quick warm-up row;
  // cluster-skew's mega-hubs are where contiguous ranges lose to the
  // degree-balanced and edge-cut partitioners; twitter-2010 is the
  // billion-edge-class row — 1.5B directed edges scaled by the repo's
  // ~1/400 to ~3.75M.
  static const std::vector<DatasetSpec>* roster = new std::vector<DatasetSpec>{
      {"web-BerkStan", "Web Graph", 201, Cl(1713, 17000, 2.2, 80, 0.6, 104)},
      {"cluster-skew", "Synthetic (skew)", 0,
       Skew(80000, 60000, 2.6, 6, 9000, 301)},
      {"twitter-2010", "Social Network (1B-class)", 2488,
       Cl(130000, 3750000, 2.3, 420, 0.65, 302)},
  };
  return *roster;
}

StatusOr<CsrGraph> LoadOrGenerateDataset(const DatasetSpec& spec,
                                         const std::string& cache_dir) {
  const std::string path = cache_dir + "/" + spec.name + ".csr";
  if (auto cached = LoadCsrBinary(path); cached.ok()) {
    return std::move(cached).value();
  }

  const GeneratorSpec& g = spec.generator;
  EdgeList edges;
  switch (g.kind) {
    case GeneratorSpec::Kind::kBarabasiAlbert:
      edges = GenerateBarabasiAlbert(g.num_vertices, g.ba_edges_per_vertex,
                                     g.seed);
      break;
    case GeneratorSpec::Kind::kChungLu:
      edges = GenerateChungLuPowerLaw(g.num_vertices, g.num_edges,
                                      g.chung_lu_exponent, g.seed);
      break;
    case GeneratorSpec::Kind::kHub: {
      HubGraphOptions hub;
      hub.num_vertices = g.num_vertices;
      hub.num_hubs = g.hub_count;
      hub.spokes_per_vertex = 2;
      hub.background_edges = g.num_edges;
      edges = GenerateHubGraph(hub, g.seed);
      break;
    }
    case GeneratorSpec::Kind::kErdosRenyi:
      edges = GenerateErdosRenyi(g.num_vertices, g.num_edges, g.seed);
      break;
    case GeneratorSpec::Kind::kSkewed: {
      SkewedPowerLawOptions skew;
      skew.num_vertices = g.num_vertices;
      skew.tail_edges = g.num_edges;
      skew.exponent = g.chung_lu_exponent;
      skew.num_hubs = g.hub_count;
      skew.hub_degree = g.hub_degree;
      edges = GenerateSkewedPowerLaw(skew, g.seed);
      break;
    }
  }
  if (g.planted_core_size != 0) {
    PlantedCoreOptions planted;
    planted.core_size = g.planted_core_size;
    planted.core_density = g.planted_density;
    edges = OverlayPlantedCore(std::move(edges), g.num_vertices, planted,
                               g.seed * 7919);
  }
  CsrGraph graph =
      BuildUndirectedGraphWithVertexCount(edges, g.num_vertices);

  // Cache for subsequent bench binaries (best effort).
  ::mkdir(cache_dir.c_str(), 0755);
  const Status save = SaveCsrBinary(graph, path);
  if (!save.ok()) {
    std::fprintf(stderr, "warning: could not cache %s: %s\n", path.c_str(),
                 save.ToString().c_str());
  }
  return graph;
}

std::string DefaultCacheDir() {
  if (const char* env = std::getenv("KCORE_DATA_DIR"); env != nullptr) {
    return env;
  }
  return "data";
}

uint64_t MaxEdgesFromEnv() {
  if (const char* env = std::getenv("KCORE_BENCH_MAX_EDGES");
      env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

uint32_t RepsFromEnv(uint32_t default_reps) {
  if (const char* env = std::getenv("KCORE_BENCH_REPS"); env != nullptr) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed >= 1) return static_cast<uint32_t>(parsed);
  }
  return default_reps;
}

uint64_t ScaledBufferCapacity(const CsrGraph& graph) {
  return std::max<uint64_t>(4096, graph.NumVertices() / 16);
}

namespace {

/// Host mirror of the engine's committed edge set; generates batches valid
/// under sequential semantics (mixed ~50/50 insert/delete).
class EdgeMirror {
 public:
  explicit EdgeMirror(const CsrGraph& g) : n_(g.NumVertices()) {
    for (VertexId v = 0; v < n_; ++v) {
      for (VertexId u : g.Neighbors(v)) {
        if (v < u) edges_.insert({v, u});
      }
    }
  }

  UpdateBatch NextBatch(Rng& rng, size_t size) {
    UpdateBatch batch;
    while (batch.size() < size) {
      const auto a = static_cast<VertexId>(rng.UniformInt(n_));
      const auto b = static_cast<VertexId>(rng.UniformInt(n_));
      if (a == b) continue;
      const auto key = std::minmax(a, b);
      if (edges_.count({key.first, key.second}) != 0) {
        batch.push_back(EdgeUpdate::Remove(a, b));
        edges_.erase({key.first, key.second});
      } else {
        batch.push_back(EdgeUpdate::Insert(a, b));
        edges_.insert({key.first, key.second});
      }
    }
    return batch;
  }

 private:
  VertexId n_;
  std::set<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace

bool RunIncrementalSweep(const CsrGraph& graph, size_t batch_size,
                         double full_peel_ms, uint64_t seed,
                         IncrementalSweepResult* out) {
  IncrementalOptions options;
  options.repeel = GpuPeelOptions::Ours();
  options.repeel.buffer_capacity = ScaledBufferCapacity(graph);
  // The maintenance engine keeps the delta overlay, stamp arrays, and
  // worklists resident next to the CSR — roughly twice the static peeler's
  // footprint — so the largest roster rows need the scale model of a
  // 2-device serving budget. Memory capacity does not enter the timing
  // model, only allocation success.
  sim::DeviceOptions device = ScaledP100Options();
  device.global_mem_bytes *= 2;
  auto engine = IncrementalCoreEngine::Create(graph, options, device);
  if (!engine.ok()) {
    std::fprintf(stderr, "Create: %s\n", engine.status().ToString().c_str());
    return false;
  }
  EdgeMirror mirror(graph);
  Rng rng(seed);
  double total_ms = 0.0;
  uint64_t total_affected = 0;
  uint64_t total_affected_edges = 0;
  for (int i = 0; i < kIncrementalBatchesPerSweep; ++i) {
    const UpdateBatch batch = mirror.NextBatch(rng, batch_size);
    auto result = (*engine)->ApplyUpdates(batch);
    if (!result.ok()) {
      std::fprintf(stderr, "batch %d: %s\n", i,
                   result.status().ToString().c_str());
      return false;
    }
    total_ms += result->metrics.modeled_ms;
    total_affected += result->affected;
    total_affected_edges += result->affected_edges;
    if (result->full_repeel) ++out->full_repeels;
    if (result->compacted) ++out->compactions;
  }
  if ((*engine)->core() != RunBz((*engine)->CurrentGraph()).core) {
    std::fprintf(stderr, "final coreness diverged from the BZ oracle\n");
    return false;
  }
  out->mean_batch_ms = total_ms / kIncrementalBatchesPerSweep;
  out->updates_per_sec =
      out->mean_batch_ms > 0.0
          ? static_cast<double>(batch_size) / (out->mean_batch_ms / 1000.0)
          : 0.0;
  out->mean_affected =
      static_cast<double>(total_affected) / kIncrementalBatchesPerSweep;
  out->touched_edge_share =
      static_cast<double>(total_affected_edges) /
      (static_cast<double>(kIncrementalBatchesPerSweep) *
       static_cast<double>(graph.NumDirectedEdges()));
  out->speedup =
      out->mean_batch_ms > 0.0 ? full_peel_ms / out->mean_batch_ms : 0.0;
  return true;
}

sim::DeviceOptions ScaledP100Options() {
  sim::DeviceOptions options;
  options.global_mem_bytes = 40ull << 20;  // 16 GB / 400
  options.num_sms = 108;
  return options;
}

std::string FormatCellMs(double ms) {
  if (ms >= 100) return StrFormat("%.0f", ms);
  if (ms >= 1) return StrFormat("%.1f", ms);
  return StrFormat("%.3f", ms);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::printf("%s%-*s", i == 0 ? "" : "  ",
                  static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = widths.empty() ? 0 : 2 * (widths.size() - 1);
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace kcore::bench
