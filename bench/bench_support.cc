#include "bench_support.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace kcore::bench {

namespace {

GeneratorSpec Ba(uint32_t v, uint32_t m, uint32_t core, double density,
                 uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kBarabasiAlbert;
  g.num_vertices = v;
  g.ba_edges_per_vertex = m;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Cl(uint32_t v, uint64_t e, double exponent, uint32_t core,
                 double density, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kChungLu;
  g.num_vertices = v;
  g.num_edges = e;
  g.chung_lu_exponent = exponent;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Hub(uint32_t v, uint32_t hubs, uint64_t background,
                  uint32_t core, double density, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kHub;
  g.num_vertices = v;
  g.hub_count = hubs;
  g.num_edges = background;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Er(uint32_t v, uint64_t e, uint32_t core, double density,
                 uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kErdosRenyi;
  g.num_vertices = v;
  g.num_edges = e;
  g.planted_core_size = core;
  g.planted_density = density;
  g.seed = seed;
  return g;
}

GeneratorSpec Skew(uint32_t v, uint64_t tail, double exponent, uint32_t hubs,
                   uint32_t hub_degree, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorSpec::Kind::kSkewed;
  g.num_vertices = v;
  g.num_edges = tail;
  g.chung_lu_exponent = exponent;
  g.hub_count = hubs;
  g.hub_degree = hub_degree;
  g.seed = seed;
  return g;
}

}  // namespace

const std::vector<DatasetSpec>& PaperRoster() {
  // ~1/400-scale stand-ins, ordered by |E| like Table I. Generators are
  // chosen per category: BA for co-purchase/collaboration, hub graphs for
  // the extreme-skew rows (wiki-Talk, trackers), ER for the low-variance
  // rows (patentcite, hollywood), Chung-Lu power-law + a planted dense
  // community (raising k_max) for web crawls.
  static const std::vector<DatasetSpec>* roster = new std::vector<DatasetSpec>{
      {"amazon0601", "Co-purchasing", 10, Ba(1008, 8, 0, 0, 101)},
      {"wiki-Talk", "Communication", 131, Hub(5986, 40, 1500, 0, 0, 102)},
      {"web-Google", "Web Graph", 44, Cl(2189, 11500, 2.5, 30, 0.6, 103)},
      {"web-BerkStan", "Web Graph", 201, Cl(1713, 17000, 2.2, 80, 0.6, 104)},
      {"as-Skitter", "Internet Topology", 111,
       Cl(4241, 26800, 2.3, 55, 0.6, 105)},
      {"patentcite", "Citation Network", 64, Er(9437, 41000, 30, 0.6, 106)},
      {"in-2004", "Web Graph", 488, Cl(3457, 35500, 2.2, 150, 0.6, 107)},
      {"dblp-author", "Collaboration", 14, Ba(14060, 4, 18, 0.9, 108)},
      {"wb-edu", "Web Graph", 448, Cl(24614, 133000, 2.3, 180, 0.6, 109)},
      {"soc-LiveJournal1", "Social Network", 372,
       Cl(12118, 165000, 2.4, 150, 0.65, 110)},
      {"wikipedia-link-de", "Web Graph", 837,
       Cl(9009, 223000, 2.15, 230, 0.7, 111)},
      {"hollywood-2009", "Collaboration", 2208,
       Er(2849, 215000, 420, 0.8, 112)},
      {"com-Orkut", "Social Network", 253,
       Cl(7681, 282000, 2.6, 170, 0.75, 113)},
      {"trackers", "Web Graph", 438, Hub(69164, 60, 200000, 140, 0.75, 114)},
      {"indochina-2004", "Web Graph", 6869,
       Cl(18537, 360000, 2.2, 560, 0.8, 115)},
      {"uk-2002", "Web Graph", 943, Cl(46301, 718000, 2.3, 300, 0.6, 116)},
      {"arabic-2005", "Web Graph", 3247,
       Cl(56860, 1530000, 2.25, 460, 0.7, 117)},
      {"uk-2005", "Web Graph", 588,
       Cl(98650, 2320000, 2.35, 240, 0.65, 118)},
      {"webbase-2001", "Web Graph", 1506,
       Cl(295355, 2510000, 2.4, 380, 0.6, 119)},
      {"it-2004", "Web Graph", 3224,
       Cl(103229, 2740000, 2.3, 640, 0.7, 120)},
  };
  return *roster;
}

const std::vector<DatasetSpec>& ExpandRoster() {
  // Skewed stand-ins for the hub-dominated crawls where one-warp-per-vertex
  // expansion stalls: ~75k-edge tails of degree 1-4 under a handful of
  // mega-hubs whose adjacencies clear the default block_expand_threshold.
  static const std::vector<DatasetSpec>* roster = new std::vector<DatasetSpec>{
      {"skew-hub", "Synthetic (skew)", 0, Skew(60000, 45000, 2.6, 4, 8000, 201)},
      {"skew-tail", "Synthetic (skew)", 0, Skew(120000, 90000, 2.8, 2, 6000, 202)},
  };
  return *roster;
}

StatusOr<CsrGraph> LoadOrGenerateDataset(const DatasetSpec& spec,
                                         const std::string& cache_dir) {
  const std::string path = cache_dir + "/" + spec.name + ".csr";
  if (auto cached = LoadCsrBinary(path); cached.ok()) {
    return std::move(cached).value();
  }

  const GeneratorSpec& g = spec.generator;
  EdgeList edges;
  switch (g.kind) {
    case GeneratorSpec::Kind::kBarabasiAlbert:
      edges = GenerateBarabasiAlbert(g.num_vertices, g.ba_edges_per_vertex,
                                     g.seed);
      break;
    case GeneratorSpec::Kind::kChungLu:
      edges = GenerateChungLuPowerLaw(g.num_vertices, g.num_edges,
                                      g.chung_lu_exponent, g.seed);
      break;
    case GeneratorSpec::Kind::kHub: {
      HubGraphOptions hub;
      hub.num_vertices = g.num_vertices;
      hub.num_hubs = g.hub_count;
      hub.spokes_per_vertex = 2;
      hub.background_edges = g.num_edges;
      edges = GenerateHubGraph(hub, g.seed);
      break;
    }
    case GeneratorSpec::Kind::kErdosRenyi:
      edges = GenerateErdosRenyi(g.num_vertices, g.num_edges, g.seed);
      break;
    case GeneratorSpec::Kind::kSkewed: {
      SkewedPowerLawOptions skew;
      skew.num_vertices = g.num_vertices;
      skew.tail_edges = g.num_edges;
      skew.exponent = g.chung_lu_exponent;
      skew.num_hubs = g.hub_count;
      skew.hub_degree = g.hub_degree;
      edges = GenerateSkewedPowerLaw(skew, g.seed);
      break;
    }
  }
  if (g.planted_core_size != 0) {
    PlantedCoreOptions planted;
    planted.core_size = g.planted_core_size;
    planted.core_density = g.planted_density;
    edges = OverlayPlantedCore(std::move(edges), g.num_vertices, planted,
                               g.seed * 7919);
  }
  CsrGraph graph =
      BuildUndirectedGraphWithVertexCount(edges, g.num_vertices);

  // Cache for subsequent bench binaries (best effort).
  ::mkdir(cache_dir.c_str(), 0755);
  const Status save = SaveCsrBinary(graph, path);
  if (!save.ok()) {
    std::fprintf(stderr, "warning: could not cache %s: %s\n", path.c_str(),
                 save.ToString().c_str());
  }
  return graph;
}

std::string DefaultCacheDir() {
  if (const char* env = std::getenv("KCORE_DATA_DIR"); env != nullptr) {
    return env;
  }
  return "data";
}

uint64_t MaxEdgesFromEnv() {
  if (const char* env = std::getenv("KCORE_BENCH_MAX_EDGES");
      env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

uint32_t RepsFromEnv(uint32_t default_reps) {
  if (const char* env = std::getenv("KCORE_BENCH_REPS"); env != nullptr) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed >= 1) return static_cast<uint32_t>(parsed);
  }
  return default_reps;
}

uint64_t ScaledBufferCapacity(const CsrGraph& graph) {
  return std::max<uint64_t>(4096, graph.NumVertices() / 16);
}

sim::DeviceOptions ScaledP100Options() {
  sim::DeviceOptions options;
  options.global_mem_bytes = 40ull << 20;  // 16 GB / 400
  options.num_sms = 108;
  return options;
}

std::string FormatCellMs(double ms) {
  if (ms >= 100) return StrFormat("%.0f", ms);
  if (ms >= 1) return StrFormat("%.1f", ms);
  return StrFormat("%.3f", ms);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      std::printf("%s%-*s", i == 0 ? "" : "  ",
                  static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = widths.empty() ? 0 : 2 * (widths.size() - 1);
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace kcore::bench
