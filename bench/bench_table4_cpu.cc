// Regenerates the paper's Table IV: computation time of the CPU programs —
// Ours (GPU, for reference) vs NetworkX-style interpreted peeling, serial
// BZ, ParK / PKC-o / PKC (serial and 48-thread parallel) and parallel MPM.
#include <cstdio>

#include "bench_support.h"
#include "core/gpu_peel.h"
#include "cpu/bz.h"
#include "cpu/mpm.h"
#include "cpu/naive_ref.h"
#include "cpu/park.h"
#include "cpu/pkc.h"

namespace {

// An interpreted library executes the same peeling operations through
// Python bytecode; ~60x per operation is the conventional interpreter
// penalty, and its edge-list reader costs ~30 us/edge (both modeled; the
// paper's NetworkX column shows >1hr loading from wikipedia-link-de on).
constexpr double kInterpreterFactor = 60.0;
constexpr double kNetworkxLoadNsPerEdge = 30000.0;

}  // namespace

int main() {
  using namespace kcore;
  using namespace kcore::bench;

  std::printf("=== Table IV: CPU programs (modeled ms) ===\n");
  TablePrinter table({"Dataset", "Ours", "NetworkX", "BZ", "SerialParK",
                      "ParK", "SerialPKC-o", "PKC-o", "MPM", "SerialPKC",
                      "PKC"});

  const uint64_t max_edges = MaxEdgesFromEnv();

  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions ours_options;
    ours_options.buffer_capacity = ScaledBufferCapacity(*graph);
    const auto ours = RunGpuPeel(*graph, ours_options, ScaledP100Options());

    std::string networkx_cell;
    const double networkx_load_ms =
        static_cast<double>(graph->NumUndirectedEdges()) *
        kNetworkxLoadNsPerEdge / 1e6;
    if (networkx_load_ms > kScaledHourMs) {
      networkx_cell = kCellLoadTimeout;
    } else {
      const auto naive = RunNaiveReference(*graph);
      networkx_cell =
          FormatCellMs(naive.metrics.modeled_ms * kInterpreterFactor);
    }

    const auto bz = RunBz(*graph);
    const auto park_serial = RunParKSerial(*graph);
    const auto park = RunParK(*graph);
    const auto pkc_o_serial = RunPkcSerial(*graph, PkcVariant::kOriginal);
    PkcOptions pkc_o_options;
    pkc_o_options.variant = PkcVariant::kOriginal;
    const auto pkc_o = RunPkc(*graph, pkc_o_options);
    const auto mpm = RunMpm(*graph);
    const auto pkc_serial = RunPkcSerial(*graph, PkcVariant::kCompacted);
    const auto pkc = RunPkc(*graph);

    table.AddRow({spec.name,
                  ours.ok() ? FormatCellMs(ours->metrics.modeled_ms) : "ERR",
                  networkx_cell, FormatCellMs(bz.metrics.modeled_ms),
                  FormatCellMs(park_serial.metrics.modeled_ms),
                  FormatCellMs(park.metrics.modeled_ms),
                  FormatCellMs(pkc_o_serial.metrics.modeled_ms),
                  FormatCellMs(pkc_o.metrics.modeled_ms),
                  FormatCellMs(mpm.metrics.modeled_ms),
                  FormatCellMs(pkc_serial.metrics.modeled_ms),
                  FormatCellMs(pkc.metrics.modeled_ms)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §VI): Ours beats every CPU engine; NetworkX is"
      "\norders of magnitude off (and cannot load large graphs); parallel"
      "\nParK/MPM often lose to serial BZ; PKC is the best CPU code, with the"
      "\ncompacted scan far ahead of PKC-o on high-k_max graphs"
      "\n(indochina-2004, it-2004).\n");
  return 0;
}
