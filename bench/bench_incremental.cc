// Machine-readable incremental-maintenance harness: runs the GPU-resident
// IncrementalCoreEngine over the paper roster and writes
// BENCH_incremental.json so the update-path perf trajectory can be tracked
// across PRs by diffing the committed file.
//
// A "datasets" section sweeps batch sizes {1, 8, 64, 256} per roster graph:
// each sweep starts a fresh engine over the loaded graph, applies a seeded
// stream of mixed insert/delete batches, and reports the mean modeled ms
// per batch, modeled updates/sec, the mean affected-region size, and the
// speedup over a full from-scratch GPU peel of the same graph. After every
// sweep the final coreness is verified bit-for-bit against a fresh BZ of
// the engine's current graph — a bench run that drifts from the oracle
// exits nonzero rather than writing numbers.
//
// The acceptance gate: over the roster, localized maintenance must be
// >= 10x faster (modeled) than the full re-peel for batches touching <= 1%
// of the graph's edges, measured as the geometric mean across qualifying
// (dataset, batch-size) cells. "Touching" is measured, not assumed: a cell
// qualifies when the batch is small (updates <= 1% of |E|) AND the engine's
// affected region stayed within 1% of the directed edge mass
// (UpdateResult::affected_edges) — the regime the locality theorem is
// about. At this ~1/400 scale a 256-update batch on a 10k-edge stand-in
// legitimately floods the graph, and the uniform-coreness rows (the ER
// stand-ins patentcite / hollywood-2009) percolate at any batch size and
// take the full-re-peel escape hatch; those ~1x cells are reported
// honestly in the JSON with le_1pct_edges=false and simply sit outside
// the bound's regime.
//
// A "mixed_soak" section drives the serving loop (kcore_server) with the
// mutation slice enabled — a seeded query+update mix on a roster-like
// power-law graph — and reports serving latency percentiles plus committed
// update counters.
//
// Output path: argv[1] if given, else $KCORE_BENCH_JSON_PATH, else
// ./BENCH_incremental.json. Respects KCORE_BENCH_MAX_EDGES.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_support.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/gpu_peel.h"
#include "core/incremental_core.h"
#include "cpu/bz.h"
#include "generators/generators.h"
#include "graph/edge_update.h"
#include "graph/graph_builder.h"
#include "serve/soak.h"

namespace {

using namespace kcore;
using namespace kcore::bench;

std::string U64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

constexpr size_t kBatchSizes[] = {1, 8, 64, 256};

std::string Pct(const LatencyStats& s) {
  return StrFormat("{\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, "
                   "\"max\": %.3f}",
                   s.p50, s.p90, s.p99, s.max);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_incremental.json";
  if (argc > 1) {
    path = argv[1];
  } else if (const char* env = std::getenv("KCORE_BENCH_JSON_PATH")) {
    path = env;
  }
  const uint64_t max_edges = MaxEdgesFromEnv();

  std::string json = "{\n  \"bench\": \"incremental\",\n";
  json += "  \"device\": \"scaled_p100\",\n";
  json += StrFormat("  \"batches_per_sweep\": %d,\n", kIncrementalBatchesPerSweep);
  json += "  \"datasets\": [\n";

  // Geometric mean of speedups over cells where the batch touches <= 1% of
  // the graph's edges — the acceptance bound for localized maintenance.
  double log_speedup_sum = 0.0;
  uint64_t qualifying_cells = 0;

  bool first = true;
  for (const DatasetSpec& spec : PaperRoster()) {
    auto graph = LoadOrGenerateDataset(spec, DefaultCacheDir());
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    if (max_edges != 0 && graph->NumUndirectedEdges() > max_edges) continue;

    GpuPeelOptions full = GpuPeelOptions::Ours();
    full.buffer_capacity = ScaledBufferCapacity(*graph);
    auto full_result = RunGpuPeel(*graph, full, ScaledP100Options());
    if (!full_result.ok()) {
      std::fprintf(stderr, "%s: full peel: %s\n", spec.name.c_str(),
                   full_result.status().ToString().c_str());
      return 1;
    }
    const double full_peel_ms = full_result->metrics.modeled_ms;

    if (!first) json += ",\n";
    first = false;
    json += "    {\"name\": \"" + spec.name + "\", ";
    json += "\"vertices\": " + U64(graph->NumVertices()) + ", ";
    json += "\"edges\": " + U64(graph->NumUndirectedEdges()) + ", ";
    json += StrFormat("\"full_peel_ms\": %.4f,\n", full_peel_ms);
    json += "     \"sweeps\": [";

    bool first_sweep = true;
    for (size_t batch_size : kBatchSizes) {
      IncrementalSweepResult sweep;
      if (!RunIncrementalSweep(*graph, batch_size, full_peel_ms, 500 + batch_size,
                    &sweep)) {
        std::fprintf(stderr, "%s: batch_size=%zu sweep failed\n",
                     spec.name.c_str(), batch_size);
        return 1;
      }
      // Qualifying = the regime the locality bound is about: a small batch
      // (updates <= 1% of |E|) whose measured affected region also stayed
      // within 1% of the directed edge mass.
      const bool qualifies =
          static_cast<double>(batch_size) <=
              0.01 * static_cast<double>(graph->NumUndirectedEdges()) &&
          sweep.touched_edge_share <= 0.01;
      if (qualifies && sweep.mean_batch_ms > 0.0) {
        log_speedup_sum += std::log(sweep.speedup);
        ++qualifying_cells;
      }
      std::fprintf(stderr,
                   "  %-18s batch=%-4zu mean %8.4f ms  %7.2fx  affected "
                   "%8.1f  touched %5.2f%%  repeels %llu/%d\n",
                   spec.name.c_str(), batch_size, sweep.mean_batch_ms,
                   sweep.speedup, sweep.mean_affected,
                   100.0 * sweep.touched_edge_share,
                   static_cast<unsigned long long>(sweep.full_repeels),
                   kIncrementalBatchesPerSweep);
      if (!first_sweep) json += ",\n                ";
      first_sweep = false;
      json += StrFormat(
          "{\"batch\": %zu, \"mean_batch_ms\": %.4f, "
          "\"updates_per_sec\": %.1f, \"speedup\": %.2f, "
          "\"mean_affected\": %.1f, \"touched_edge_share\": %.4f, "
          "\"full_repeels\": %llu, "
          "\"compactions\": %llu, \"le_1pct_edges\": %s}",
          batch_size, sweep.mean_batch_ms, sweep.updates_per_sec,
          sweep.speedup, sweep.mean_affected, sweep.touched_edge_share,
          static_cast<unsigned long long>(sweep.full_repeels),
          static_cast<unsigned long long>(sweep.compactions),
          qualifies ? "true" : "false");
    }
    json += "]}";
    std::fprintf(stderr, "%s done (full_peel %.3f ms)\n", spec.name.c_str(),
                 full_peel_ms);
  }

  const double geomean_speedup =
      qualifying_cells > 0
          ? std::exp(log_speedup_sum / static_cast<double>(qualifying_cells))
          : 0.0;
  json += "\n  ],\n";
  json += StrFormat("  \"qualifying_cells\": %llu,\n",
                    static_cast<unsigned long long>(qualifying_cells));
  json += StrFormat("  \"geomean_speedup_le_1pct\": %.2f,\n",
                    geomean_speedup);

  if (qualifying_cells > 0 && geomean_speedup < 10.0) {
    std::fprintf(stderr,
                 "acceptance gate failed: geomean speedup %.2fx < 10x for "
                 "batches <= 1%% of edges\n",
                 geomean_speedup);
    return 1;
  }

  // Mixed mutation+query soak on a roster-like power-law graph: serving
  // latency percentiles with the update slice engaged.
  {
    EdgeList list = GenerateChungLuPowerLaw(3000, 12000, 2.3, 71);
    PlantedCoreOptions planted;
    planted.core_size = 60;
    planted.core_density = 0.6;
    list = OverlayPlantedCore(std::move(list), 3000, planted, 72);
    const CsrGraph graph = BuildUndirectedGraph(list);

    SoakOptions options;
    options.num_requests = 1200;
    options.seed = 7;
    options.cancel_fraction = 0.0;
    options.deadline_fraction = 0.0;
    options.update_fraction = 0.10;
    options.update_batch = 32;
    auto report = RunSoak(graph, options);
    if (!report.ok()) {
      std::fprintf(stderr, "mixed soak: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (!report->Clean() || report->updates_committed != report->updates) {
      std::fprintf(stderr,
                   "mixed soak violated an invariant: %s\n",
                   SoakReportSummary(*report).c_str());
      return 1;
    }
    json += "  \"mixed_soak\": {\n";
    json += "    \"graph\": {\"vertices\": " + U64(graph.NumVertices()) +
            ", \"edges\": " + U64(graph.NumUndirectedEdges()) + "},\n";
    json += "    \"requests\": " + U64(report->requests) +
            ", \"completed\": " + U64(report->completed) +
            ", \"update_fraction\": 0.10, \"update_batch\": 32,\n";
    json += "    \"updates_committed\": " + U64(report->updates_committed) +
            ", \"update_edges\": " + U64(report->update_edges) + ",\n";
    json += "    \"queue_ms\": " + Pct(report->queue_ms) + ",\n";
    json += "    \"run_ms\": " + Pct(report->run_ms) + "\n";
    json += "  }\n}\n";
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (geomean speedup %.2fx over %llu cells)\n",
               path.c_str(), geomean_speedup,
               static_cast<unsigned long long>(qualifying_cells));
  return 0;
}
