// bench_serving — the committed chaos-soak run behind BENCH_serving.json.
//
// Fixed configuration (ISSUE 8 acceptance bar): >= 5000 mixed requests
// against a generated graph under a seeded fault plan that includes
// device_lost, verified request-by-request against the BZ oracle. The run
// must finish with zero mismatches, zero unresolved futures and bounded
// tail latency; a dirty soak exits nonzero so the bench cannot silently
// commit a bad report.
//
//   bench_serving [out.json]     default BENCH_serving.json
#include <cstdio>
#include <string>
#include <utility>

#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "serve/soak.h"

using namespace kcore;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_serving.json";

  // ER background + planted dense community: dozens of shells plus a deep
  // core, so full decomposes take enough launches for the device_lost
  // clause to fire mid-peel while single-k queries (one scan+loop pair)
  // usually slip under it.
  EdgeList edges = GenerateErdosRenyi(2500, 10000, 11);
  PlantedCoreOptions planted;
  planted.core_size = 64;
  planted.core_density = 0.5;
  edges = OverlayPlantedCore(std::move(edges), 2500, planted, 12);
  const CsrGraph graph = BuildUndirectedGraph(edges);

  SoakOptions options;
  options.num_requests = 6000;
  options.seed = 7;
  options.cancel_fraction = 0.02;
  options.deadline_fraction = 0.02;
  // Chaos plan: occasional transient launch rejections (absorbed by the
  // engine's op retry) plus whole-device loss mid-decomposition (surfaced
  // to the server's breaker, answered degraded on the CPU).
  options.server.engine_config.device.fault_spec =
      "launch_fail:p=0.005,seed=9;device_lost@launch=40";

  auto report = RunSoak(graph, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", SoakReportSummary(*report).c_str());
  if (!report->Clean()) {
    std::fprintf(stderr, "soak invariants violated; not writing %s\n",
                 path.c_str());
    return 1;
  }
  const std::string json =
      SoakReportJson("er2500+planted64", graph, options, *report);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
