#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cusim/device.h"
#include "cusim/fault_injection.h"

namespace kcore::sim {
namespace {

// ----------------------------------------------------------------- Parser --

TEST(FaultSpecTest, ParsesEveryClauseKind) {
  auto plan = ParseFaultSpec(
      "alloc_fail@3;launch_fail:p=0.05,seed=7;bitflip:launch=12,word=rand;"
      "device_lost@launch=40;copy_fail@2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->clauses.size(), 5u);

  EXPECT_EQ(plan->clauses[0].kind, FaultKind::kAllocFail);
  EXPECT_EQ(plan->clauses[0].at, 3u);

  EXPECT_EQ(plan->clauses[1].kind, FaultKind::kLaunchFail);
  EXPECT_DOUBLE_EQ(plan->clauses[1].p, 0.05);
  EXPECT_EQ(plan->clauses[1].seed, 7u);

  EXPECT_EQ(plan->clauses[2].kind, FaultKind::kBitflip);
  EXPECT_EQ(plan->clauses[2].at, 12u);
  EXPECT_TRUE(plan->clauses[2].word_rand);
  EXPECT_TRUE(plan->clauses[2].bit_rand);

  EXPECT_EQ(plan->clauses[3].kind, FaultKind::kDeviceLost);
  EXPECT_EQ(plan->clauses[3].at, 40u);

  EXPECT_EQ(plan->clauses[4].kind, FaultKind::kCopyFail);
  EXPECT_EQ(plan->clauses[4].at, 2u);
}

TEST(FaultSpecTest, ParsesBitflipTargeting) {
  auto plan = ParseFaultSpec("bitflip:at=5,alloc=deg,word=17,bit=3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const FaultClause& c = plan->clauses[0];
  EXPECT_EQ(c.alloc, "deg");
  EXPECT_EQ(c.word, 17u);
  EXPECT_FALSE(c.word_rand);
  EXPECT_EQ(c.bit, 3u);
  EXPECT_FALSE(c.bit_rand);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  // Unknown kind, unknown key, missing trigger, out-of-range values: each
  // must fail InvalidArgument naming the clause, never inject silently.
  for (const char* bad : {
           "explode@3",                // unknown kind
           "launch_fail:frobnicate=1", // unknown key
           "launch_fail",              // no @N and no p=
           "launch_fail:seed=9",       // still no trigger
           "launch_fail:p=1.5",        // probability out of [0, 1]
           "launch_fail:p=-0.1",
           "bitflip:at=1,bit=32",      // bit index past a 32-bit word
           "alloc_fail@",              // empty param
           "launch_fail:at=xyz",       // non-numeric index
       }) {
    auto plan = ParseFaultSpec(bad);
    EXPECT_FALSE(plan.ok()) << "accepted: " << bad;
    EXPECT_TRUE(plan.status().IsInvalidArgument()) << bad;
  }
}

TEST(FaultSpecTest, EmptySpecIsEmptyPlan) {
  auto plan = ParseFaultSpec("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

// --------------------------------------------------------------- Injector --

TEST(FaultInjectorTest, IndexTriggersFireExactlyOnce) {
  auto plan = ParseFaultSpec("alloc_fail@2;launch_fail@3;copy_fail@1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*std::move(plan));

  EXPECT_TRUE(injector.OnAlloc("a", 64).ok());
  EXPECT_TRUE(injector.OnAlloc("b", 64).IsOutOfMemory());
  EXPECT_TRUE(injector.OnAlloc("c", 64).ok());

  EXPECT_TRUE(injector.OnLaunch("k1").ok());
  EXPECT_TRUE(injector.OnLaunch("k2").ok());
  EXPECT_TRUE(injector.OnLaunch("k3").IsUnavailable());
  EXPECT_TRUE(injector.OnLaunch("k4").ok());

  EXPECT_TRUE(injector.OnCopy(256).IsUnavailable());
  EXPECT_TRUE(injector.OnCopy(256).ok());

  ASSERT_EQ(injector.events().size(), 3u);
  EXPECT_EQ(injector.events()[0].kind, FaultKind::kAllocFail);
  EXPECT_EQ(injector.events()[0].op_index, 2u);
}

TEST(FaultInjectorTest, ProbabilityOneFailsEveryLaunch) {
  auto plan = ParseFaultSpec("launch_fail:p=1.0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*std::move(plan));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.OnLaunch("k").IsUnavailable()) << i;
  }
  EXPECT_EQ(injector.launches_seen(), 10u);
}

TEST(FaultInjectorTest, DeviceLostLatchesAcrossAllDomains) {
  auto plan = ParseFaultSpec("device_lost@launch=2");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*std::move(plan));
  EXPECT_TRUE(injector.OnLaunch("k1").ok());
  EXPECT_FALSE(injector.device_lost());
  EXPECT_TRUE(injector.OnLaunch("k2").IsDeviceLost());
  EXPECT_TRUE(injector.device_lost());
  // Lost is permanent and poisons every op domain, like a real device loss.
  EXPECT_TRUE(injector.OnLaunch("k3").IsDeviceLost());
  EXPECT_TRUE(injector.OnAlloc("a", 8).IsDeviceLost());
  EXPECT_TRUE(injector.OnCopy(8).IsDeviceLost());
}

TEST(FaultInjectorTest, TargetedBitflipFlipsExactBit) {
  auto plan = ParseFaultSpec("bitflip:at=1,alloc=deg,word=2,bit=3");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*std::move(plan));
  uint32_t words[4] = {10, 20, 30, 40};
  std::vector<CorruptibleRange> ranges = {
      {words, sizeof(words), "deg"},
  };
  EXPECT_TRUE(injector.OnLaunch("k").ok());
  EXPECT_EQ(injector.ApplyBitflips(ranges), 1u);
  EXPECT_EQ(words[2], 30u ^ (1u << 3));
  EXPECT_EQ(words[0], 10u);
  EXPECT_EQ(words[1], 20u);
  EXPECT_EQ(words[3], 40u);
  // Fired once; launch 2 leaves memory alone.
  EXPECT_TRUE(injector.OnLaunch("k").ok());
  EXPECT_EQ(injector.ApplyBitflips(ranges), 0u);
}

TEST(FaultInjectorTest, BitflipHonorsAllocLabelFilter) {
  auto plan = ParseFaultSpec("bitflip:at=1,alloc=deg,word=0,bit=0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*std::move(plan));
  uint32_t other[2] = {1, 2};
  std::vector<CorruptibleRange> ranges = {
      {other, sizeof(other), "frontier"},
  };
  EXPECT_TRUE(injector.OnLaunch("k").ok());
  // No range carries the requested label: nothing to corrupt.
  EXPECT_EQ(injector.ApplyBitflips(ranges), 0u);
  EXPECT_EQ(other[0], 1u);
  EXPECT_EQ(other[1], 2u);
}

TEST(FaultInjectorTest, SamePlanSameOpsSameEventLog) {
  // The determinism contract: a seeded plan driven through an identical op
  // sequence fires identical faults — what makes recovery tests repeatable.
  const std::string spec =
      "launch_fail:p=0.3,seed=42;copy_fail:p=0.2,seed=9;bitflip:p=0.5,seed=5";
  auto drive = [&spec]() {
    auto plan = ParseFaultSpec(spec);
    KCORE_CHECK(plan.ok());
    FaultInjector injector(*std::move(plan));
    uint32_t words[8] = {0};
    std::vector<CorruptibleRange> ranges = {{words, sizeof(words), "deg"}};
    std::vector<std::string> log;
    for (int i = 0; i < 50; ++i) {
      if (injector.OnLaunch("k").ok()) {
        injector.ApplyBitflips(ranges);
      }
      (void)injector.OnCopy(128);
    }
    for (const FaultEvent& e : injector.events()) log.push_back(e.ToString());
    return log;
  };
  const auto first = drive();
  const auto second = drive();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorTest, DistinctSeedsGiveDistinctSchedules) {
  auto drive = [](const std::string& spec) {
    auto plan = ParseFaultSpec(spec);
    KCORE_CHECK(plan.ok());
    FaultInjector injector(*std::move(plan));
    std::vector<uint64_t> failed;
    for (uint64_t i = 1; i <= 200; ++i) {
      if (!injector.OnLaunch("k").ok()) failed.push_back(i);
    }
    return failed;
  };
  EXPECT_NE(drive("launch_fail:p=0.5,seed=1"),
            drive("launch_fail:p=0.5,seed=2"));
}

// ------------------------------------------------------ Device integration -

TEST(DeviceFaultTest, SpecViaOptionsGatesAllocation) {
  DeviceOptions options;
  options.fault_spec = "alloc_fail@2";
  Device device(options);
  EXPECT_TRUE(device.fault_injection_enabled());
  auto first = device.Alloc<uint32_t>(8, "first");
  ASSERT_TRUE(first.ok());
  auto second = device.Alloc<uint32_t>(8, "second");
  EXPECT_TRUE(second.status().IsOutOfMemory());
  // The injected failure reserved nothing.
  EXPECT_EQ(device.current_bytes(), 32u);
}

TEST(DeviceFaultTest, LaunchFailureSkipsKernelBody) {
  DeviceOptions options;
  options.fault_spec = "launch_fail@1";
  Device device(options);
  int runs = 0;
  Status st = device.Launch(1, 32, [&](auto&) { ++runs; });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(runs, 0);  // fail-stop: no partial execution
  EXPECT_EQ(device.totals().kernel_launches, 0u);
  // The retry is a fresh attempt and succeeds.
  EXPECT_TRUE(device.Launch(1, 32, [&](auto&) { ++runs; }).ok());
  EXPECT_GT(runs, 0);
  EXPECT_EQ(device.totals().kernel_launches, 1u);
}

TEST(DeviceFaultTest, CopyFaultMovesNoBytes) {
  DeviceOptions options;
  options.fault_spec = "copy_fail@2";
  Device device(options);
  auto arr = device.Alloc<uint32_t>(4, "data");
  ASSERT_TRUE(arr.ok());
  const std::vector<uint32_t> host = {5, 6, 7, 8};
  ASSERT_TRUE(arr->CopyFromHost(host).ok());
  std::vector<uint32_t> back(4, 0);
  EXPECT_TRUE(arr->CopyToHost(back).IsUnavailable());
  EXPECT_EQ(back, std::vector<uint32_t>(4, 0));  // untouched
  EXPECT_TRUE(arr->CopyToHost(back).ok());
  EXPECT_EQ(back, host);
}

TEST(DeviceFaultTest, BitflipOnlyTouchesMarkedAllocations) {
  DeviceOptions options;
  options.fault_spec = "bitflip:at=1,word=0,bit=0";
  Device device(options);
  auto protected_arr = device.Alloc<uint32_t>(4, "topology");
  auto corruptible = device.Alloc<uint32_t>(4, "deg");
  ASSERT_TRUE(protected_arr.ok() && corruptible.ok());
  device.MarkCorruptible(*corruptible, "deg");
  ASSERT_TRUE(device.Launch(1, 32, [](auto&) {}).ok());
  EXPECT_EQ(corruptible->data()[0], 1u);   // bit 0 of word 0 flipped
  EXPECT_EQ(protected_arr->data()[0], 0u); // unmarked: ECC-protected
  ASSERT_NE(device.faults(), nullptr);
  ASSERT_EQ(device.faults()->events().size(), 1u);
  EXPECT_EQ(device.faults()->events()[0].kind, FaultKind::kBitflip);
}

TEST(DeviceFaultTest, HealthCheckAdvancesLaunchDomain) {
  DeviceOptions options;
  options.fault_spec = "device_lost@launch=3";
  Device device(options);
  EXPECT_TRUE(device.HealthCheck().ok());
  EXPECT_TRUE(device.HealthCheck().ok());
  EXPECT_TRUE(device.HealthCheck().IsDeviceLost());
  // Lost latches: allocations are dead too.
  EXPECT_TRUE(device.Alloc<uint32_t>(1).status().IsDeviceLost());
}

TEST(DeviceFaultTest, MalformedSpecSurfacesFromFirstOp) {
  DeviceOptions options;
  options.fault_spec = "launch_fail:p=nope";
  Device device(options);
  EXPECT_TRUE(device.fault_injection_enabled());
  EXPECT_TRUE(device.Alloc<uint32_t>(8).status().IsInvalidArgument());
  EXPECT_TRUE(device.HealthCheck().IsInvalidArgument());
}

TEST(DeviceFaultTest, EnvVariableAttachesPlan) {
  ASSERT_EQ(setenv("KCORE_FAULTS", "launch_fail@1", 1), 0);
  Device device;
  ASSERT_EQ(unsetenv("KCORE_FAULTS"), 0);
  EXPECT_TRUE(device.fault_injection_enabled());
  EXPECT_TRUE(device.Launch(1, 32, [](auto&) {}).IsUnavailable());

  Device clean;
  EXPECT_FALSE(clean.fault_injection_enabled());
}

}  // namespace
}  // namespace kcore::sim
