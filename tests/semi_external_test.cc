#include <string>

#include <gtest/gtest.h>

#include "cpu/naive_ref.h"
#include "cpu/semi_external.h"
#include "graph/graph_io.h"
#include "test_graphs.h"

namespace kcore {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SemiExternalTest, MatchesOracleOnFullSuite) {
  int index = 0;
  for (const auto& g : testing::FullSuite()) {
    const std::string path =
        TempPath("semi_" + std::to_string(index++) + ".csr");
    ASSERT_TRUE(SaveCsrBinary(g.graph, path).ok());
    auto result = RunSemiExternal(path);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, RunNaiveReference(g.graph).core) << g.name;
  }
}

TEST(SemiExternalTest, TinyIoBufferStillCorrect) {
  const auto g = testing::RandomSuite()[1];  // dense ER
  const std::string path = TempPath("semi_tinybuf.csr");
  ASSERT_TRUE(SaveCsrBinary(g.graph, path).ok());
  auto result = RunSemiExternal(path, /*io_buffer_bytes=*/64);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->core, RunNaiveReference(g.graph).core);
}

TEST(SemiExternalTest, StreamsWholePayloadPerPass) {
  const auto g = testing::RandomSuite()[0];
  const std::string path = TempPath("semi_bytes.csr");
  ASSERT_TRUE(SaveCsrBinary(g.graph, path).ok());
  auto result = RunSemiExternal(path);
  ASSERT_TRUE(result.ok());
  const uint64_t payload = g.graph.NumDirectedEdges() * sizeof(VertexId);
  EXPECT_EQ(result->metrics.counters.global_reads,
            payload * result->metrics.iterations);
  EXPECT_GE(result->metrics.iterations, 2u);  // converge + verify pass
}

TEST(SemiExternalTest, MemoryIsVertexScale) {
  // The point of the semi-external algorithm: resident memory tracks |V|,
  // not |E|.
  const auto g = testing::RandomSuite()[1];  // |E| ~ 20x |V|
  const std::string path = TempPath("semi_mem.csr");
  ASSERT_TRUE(SaveCsrBinary(g.graph, path).ok());
  auto result = RunSemiExternal(path, /*io_buffer_bytes=*/4096);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->metrics.peak_device_bytes, g.graph.MemoryBytes());
}

TEST(SemiExternalTest, RejectsMissingAndCorruptFiles) {
  EXPECT_TRUE(RunSemiExternal("/nonexistent.csr").status().IsIOError());
  const std::string path = TempPath("semi_bad.csr");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 64; ++i) std::fputc(7, f);
  std::fclose(f);
  EXPECT_TRUE(RunSemiExternal(path).status().IsCorruption());
}

}  // namespace
}  // namespace kcore
