// Golden smoke tests for kcore_cli: runs the real binary (path baked in via
// KCORE_CLI_PATH) over a fixed tiny graph with the profiling flags and
// diffs normalized output. Numbers are volatile (wall time, modeled jitter
// across thread schedules), so normalization folds every digit run to '#'
// and sorts the kernel-summary rows (their order depends on relative
// modeled totals).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef KCORE_CLI_PATH
#error "cli_test requires -DKCORE_CLI_PATH=\"...\" (see tests/CMakeLists.txt)"
#endif
#ifndef KCORE_SOAK_PATH
#error "cli_test requires -DKCORE_SOAK_PATH=\"...\" (see tests/CMakeLists.txt)"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CommandResult RunCli(const std::string& args) {
  const std::string command = std::string(KCORE_CLI_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  CommandResult result;
  if (pipe == nullptr) return result;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    result.output.append(buf, got);
  }
  const int rc = pclose(pipe);
  result.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return result;
}

/// Digit runs -> '#', then the kernel-summary body (everything after its
/// header line) is sorted so the comparison is order-independent.
std::string Normalize(const std::string& raw) {
  std::string folded;
  bool in_digits = false;
  for (char c : raw) {
    if (c >= '0' && c <= '9') {
      if (!in_digits) folded += '#';
      in_digits = true;
    } else {
      in_digits = false;
      folded += c;
    }
  }
  // Split into lines; sort the region after the summary header.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= folded.size()) {
    const size_t nl = folded.find('\n', start);
    if (nl == std::string::npos) {
      if (start < folded.size()) lines.push_back(folded.substr(start));
      break;
    }
    lines.push_back(folded.substr(start, nl - start));
    start = nl + 1;
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i] == "--- kernel summary ---" && i + 2 < lines.size()) {
      std::sort(lines.begin() + i + 2, lines.end());  // keep header row
      break;
    }
  }
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Writes the paper-figure edge list to a fixed path and returns it.
/// gtest_discover_tests runs every TEST as its own process, and ctest -j
/// runs them concurrently — all sharing this path. Write-to-temp + rename
/// keeps the file atomically either absent or complete, never truncated
/// mid-rewrite under a sibling test's reader.
std::string EdgeListPath() {
  static const std::string path = "/tmp/kcore_cli_test_graph.txt";
  const std::string tmp = path + "." + std::to_string(getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(
      "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n"  // K4: 3-core
      "0 4\n4 5\n5 6\n6 4\n"            // 2-shell triangle
      "5 7\n7 8\n",                     // pendant path
      f);
  std::fclose(f);
  EXPECT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  return path;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return content;
}

TEST(CliGolden, GpuTraceSimcheckAndSummary) {
  const std::string trace_path = "/tmp/kcore_cli_test_gpu_trace.json";
  std::remove(trace_path.c_str());
  CommandResult r =
      RunCli("decompose " + EdgeListPath() + " gpu --simcheck --trace=" +
          trace_path + " --prof-summary");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string expected =
      "engine       gpu\n"
      "k_max        #\n"
      "rounds       #\n"
      "modeled_ms   #.#\n"
      "wall_ms      #.#\n"
      "peak_device  #.# MB\n"
      "simcheck     clean\n"
      "trace        /tmp/kcore_cli_test_gpu_trace.json\n"
      "--- kernel summary ---\n"
      "kernel                count   time%     total_ms       avg_us"
      "       min_us       max_us\n"
      "loop                      #   #.#%        #.#        #.#        #.#"
      "        #.#\n"
      "scan                      #   #.#%        #.#        #.#        #.#"
      "        #.#\n"
      // Active-vertex compaction rebuilds once on this graph (survivors
      // halve entering the k=3 round).
      "compact                   #    #.#%        #.#        #.#        #.#"
      "        #.#\n";
  EXPECT_EQ(Normalize(r.output), Normalize(expected)) << r.output;

  const std::string trace = ReadFileOrEmpty(trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"scan\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"loop\""), std::string::npos);
}

TEST(CliGolden, MultiGpuTrace) {
  const std::string trace_path = "/tmp/kcore_cli_test_mg_trace.json";
  std::remove(trace_path.c_str());
  CommandResult r = RunCli("decompose " + EdgeListPath() +
                        " multigpu --trace=" + trace_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string expected =
      "engine       multigpu\n"
      "k_max        #\n"
      "rounds       #\n"
      "modeled_ms   #.#\n"
      "wall_ms      #.#\n"
      "peak_device  #.# KB\n"
      "trace        /tmp/kcore_cli_test_mg_trace.json\n";
  EXPECT_EQ(Normalize(r.output), Normalize(expected)) << r.output;

  const std::string trace = ReadFileOrEmpty(trace_path);
  ASSERT_FALSE(trace.empty());
  // One process group per device: the master plus the default 4 workers.
  EXPECT_NE(trace.find("\"master\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker0\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker3\""), std::string::npos);
  EXPECT_NE(trace.find("border_exchange"), std::string::npos);
}

TEST(CliGolden, VetgaSummary) {
  CommandResult r =
      RunCli("decompose " + EdgeListPath() + " vetga --prof-summary --simcheck");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("engine       vetga"), std::string::npos);
  EXPECT_NE(r.output.find("simcheck     clean"), std::string::npos);
  EXPECT_NE(r.output.find("--- kernel summary ---"), std::string::npos);
  // The six vector primitives all appear as summary rows.
  for (const char* op : {"vt_compare_mask", "vt_nonzero", "vt_scatter",
                         "vt_gather", "vt_bincount", "vt_deg_update"}) {
    EXPECT_NE(r.output.find(op), std::string::npos) << op;
  }
}

TEST(CliGolden, ClusterSummaryAndSimcheck) {
  CommandResult r = RunCli("decompose " + EdgeListPath() +
                           " cluster --nodes=3 --partition=edgecut --simcheck");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string expected =
      "engine       cluster\n"
      "k_max        #\n"
      "rounds       #\n"
      "modeled_ms   #.#\n"
      "wall_ms      #.#\n"
      "peak_device  #.# KB\n"
      "simcheck     clean\n"
      "--- cluster ---\n"
      "nodes           #\n"
      "partition       edgecut\n"
      "comm_ms         #.#\n"
      "comm_bytes      # B\n"
      "comm_messages   #\n"
      "comm/compute    #.#\n";
  EXPECT_EQ(Normalize(r.output), Normalize(expected)) << r.output;
}

TEST(CliGolden, ClusterTraceCarriesNodeLanesAndNetwork) {
  const std::string trace_path = "/tmp/kcore_cli_test_cluster_trace.json";
  std::remove(trace_path.c_str());
  CommandResult r = RunCli("decompose " + EdgeListPath() +
                           " cluster --nodes=3 --trace=" + trace_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::string trace = ReadFileOrEmpty(trace_path);
  ASSERT_FALSE(trace.empty());
  // One lane per node device, plus the master's network/rounds threads.
  EXPECT_NE(trace.find("node0.dev0"), std::string::npos);
  EXPECT_NE(trace.find("node2.dev0"), std::string::npos);
  EXPECT_NE(trace.find("\"network\""), std::string::npos);
  EXPECT_NE(trace.find("border_exchange"), std::string::npos);
}

TEST(CliGolden, ClusterFlagsRejectedOffTheClusterEngine) {
  CommandResult r = RunCli("decompose " + EdgeListPath() + " gpu --nodes=2");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--nodes/--partition only apply"),
            std::string::npos)
      << r.output;
  CommandResult s =
      RunCli("decompose " + EdgeListPath() + " bz --partition=degree");
  EXPECT_EQ(s.exit_code, 1);
  CommandResult t =
      RunCli("decompose " + EdgeListPath() + " cluster --partition=metis");
  EXPECT_EQ(t.exit_code, 1);
  EXPECT_NE(t.output.find("unknown --partition strategy"), std::string::npos)
      << t.output;
  CommandResult u =
      RunCli("decompose " + EdgeListPath() + " cluster --nodes=0");
  EXPECT_EQ(u.exit_code, 1);
  EXPECT_NE(u.output.find("node count must be >= 1"), std::string::npos);
}

TEST(CliGolden, TraceRejectsCpuEngines) {
  CommandResult r = RunCli("decompose " + EdgeListPath() + " bz --trace=/tmp/x");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--trace/--prof-summary only apply"),
            std::string::npos)
      << r.output;
  CommandResult s = RunCli("decompose " + EdgeListPath() + " park --prof-summary");
  EXPECT_EQ(s.exit_code, 1);
}

TEST(CliGolden, UsageMentionsProfilingFlags) {
  CommandResult r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--trace=<out.json>"), std::string::npos);
  EXPECT_NE(r.output.find("--prof-summary"), std::string::npos);
  EXPECT_NE(r.output.find("--timeout-ms=<N>"), std::string::npos);
}

// ------------------------------------------- exit codes and deadlines ----
// Exit contract: 0 success, 1 error, 2 usage, 4 degraded success. Every
// nonzero path emits a one-line structured `error code=... msg="..."` on
// stderr so scripts can key on the code.

TEST(CliExitCodes, DegradedDecomposeExitsFourWithStructuredError) {
  CommandResult r = RunCli("decompose " + EdgeListPath() +
                           " gpu '--faults=device_lost@launch=2'");
  EXPECT_EQ(r.exit_code, 4) << r.output;
  // The answer is still printed (exact, from the CPU warm-start)...
  EXPECT_NE(r.output.find("k_max        3"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("degraded            yes"), std::string::npos);
  // ...and the degradation is machine-visible.
  EXPECT_NE(r.output.find("error code=DegradedSuccess"), std::string::npos)
      << r.output;
}

TEST(CliExitCodes, DegradedSingleKExitsFour) {
  CommandResult r = RunCli("decompose " + EdgeListPath() +
                           " gpu --k=3 '--faults=device_lost@launch=1'");
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("core_size    4"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("error code=DegradedSuccess"), std::string::npos);
}

TEST(CliExitCodes, TransientFaultsRecoverCleanExitZero) {
  // A single retryable launch failure is absorbed by the engine's op retry:
  // not degraded, exit 0.
  CommandResult r = RunCli("decompose " + EdgeListPath() +
                           " gpu '--faults=launch_fail@1'");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("degraded            no"), std::string::npos);
}

TEST(CliExitCodes, ExpiredTimeoutExitsOneWithDeadlineExceeded) {
  CommandResult r =
      RunCli("decompose " + EdgeListPath() + " gpu --timeout-ms=0");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error code=DeadlineExceeded"), std::string::npos)
      << r.output;
  // The structured line names the enforcement point: a round boundary.
  EXPECT_NE(r.output.find("round boundary"), std::string::npos) << r.output;
}

TEST(CliExitCodes, GenerousTimeoutCompletesNormally) {
  CommandResult r =
      RunCli("decompose " + EdgeListPath() + " gpu --timeout-ms=60000");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("k_max        3"), std::string::npos);
}

TEST(CliExitCodes, TimeoutOnSingleKPath) {
  CommandResult ok =
      RunCli("decompose " + EdgeListPath() + " gpu --k=2 --timeout-ms=60000");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  CommandResult expired =
      RunCli("decompose " + EdgeListPath() + " gpu --k=2 --timeout-ms=0");
  EXPECT_EQ(expired.exit_code, 1) << expired.output;
  EXPECT_NE(expired.output.find("error code=DeadlineExceeded"),
            std::string::npos);
}

TEST(CliExitCodes, TimeoutRejectedOffTheGpuEngines) {
  CommandResult r =
      RunCli("decompose " + EdgeListPath() + " bz --timeout-ms=5");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error code=InvalidArgument"), std::string::npos);
  CommandResult s = RunCli("stats " + EdgeListPath() + " --timeout-ms=5");
  EXPECT_EQ(s.exit_code, 1);
}

TEST(CliExitCodes, MalformedTimeoutIsStructuredError) {
  CommandResult r =
      RunCli("decompose " + EdgeListPath() + " gpu --timeout-ms=soon");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error code=InvalidArgument"), std::string::npos)
      << r.output;
}

TEST(CliExitCodes, ExtractRejectsNonNumericK) {
  // Used to silently become k=0 via atoi; now a structured error.
  CommandResult r =
      RunCli("extract " + EdgeListPath() + " foo /tmp/kcore_cli_test_out.txt");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error code=InvalidArgument"), std::string::npos)
      << r.output;
}

TEST(CliExitCodes, MissingGraphFileIsStructuredError) {
  CommandResult r = RunCli("decompose /tmp/kcore_cli_test_nonexistent.txt gpu");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error code="), std::string::npos) << r.output;
}

TEST(CliExitCodes, ClusterNodeLossDegradesToExitFour) {
  // --faults applies the plan to every device of every node, so a device
  // loss kills the whole cluster: the run must still print the exact answer
  // from the CPU fallback and report degradation via exit 4.
  CommandResult r = RunCli("decompose " + EdgeListPath() +
                           " cluster --nodes=2 '--faults=device_lost@launch=2'");
  EXPECT_EQ(r.exit_code, 4) << r.output;
  EXPECT_NE(r.output.find("k_max        3"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("error code=DegradedSuccess"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("degraded            yes"), std::string::npos);
}

// ------------------------------------------------------- soak harness ----
// The soak binary shares the CLI's exit contract; its flag validation is
// part of the same surface (a fraction outside [0,1] must be a usage
// error, not a silently clamped value).

CommandResult RunSoak(const std::string& args) {
  const std::string command =
      std::string(KCORE_SOAK_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  CommandResult result;
  if (pipe == nullptr) return result;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    result.output.append(buf, got);
  }
  const int rc = pclose(pipe);
  result.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return result;
}

TEST(SoakExitCodes, UpdateFractionOutsideUnitIntervalIsUsageError) {
  for (const char* bad : {"--update-fraction=1.5", "--update-fraction=-0.2",
                          "--update-fraction=nan"}) {
    CommandResult r = RunSoak(bad);
    EXPECT_EQ(r.exit_code, 2) << bad << "\n" << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << bad;
    // The usage text documents the mutation-slice flags it just rejected.
    EXPECT_NE(r.output.find("--update-fraction=<frac>"), std::string::npos);
    EXPECT_NE(r.output.find("--update-batch=N"), std::string::npos);
  }
}

}  // namespace
