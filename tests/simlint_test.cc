// simlint golden-fixture tests: each deliberately-broken kernel under
// tools/simlint/fixtures/ must produce exactly the diagnostics recorded in
// the .golden file next to it, the clean fixture must produce none, and a
// sample of the real (annotated) tree must be clean. Regenerate goldens
// after an intentional diagnostic change with KCORE_UPDATE_GOLDEN=1.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "simlint/analyzer.h"

namespace kcore::simlint {
namespace {

std::string RepoRoot() {
  std::string path = __FILE__;           // <root>/tests/simlint_test.cc
  path = path.substr(0, path.find_last_of('/'));  // <root>/tests
  return path.substr(0, path.find_last_of('/'));  // <root>
}

std::string FixtureDir() { return RepoRoot() + "/tools/simlint/fixtures"; }

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Analyzes one fixture with the fixture's basename as the reported path so
/// the golden text is independent of the checkout location.
std::vector<Finding> AnalyzeFixture(const std::string& name,
                                    const AnalyzerOptions& options = {}) {
  const std::string path = FixtureDir() + "/" + name;
  const std::string content = ReadFileOrEmpty(path);
  EXPECT_FALSE(content.empty()) << "missing fixture " << path;
  return AnalyzeSource(name, content, options);
}

std::string FormatAll(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += f.Format() + "\n";
  return out;
}

/// Golden comparison with the trace_test regeneration protocol: setting
/// KCORE_UPDATE_GOLDEN=1 rewrites the golden and skips, so an intentional
/// diagnostic change is a one-command update.
void ExpectMatchesGolden(const std::string& fixture,
                         const std::vector<Finding>& findings) {
  const std::string text = FormatAll(findings);
  const std::string golden_path =
      FixtureDir() + "/" +
      fixture.substr(0, fixture.find_last_of('.')) + ".golden";
  if (std::getenv("KCORE_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(golden_path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << golden_path;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  const std::string golden = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path
      << " — regenerate with KCORE_UPDATE_GOLDEN=1";
  EXPECT_EQ(text, golden)
      << "simlint diagnostics drifted from " << golden_path
      << " — if intentional, regenerate with KCORE_UPDATE_GOLDEN=1";
}

size_t CountRule(const std::vector<Finding>& findings, const char* rule) {
  size_t n = 0;
  for (const Finding& f : findings) n += (f.rule == rule) ? 1 : 0;
  return n;
}

TEST(SimlintFixtures, SyncDivergence) {
  const auto findings = AnalyzeFixture("broken_sync_divergence.cc");
  EXPECT_EQ(CountRule(findings, kRuleSyncDivergence), 3u);
  EXPECT_EQ(findings.size(), 3u) << FormatAll(findings);
  ExpectMatchesGolden("broken_sync_divergence.cc", findings);
}

TEST(SimlintFixtures, CrossBlockRace) {
  const auto findings = AnalyzeFixture("broken_cross_block_race.cc");
  EXPECT_EQ(CountRule(findings, kRuleCrossBlockRace), 4u);
  EXPECT_EQ(findings.size(), 4u) << FormatAll(findings);
  ExpectMatchesGolden("broken_cross_block_race.cc", findings);
}

TEST(SimlintFixtures, ModeledClockPurity) {
  const auto findings = AnalyzeFixture("broken_clock_purity.cc");
  EXPECT_EQ(CountRule(findings, kRuleClockPurity), 5u);
  EXPECT_EQ(findings.size(), 5u) << FormatAll(findings);
  ExpectMatchesGolden("broken_clock_purity.cc", findings);
}

TEST(SimlintFixtures, UncheckedStatus) {
  const auto findings = AnalyzeFixture("broken_unchecked_status.cc");
  EXPECT_EQ(CountRule(findings, kRuleUncheckedStatus), 4u);
  EXPECT_EQ(findings.size(), 4u) << FormatAll(findings);
  ExpectMatchesGolden("broken_unchecked_status.cc", findings);
}

TEST(SimlintFixtures, HostConfinement) {
  const auto findings = AnalyzeFixture("broken_host_confinement.cc");
  EXPECT_EQ(CountRule(findings, kRuleHostConfinement), 4u);
  EXPECT_EQ(findings.size(), 4u) << FormatAll(findings);
  ExpectMatchesGolden("broken_host_confinement.cc", findings);
}

TEST(SimlintFixtures, StaleSuppressionStrict) {
  const auto findings = AnalyzeFixture("stale_suppression.cc");
  EXPECT_EQ(CountRule(findings, kRuleStaleSuppression), 1u);
  EXPECT_EQ(findings.size(), 1u) << FormatAll(findings);
  ExpectMatchesGolden("stale_suppression.cc", findings);
}

TEST(SimlintFixtures, StaleSuppressionLax) {
  AnalyzerOptions lax;
  lax.strict_suppressions = false;
  const auto findings = AnalyzeFixture("stale_suppression.cc", lax);
  EXPECT_TRUE(findings.empty()) << FormatAll(findings);
}

// The clean fixture uses the same constructs the broken ones misuse (plus a
// justified, *used* suppression) and must come back empty.
TEST(SimlintFixtures, CleanKernelHasNoFindings) {
  const auto findings = AnalyzeFixture("clean_kernel.cc");
  EXPECT_TRUE(findings.empty()) << FormatAll(findings);
}

// Rule filtering: with only one rule enabled, other fixtures are silent.
TEST(SimlintFixtures, RuleFilterRestrictsOutput) {
  AnalyzerOptions only_races;
  only_races.rules = {kRuleCrossBlockRace};
  only_races.strict_suppressions = false;
  const auto findings =
      AnalyzeFixture("broken_unchecked_status.cc", only_races);
  EXPECT_TRUE(findings.empty()) << FormatAll(findings);
  const auto races = AnalyzeFixture("broken_cross_block_race.cc", only_races);
  EXPECT_EQ(races.size(), 4u) << FormatAll(races);
}

// Inline suppression unit: a trailing allow silences exactly its line, and
// a comment-line allow covers the next code line.
TEST(SimlintSuppressions, TrailingAndPrecedingComment) {
  const std::string src = R"(#include "cusim/annotations.h"
template <typename A>
KCORE_KERNEL void F(A& d_deg, uint32_t v) {
  uint32_t* deg = d_deg.data();
  deg[v] = 0;  // simlint:allow(cross-block-race): init
  // simlint:allow(cross-block-race): second init
  deg[v + 1] = 0;
  deg[v + 2] = 0;
}
)";
  const auto findings = AnalyzeSource("inline.cc", src, {});
  ASSERT_EQ(findings.size(), 1u) << FormatAll(findings);
  EXPECT_EQ(findings[0].rule, kRuleCrossBlockRace);
  EXPECT_EQ(findings[0].line, 8);
}

// The annotated real tree must be clean: a representative sample spanning
// kernels (gpu_peel), collectives (warp_scan), observers (simprof/trace),
// and the device surface. The tree-wide sweep runs in ci_check.sh; this
// keeps a fast regression net inside tier-1.
TEST(SimlintRealTree, RepresentativeFilesAreClean) {
  const std::vector<std::string> files = {
      "src/core/gpu_peel.cc",    "src/cusim/warp_scan.h",
      "src/cusim/warp_scan.cc",  "src/cusim/device.h",
      "src/cusim/simprof.cc",    "src/cusim/simcheck.cc",
      "src/perf/trace.cc",       "src/systems/gunrock.cc",
  };
  for (const std::string& rel : files) {
    const std::string path = RepoRoot() + "/" + rel;
    const std::string content = ReadFileOrEmpty(path);
    ASSERT_FALSE(content.empty()) << "missing " << path;
    const auto findings = AnalyzeSource(rel, content, {});
    EXPECT_TRUE(findings.empty()) << rel << ":\n" << FormatAll(findings);
  }
}

}  // namespace
}  // namespace kcore::simlint
