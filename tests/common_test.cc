#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace kcore {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::CapacityExceeded("buffer full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCapacityExceeded());
  EXPECT_EQ(s.message(), "buffer full");
  EXPECT_EQ(s.ToString(), "CapacityExceeded: buffer full");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 14; ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)),
                 "Unknown");
  }
}

TEST(StatusTest, ServingLifecycleCodes) {
  const Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");

  const Status expired = Status::DeadlineExceeded("budget spent");
  EXPECT_TRUE(expired.IsDeadlineExceeded());
  EXPECT_FALSE(expired.IsCancelled());

  const Status shed = Status::ResourceExhausted("queue full");
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_EQ(shed.ToString(), "ResourceExhausted: queue full");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [] { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    KCORE_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::IOError("disk");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsIOError());
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto maybe = [](bool ok) -> StatusOr<int> {
    if (!ok) return Status::InvalidArgument("no");
    return 7;
  };
  auto wrapper = [&](bool ok) -> StatusOr<int> {
    KCORE_ASSIGN_OR_RETURN(int x, maybe(ok));
    return x + 1;
  };
  EXPECT_EQ(*wrapper(true), 8);
  EXPECT_TRUE(wrapper(false).status().IsInvalidArgument());
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(1000000000ull), "1,000,000,000");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.0 GB");
}

TEST(StringsTest, SplitNonEmpty) {
  const auto fields = SplitNonEmpty("a  b\tc ", " \t");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
  EXPECT_TRUE(SplitNonEmpty("", " ").empty());
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

// ---------------------------------------------------------------- Random --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(77);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformReal();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(31);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformRange(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](uint64_t) { FAIL(); });
}

TEST(ThreadPoolTest, RunLanesWithMoreLanesThanThreads) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  pool.RunLanes(64, [&](uint32_t lane) {
    sum.fetch_add(lane, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64u * 63 / 2);
}

TEST(ThreadPoolTest, ManyConsecutiveBatches) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](uint64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 17);
}

TEST(ThreadPoolTest, ConcurrentIncrementIsAtomic) {
  ThreadPool pool(4);
  uint32_t value = 0;
  pool.ParallelFor(10000, [&](uint64_t) {
    std::atomic_ref<uint32_t>(value).fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(value, 10000u);
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  EXPECT_EQ(&DefaultThreadPool(), &DefaultThreadPool());
  EXPECT_GE(DefaultThreadPool().num_threads(), 2u);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskExceptionOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](uint64_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("task 37 died");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolStaysUsableAfterTaskException) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        pool.ParallelFor(200, [](uint64_t) { throw std::logic_error("boom"); }),
        std::logic_error);
    std::atomic<uint64_t> hits{0};
    pool.ParallelFor(200, [&](uint64_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 200u);
  }
}

TEST(ThreadPoolTest, FirstExceptionWinsAndBatchStillDrains) {
  ThreadPool pool(4);
  std::atomic<uint64_t> ran{0};
  bool caught = false;
  try {
    pool.ParallelFor(1000, [&](uint64_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("every task throws");
    });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  // Some tasks may have been skipped after the first throw, but the batch
  // drained: ParallelFor returned, and the pool accepts new work.
  EXPECT_GE(ran.load(), 1u);
  std::atomic<uint64_t> after{0};
  pool.ParallelFor(64, [&](uint64_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 64u);
}

TEST(ThreadPoolTest, DestructorRightAfterParallelForIsSafe) {
  // Shutdown-while-recently-worked: a straggler worker must not touch a
  // dead batch. Construct/run/destroy in a tight loop to shake races out.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<uint64_t> hits{0};
    pool.ParallelFor(8, [&](uint64_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 8u);
    // pool destroyed immediately here
  }
}

TEST(ThreadPoolTest, DestructionWithExceptionInLastBatchIsSafe) {
  for (int round = 0; round < 25; ++round) {
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.ParallelFor(16, [](uint64_t) { throw std::runtime_error("x"); }),
        std::runtime_error);
    // pool destroyed with the failed batch as its last act
  }
}

// ---------------------------------------------------------- Cancellation --

TEST(CancellationTest, TokenStartsLiveAndLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTest, DefaultDeadlineNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_millis()));
}

TEST(CancellationTest, ZeroDeadlineIsAlreadyExpired) {
  const Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_millis(), 0.0);
}

TEST(CancellationTest, FutureDeadlineReportsRemaining) {
  const Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 1000.0);
  EXPECT_LE(d.remaining_millis(), 60000.0);
}

TEST(CancellationTest, ContextCheckReportsWhere) {
  CancelContext ctx;
  EXPECT_TRUE(ctx.Check("round 3").ok());

  ctx.deadline = Deadline::AfterMillis(0);
  const Status expired = ctx.Check("round 3");
  EXPECT_TRUE(expired.IsDeadlineExceeded());
  EXPECT_NE(expired.message().find("round 3"), std::string::npos);
}

TEST(CancellationTest, TokenWinsOverExpiredDeadline) {
  CancelToken token;
  token.Cancel();
  CancelContext ctx;
  ctx.token = &token;
  ctx.deadline = Deadline::AfterMillis(0);
  // Both fired; the explicit caller action is reported, not the timeout.
  EXPECT_TRUE(ctx.Check("boundary").IsCancelled());
}

}  // namespace
}  // namespace kcore
