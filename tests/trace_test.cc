// simprof / trace-schema tests: golden chrome-trace JSON for a tiny fixed
// graph, high-water memory accounting against the device's
// cudaMemGetInfo-analogue queries, the trace-on vs trace-off modeled-time
// bit-identity guard, kernel-span sums vs Metrics phase totals, NVTX-range
// and fault-flow presence, VETGA and multi-GPU timeline shape, and the
// kernel summary table.
//
// The golden file lives next to this source (tests/golden/); regenerate
// with KCORE_UPDATE_GOLDEN=1 after an intentional schema change.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/gpu_peel.h"
#include "core/multi_gpu_peel.h"
#include "cusim/device.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "perf/trace.h"
#include "test_graphs.h"
#include "vetga/vetga.h"

namespace kcore {
namespace {

using testing::PaperFigureGraph;

/// Small geometry: few blocks so the golden file stays reviewable, and the
/// modeled schedule is deterministic under a single-threaded pool.
GpuPeelOptions TinyOptions() {
  GpuPeelOptions options;
  options.num_blocks = 2;
  options.block_dim = 64;
  return options;
}

sim::DeviceOptions TinyDeviceOptions(ThreadPool* pool, bool profile) {
  sim::DeviceOptions options;
  options.pool = pool;
  options.profile = profile;
  return options;
}

/// Runs the paper-figure graph on a profiled tiny device and returns the
/// device (so tests can inspect both the trace and the memory watermarks).
struct ProfiledRun {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<sim::Device> device;
  DecomposeResult result;
};

ProfiledRun RunProfiledPaperFigure() {
  ProfiledRun run;
  run.pool = std::make_unique<ThreadPool>(1);
  run.device = std::make_unique<sim::Device>(
      TinyDeviceOptions(run.pool.get(), /*profile=*/true));
  GpuPeelDecomposer decomposer(run.device.get(), TinyOptions());
  auto result = decomposer.Decompose(PaperFigureGraph().graph);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) run.result = *std::move(result);
  return run;
}

std::string GoldenPath() {
  std::string path = __FILE__;
  path = path.substr(0, path.find_last_of('/'));
  return path + "/golden/trace_paper_figure.json";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  return content;
}

/// Structural JSON sanity without a parser: brace/bracket balance outside
/// string literals, and no trailing garbage.
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceSchema, GoldenChromeTraceForPaperFigure) {
  ProfiledRun run = RunProfiledPaperFigure();
  const std::string json = run.device->profiler()->trace().ToChromeJson();
  ExpectBalancedJson(json);

  const std::string golden_path = GoldenPath();
  if (std::getenv("KCORE_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(golden_path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << golden_path;
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  const std::string golden = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path
      << " — regenerate with KCORE_UPDATE_GOLDEN=1";
  EXPECT_EQ(json, golden)
      << "trace schema drifted from " << golden_path
      << " — if intentional, regenerate with KCORE_UPDATE_GOLDEN=1";
}

TEST(TraceSchema, GoldenRunIsDeterministic) {
  // The golden test is only meaningful if two identical runs serialize
  // identically (single-threaded pool => stable block schedule).
  ProfiledRun a = RunProfiledPaperFigure();
  ProfiledRun b = RunProfiledPaperFigure();
  EXPECT_EQ(a.device->profiler()->trace().ToChromeJson(),
            b.device->profiler()->trace().ToChromeJson());
}

TEST(TraceSchema, ProfilingOffIsBitIdenticalInModeledTime) {
  ThreadPool pool(1);
  auto run = [&](bool profile) {
    sim::Device device(TinyDeviceOptions(&pool, profile));
    GpuPeelDecomposer decomposer(&device, TinyOptions());
    auto result = decomposer.Decompose(PaperFigureGraph().graph);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->metrics.modeled_ms;
  };
  const double off = run(false);
  const double on = run(true);
  // Bit-identical, not merely close: the profiler hooks must never touch
  // the modeled clock or the counters.
  EXPECT_EQ(off, on);
}

TEST(TraceSchema, WriteTraceFailsWhenProfilingOff) {
  sim::Device device;
  const Status status = device.WriteTrace("/tmp/should_not_exist.json");
  EXPECT_FALSE(status.ok());
}

TEST(TraceSchema, KernelSpanSumsMatchMetricsPhaseTotals) {
  const CsrGraph graph =
      BuildUndirectedGraph(GenerateErdosRenyi(400, 1600, 21));
  sim::DeviceOptions device_options;
  device_options.profile = true;
  sim::Device device(device_options);
  GpuPeelOptions options;
  options.num_blocks = 8;
  options.block_dim = 128;
  GpuPeelDecomposer decomposer(&device, options);
  auto result = decomposer.Decompose(graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Trace& trace = device.profiler()->trace();
  const Metrics& m = result->metrics;
  const double scan_ms = trace.TotalDurNs(kTraceCatKernel, "scan") / 1e6;
  const double loop_ms = trace.TotalDurNs(kTraceCatKernel, "loop") / 1e6;
  const double compact_ms =
      trace.TotalDurNs(kTraceCatKernel, "compact") / 1e6;
  // The acceptance bound is 1%; the construction makes them exactly equal
  // (a kernel span *is* the modeled delta its charge() banked).
  EXPECT_NEAR(scan_ms, m.scan_ms, 0.01 * m.scan_ms + 1e-9);
  EXPECT_NEAR(loop_ms, m.loop_ms, 0.01 * m.loop_ms + 1e-9);
  EXPECT_NEAR(compact_ms, m.compact_ms, 0.01 * m.compact_ms + 1e-9);
  EXPECT_GT(scan_ms, 0.0);
  EXPECT_GT(loop_ms, 0.0);
}

TEST(TraceSchema, HighWaterCounterMatchesDeviceWatermarks) {
  sim::DeviceOptions options;
  options.profile = true;
  sim::Device device(options);
  {
    auto a = device.Alloc<uint32_t>(1000, "a");
    ASSERT_TRUE(a.ok());
    auto b = device.Alloc<uint64_t>(500, "b");
    ASSERT_TRUE(b.ok());
    // b freed here, then a.
  }
  auto c = device.Alloc<uint8_t>(64, "c");
  ASSERT_TRUE(c.ok());

  // Replay the device_mem counter series; its running maximum must equal
  // the device's peak watermark and its last value the current usage
  // (the cudaMemGetInfo analogues).
  const Trace& trace = device.profiler()->trace();
  double max_live = 0.0;
  double last_live = -1.0;
  size_t samples = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase != 'C' || e.name != "device_mem") continue;
    ++samples;
    ASSERT_EQ(e.args.size(), 1u);
    const double live = std::stod(e.args[0].second);
    max_live = std::max(max_live, live);
    last_live = live;
  }
  EXPECT_EQ(samples, 5u);  // allocs a, b; frees b, a; alloc c (still live).
  EXPECT_EQ(static_cast<uint64_t>(max_live), device.peak_bytes());
  // c is still live: 64 bytes.
  EXPECT_EQ(static_cast<uint64_t>(last_live), device.current_bytes());
  EXPECT_EQ(device.current_bytes(), 64u);
}

TEST(TraceSchema, PhaseRangesPresent) {
  ProfiledRun run = RunProfiledPaperFigure();
  const Trace& trace = run.device->profiler()->trace();
  EXPECT_GT(trace.TotalDurNs(kTraceCatRange, "scan"), 0.0);
  EXPECT_GT(trace.TotalDurNs(kTraceCatRange, "loop"), 0.0);
  // Every scan range wraps exactly its scan kernel launch, so the range
  // total can never undercut the kernel total.
  EXPECT_GE(trace.TotalDurNs(kTraceCatRange, "scan"),
            trace.TotalDurNs(kTraceCatKernel, "scan"));
}

TEST(TraceSchema, RetryFlowEventsUnderFaults) {
  sim::DeviceOptions options;
  options.profile = true;
  options.fault_spec = "launch_fail@2";
  sim::Device device(options);
  GpuPeelDecomposer decomposer(&device, TinyOptions());
  auto result = decomposer.Decompose(PaperFigureGraph().graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->metrics.retries, 1u);

  bool saw_begin = false;
  bool saw_end = false;
  uint64_t begin_id = 0;
  uint64_t end_id = 1;
  for (const TraceEvent& e : device.profiler()->trace().events()) {
    if (e.name != "retry") continue;
    if (e.phase == 's') {
      saw_begin = true;
      begin_id = e.flow_id;
    }
    if (e.phase == 'f') {
      saw_end = true;
      end_id = e.flow_id;
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_EQ(begin_id, end_id);  // one arrow, both ends share the id
}

TEST(TraceSchema, VetgaTimelineHasPrimitiveSpansAndRounds) {
  VetgaConfig config;
  Trace trace;
  config.trace = &trace;
  auto result = RunVetga(PaperFigureGraph().graph, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(trace.empty());

  EXPECT_GT(trace.TotalDurNs(kTraceCatKernel, "vt_compare_mask"), 0.0);
  EXPECT_GT(trace.TotalDurNs(kTraceCatKernel, "vt_nonzero"), 0.0);
  EXPECT_GT(trace.TotalDurNs(kTraceCatKernel, "vt_scatter"), 0.0);
  // k_max = 3 => rounds k=0..3.
  EXPECT_GT(trace.TotalDurNs(kTraceCatRange, "round k=0"), 0.0);
  EXPECT_GT(trace.TotalDurNs(kTraceCatRange, "round k=3"), 0.0);
  // The primitive spans tile VETGA's modeled clock (every charge is
  // spanned), so their sum must stay within the run's modeled total.
  const double spans_ms = trace.TotalDurNs(kTraceCatKernel) / 1e6;
  EXPECT_LE(spans_ms, result->metrics.modeled_ms * 1.0001);
  EXPECT_GT(spans_ms, 0.5 * result->metrics.modeled_ms);
  // The vetga label wins over the device's default "gpu0".
  EXPECT_NE(trace.ToChromeJson().find("\"vetga\""), std::string::npos);
}

TEST(TraceSchema, MultiGpuTimelineUsesOnePidPerDevice) {
  MultiGpuOptions options;
  options.num_workers = 2;
  Trace trace;
  options.trace = &trace;
  auto result = RunMultiGpuPeel(PaperFigureGraph().graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(trace.empty());

  bool saw_pid[3] = {false, false, false};
  bool saw_subround = false;
  bool saw_round_range = false;
  for (const TraceEvent& e : trace.events()) {
    if (e.pid < 3) saw_pid[e.pid] = true;
    if (e.phase == 'X' && e.cat == kTraceCatKernel &&
        e.name.rfind("subround", 0) == 0) {
      saw_subround = true;
      EXPECT_GE(e.pid, 1u);  // subrounds belong to workers, not the master
    }
    if (e.phase == 'X' && e.cat == kTraceCatRange &&
        e.name.rfind("round k=", 0) == 0) {
      saw_round_range = true;
      EXPECT_EQ(e.pid, 0u);  // rounds belong to the master
    }
  }
  EXPECT_TRUE(saw_pid[0]);
  EXPECT_TRUE(saw_pid[1]);
  EXPECT_TRUE(saw_pid[2]);
  EXPECT_TRUE(saw_subround);
  EXPECT_TRUE(saw_round_range);
  const std::string json = trace.ToChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"master\""), std::string::npos);
  EXPECT_NE(json.find("\"worker0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker1\""), std::string::npos);
}

TEST(TraceSchema, KernelSummaryTableAggregates) {
  ProfiledRun run = RunProfiledPaperFigure();
  const Trace& trace = run.device->profiler()->trace();
  const auto stats = trace.KernelStats();
  ASSERT_GE(stats.size(), 2u);
  // Sorted by descending total time.
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GE(stats[i - 1].total_ns, stats[i].total_ns);
  }
  // scan and loop launch once per round; per-block sub-spans (cat "block")
  // must NOT appear as summary rows.
  for (const auto& s : stats) {
    EXPECT_EQ(s.name.find(" b"), std::string::npos) << s.name;
  }
  const std::string table = trace.KernelSummaryTable();
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("scan"), std::string::npos);
  EXPECT_NE(table.find("loop"), std::string::npos);
}

TEST(TraceSchema, JsonEscapesAndMetadataShape) {
  Trace trace;
  trace.SetProcessName(0, "quote\"back\\slash\nnewline");
  trace.AddInstant("mark", kTraceCatRecovery, 0, 1, 5.0);
  const std::string json = trace.ToChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"),
            std::string::npos);
  // One metadata event + one instant.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"M\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), 1u);
}

}  // namespace
}  // namespace kcore
