// Tests for the GPU-resident batched incremental maintenance engine
// (core/incremental_core.h): exactness against fresh BZ after every batch,
// locality of the affected region, overlay compaction, the full-re-peel
// escape hatch, cancellation/epoch atomicity, and the fault matrix
// (bitflip -> epoch rollback, device loss -> exact CPU fallback).
#include "core/incremental_core.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/random.h"
#include "core/gpu_peel.h"
#include "cpu/bz.h"
#include "cpu/dynamic_core.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"

namespace kcore {
namespace {

/// Small geometry so hundreds of simulated launches stay in the tier-1
/// budget; geometry never changes core numbers, only modeled time.
IncrementalOptions SmallOptions() {
  IncrementalOptions options;
  options.num_blocks = 4;
  options.block_dim = 64;
  options.repeel.num_blocks = 4;
  options.repeel.block_dim = 64;
  return options;
}

CsrGraph SeedGraph(uint64_t seed, uint32_t n = 60, uint64_t m = 150) {
  return BuildUndirectedGraph(GenerateErdosRenyi(n, m, seed));
}

/// Mirror of the engine's committed edge set, used to generate batches that
/// are valid under sequential semantics and to recompute the BZ oracle.
class GraphMirror {
 public:
  explicit GraphMirror(const CsrGraph& g) : n_(g.NumVertices()) {
    for (VertexId v = 0; v < n_; ++v) {
      for (VertexId u : g.Neighbors(v)) {
        if (v < u) edges_.insert({v, u});
      }
    }
  }

  /// Generates a valid batch: each update judged against the net state so
  /// far (inserts of absent pairs, deletes of present ones).
  UpdateBatch RandomBatch(Rng& rng, size_t size, double insert_bias = 0.5) {
    UpdateBatch batch;
    std::set<std::pair<VertexId, VertexId>> state = edges_;
    while (batch.size() < size) {
      const bool insert =
          rng.UniformInt(1000) < static_cast<uint64_t>(insert_bias * 1000);
      if (insert) {
        const VertexId u = static_cast<VertexId>(rng.UniformInt(n_));
        const VertexId v = static_cast<VertexId>(rng.UniformInt(n_));
        if (u == v) continue;
        const auto key = std::minmax(u, v);
        if (state.count({key.first, key.second}) != 0) continue;
        state.insert({key.first, key.second});
        batch.push_back(EdgeUpdate::Insert(u, v));
      } else {
        if (state.empty()) continue;
        auto it = state.begin();
        std::advance(it, rng.UniformInt(state.size()));
        batch.push_back(EdgeUpdate::Remove(it->first, it->second));
        state.erase(it);
      }
    }
    return batch;
  }

  /// Applies a committed batch to the mirror.
  void Apply(const UpdateBatch& batch) {
    for (const EdgeUpdate& e : batch) {
      const auto key = std::minmax(e.u, e.v);
      if (e.kind == EdgeUpdate::Kind::kInsert) {
        edges_.insert({key.first, key.second});
      } else {
        edges_.erase({key.first, key.second});
      }
    }
  }

  CsrGraph ToGraph() const {
    EdgeList list;
    for (const auto& [u, v] : edges_) list.push_back({u, v});
    return BuildUndirectedGraphWithVertexCount(list, n_);
  }

  size_t num_edges() const { return edges_.size(); }

 private:
  VertexId n_;
  std::set<std::pair<VertexId, VertexId>> edges_;
};

/// Disjoint union of `num_cliques` cliques of `clique_size` vertices:
/// coreness is uniform (clique_size - 1) but the graph is shattered into
/// components, so a single cross- or intra-clique update provably affects
/// at most two cliques — the shape that pins down locality bounds.
CsrGraph CliqueUnionGraph(uint32_t num_cliques, uint32_t clique_size) {
  EdgeList list;
  for (uint32_t c = 0; c < num_cliques; ++c) {
    const VertexId base = c * clique_size;
    for (uint32_t i = 0; i < clique_size; ++i) {
      for (uint32_t j = i + 1; j < clique_size; ++j) {
        list.push_back({base + i, base + j});
      }
    }
  }
  return BuildUndirectedGraphWithVertexCount(list,
                                             num_cliques * clique_size);
}

std::vector<VertexId> DiffVertices(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < a.size(); ++v) {
    if (a[v] != b[v]) out.push_back(v);
  }
  return out;
}

TEST(IncrementalCoreTest, RandomBatchesMatchFreshBzAfterEveryCommit) {
  const CsrGraph initial = SeedGraph(11);
  GraphMirror mirror(initial);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(77);
  for (int round = 0; round < 8; ++round) {
    const UpdateBatch batch = mirror.RandomBatch(rng, 6);
    const std::vector<uint32_t> before = (*engine)->core();
    auto result = (*engine)->ApplyUpdates(batch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    mirror.Apply(batch);
    const std::vector<uint32_t> oracle = RunBz(mirror.ToGraph()).core;
    ASSERT_EQ(result->core, oracle) << "round " << round;
    ASSERT_EQ((*engine)->core(), oracle);
    ASSERT_EQ(result->changed, DiffVertices(before, oracle))
        << "round " << round;
    ASSERT_EQ(result->epoch, static_cast<uint64_t>(round + 1));
    ASSERT_FALSE(result->degraded);
  }
}

TEST(IncrementalCoreTest, InsertOnlyAndDeleteOnlyBatches) {
  const CsrGraph initial = SeedGraph(23, 50, 120);
  GraphMirror mirror(initial);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(5);
  for (const double bias : {1.0, 0.0, 1.0, 0.0}) {
    const UpdateBatch batch = mirror.RandomBatch(rng, 5, bias);
    auto result = (*engine)->ApplyUpdates(batch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    mirror.Apply(batch);
    ASSERT_EQ(result->core, RunBz(mirror.ToGraph()).core);
  }
}

TEST(IncrementalCoreTest, InsertThenRemoveSameEdgeWithinBatchIsValid) {
  const CsrGraph initial = SeedGraph(31);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Pick a pair that is absent initially.
  VertexId u = 0, v = 1;
  [&] {
    for (u = 0; u < initial.NumVertices(); ++u) {
      for (v = u + 1; v < initial.NumVertices(); ++v) {
        const auto nbrs = initial.Neighbors(u);
        if (!std::binary_search(nbrs.begin(), nbrs.end(), v)) return;
      }
    }
  }();
  const UpdateBatch batch = {EdgeUpdate::Insert(u, v),
                             EdgeUpdate::Remove(u, v)};
  const std::vector<uint32_t> before = (*engine)->core();
  auto result = (*engine)->ApplyUpdates(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, before);  // net no-op
  EXPECT_TRUE(result->changed.empty());
  EXPECT_EQ(result->epoch, 1u);
}

TEST(IncrementalCoreTest, InvalidBatchIsRejectedAtomically) {
  const CsrGraph initial = SeedGraph(7);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<uint32_t> before = (*engine)->core();

  // Self-loop.
  auto r1 = (*engine)->ApplyUpdates(
      UpdateBatch{EdgeUpdate::Insert(3, 3)});
  EXPECT_TRUE(r1.status().IsInvalidArgument());
  // Out of range.
  auto r2 = (*engine)->ApplyUpdates(
      UpdateBatch{EdgeUpdate::Insert(0, initial.NumVertices())});
  EXPECT_TRUE(r2.status().IsInvalidArgument());
  // Double insert of the same absent pair within one batch: the second one
  // sees it present under sequential semantics.
  VertexId u = 0, v = 0;
  for (u = 0; v == 0 && u < initial.NumVertices(); ++u) {
    for (VertexId w = u + 1; w < initial.NumVertices(); ++w) {
      const auto nbrs = initial.Neighbors(u);
      if (!std::binary_search(nbrs.begin(), nbrs.end(), w)) {
        v = w;
        break;
      }
    }
  }
  --u;
  auto r3 = (*engine)->ApplyUpdates(
      UpdateBatch{EdgeUpdate::Insert(u, v), EdgeUpdate::Insert(v, u)});
  EXPECT_TRUE(r3.status().IsFailedPrecondition()) << r3.status().ToString();
  // Remove of an edge made absent earlier in the batch.
  auto r4 = (*engine)->ApplyUpdates(
      UpdateBatch{EdgeUpdate::Insert(u, v), EdgeUpdate::Remove(u, v),
                  EdgeUpdate::Remove(u, v)});
  EXPECT_TRUE(r4.status().IsNotFound()) << r4.status().ToString();

  // Nothing was applied.
  EXPECT_EQ((*engine)->core(), before);
  EXPECT_EQ((*engine)->epoch(), 0u);
  // The engine still works after rejections.
  auto ok = (*engine)->ApplyUpdates(UpdateBatch{EdgeUpdate::Insert(u, v)});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->epoch, 1u);
}

TEST(IncrementalCoreTest, EmptyBatchCommitsAnEpoch) {
  const CsrGraph initial = SeedGraph(3);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = (*engine)->ApplyUpdates(UpdateBatch{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, 1u);
  EXPECT_TRUE(result->changed.empty());
  EXPECT_EQ(result->core, (*engine)->core());
}

TEST(IncrementalCoreTest, AffectedRegionIsLocalOnSmallBatches) {
  // 30 disjoint 10-cliques: an update reaches at most the two cliques its
  // endpoints live in (the subcore walk cannot cross components), so each
  // batch below must stay under ~20 affected vertices out of 300.
  const CsrGraph initial = CliqueUnionGraph(30, 10);
  GraphMirror mirror(initial);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const UpdateBatch batches[] = {
      {EdgeUpdate::Insert(0, 10)},   // bridge cliques 0 and 1
      {EdgeUpdate::Remove(0, 10)},   // and remove the bridge again
      {EdgeUpdate::Remove(21, 22)},  // drop an edge inside clique 2
      {EdgeUpdate::Insert(35, 47)},  // bridge cliques 3 and 4
  };
  uint64_t max_affected = 0;
  for (const UpdateBatch& batch : batches) {
    auto result = (*engine)->ApplyUpdates(batch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    mirror.Apply(batch);
    ASSERT_EQ(result->core, RunBz(mirror.ToGraph()).core);
    EXPECT_FALSE(result->full_repeel);
    max_affected = std::max(max_affected, result->affected);
  }
  EXPECT_LE(max_affected, 21u);  // two cliques + the bridge endpoints
  EXPECT_GT(max_affected, 0u);
}

TEST(IncrementalCoreTest, OverlayCompactionPreservesExactness) {
  const CsrGraph initial = SeedGraph(13, 40, 80);
  GraphMirror mirror(initial);
  IncrementalOptions options = SmallOptions();
  options.compact_threshold = 0.02;  // merge after nearly every batch
  // Uniform ER coreness makes the subcore walk span most of the graph;
  // disable the escape hatch so batches stay on the incremental path and
  // actually grow the overlay.
  options.full_repeel_fraction = 1.0;
  auto engine =
      IncrementalCoreEngine::Create(initial, options, sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(99);
  bool compacted_at_least_once = false;
  for (int round = 0; round < 6; ++round) {
    const UpdateBatch batch = mirror.RandomBatch(rng, 4, 0.7);
    auto result = (*engine)->ApplyUpdates(batch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    mirror.Apply(batch);
    ASSERT_EQ(result->core, RunBz(mirror.ToGraph()).core)
        << "round " << round;
    if (result->compacted) {
      compacted_at_least_once = true;
      EXPECT_EQ(result->overlay_edges, 0u);
    }
  }
  EXPECT_TRUE(compacted_at_least_once);
}

TEST(IncrementalCoreTest, EscapeHatchFullRepeelStaysExact) {
  const CsrGraph initial = SeedGraph(29, 50, 130);
  GraphMirror mirror(initial);
  IncrementalOptions options = SmallOptions();
  // Any nontrivial affected region trips the escape immediately.
  options.full_repeel_fraction = 0.02;
  auto engine =
      IncrementalCoreEngine::Create(initial, options, sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(55);
  const UpdateBatch batch = mirror.RandomBatch(rng, 8, 0.8);
  auto result = (*engine)->ApplyUpdates(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  mirror.Apply(batch);
  EXPECT_TRUE(result->full_repeel);
  ASSERT_EQ(result->core, RunBz(mirror.ToGraph()).core);
  // The engine recovers (re-attaches) and serves the next batch normally.
  const UpdateBatch next = mirror.RandomBatch(rng, 2);
  auto after = (*engine)->ApplyUpdates(next);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  mirror.Apply(next);
  ASSERT_EQ(after->core, RunBz(mirror.ToGraph()).core);
  EXPECT_EQ(after->epoch, 2u);
}

TEST(IncrementalCoreTest, CancelledBatchLeavesEpochUntouched) {
  const CsrGraph initial = SeedGraph(17);
  GraphMirror mirror(initial);
  IncrementalOptions options = SmallOptions();
  CancelToken token;
  CancelContext cancel;
  cancel.token = &token;
  options.cancel = &cancel;
  auto engine =
      IncrementalCoreEngine::Create(initial, options, sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<uint32_t> before = (*engine)->core();

  token.Cancel();
  Rng rng(1);
  const UpdateBatch batch = mirror.RandomBatch(rng, 4);
  auto result = (*engine)->ApplyUpdates(batch);
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ((*engine)->core(), before);
  EXPECT_EQ((*engine)->epoch(), 0u);

  // The same batch succeeds after the token clears (re-attach path).
  (*engine)->set_cancel(nullptr);
  auto retry = (*engine)->ApplyUpdates(batch);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  mirror.Apply(batch);
  ASSERT_EQ(retry->core, RunBz(mirror.ToGraph()).core);
  EXPECT_EQ(retry->epoch, 1u);
}

TEST(IncrementalCoreTest, DeadlineExpiryLeavesEpochUntouched) {
  const CsrGraph initial = SeedGraph(43);
  GraphMirror mirror(initial);
  IncrementalOptions options = SmallOptions();
  CancelContext cancel;
  cancel.deadline = Deadline::AfterMillis(0);
  options.cancel = &cancel;
  auto engine =
      IncrementalCoreEngine::Create(initial, options, sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(2);
  const UpdateBatch batch = mirror.RandomBatch(rng, 3);
  auto result = (*engine)->ApplyUpdates(batch);
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_EQ((*engine)->epoch(), 0u);
}

TEST(IncrementalCoreTest, BitflipOnCorenessRollsBackAndRecommits) {
  // 6 disjoint 6-cliques; the batch bridges cliques 0 and 1 only. The flip
  // hits vertex 30 (clique 5), which the batch never claims, so no refine
  // wave can repair it — the post-batch fixpoint validation must catch it
  // and roll back to the committed-epoch checkpoint. The re-attached device
  // re-injects the same flip every attempt, so after the retry budget the
  // engine degrades to the exact CPU path.
  const CsrGraph initial = CliqueUnionGraph(6, 6);
  GraphMirror mirror(initial);
  sim::DeviceOptions device;
  device.fault_spec = "bitflip:launch=1,alloc=inc_core,word=30,bit=7";
  auto engine =
      IncrementalCoreEngine::Create(initial, SmallOptions(), device);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const UpdateBatch batch = {EdgeUpdate::Insert(0, 6)};
  auto result = (*engine)->ApplyUpdates(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  mirror.Apply(batch);
  ASSERT_EQ(result->core, RunBz(mirror.ToGraph()).core);
  EXPECT_GE(result->metrics.levels_reexecuted, 1u)
      << "the injected flip should have forced an epoch rollback";
  EXPECT_TRUE(result->degraded)
      << "the per-attempt flip should exhaust the retry budget";
}

TEST(IncrementalCoreTest, DeviceLossFallsBackToExactCpuPath) {
  const CsrGraph initial = SeedGraph(47);
  GraphMirror mirror(initial);
  sim::DeviceOptions device;
  device.fault_spec = "device_lost@launch=1";
  auto engine =
      IncrementalCoreEngine::Create(initial, SmallOptions(), device);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(21);
  const UpdateBatch batch = mirror.RandomBatch(rng, 4);
  auto result = (*engine)->ApplyUpdates(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  mirror.Apply(batch);
  EXPECT_TRUE(result->degraded);
  EXPECT_GE(result->metrics.devices_lost, 1u);
  ASSERT_EQ(result->core, RunBz(mirror.ToGraph()).core);
  EXPECT_EQ(result->epoch, 1u);
}

TEST(IncrementalCoreTest, DeviceLossSurfacesWhenFallbackDisabled) {
  const CsrGraph initial = SeedGraph(53);
  GraphMirror mirror(initial);
  sim::DeviceOptions device;
  device.fault_spec = "device_lost@launch=1";
  IncrementalOptions options = SmallOptions();
  options.cpu_fallback = false;
  auto engine = IncrementalCoreEngine::Create(initial, options, device);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(22);
  const UpdateBatch batch = mirror.RandomBatch(rng, 4);
  auto result = (*engine)->ApplyUpdates(batch);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ((*engine)->epoch(), 0u);
  // Explicit CPU application still works and commits.
  auto cpu = (*engine)->ApplyUpdatesCpu(batch);
  ASSERT_TRUE(cpu.ok()) << cpu.status().ToString();
  mirror.Apply(batch);
  EXPECT_TRUE(cpu->degraded);
  ASSERT_EQ(cpu->core, RunBz(mirror.ToGraph()).core);
}

TEST(IncrementalCoreTest, MatchesCpuDynamicOracleChangedSets) {
  const CsrGraph initial = SeedGraph(61, 50, 110);
  GraphMirror mirror(initial);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  DynamicKCore oracle(initial);
  Rng rng(8);
  for (int round = 0; round < 5; ++round) {
    const UpdateBatch batch = mirror.RandomBatch(rng, 4);
    auto gpu = (*engine)->ApplyUpdates(batch);
    ASSERT_TRUE(gpu.ok()) << gpu.status().ToString();
    auto cpu = oracle.ApplyBatch(batch);
    ASSERT_TRUE(cpu.ok()) << cpu.status().ToString();
    mirror.Apply(batch);
    ASSERT_EQ(gpu->core, oracle.core()) << "round " << round;
    ASSERT_EQ(gpu->changed, *cpu) << "round " << round;
  }
}

TEST(IncrementalCoreTest, SmallBatchIsModeledFasterThanFullRepeel) {
  // The headline claim at test scale: maintaining coreness through a small
  // batch costs far less modeled time than re-peeling from scratch (the
  // bench validates the >=10x figure on roster graphs).
  const CsrGraph initial =
      BuildUndirectedGraph(GenerateErdosRenyi(400, 1200, 67));
  GraphMirror mirror(initial);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(14);
  const UpdateBatch batch = mirror.RandomBatch(rng, 2);
  auto result = (*engine)->ApplyUpdates(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  mirror.Apply(batch);
  ASSERT_FALSE(result->full_repeel);

  GpuPeelOptions full = SmallOptions().repeel;
  auto fresh = RunGpuPeel(mirror.ToGraph(), full);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_EQ(result->core, fresh->core);
  EXPECT_LT(result->metrics.modeled_ms, fresh->metrics.modeled_ms)
      << "incremental " << result->metrics.modeled_ms << "ms vs full "
      << fresh->metrics.modeled_ms << "ms";
}

TEST(IncrementalCoreTest, KnownCoreSkipsEagerDecomposition) {
  const CsrGraph initial = SeedGraph(71);
  const std::vector<uint32_t> core = RunBz(initial).core;
  auto engine = IncrementalCoreEngine::Create(
      initial, SmallOptions(), sim::DeviceOptions(), &core);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->core(), core);
  std::vector<uint32_t> wrong_size(initial.NumVertices() + 1, 0);
  auto bad = IncrementalCoreEngine::Create(
      initial, SmallOptions(), sim::DeviceOptions(), &wrong_size);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(IncrementalCoreTest, CurrentGraphTracksCommittedEdits) {
  const CsrGraph initial = SeedGraph(83);
  GraphMirror mirror(initial);
  auto engine = IncrementalCoreEngine::Create(initial, SmallOptions(),
                                              sim::DeviceOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(30);
  const UpdateBatch batch = mirror.RandomBatch(rng, 5);
  ASSERT_TRUE((*engine)->ApplyUpdates(batch).ok());
  mirror.Apply(batch);
  const CsrGraph got = (*engine)->CurrentGraph();
  const CsrGraph want = mirror.ToGraph();
  ASSERT_EQ(got.NumVertices(), want.NumVertices());
  ASSERT_EQ(got.NumUndirectedEdges(), want.NumUndirectedEdges());
  for (VertexId v = 0; v < got.NumVertices(); ++v) {
    const auto a = got.Neighbors(v);
    const auto b = want.Neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << v;
  }
  EXPECT_EQ((*engine)->NumEdges(), mirror.num_edges());
}

TEST(IncrementalCoreTest, ValidatesOptions) {
  const CsrGraph initial = SeedGraph(5);
  IncrementalOptions options = SmallOptions();
  options.block_dim = 48;  // not a multiple of 32
  auto bad = IncrementalCoreEngine::Create(initial, options,
                                           sim::DeviceOptions());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  options = SmallOptions();
  options.full_repeel_fraction = 0.0;
  auto bad2 = IncrementalCoreEngine::Create(initial, options,
                                            sim::DeviceOptions());
  EXPECT_TRUE(bad2.status().IsInvalidArgument());
}

}  // namespace
}  // namespace kcore
