// Tests for degree-ordered vertex renumbering (src/graph/renumber.h): the
// permutation itself (bijection, degree-sorted, edge-preserving), the
// ToOriginal round trip, and composition with the single- and multi-GPU
// peeling pipelines — renumbered runs must reproduce the unrenumbered core
// numbers bit-exactly, including under simcheck and fault injection.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/gpu_peel.h"
#include "core/multi_gpu_peel.h"
#include "cpu/naive_ref.h"
#include "graph/renumber.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

GpuPeelOptions SmallGeometry(GpuPeelOptions base = {}) {
  base.num_blocks = 4;
  base.block_dim = 64;  // 2 warps
  return base;
}

sim::DeviceOptions SmallDevice() {
  sim::DeviceOptions device;
  device.num_sms = 4;
  return device;
}

// ----------------------------------------------------- the permutation ----

TEST(RenumberTest, PermutationIsDegreeSortedBijection) {
  for (const NamedGraph& g : FullSuite()) {
    const Renumbering rn = DegreeOrderRenumber(g.graph);
    const VertexId n = g.graph.NumVertices();
    ASSERT_EQ(rn.graph.NumVertices(), n) << g.name;
    ASSERT_EQ(rn.perm.size(), n) << g.name;
    ASSERT_EQ(rn.inverse.size(), n) << g.name;

    // perm and inverse are mutually inverse bijections on [0, n).
    std::vector<bool> seen(n, false);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_LT(rn.perm[v], n) << g.name;
      EXPECT_FALSE(seen[rn.perm[v]]) << g.name;
      seen[rn.perm[v]] = true;
      EXPECT_EQ(rn.inverse[rn.perm[v]], v) << g.name;
    }

    // New IDs are sorted by degree descending, ties by original ID
    // (stability makes the pass deterministic).
    for (VertexId new_id = 0; new_id + 1 < n; ++new_id) {
      const uint32_t d0 = rn.graph.Degree(new_id);
      const uint32_t d1 = rn.graph.Degree(new_id + 1);
      EXPECT_GE(d0, d1) << g.name << " at new_id=" << new_id;
      if (d0 == d1) {
        EXPECT_LT(rn.inverse[new_id], rn.inverse[new_id + 1])
            << g.name << " tie at new_id=" << new_id;
      }
    }
  }
}

TEST(RenumberTest, RelabeledGraphIsIsomorphic) {
  for (const NamedGraph& g : FullSuite()) {
    const Renumbering rn = DegreeOrderRenumber(g.graph);
    for (VertexId v = 0; v < g.graph.NumVertices(); ++v) {
      // The adjacency of v, pushed through perm, is exactly the adjacency
      // of perm[v] in the relabeled graph (both kept sorted ascending).
      std::vector<VertexId> mapped;
      for (VertexId u : g.graph.Neighbors(v)) mapped.push_back(rn.perm[u]);
      std::sort(mapped.begin(), mapped.end());
      const auto relabeled = rn.graph.Neighbors(rn.perm[v]);
      ASSERT_EQ(mapped.size(), relabeled.size()) << g.name << " v=" << v;
      EXPECT_TRUE(std::equal(mapped.begin(), mapped.end(), relabeled.begin()))
          << g.name << " v=" << v;
    }
  }
}

TEST(RenumberTest, ToOriginalRoundTrip) {
  const NamedGraph g = testing::PaperFigureGraph();
  const Renumbering rn = DegreeOrderRenumber(g.graph);
  // An array holding each new ID maps back to perm: out[old] = perm[old].
  std::vector<VertexId> new_ids(g.graph.NumVertices());
  for (VertexId v = 0; v < g.graph.NumVertices(); ++v) new_ids[v] = v;
  EXPECT_EQ(rn.ToOriginal(new_ids), rn.perm);
}

TEST(RenumberTest, StripedLayoutDealsRanksAcrossChunks) {
  // The GPU engine stripes at its block_dim so the scan's per-block ID
  // windows each get a stratified degree sample. Check the layout contract
  // on a hub-heavy graph: still a bijection, edge-preserving, degrees
  // non-increasing *within* each chunk (ranks are dealt to a chunk in
  // increasing order), and the heaviest vertices spread one-per-chunk
  // instead of packing into chunk 0.
  const NamedGraph g = testing::FullSuite().back();  // skew-hub roster
  const uint32_t chunk = 64;
  const Renumbering rn = DegreeOrderRenumber(g.graph, chunk);
  const VertexId n = g.graph.NumVertices();
  ASSERT_GT(n, 2 * chunk);
  const uint64_t chunks = (n + chunk - 1) / chunk;

  std::vector<bool> seen(n, false);
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_LT(rn.perm[v], n);
    EXPECT_FALSE(seen[rn.perm[v]]);
    seen[rn.perm[v]] = true;
    EXPECT_EQ(rn.inverse[rn.perm[v]], v);
  }
  for (VertexId id = 0; id + 1 < n; ++id) {
    if ((id + 1) % chunk == 0) continue;  // chunk boundary
    EXPECT_GE(rn.graph.Degree(id), rn.graph.Degree(id + 1))
        << "within-chunk order broken at new_id=" << id;
  }
  // Chunk-start IDs hold exactly the `chunks` heaviest ranks, in order.
  for (uint64_t c = 0; c + 1 < chunks; ++c) {
    EXPECT_GE(rn.graph.Degree(static_cast<VertexId>(c * chunk)),
              rn.graph.Degree(static_cast<VertexId>((c + 1) * chunk)))
        << "chunk-start order broken at chunk " << c;
  }
  // Edges survive the relabeling.
  for (VertexId v = 0; v < n; ++v) {
    std::vector<VertexId> mapped;
    for (VertexId u : g.graph.Neighbors(v)) mapped.push_back(rn.perm[u]);
    std::sort(mapped.begin(), mapped.end());
    const auto relabeled = rn.graph.Neighbors(rn.perm[v]);
    ASSERT_EQ(mapped.size(), relabeled.size()) << "v=" << v;
    EXPECT_TRUE(std::equal(mapped.begin(), mapped.end(), relabeled.begin()))
        << "v=" << v;
  }
}

TEST(RenumberTest, EmptyAndSingleVertexGraphs) {
  const Renumbering empty = DegreeOrderRenumber(CsrGraph());
  EXPECT_EQ(empty.graph.NumVertices(), 0u);
  EXPECT_TRUE(empty.perm.empty());

  const Renumbering one = DegreeOrderRenumber(
      CsrGraph(std::vector<EdgeIndex>{0, 0}, std::vector<VertexId>{}));
  EXPECT_EQ(one.graph.NumVertices(), 1u);
  EXPECT_EQ(one.perm, std::vector<VertexId>{0});
}

// -------------------------------------------------- pipeline round trip ----

TEST(RenumberPeelTest, GpuRenumberedMatchesUnrenumberedBitExactly) {
  for (const NamedGraph& g : FullSuite()) {
    const auto plain =
        RunGpuPeel(g.graph, SmallGeometry(), SmallDevice());
    ASSERT_TRUE(plain.ok()) << g.name << ": " << plain.status().ToString();
    const auto renumbered = RunGpuPeel(
        g.graph, SmallGeometry().WithRenumber(), SmallDevice());
    ASSERT_TRUE(renumbered.ok())
        << g.name << ": " << renumbered.status().ToString();
    EXPECT_EQ(renumbered->core, plain->core) << g.name;
    EXPECT_EQ(renumbered->core, RunNaiveReference(g.graph).core) << g.name;
  }
}

TEST(RenumberPeelTest, ComposesWithVariantsFusionAndExpand) {
  // Renumbering is a wrap around the whole pipeline, so it must compose
  // with the append/SM/VP ablations, scan->compact fusion, and the binned
  // expansion engine without disturbing the cores.
  std::vector<GpuPeelOptions> configs;
  for (const GpuPeelOptions& variant : GpuPeelOptions::AblationVariants()) {
    configs.push_back(SmallGeometry(variant).WithRenumber());
  }
  configs.push_back(SmallGeometry().WithRenumber().WithFusion());
  {
    GpuPeelOptions auto_expand =
        SmallGeometry().WithRenumber().WithExpand(ExpandStrategy::kAuto);
    auto_expand.block_expand_threshold = 32;
    configs.push_back(auto_expand);
  }
  const NamedGraph hub = testing::FullSuite().back();  // skew-hub roster
  const std::vector<uint32_t> oracle = RunNaiveReference(hub.graph).core;
  for (const GpuPeelOptions& options : configs) {
    auto result = RunGpuPeel(hub.graph, options, SmallDevice());
    ASSERT_TRUE(result.ok())
        << options.VariantName() << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << options.VariantName();
  }
}

TEST(RenumberPeelTest, MultiGpuRenumberedMatchesOracle) {
  for (const NamedGraph& g : FullSuite()) {
    MultiGpuOptions options;
    options.num_workers = 3;
    options.renumber = true;
    auto result = RunMultiGpuPeel(g.graph, options);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, RunNaiveReference(g.graph).core) << g.name;
  }
}

TEST(RenumberPeelTest, SimcheckCleanOnRenumberedRun) {
  sim::DeviceOptions device = SmallDevice();
  device.check_mode = true;
  const NamedGraph g = testing::RandomSuite()[0];
  auto result =
      RunGpuPeel(g.graph, SmallGeometry().WithRenumber(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, RunNaiveReference(g.graph).core);
}

TEST(RenumberPeelTest, CheckpointRollbackValidatesOnRenumberedGraph) {
  // A bitflip under renumbering must be detected against the *renumbered*
  // graph (the wrap hands the inner pipeline a consistent CSR), rolled
  // back, and the permuted-back cores must still be exact.
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "bitflip:launch=5,word=0,bit=4";
  const NamedGraph g = testing::RandomSuite()[0];
  auto result =
      RunGpuPeel(g.graph, SmallGeometry().WithRenumber(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, RunNaiveReference(g.graph).core);
  EXPECT_GE(result->metrics.checkpoints_taken, 1u);
  EXPECT_GE(result->metrics.levels_reexecuted, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(RenumberPeelTest, DeviceLossDegradesAndStillMapsBack) {
  // CPU fallback happens inside the wrap, on the renumbered graph; the
  // combined warm-start cores must come back in original-ID space.
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "device_lost@launch=6";
  const NamedGraph g = testing::RandomSuite()[0];
  auto result =
      RunGpuPeel(g.graph, SmallGeometry().WithRenumber(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, RunNaiveReference(g.graph).core);
  EXPECT_TRUE(result->metrics.degraded);
}

}  // namespace
}  // namespace kcore
