#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dcore.h"
#include "analysis/khcore.h"
#include "cpu/naive_ref.h"
#include "graph/digraph.h"
#include "test_graphs.h"

namespace kcore {
namespace {

// ------------------------------------------------------------- Digraph ----

TEST(DirectedGraphTest, BuildSeparatesDirections) {
  // 0 -> 1, 0 -> 2, 1 -> 2.
  const DirectedGraph g = BuildDirectedGraph({{0, 1}, {0, 2}, {1, 2}}, 3);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.OutDegree(2), 0u);
  EXPECT_EQ(g.InDegree(2), 2u);
}

TEST(DirectedGraphTest, DropsSelfLoopsAndDuplicates) {
  const DirectedGraph g =
      BuildDirectedGraph({{0, 1}, {0, 1}, {1, 1}, {1, 0}}, 2);
  EXPECT_EQ(g.NumEdges(), 2u);  // 0->1 and 1->0 survive
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(DirectedGraphTest, IsolatedTrailingVertices) {
  const DirectedGraph g = BuildDirectedGraph({{0, 1}}, 5);
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.InDegree(4), 0u);
}

// --------------------------------------------------------------- D-core ---

/// A directed 4-cycle plus a bidirected clique on {4,5,6}.
DirectedGraph DCoreFixture() {
  EdgeList arcs = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  for (uint32_t a : {4, 5, 6}) {
    for (uint32_t b : {4, 5, 6}) {
      if (a != b) arcs.push_back({a, b});
    }
  }
  arcs.push_back({0, 4});  // weak link into the clique
  return BuildDirectedGraph(arcs, 7);
}

TEST(DCoreTest, MembershipMatchesDefinition) {
  const DirectedGraph g = DCoreFixture();
  // (1,1)-core: both the cycle and the clique qualify.
  const auto core11 = ComputeDCoreMembers(g, 1, 1);
  EXPECT_EQ(std::count(core11.begin(), core11.end(), true), 7);
  // (2,2)-core: only the bidirected triangle.
  const auto core22 = ComputeDCoreMembers(g, 2, 2);
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_EQ(core22[v], v >= 4) << "v=" << v;
  }
  // (3,3)-core: empty.
  const auto core33 = ComputeDCoreMembers(g, 3, 3);
  EXPECT_EQ(std::count(core33.begin(), core33.end(), true), 0);
}

TEST(DCoreTest, MembershipIsMaximalAndValid) {
  // Property: every member of the (k,l)-core has indeg>=k and outdeg>=l
  // inside the membership set.
  Rng rng(5);
  EdgeList arcs;
  for (int i = 0; i < 1500; ++i) {
    const auto u = static_cast<VertexId>(rng.UniformInt(150));
    const auto v = static_cast<VertexId>(rng.UniformInt(150));
    if (u != v) arcs.push_back({u, v});
  }
  const DirectedGraph g = BuildDirectedGraph(arcs, 150);
  for (uint32_t k : {1u, 2u, 4u}) {
    for (uint32_t l : {1u, 3u}) {
      const auto members = ComputeDCoreMembers(g, k, l);
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (!members[v]) continue;
        uint32_t in = 0;
        uint32_t out = 0;
        for (VertexId u : g.InNeighbors(v)) in += members[u];
        for (VertexId u : g.OutNeighbors(v)) out += members[u];
        EXPECT_GE(in, k) << "k=" << k << " l=" << l << " v=" << v;
        EXPECT_GE(out, l) << "k=" << k << " l=" << l << " v=" << v;
      }
    }
  }
}

TEST(DCoreTest, DecompositionConsistentWithMembership) {
  const DirectedGraph g = DCoreFixture();
  const DCoreDecomposition decomposition = ComputeDCoreDecomposition(g, 1);
  for (uint32_t k : {1u, 2u}) {
    const auto members = ComputeDCoreMembers(g, k, 1);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const bool by_number =
          decomposition.in_any_core[v] && decomposition.k_number[v] >= k;
      EXPECT_EQ(by_number, members[v]) << "k=" << k << " v=" << v;
    }
  }
}

TEST(DCoreTest, OutBoundPeeling) {
  // Vertex 2 is a pure sink (outdeg 0): excluded from every (k,1)-core.
  const DirectedGraph g = BuildDirectedGraph({{0, 1}, {1, 0}, {0, 2}}, 3);
  const DCoreDecomposition d = ComputeDCoreDecomposition(g, 1);
  EXPECT_FALSE(d.in_any_core[2]);
  EXPECT_TRUE(d.in_any_core[0]);
  EXPECT_TRUE(d.in_any_core[1]);
  EXPECT_EQ(d.k_number[0], 1u);
  EXPECT_EQ(d.k_number[1], 1u);
}

// ------------------------------------------------------------ (k,h)-core --

TEST(KhCoreTest, HEqualsOneIsClassicCore) {
  for (const auto& g : {testing::PaperFigureGraph(), testing::CliqueGraph(5),
                        testing::CycleGraph(8), testing::StarGraph(6),
                        testing::TwoCliquesGraph(4, 6)}) {
    EXPECT_EQ(ComputeKhCores(g.graph, 1), RunNaiveReference(g.graph).core)
        << g.name;
  }
}

TEST(KhCoreTest, HEqualsOneOnRandomGraphs) {
  const auto g = BuildUndirectedGraph(GenerateErdosRenyi(80, 200, 9));
  EXPECT_EQ(ComputeKhCores(g, 1), RunNaiveReference(g).core);
}

TEST(KhCoreTest, StarGainsFromTwoHops) {
  // In a star, leaves see every other leaf within 2 hops: the whole star
  // becomes an n-vertex (k,2)-core with k = leaves.
  const auto g = testing::StarGraph(6).graph;
  const auto core2 = ComputeKhCores(g, 2);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(core2[v], 6u) << "v=" << v;
  }
}

TEST(KhCoreTest, MonotoneInH) {
  // Property: the (k,h)-core number never decreases with h (larger reach).
  const auto g = BuildUndirectedGraph(GenerateBarabasiAlbert(60, 2, 13));
  const auto h1 = ComputeKhCores(g, 1);
  const auto h2 = ComputeKhCores(g, 2);
  const auto h3 = ComputeKhCores(g, 3);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_LE(h1[v], h2[v]) << "v=" << v;
    EXPECT_LE(h2[v], h3[v]) << "v=" << v;
  }
}

TEST(KhCoreTest, HHopDegreeBasics) {
  const auto g = testing::PathGraph(5).graph;
  const std::vector<bool> all(5, true);
  EXPECT_EQ(HHopDegree(g, 0, 1, all), 1u);
  EXPECT_EQ(HHopDegree(g, 0, 2, all), 2u);
  EXPECT_EQ(HHopDegree(g, 2, 2, all), 4u);
  EXPECT_EQ(HHopDegree(g, 0, 10, all), 4u);
}

TEST(KhCoreTest, PathUnderTwoHops) {
  // Interior path vertices have 3-4 vertices within 2 hops; the (k,2)
  // peeling removes ends first. Verify against the definition.
  const auto g = testing::PathGraph(7).graph;
  const auto core = ComputeKhCores(g, 2);
  // All vertices end up with the same (k,2)-core number 2: once the ends
  // peel at k=2, the cascade consumes the whole path.
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(core[v], 2u) << "v=" << v;
}

}  // namespace
}  // namespace kcore
