// Tests for the degree-aware loop-phase expansion engine (DESIGN.md §8):
// the BlockBallotExclusiveScan primitive, core-number equivalence of every
// ExpandStrategy across the ablation variants (plain, simcheck, and under
// fault injection), bin accounting, the skewed-power-law generator, and the
// option-validation surface.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/gpu_peel.h"
#include "core/multi_gpu_peel.h"
#include "cpu/naive_ref.h"
#include "cusim/block.h"
#include "cusim/warp_scan.h"
#include "generators/generators.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

GpuPeelOptions SmallGeometry(GpuPeelOptions base = {}) {
  base.num_blocks = 4;
  base.block_dim = 64;  // 2 warps
  return base;
}

sim::DeviceOptions SmallDevice() {
  sim::DeviceOptions device;
  device.num_sms = 4;
  return device;
}

/// Small geometry with the block-bin threshold pulled down to the minimum,
/// so kAuto's block path actually fires on the miniature test graphs.
GpuPeelOptions SmallGeometryLowThreshold(GpuPeelOptions base = {}) {
  base = SmallGeometry(base);
  base.block_expand_threshold = 32;
  return base;
}

// ------------------------------------------ BlockBallotExclusiveScan ----

TEST(BlockBallotScanTest, MatchesBlockExclusiveScan) {
  Rng rng(17);
  for (uint32_t warps : {1u, 2u, 7u, 32u}) {
    const uint32_t dim = warps * sim::kWarpSize;
    std::vector<uint32_t> flags(dim);
    for (auto& f : flags) f = static_cast<uint32_t>(rng.UniformInt(2));
    std::vector<uint32_t> got(dim);
    std::vector<uint32_t> want(dim);
    sim::BlockCtx a(0, 1, dim, 48 << 10);
    sim::BlockCtx b(0, 1, dim, 48 << 10);
    const uint32_t got_total =
        sim::BlockBallotExclusiveScan(a, flags.data(), got.data());
    const uint32_t want_total =
        sim::BlockExclusiveScan(b, flags.data(), want.data());
    EXPECT_EQ(got_total, want_total) << "warps=" << warps;
    EXPECT_EQ(got, want) << "warps=" << warps;
  }
}

TEST(BlockBallotScanTest, AllZerosAndAllOnes) {
  const uint32_t dim = 4 * sim::kWarpSize;
  std::vector<uint32_t> flags(dim, 0);
  std::vector<uint32_t> exclusive(dim, 123);
  sim::BlockCtx zero(0, 1, dim, 48 << 10);
  EXPECT_EQ(sim::BlockBallotExclusiveScan(zero, flags.data(),
                                          exclusive.data()),
            0u);
  for (uint32_t x : exclusive) EXPECT_EQ(x, 0u);

  flags.assign(dim, 1);
  sim::BlockCtx ones(0, 1, dim, 48 << 10);
  EXPECT_EQ(sim::BlockBallotExclusiveScan(ones, flags.data(),
                                          exclusive.data()),
            dim);
  for (uint32_t i = 0; i < dim; ++i) EXPECT_EQ(exclusive[i], i);
}

TEST(BlockBallotScanTest, CheaperThanHillisSteeleBlockScan) {
  // The point of the primitive: ballot-scanning 0/1 flags per warp beats
  // HS-scanning them, so the block version should charge fewer scan steps.
  const uint32_t dim = 8 * sim::kWarpSize;
  std::vector<uint32_t> flags(dim, 1);
  std::vector<uint32_t> exclusive(dim);
  sim::BlockCtx ballot(0, 1, dim, 48 << 10);
  sim::BlockCtx hs(0, 1, dim, 48 << 10);
  sim::BlockBallotExclusiveScan(ballot, flags.data(), exclusive.data());
  sim::BlockExclusiveScan(hs, flags.data(), exclusive.data());
  EXPECT_LT(ballot.counters().scan_steps, hs.counters().scan_steps);
}

// ------------------------------- Strategy x variant core equivalence ----

struct StrategyCase {
  ExpandStrategy strategy;
  std::string name;
};

class ExpandStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(ExpandStrategyTest, MatchesOracleAcrossVariantsOnFullSuite) {
  // Every expansion granularity composes with every append / SM / VP
  // variant of Table II and must keep the exact core numbers.
  for (const GpuPeelOptions& variant : GpuPeelOptions::AblationVariants()) {
    const GpuPeelOptions options =
        SmallGeometryLowThreshold(variant.WithExpand(GetParam().strategy));
    for (const NamedGraph& g : FullSuite()) {
      const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
      auto result = RunGpuPeel(g.graph, options, SmallDevice());
      ASSERT_TRUE(result.ok()) << g.name << " variant="
                               << variant.VariantName() << ": "
                               << result.status().ToString();
      EXPECT_EQ(result->core, oracle)
          << g.name << " variant=" << variant.VariantName();
    }
  }
}

TEST_P(ExpandStrategyTest, SimcheckClean) {
  // KCORE_SIMCHECK=1 analogue: the sanitizer watches every instrumented
  // access. The new bins must be race-free under the model — block_list
  // stores land on disjoint atomically-reserved slots, and the hub-list
  // cursor is only read after the block-wide sync.
  sim::DeviceOptions device = SmallDevice();
  device.check_mode = true;
  const GpuPeelOptions options =
      SmallGeometryLowThreshold().WithExpand(GetParam().strategy);
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunGpuPeel(g.graph, options, device);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST_P(ExpandStrategyTest, BitflipIsRolledBackAndReexecuted) {
  // KCORE_FAULTS analogue: a one-shot bitflip in device memory must be
  // caught by post-round validation and repaired by checkpoint rollback
  // regardless of which expansion engine replays the rounds.
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "bitflip:launch=5,word=0,bit=4";
  auto result = RunGpuPeel(
      g, SmallGeometryLowThreshold().WithExpand(GetParam().strategy), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.levels_reexecuted, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST_P(ExpandStrategyTest, BinMetersCoverEveryFrontierVertex) {
  // Each popped frontier vertex is booked to exactly one bin, so the three
  // meters partition buffer_appends (each vertex is enqueued exactly once).
  const auto g = testing::RandomSuite()[2].graph;  // BA graph
  auto result = RunGpuPeel(
      g, SmallGeometryLowThreshold().WithExpand(GetParam().strategy),
      SmallDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Metrics& m = result->metrics;
  // Recovery replays rounds (double-booking bins) and the CPU fallback
  // books none, so the partition only holds on clean device rounds — an
  // ambient KCORE_FAULTS plan (the ci_check fault leg) skips it.
  if (m.levels_reexecuted == 0 && m.cpu_fallback_levels == 0) {
    EXPECT_EQ(m.counters.loop_bin_thread + m.counters.loop_bin_warp +
                  m.counters.loop_bin_block,
              m.counters.buffer_appends);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ExpandStrategyTest,
    ::testing::Values(StrategyCase{ExpandStrategy::kThread, "Thread"},
                      StrategyCase{ExpandStrategy::kWarp, "Warp"},
                      StrategyCase{ExpandStrategy::kBlock, "Block"},
                      StrategyCase{ExpandStrategy::kAuto, "Auto"}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.name;
    });

// ------------------------------------------------- Zero-cost-when-off ----

TEST(ExpandTest, WarpStrategyBooksOnlyTheWarpBin) {
  // expand=warp must be the pre-binning engine: no thread or block meter
  // may move (it dispatches to the original LoopKernel, whose only change
  // is the uncharged loop_bin_warp increment).
  for (const NamedGraph& g : FullSuite()) {
    auto result = RunGpuPeel(g.graph, SmallGeometry(), SmallDevice());
    ASSERT_TRUE(result.ok()) << g.name;
    const PerfCounters& c = result->metrics.counters;
    EXPECT_EQ(c.loop_bin_thread, 0u) << g.name;
    EXPECT_EQ(c.loop_bin_block, 0u) << g.name;
    EXPECT_EQ(c.loop_bin_warp, c.buffer_appends) << g.name;
  }
}

TEST(ExpandTest, PureStrategiesBookTheirOwnBin) {
  const auto g = testing::RandomSuite()[0].graph;
  auto thread = RunGpuPeel(
      g, SmallGeometry().WithExpand(ExpandStrategy::kThread), SmallDevice());
  auto block = RunGpuPeel(
      g, SmallGeometry().WithExpand(ExpandStrategy::kBlock), SmallDevice());
  ASSERT_TRUE(thread.ok() && block.ok());
  EXPECT_EQ(thread->metrics.counters.loop_bin_thread,
            thread->metrics.counters.buffer_appends);
  EXPECT_EQ(thread->metrics.counters.loop_bin_block, 0u);
  EXPECT_EQ(block->metrics.counters.loop_bin_block,
            block->metrics.counters.buffer_appends);
  EXPECT_EQ(block->metrics.counters.loop_bin_thread, 0u);
}

TEST(ExpandTest, AutoRoutesByDegree) {
  // Star with 40-degree hubs under threshold 32: leaves (deg 1) ride the
  // thread bin and every hub lands in the block bin; nothing is mid-sized.
  const auto g = testing::StarGraph(40).graph;
  auto result = RunGpuPeel(
      g, SmallGeometryLowThreshold().WithExpand(ExpandStrategy::kAuto),
      SmallDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PerfCounters& c = result->metrics.counters;
  EXPECT_EQ(c.loop_bin_thread, 40u);
  EXPECT_EQ(c.loop_bin_warp, 0u);
  EXPECT_EQ(c.loop_bin_block, 1u);
}

// ------------------------------------------- Skewed power-law dataset ----

TEST(SkewedPowerLawTest, ShapeAndDeterminism) {
  SkewedPowerLawOptions opt;
  opt.num_vertices = 5000;
  opt.tail_edges = 4000;
  opt.num_hubs = 3;
  opt.hub_degree = 500;
  const EdgeList a = GenerateSkewedPowerLaw(opt, 99);
  const EdgeList b = GenerateSkewedPowerLaw(opt, 99);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
  const CsrGraph g = BuildUndirectedGraphWithVertexCount(a, opt.num_vertices);
  // Hubs [0, num_hubs) must dominate the degree distribution: each was
  // given hub_degree distinct spokes on top of its power-law background.
  for (uint32_t h = 0; h < opt.num_hubs; ++h) {
    EXPECT_GE(g.Degree(h), opt.hub_degree) << "hub " << h;
  }
}

TEST(ExpandTest, AutoBeatsWarpOnSkewedGraph) {
  // The acceptance shape of the PR on a miniature version of the bench's
  // skew-hub dataset: identical cores, populated bins, and a faster loop
  // phase (hubs stop gating every warp-sized pass).
  SkewedPowerLawOptions opt;
  opt.num_vertices = 8000;
  opt.tail_edges = 6000;
  opt.num_hubs = 2;
  opt.hub_degree = 1500;
  const CsrGraph g = BuildUndirectedGraphWithVertexCount(
      GenerateSkewedPowerLaw(opt, 7), opt.num_vertices);

  GpuPeelOptions base;  // paper geometry: imbalance needs many blocks
  base.block_expand_threshold = 1024;
  auto warp = RunGpuPeel(g, base.WithExpand(ExpandStrategy::kWarp));
  auto aut = RunGpuPeel(g, base.WithExpand(ExpandStrategy::kAuto));
  ASSERT_TRUE(warp.ok() && aut.ok());
  EXPECT_EQ(warp->core, aut->core);
  const PerfCounters& c = aut->metrics.counters;
  EXPECT_GT(c.loop_bin_thread, 0u);
  EXPECT_GT(c.loop_bin_block, 0u);
  EXPECT_LT(aut->metrics.loop_ms, warp->metrics.loop_ms);
}

// ---------------------------------------------------------- Multi-GPU ----

TEST(ExpandTest, MultiGpuAutoMatchesOracleAndBinsPartition) {
  const auto g = testing::RandomSuite()[2].graph;  // BA graph (has hubs)
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  MultiGpuOptions options;
  options.num_workers = 3;
  options.expand_strategy = ExpandStrategy::kAuto;
  options.block_expand_threshold = 32;
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  const Metrics& m = result->metrics;
  // Same clean-round guard as BinMetersCoverEveryFrontierVertex: recovery
  // replays double-book the meters under an ambient fault plan.
  if (m.levels_reexecuted == 0 && m.cpu_fallback_levels == 0 &&
      !m.degraded) {
    EXPECT_GT(m.counters.loop_bin_thread, 0u);
    EXPECT_EQ(m.counters.loop_bin_thread + m.counters.loop_bin_warp +
                  m.counters.loop_bin_block,
              g.NumVertices());
  }
}

// --------------------------------------------------------- Validation ----

TEST(ExpandTest, RejectsTooManyWarpsForBlockScan) {
  // The block-cooperative bin stages warp totals through one warp, so
  // block_dim must stay within 32 warps — same limit as EC's block scan.
  for (ExpandStrategy strategy :
       {ExpandStrategy::kBlock, ExpandStrategy::kAuto}) {
    GpuPeelOptions options;
    options.block_dim = 32 * 64;  // 64 warps
    options.expand_strategy = strategy;
    EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, options)
                    .status()
                    .IsInvalidArgument())
        << ExpandStrategyName(strategy);
  }
}

TEST(ExpandTest, RejectsSubWarpBlockThreshold) {
  GpuPeelOptions options;
  options.expand_strategy = ExpandStrategy::kAuto;
  options.block_expand_threshold = 16;  // below the warp bin's floor
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ExpandTest, RejectsAutoWhenSharedMemoryIsExhausted) {
  // SM's staging buffer B plus auto's hub list must fit together: a B sized
  // to the previous limit no longer leaves room for the block_dim hub list.
  GpuPeelOptions options = GpuPeelOptions::Sm();
  options.expand_strategy = ExpandStrategy::kAuto;
  options.shared_buffer_capacity = 13000;  // fits alone, not with the list
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, options)
                  .status()
                  .IsInvalidArgument());
  options.expand_strategy = ExpandStrategy::kWarp;
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, options).ok());
}

TEST(ExpandTest, ParseAndNameRoundTrip) {
  for (ExpandStrategy strategy :
       {ExpandStrategy::kThread, ExpandStrategy::kWarp, ExpandStrategy::kBlock,
        ExpandStrategy::kAuto}) {
    ExpandStrategy parsed;
    ASSERT_TRUE(ParseExpandStrategy(ExpandStrategyName(strategy), &parsed));
    EXPECT_EQ(parsed, strategy);
  }
  ExpandStrategy unused = ExpandStrategy::kWarp;
  EXPECT_FALSE(ParseExpandStrategy("grid", &unused));
  EXPECT_EQ(unused, ExpandStrategy::kWarp);
}

}  // namespace
}  // namespace kcore
