#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/hierarchy.h"
#include "cpu/bz.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::NamedGraph;

CoreHierarchy Build(const CsrGraph& graph) {
  return BuildCoreHierarchy(graph, RunBz(graph).core);
}

TEST(HierarchyTest, EmptyGraph) {
  const CoreHierarchy h = BuildCoreHierarchy(CsrGraph(), {});
  EXPECT_TRUE(h.nodes.empty());
  EXPECT_TRUE(h.node_of.empty());
}

TEST(HierarchyTest, SingleCliqueIsOneNode) {
  const auto g = testing::CliqueGraph(6);
  const CoreHierarchy h = Build(g.graph);
  ASSERT_EQ(h.nodes.size(), 1u);
  EXPECT_EQ(h.nodes[0].k, 5u);
  EXPECT_EQ(h.nodes[0].parent, -1);
  EXPECT_EQ(h.nodes[0].vertices.size(), 6u);
}

TEST(HierarchyTest, TwoCliquesNesting) {
  // Cliques of size 5 (core 4) and 8 (core 7) joined by one edge: the
  // 7-core component nests inside the 4-level component of everything.
  const auto g = testing::TwoCliquesGraph(5, 8);
  const CoreHierarchy h = Build(g.graph);
  ASSERT_EQ(h.nodes.size(), 2u);
  // Node 0 created first (k_max level): the 8-clique.
  EXPECT_EQ(h.nodes[0].k, 7u);
  EXPECT_EQ(h.nodes[0].vertices.size(), 8u);
  // Node 1: level 4, the 5-clique vertices; both cliques connect via the
  // bridge when the level-4 shell arrives, so node 0's parent is node 1.
  EXPECT_EQ(h.nodes[1].k, 4u);
  EXPECT_EQ(h.nodes[1].vertices.size(), 5u);
  EXPECT_EQ(h.nodes[0].parent, 1);
  EXPECT_EQ(h.nodes[1].parent, -1);
  // Full component of the root covers the graph.
  EXPECT_EQ(h.ComponentVertices(1).size(), 13u);
  EXPECT_EQ(h.ComponentVertices(0).size(), 8u);
}

TEST(HierarchyTest, EveryVertexInExactlyOneNode) {
  for (const NamedGraph& g : testing::FullSuite()) {
    const auto core = RunNaiveReference(g.graph).core;
    const CoreHierarchy h = BuildCoreHierarchy(g.graph, core);
    std::vector<uint64_t> seen(g.graph.NumVertices(), 0);
    for (const CoreHierarchyNode& node : h.nodes) {
      for (VertexId v : node.vertices) {
        ++seen[v];
        EXPECT_EQ(core[v], node.k) << g.name;
      }
    }
    for (VertexId v = 0; v < g.graph.NumVertices(); ++v) {
      EXPECT_EQ(seen[v], 1u) << g.name << " v=" << v;
      ASSERT_GE(h.node_of[v], 0);
      const auto& vertices =
          h.nodes[static_cast<size_t>(h.node_of[v])].vertices;
      EXPECT_NE(std::find(vertices.begin(), vertices.end(), v),
                vertices.end())
          << g.name;
    }
  }
}

TEST(HierarchyTest, ParentsHaveStrictlySmallerK) {
  for (const NamedGraph& g : testing::RandomSuite()) {
    const CoreHierarchy h = Build(g.graph);
    for (const CoreHierarchyNode& node : h.nodes) {
      if (node.parent >= 0) {
        EXPECT_LT(h.nodes[static_cast<size_t>(node.parent)].k, node.k)
            << g.name;
      }
    }
  }
}

TEST(HierarchyTest, ComponentsAreConnectedKCores) {
  // Property: each node's full component induces a subgraph with minimum
  // degree >= k (it is a k-core component).
  for (const NamedGraph& g : testing::RandomSuite()) {
    const CoreHierarchy h = Build(g.graph);
    for (size_t i = 0; i < h.nodes.size(); ++i) {
      const auto members = h.ComponentVertices(static_cast<int32_t>(i));
      const std::set<VertexId> member_set(members.begin(), members.end());
      for (VertexId v : members) {
        uint32_t internal_degree = 0;
        for (VertexId u : g.graph.Neighbors(v)) {
          if (member_set.count(u) != 0) ++internal_degree;
        }
        EXPECT_GE(internal_degree, h.nodes[i].k)
            << g.name << " node " << i << " v=" << v;
      }
    }
  }
}

TEST(HierarchyTest, DensestComponentQuery) {
  const auto g = testing::TwoCliquesGraph(5, 8);
  const CoreHierarchy h = Build(g.graph);
  // Vertex 7 lives in the 8-clique (node 0).
  EXPECT_EQ(DensestComponentContaining(h, 7, 1), 0);
  EXPECT_EQ(DensestComponentContaining(h, 7, 8), 0);
  // Needing >= 9 vertices forces the query up to the root component.
  EXPECT_EQ(DensestComponentContaining(h, 7, 9), 1);
  // Nothing has 14 vertices.
  EXPECT_EQ(DensestComponentContaining(h, 7, 14), -1);
  // Vertex 0 (5-clique) starts at node 1 directly.
  EXPECT_EQ(DensestComponentContaining(h, 0, 1), 1);
}

TEST(HierarchyTest, IsolatedVerticesAreLevelZeroRoots) {
  const auto g = testing::WithIsolatedVertices();
  const CoreHierarchy h = Build(g.graph);
  uint32_t zero_nodes = 0;
  for (const auto& node : h.nodes) {
    if (node.k == 0) {
      ++zero_nodes;
      EXPECT_EQ(node.parent, -1);
    }
  }
  // Vertices 0, 2, 4, 6 are isolated; each forms its own level-0 root.
  EXPECT_EQ(zero_nodes, 4u);
}

}  // namespace
}  // namespace kcore
