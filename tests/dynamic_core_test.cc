#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cpu/dynamic_core.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"

namespace kcore {
namespace {

std::vector<uint32_t> Recompute(const DynamicKCore& dynamic) {
  return RunNaiveReference(dynamic.ToCsrGraph()).core;
}

TEST(DynamicKCoreTest, InitialDecompositionMatchesOracle) {
  for (const auto& g : testing::FullSuite()) {
    DynamicKCore dynamic(g.graph);
    EXPECT_EQ(dynamic.core(), RunNaiveReference(g.graph).core) << g.name;
  }
}

TEST(DynamicKCoreTest, InsertRaisesCore) {
  // A 4-cycle has core 2 everywhere; adding one chord keeps it 2, but
  // completing K4 raises everything to 3.
  DynamicKCore dynamic(testing::CycleGraph(4).graph);
  EXPECT_EQ(dynamic.core(), (std::vector<uint32_t>{2, 2, 2, 2}));
  ASSERT_TRUE(dynamic.InsertEdge(0, 2).ok());
  EXPECT_EQ(dynamic.core(), (std::vector<uint32_t>{2, 2, 2, 2}));
  ASSERT_TRUE(dynamic.InsertEdge(1, 3).ok());
  EXPECT_EQ(dynamic.core(), (std::vector<uint32_t>{3, 3, 3, 3}));
}

TEST(DynamicKCoreTest, RemoveLowersCore) {
  DynamicKCore dynamic(testing::CliqueGraph(5).graph);
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(5, 4));
  ASSERT_TRUE(dynamic.RemoveEdge(0, 1).ok());
  // K5 minus one edge: the untouched triangle vertices keep core 3; the
  // endpoints drop to 3 as well (still adjacent to the 3 others).
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(5, 3));
}

TEST(DynamicKCoreTest, ErrorCases) {
  DynamicKCore dynamic(testing::PathGraph(4).graph);
  EXPECT_TRUE(dynamic.InsertEdge(1, 1).IsInvalidArgument());
  EXPECT_TRUE(dynamic.InsertEdge(0, 99).IsInvalidArgument());
  EXPECT_TRUE(dynamic.InsertEdge(0, 1).IsFailedPrecondition());
  EXPECT_TRUE(dynamic.RemoveEdge(0, 2).IsNotFound());
  EXPECT_TRUE(dynamic.RemoveEdge(0, 99).IsInvalidArgument());
}

TEST(DynamicKCoreTest, InsertThenRemoveRoundTrips) {
  const auto g = testing::RandomSuite()[0].graph;
  DynamicKCore dynamic(g);
  const std::vector<uint32_t> before = dynamic.core();
  // Find a non-edge.
  VertexId a = 0;
  VertexId b = 0;
  Rng rng(3);
  for (;;) {
    a = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    b = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    if (a == b) continue;
    const auto nbrs = g.Neighbors(a);
    if (!std::binary_search(nbrs.begin(), nbrs.end(), b)) break;
  }
  ASSERT_TRUE(dynamic.InsertEdge(a, b).ok());
  ASSERT_TRUE(dynamic.RemoveEdge(a, b).ok());
  EXPECT_EQ(dynamic.core(), before);
}

TEST(DynamicKCoreTest, RandomEditSequenceMatchesRecompute) {
  // The heavyweight property test: after every single edit, the maintained
  // cores equal a from-scratch decomposition of the current graph.
  const CsrGraph initial =
      BuildUndirectedGraph(GenerateErdosRenyi(120, 300, 17));
  DynamicKCore dynamic(initial);
  Rng rng(99);
  std::set<std::pair<VertexId, VertexId>> present;
  for (VertexId v = 0; v < initial.NumVertices(); ++v) {
    for (VertexId u : initial.Neighbors(v)) {
      if (v < u) present.insert({v, u});
    }
  }
  uint32_t inserts = 0;
  uint32_t removes = 0;
  for (int step = 0; step < 300; ++step) {
    const auto a = static_cast<VertexId>(rng.UniformInt(120));
    const auto b = static_cast<VertexId>(rng.UniformInt(120));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (present.count({key.first, key.second}) == 0) {
      ASSERT_TRUE(dynamic.InsertEdge(a, b).ok()) << "step " << step;
      present.insert({key.first, key.second});
      ++inserts;
    } else {
      ASSERT_TRUE(dynamic.RemoveEdge(a, b).ok()) << "step " << step;
      present.erase({key.first, key.second});
      ++removes;
    }
    ASSERT_EQ(dynamic.core(), Recompute(dynamic)) << "step " << step;
  }
  EXPECT_GT(inserts, 50u);
  EXPECT_GT(removes, 20u);
  EXPECT_EQ(dynamic.NumEdges(), present.size());
}

TEST(DynamicKCoreTest, UpdatesAreLocal) {
  // A pendant-edge insert far from the dense region should evaluate a small
  // number of vertices, not the whole graph.
  const auto g = testing::RandomSuite()[4].graph;  // planted core, 400 v
  DynamicKCore dynamic(g);
  // Attach a brand-new edge between two low-core vertices.
  VertexId a = 0;
  VertexId b = 0;
  const auto& core = dynamic.core();
  for (VertexId v = 0; v < g.NumVertices() && (a == 0 || b == 0); ++v) {
    if (core[v] <= 2 && v != a) {
      if (a == 0) {
        a = v;
      } else if (!std::binary_search(g.Neighbors(a).begin(),
                                     g.Neighbors(a).end(), v)) {
        b = v;
      }
    }
  }
  if (a != 0 && b != 0) {
    ASSERT_TRUE(dynamic.InsertEdge(a, b).ok());
    EXPECT_LT(dynamic.last_update_evaluations(), g.NumVertices() / 2);
  }
}

TEST(DynamicKCoreTest, EmptyGraphIsFine) {
  DynamicKCore dynamic((CsrGraph()));
  EXPECT_EQ(dynamic.NumVertices(), 0u);
  EXPECT_TRUE(dynamic.core().empty());
}

}  // namespace
}  // namespace kcore
