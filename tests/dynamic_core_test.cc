#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cpu/bz.h"
#include "cpu/dynamic_core.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"

namespace kcore {
namespace {

std::vector<uint32_t> Recompute(const DynamicKCore& dynamic) {
  return RunNaiveReference(dynamic.ToCsrGraph()).core;
}

TEST(DynamicKCoreTest, InitialDecompositionMatchesOracle) {
  for (const auto& g : testing::FullSuite()) {
    DynamicKCore dynamic(g.graph);
    EXPECT_EQ(dynamic.core(), RunNaiveReference(g.graph).core) << g.name;
  }
}

TEST(DynamicKCoreTest, InsertRaisesCore) {
  // A 4-cycle has core 2 everywhere; adding one chord keeps it 2, but
  // completing K4 raises everything to 3.
  DynamicKCore dynamic(testing::CycleGraph(4).graph);
  EXPECT_EQ(dynamic.core(), (std::vector<uint32_t>{2, 2, 2, 2}));
  ASSERT_TRUE(dynamic.InsertEdge(0, 2).ok());
  EXPECT_EQ(dynamic.core(), (std::vector<uint32_t>{2, 2, 2, 2}));
  ASSERT_TRUE(dynamic.InsertEdge(1, 3).ok());
  EXPECT_EQ(dynamic.core(), (std::vector<uint32_t>{3, 3, 3, 3}));
}

TEST(DynamicKCoreTest, RemoveLowersCore) {
  DynamicKCore dynamic(testing::CliqueGraph(5).graph);
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(5, 4));
  ASSERT_TRUE(dynamic.RemoveEdge(0, 1).ok());
  // K5 minus one edge: the untouched triangle vertices keep core 3; the
  // endpoints drop to 3 as well (still adjacent to the 3 others).
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(5, 3));
}

TEST(DynamicKCoreTest, ErrorCases) {
  DynamicKCore dynamic(testing::PathGraph(4).graph);
  EXPECT_TRUE(dynamic.InsertEdge(1, 1).IsInvalidArgument());
  EXPECT_TRUE(dynamic.InsertEdge(0, 99).IsInvalidArgument());
  EXPECT_TRUE(dynamic.InsertEdge(0, 1).IsFailedPrecondition());
  EXPECT_TRUE(dynamic.RemoveEdge(0, 2).IsNotFound());
  EXPECT_TRUE(dynamic.RemoveEdge(0, 99).IsInvalidArgument());
}

TEST(DynamicKCoreTest, InsertThenRemoveRoundTrips) {
  const auto g = testing::RandomSuite()[0].graph;
  DynamicKCore dynamic(g);
  const std::vector<uint32_t> before = dynamic.core();
  // Find a non-edge.
  VertexId a = 0;
  VertexId b = 0;
  Rng rng(3);
  for (;;) {
    a = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    b = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    if (a == b) continue;
    const auto nbrs = g.Neighbors(a);
    if (!std::binary_search(nbrs.begin(), nbrs.end(), b)) break;
  }
  ASSERT_TRUE(dynamic.InsertEdge(a, b).ok());
  ASSERT_TRUE(dynamic.RemoveEdge(a, b).ok());
  EXPECT_EQ(dynamic.core(), before);
}

TEST(DynamicKCoreTest, RandomEditSequenceMatchesRecompute) {
  // The heavyweight property test: after every single edit, the maintained
  // cores equal a from-scratch decomposition of the current graph.
  const CsrGraph initial =
      BuildUndirectedGraph(GenerateErdosRenyi(120, 300, 17));
  DynamicKCore dynamic(initial);
  Rng rng(99);
  std::set<std::pair<VertexId, VertexId>> present;
  for (VertexId v = 0; v < initial.NumVertices(); ++v) {
    for (VertexId u : initial.Neighbors(v)) {
      if (v < u) present.insert({v, u});
    }
  }
  uint32_t inserts = 0;
  uint32_t removes = 0;
  for (int step = 0; step < 300; ++step) {
    const auto a = static_cast<VertexId>(rng.UniformInt(120));
    const auto b = static_cast<VertexId>(rng.UniformInt(120));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (present.count({key.first, key.second}) == 0) {
      ASSERT_TRUE(dynamic.InsertEdge(a, b).ok()) << "step " << step;
      present.insert({key.first, key.second});
      ++inserts;
    } else {
      ASSERT_TRUE(dynamic.RemoveEdge(a, b).ok()) << "step " << step;
      present.erase({key.first, key.second});
      ++removes;
    }
    ASSERT_EQ(dynamic.core(), Recompute(dynamic)) << "step " << step;
  }
  EXPECT_GT(inserts, 50u);
  EXPECT_GT(removes, 20u);
  EXPECT_EQ(dynamic.NumEdges(), present.size());
}

TEST(DynamicKCoreTest, UpdatesAreLocal) {
  // A pendant-edge insert far from the dense region should evaluate a small
  // number of vertices, not the whole graph.
  const auto g = testing::RandomSuite()[4].graph;  // planted core, 400 v
  DynamicKCore dynamic(g);
  // Attach a brand-new edge between two low-core vertices.
  VertexId a = 0;
  VertexId b = 0;
  const auto& core = dynamic.core();
  for (VertexId v = 0; v < g.NumVertices() && (a == 0 || b == 0); ++v) {
    if (core[v] <= 2 && v != a) {
      if (a == 0) {
        a = v;
      } else if (!std::binary_search(g.Neighbors(a).begin(),
                                     g.Neighbors(a).end(), v)) {
        b = v;
      }
    }
  }
  if (a != 0 && b != 0) {
    ASSERT_TRUE(dynamic.InsertEdge(a, b).ok());
    EXPECT_LT(dynamic.last_update_evaluations(), g.NumVertices() / 2);
  }
}

TEST(DynamicKCoreTest, EmptyGraphIsFine) {
  DynamicKCore dynamic((CsrGraph()));
  EXPECT_EQ(dynamic.NumVertices(), 0u);
  EXPECT_TRUE(dynamic.core().empty());
}

// ------------------------------------------------- adversarial sequences --
// Interleaved insert/delete patterns chosen to stress the incremental
// maintenance logic where it is weakest — repeated flips of the same
// boundary edge, structures torn down and rebuilt in place — each step
// validated against a fresh BZ recomputation of the current graph.

std::vector<uint32_t> RecomputeBz(const DynamicKCore& dynamic) {
  return RunBz(dynamic.ToCsrGraph()).core;
}

TEST(DynamicKCoreTest, AdversarialBoundaryEdgeOscillation) {
  // K4: every vertex has core 3 with zero slack, so removing any one edge
  // drops the whole clique to core 2 and reinserting restores 3.
  // Oscillating the same edge forces the same vertices across the max-core
  // boundary in both directions, 40 times — the classic spot for
  // stale-state bugs in incremental maintenance.
  DynamicKCore dynamic(testing::CliqueGraph(4).graph);
  for (int round = 0; round < 40; ++round) {
    ASSERT_TRUE(dynamic.RemoveEdge(2, 3).ok()) << "round " << round;
    ASSERT_EQ(dynamic.core(), RecomputeBz(dynamic)) << "round " << round;
    ASSERT_EQ(dynamic.core()[2], 2u);
    ASSERT_TRUE(dynamic.InsertEdge(2, 3).ok()) << "round " << round;
    ASSERT_EQ(dynamic.core(), RecomputeBz(dynamic)) << "round " << round;
    ASSERT_EQ(dynamic.core()[2], 3u);
  }
}

TEST(DynamicKCoreTest, AdversarialCliqueTeardownAndRebuild) {
  // Tear a K6 down edge by edge (core collapses 5 -> ... -> 0), then
  // rebuild it in a different edge order, checking every intermediate
  // graph. Deletion and insertion traverse different code paths; the
  // sequence must commute with recomputation at every step.
  const uint32_t n = 6;
  DynamicKCore dynamic(testing::CliqueGraph(n).graph);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  for (const auto& [u, v] : edges) {
    ASSERT_TRUE(dynamic.RemoveEdge(u, v).ok()) << u << "-" << v;
    ASSERT_EQ(dynamic.core(), RecomputeBz(dynamic)) << "del " << u << "-" << v;
  }
  EXPECT_EQ(dynamic.NumEdges(), 0u);
  std::reverse(edges.begin(), edges.end());
  for (const auto& [u, v] : edges) {
    ASSERT_TRUE(dynamic.InsertEdge(u, v).ok()) << u << "-" << v;
    ASSERT_EQ(dynamic.core(), RecomputeBz(dynamic)) << "ins " << u << "-" << v;
  }
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(n, n - 1));
}

TEST(DynamicKCoreTest, AdversarialBiasedWalkAroundPlantedCore) {
  // Random walk over a planted-core graph biased toward touching the dense
  // community: 70% of operations pick at least one endpoint inside the
  // planted core, so most updates land on the high-core region where
  // subcore recomputation is the most involved.
  const auto g = testing::RandomSuite()[4].graph;  // planted, 400 v
  DynamicKCore dynamic(g);
  std::set<std::pair<VertexId, VertexId>> present;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : g.Neighbors(v)) {
      if (v < u) present.insert({v, u});
    }
  }
  Rng rng(99);
  const VertexId n = g.NumVertices();
  uint32_t flips = 0;
  for (int step = 0; step < 250; ++step) {
    VertexId a, b;
    if (rng.Bernoulli(0.7)) {
      a = static_cast<VertexId>(rng.UniformInt(24));  // planted core vertices
      b = static_cast<VertexId>(rng.UniformInt(n));
    } else {
      a = static_cast<VertexId>(rng.UniformInt(n));
      b = static_cast<VertexId>(rng.UniformInt(n));
    }
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (present.count({key.first, key.second}) != 0) {
      ASSERT_TRUE(dynamic.RemoveEdge(a, b).ok()) << "step " << step;
      present.erase({key.first, key.second});
    } else {
      ASSERT_TRUE(dynamic.InsertEdge(a, b).ok()) << "step " << step;
      present.insert({key.first, key.second});
    }
    ++flips;
    if (step % 10 == 0) {
      ASSERT_EQ(dynamic.core(), RecomputeBz(dynamic)) << "step " << step;
    }
  }
  EXPECT_GT(flips, 100u);
  EXPECT_EQ(dynamic.core(), RecomputeBz(dynamic));
}

// --------------------------------------------------------- batch updates --
// ApplyBatch is the differential oracle for the GPU incremental path: it
// must be exactly "the single-edge API applied sequentially", including the
// atomic all-or-nothing rejection contract.

TEST(DynamicKCoreTest, ApplyBatchMatchesSequentialAndRecompute) {
  const CsrGraph initial =
      BuildUndirectedGraph(GenerateErdosRenyi(150, 450, 31));
  DynamicKCore batched(initial);
  DynamicKCore sequential(initial);
  Rng rng(7);
  std::set<std::pair<VertexId, VertexId>> present;
  for (VertexId v = 0; v < initial.NumVertices(); ++v) {
    for (VertexId u : initial.Neighbors(v)) {
      if (v < u) present.insert({v, u});
    }
  }
  for (int round = 0; round < 12; ++round) {
    UpdateBatch batch;
    while (batch.size() < 16) {
      const auto a = static_cast<VertexId>(rng.UniformInt(150));
      const auto b = static_cast<VertexId>(rng.UniformInt(150));
      if (a == b) continue;
      const auto key = std::minmax(a, b);
      if (present.count({key.first, key.second}) == 0) {
        batch.push_back(EdgeUpdate::Insert(a, b));
        present.insert({key.first, key.second});
      } else {
        batch.push_back(EdgeUpdate::Remove(a, b));
        present.erase({key.first, key.second});
      }
    }
    auto changed = batched.ApplyBatch(batch);
    ASSERT_TRUE(changed.ok()) << "round " << round << ": "
                              << changed.status().ToString();
    for (const EdgeUpdate& u : batch) {
      if (u.kind == EdgeUpdate::Kind::kInsert) {
        ASSERT_TRUE(sequential.InsertEdge(u.u, u.v).ok());
      } else {
        ASSERT_TRUE(sequential.RemoveEdge(u.u, u.v).ok());
      }
    }
    ASSERT_EQ(batched.core(), sequential.core()) << "round " << round;
    ASSERT_EQ(batched.core(), RecomputeBz(batched)) << "round " << round;
    ASSERT_EQ(batched.NumEdges(), present.size()) << "round " << round;
  }
}

TEST(DynamicKCoreTest, ApplyBatchChangedSetIsExact) {
  // The returned changed-set must be exactly the vertices whose core number
  // differs before/after, sorted ascending — no over- or under-reporting.
  DynamicKCore dynamic(testing::CycleGraph(4).graph);
  const std::vector<uint32_t> before = dynamic.core();  // all 2
  // Complete K4: every vertex rises 2 -> 3.
  UpdateBatch batch = {EdgeUpdate::Insert(0, 2), EdgeUpdate::Insert(1, 3)};
  auto changed = dynamic.ApplyBatch(batch);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_EQ(*changed, (std::vector<VertexId>{0, 1, 2, 3}));
  ASSERT_TRUE(std::is_sorted(changed->begin(), changed->end()));
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NE(dynamic.core()[v], before[v]) << v;
  }
  // A batch whose net effect leaves coreness untouched reports nothing.
  UpdateBatch noop = {EdgeUpdate::Remove(0, 2), EdgeUpdate::Insert(0, 2)};
  auto unchanged = dynamic.ApplyBatch(noop);
  ASSERT_TRUE(unchanged.ok()) << unchanged.status().ToString();
  EXPECT_TRUE(unchanged->empty());
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(4, 3));
}

TEST(DynamicKCoreTest, ApplyBatchRejectsInvalidBatchAtomically) {
  // Any invalid update anywhere in the batch rejects the WHOLE batch with
  // the single-edge API's status code, and nothing is applied — even the
  // valid prefix before the offender.
  const auto g = testing::CycleGraph(6).graph;
  struct Case {
    UpdateBatch batch;
    bool (Status::*predicate)() const;
    const char* label;
  };
  const Case cases[] = {
      {{EdgeUpdate::Insert(0, 3), EdgeUpdate::Insert(2, 2)},
       &Status::IsInvalidArgument, "self-loop"},
      {{EdgeUpdate::Insert(0, 3), EdgeUpdate::Insert(0, 99)},
       &Status::IsInvalidArgument, "out of range"},
      {{EdgeUpdate::Insert(0, 3), EdgeUpdate::Insert(0, 1)},
       &Status::IsFailedPrecondition, "insert present"},
      {{EdgeUpdate::Insert(0, 3), EdgeUpdate::Remove(1, 4)},
       &Status::IsNotFound, "remove absent"},
      {{EdgeUpdate::Insert(0, 3), EdgeUpdate::Insert(0, 3)},
       &Status::IsFailedPrecondition, "duplicate insert in batch"},
      {{EdgeUpdate::Remove(0, 1), EdgeUpdate::Remove(0, 1)},
       &Status::IsNotFound, "duplicate remove in batch"},
  };
  for (const Case& c : cases) {
    DynamicKCore dynamic(g);
    const std::vector<uint32_t> before = dynamic.core();
    const uint64_t edges_before = dynamic.NumEdges();
    auto result = dynamic.ApplyBatch(c.batch);
    ASSERT_FALSE(result.ok()) << c.label;
    EXPECT_TRUE((result.status().*c.predicate)())
        << c.label << ": " << result.status().ToString();
    // Nothing applied: the valid leading insert must have been rolled off.
    EXPECT_EQ(dynamic.core(), before) << c.label;
    EXPECT_EQ(dynamic.NumEdges(), edges_before) << c.label;
    EXPECT_TRUE(dynamic.RemoveEdge(0, 3).IsNotFound()) << c.label;
  }
}

TEST(DynamicKCoreTest, ApplyBatchValidatesSequentially) {
  // Sequential semantics inside one batch: inserting a new edge and then
  // removing it is valid (net no-op), and removing an existing edge frees
  // the slot for a later re-insert.
  DynamicKCore dynamic(testing::CliqueGraph(4).graph);
  // K4 has all edges: each remove frees the slot for the re-insert that
  // follows it, which would be FailedPrecondition without the remove.
  UpdateBatch batch = {
      EdgeUpdate::Remove(0, 1), EdgeUpdate::Insert(0, 1),
      EdgeUpdate::Remove(2, 3), EdgeUpdate::Insert(2, 3)};
  auto changed = dynamic.ApplyBatch(batch);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(changed->empty());
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(4, 3));
  EXPECT_EQ(dynamic.core(), RecomputeBz(dynamic));
}

TEST(DynamicKCoreTest, ApplyBatchEmptyIsANoOp) {
  DynamicKCore dynamic(testing::CliqueGraph(5).graph);
  const std::vector<uint32_t> before = dynamic.core();
  auto changed = dynamic.ApplyBatch({});
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(changed->empty());
  EXPECT_EQ(dynamic.core(), before);
  EXPECT_EQ(dynamic.last_update_evaluations(), 0u);
}

TEST(DynamicKCoreTest, DuplicateAndMissingEdgesAreRejectedMidSequence) {
  // Error paths interleaved with real updates must not corrupt state.
  DynamicKCore dynamic(testing::CycleGraph(6).graph);
  ASSERT_TRUE(dynamic.InsertEdge(0, 1).IsFailedPrecondition());  // present
  ASSERT_TRUE(dynamic.RemoveEdge(0, 3).IsNotFound());            // absent
  ASSERT_TRUE(dynamic.InsertEdge(0, 3).ok());
  ASSERT_TRUE(dynamic.InsertEdge(0, 3).IsFailedPrecondition());
  ASSERT_TRUE(dynamic.RemoveEdge(0, 3).ok());
  ASSERT_TRUE(dynamic.RemoveEdge(0, 3).IsNotFound());
  EXPECT_EQ(dynamic.core(), RecomputeBz(dynamic));
  EXPECT_EQ(dynamic.core(), std::vector<uint32_t>(6, 2));  // intact cycle
}

}  // namespace
}  // namespace kcore
