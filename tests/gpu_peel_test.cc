#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gpu_peel.h"
#include "core/multi_gpu_peel.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

/// Small kernel geometry so tests exercise multi-sweep scans and multi-batch
/// loops without simulating 108x1024 threads per launch.
GpuPeelOptions SmallGeometry(GpuPeelOptions base = {}) {
  base.num_blocks = 4;
  base.block_dim = 64;  // 2 warps
  return base;
}

sim::DeviceOptions SmallDevice() {
  sim::DeviceOptions device;
  device.num_sms = 4;
  return device;
}

// -------------------------------------------------- Correctness (all 9) ---

struct VariantCase {
  GpuPeelOptions options;
  std::string name;
};

class GpuPeelVariantTest : public ::testing::TestWithParam<GpuPeelOptions> {};

TEST_P(GpuPeelVariantTest, MatchesOracleOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result =
        RunGpuPeel(g.graph, SmallGeometry(GetParam()), SmallDevice());
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle)
        << g.name << " variant=" << GetParam().VariantName();
  }
}

TEST_P(GpuPeelVariantTest, SimcheckCleanOnFullSuite) {
  // With the sanitizer watching every instrumented access, all nine kernel
  // variants must produce a clean report on the whole roster: the stale-read
  // pattern of Alg. 3 is legal under the race model, and everything else
  // (bounds, initialization, barriers) is simply correct.
  sim::DeviceOptions device = SmallDevice();
  device.check_mode = true;
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunGpuPeel(g.graph, SmallGeometry(GetParam()), device);
    ASSERT_TRUE(result.ok()) << g.name << " variant="
                             << GetParam().VariantName() << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST_P(GpuPeelVariantTest, PaperGeometryOnOneGraph) {
  // Full 108x1024 geometry once per variant (slower, so just one graph).
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  auto result = RunGpuPeel(g, GetParam());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GpuPeelVariantTest,
    ::testing::ValuesIn(GpuPeelOptions::AblationVariants()),
    [](const ::testing::TestParamInfo<GpuPeelOptions>& info) {
      std::string name = info.param.VariantName();
      for (char& ch : name) {
        if (ch == '+') ch = '_';
      }
      return name;
    });

// --------------------------------------------------------- Determinism ----

TEST(GpuPeelTest, RepeatedRunsStableUnderRaces) {
  const auto g = testing::RandomSuite()[4].graph;  // planted core
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  for (int i = 0; i < 5; ++i) {
    auto result = RunGpuPeel(g, SmallGeometry(), SmallDevice());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->core, oracle) << "run " << i;
  }
}

TEST(GpuPeelTest, EmptyAndTinyGraphs) {
  auto empty = RunGpuPeel(CsrGraph(), SmallGeometry(), SmallDevice());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->core.empty());

  const CsrGraph one = BuildUndirectedGraphWithVertexCount({}, 1);
  auto single = RunGpuPeel(one, SmallGeometry(), SmallDevice());
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->core, std::vector<uint32_t>{0});
}

// ------------------------------------------------------------- Metrics ----

TEST(GpuPeelTest, MetricsShape) {
  const auto g = testing::CliqueGraph(10).graph;
  auto result = RunGpuPeel(g, SmallGeometry(), SmallDevice());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->MaxCore(), 9u);
  // One round per k in 0..k_max.
  EXPECT_EQ(result->metrics.rounds, 10u);
  // Two kernels per round.
  EXPECT_EQ(result->metrics.counters.kernel_launches, 20u);
  EXPECT_GT(result->metrics.modeled_ms, 0.0);
  EXPECT_GT(result->metrics.counters.edges_traversed, 0u);
  EXPECT_GT(result->metrics.peak_device_bytes, g.MemoryBytes());
}

TEST(GpuPeelTest, EveryVertexCollectedExactlyOnce) {
  const auto g = testing::RandomSuite()[2].graph;  // BA graph
  auto result = RunGpuPeel(g, SmallGeometry(), SmallDevice());
  ASSERT_TRUE(result.ok());
  // buffer_appends counts enqueued k-shell vertices; the redundancy-
  // avoidance argument (§IV-B) says each vertex is captured exactly once.
  EXPECT_EQ(result->metrics.counters.buffer_appends, g.NumVertices());
}

// --------------------------------------- Active-vertex compaction (AC) ----

/// One configuration axis combination for the AC-equivalence sweep.
struct CompactionCase {
  AppendStrategy append;
  bool ring;
  bool sm;

  std::string Name() const {
    std::string name;
    switch (append) {
      case AppendStrategy::kAtomic:
        name = "Atomic";
        break;
      case AppendStrategy::kBallotCompact:
        name = "Ballot";
        break;
      case AppendStrategy::kEfficientCompact:
        name = "Efficient";
        break;
    }
    name += ring ? "_Ring" : "_NoRing";
    name += sm ? "_Sm" : "_NoSm";
    return name;
  }
};

std::vector<CompactionCase> AllCompactionCases() {
  std::vector<CompactionCase> cases;
  for (AppendStrategy append :
       {AppendStrategy::kAtomic, AppendStrategy::kBallotCompact,
        AppendStrategy::kEfficientCompact}) {
    for (bool ring : {false, true}) {
      for (bool sm : {false, true}) {
        cases.push_back({append, ring, sm});
      }
    }
  }
  return cases;
}

class CompactionEquivalenceTest
    : public ::testing::TestWithParam<CompactionCase> {};

TEST_P(CompactionEquivalenceTest, CoreNumbersIdenticalOnAndOff) {
  const CompactionCase& param = GetParam();
  for (const NamedGraph& g : FullSuite()) {
    GpuPeelOptions base = SmallGeometry();
    base.append = param.append;
    base.ring_buffer = param.ring;
    base.shared_memory_buffering = param.sm;
    if (param.sm) base.shared_buffer_capacity = 256;
    base.active_compaction = true;
    // Aggressive threshold so even the small suite graphs re-compact.
    base.compaction_threshold = 0.9;

    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto with_ac = RunGpuPeel(g.graph, base, SmallDevice());
    auto without_ac =
        RunGpuPeel(g.graph, base.WithoutCompaction(), SmallDevice());
    ASSERT_TRUE(with_ac.ok()) << g.name << ": " << with_ac.status().ToString();
    ASSERT_TRUE(without_ac.ok())
        << g.name << ": " << without_ac.status().ToString();
    EXPECT_EQ(with_ac->core, oracle) << g.name;
    EXPECT_EQ(with_ac->core, without_ac->core) << g.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAxes, CompactionEquivalenceTest,
    ::testing::ValuesIn(AllCompactionCases()),
    [](const ::testing::TestParamInfo<CompactionCase>& info) {
      return info.param.Name();
    });

TEST(GpuPeelCompactionTest, CompactionEngagesAndShrinksScans) {
  // The planted-core graph peels most of its 400 background vertices at low
  // k, leaving a dense 24-vertex core — exactly the high-coreness shape
  // whose scans AC is for.
  const auto g = testing::RandomSuite()[4].graph;
  auto on = RunGpuPeel(g, SmallGeometry(), SmallDevice());
  auto off = RunGpuPeel(g, SmallGeometry(GpuPeelOptions().WithoutCompaction()),
                        SmallDevice());
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(on->core, off->core);
  EXPECT_GT(on->metrics.counters.compactions, 0u);
  EXPECT_GT(on->metrics.counters.scan_vertices_skipped, 0u);
  EXPECT_LT(on->metrics.counters.vertices_scanned,
            off->metrics.counters.vertices_scanned);
  EXPECT_EQ(off->metrics.counters.compactions, 0u);
  EXPECT_EQ(off->metrics.counters.scan_vertices_skipped, 0u);
}

TEST(GpuPeelCompactionTest, MultiGpuCompactionMatchesAndShrinksScans) {
  const auto g = testing::RandomSuite()[4].graph;
  MultiGpuOptions on_opts;
  MultiGpuOptions off_opts;
  off_opts.active_compaction = false;
  auto on = RunMultiGpuPeel(g, on_opts);
  auto off = RunMultiGpuPeel(g, off_opts);
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(on->core, off->core);
  EXPECT_EQ(on->core, RunNaiveReference(g).core);
  EXPECT_GT(on->metrics.counters.compactions, 0u);
  EXPECT_LT(on->metrics.counters.vertices_scanned,
            off->metrics.counters.vertices_scanned);
}

TEST(GpuPeelCompactionTest, InvalidThresholdRejected) {
  GpuPeelOptions options = SmallGeometry();
  options.compaction_threshold = 1.5;
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, options, SmallDevice())
                  .status()
                  .IsInvalidArgument());
  options.compaction_threshold = -0.1;
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, options, SmallDevice())
                  .status()
                  .IsInvalidArgument());
}

// ------------------------------------------------- Scan->compact fusion ----

TEST(GpuPeelFusionTest, FusedMatchesUnfusedBitExactlyOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    auto unfused = RunGpuPeel(g.graph, SmallGeometry(), SmallDevice());
    auto fused = RunGpuPeel(g.graph, SmallGeometry().WithFusion(),
                            SmallDevice());
    ASSERT_TRUE(unfused.ok()) << g.name << ": "
                              << unfused.status().ToString();
    ASSERT_TRUE(fused.ok()) << g.name << ": " << fused.status().ToString();
    EXPECT_EQ(fused->core, unfused->core) << g.name;
    EXPECT_EQ(fused->core, RunNaiveReference(g.graph).core) << g.name;
  }
}

TEST(GpuPeelFusionTest, FusedCutsKernelLaunches) {
  // The win comes from two places: the fused sweep replaces the separate
  // compaction launch every round, and rounds whose shell came up empty
  // (high-k_max graphs burn many of these crossing the gap between the
  // bulk degrees and the planted core) skip the loop launch entirely.
  const auto g = testing::RandomSuite()[4].graph;  // planted core
  auto unfused = RunGpuPeel(g, SmallGeometry(), SmallDevice());
  auto fused = RunGpuPeel(g, SmallGeometry().WithFusion(), SmallDevice());
  ASSERT_TRUE(unfused.ok());
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->core, unfused->core);
  const uint64_t before = unfused->metrics.counters.kernel_launches;
  const uint64_t after = fused->metrics.counters.kernel_launches;
  EXPECT_LT(after, before);
  // Acceptance target for the bench graphs; the unit-test roster graph has
  // the same planted-core shape, so hold it to the same >= 20% bar.
  EXPECT_LE(after * 5, before * 4)
      << "fused " << after << " vs unfused " << before;
  // Fusion compacts every round, so it engages at least as often as the
  // threshold-gated unfused path.
  EXPECT_GE(fused->metrics.counters.compactions,
            unfused->metrics.counters.compactions);
}

TEST(GpuPeelFusionTest, RequiresActiveCompaction) {
  const GpuPeelOptions options =
      SmallGeometry(GpuPeelOptions().WithoutCompaction()).WithFusion();
  auto result =
      RunGpuPeel(testing::CliqueGraph(4).graph, options, SmallDevice());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
}

TEST(GpuPeelFusionTest, SimcheckCleanWhenFused) {
  sim::DeviceOptions device = SmallDevice();
  device.check_mode = true;
  for (const NamedGraph& g : FullSuite()) {
    auto result = RunGpuPeel(g.graph, SmallGeometry().WithFusion(), device);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, RunNaiveReference(g.graph).core) << g.name;
  }
}

TEST(GpuPeelFusionTest, RecoversFromBitflipWhenFused) {
  // Checkpoint/rollback must treat the fused sweep like any other launch:
  // detect the flip at the round boundary, re-execute, land on the oracle.
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "bitflip:launch=5,word=0,bit=4";
  const auto g = testing::RandomSuite()[0].graph;
  auto result = RunGpuPeel(g, SmallGeometry().WithFusion(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, RunNaiveReference(g).core);
  EXPECT_GE(result->metrics.levels_reexecuted, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

// ------------------------------------------------------ Failure modes -----

TEST(GpuPeelTest, BufferOverflowWithoutRingFails) {
  GpuPeelOptions options = SmallGeometry();
  options.ring_buffer = false;
  options.buffer_capacity = 8;  // far too small for a 200-vertex shell
  const auto g = testing::RandomSuite()[0].graph;
  auto result = RunGpuPeel(g, options, SmallDevice());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCapacityExceeded())
      << result.status().ToString();
}

TEST(GpuPeelTest, RingBufferSurvivesSmallCapacity) {
  // Ring recycling lets a small buffer hold a long-lived frontier as long
  // as the unread backlog fits. A path graph peels 1 vertex at a time from
  // each end, so backlog stays tiny.
  GpuPeelOptions options = SmallGeometry();
  options.buffer_capacity = 64;
  const auto g = testing::PathGraph(500);
  auto result = RunGpuPeel(g.graph, options, SmallDevice());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, g.expected_core);
}

TEST(GpuPeelTest, DeviceOutOfMemory) {
  sim::DeviceOptions device = SmallDevice();
  device.global_mem_bytes = 1 << 10;  // 1 KB device
  auto result = RunGpuPeel(testing::CliqueGraph(50).graph, SmallGeometry(),
                           device);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(GpuPeelTest, InvalidGeometryRejected) {
  GpuPeelOptions options;
  options.block_dim = 48;  // not a multiple of 32
  auto result = RunGpuPeel(testing::CliqueGraph(4).graph, options);
  EXPECT_TRUE(result.status().IsInvalidArgument());

  GpuPeelOptions vp = GpuPeelOptions::Vp();
  vp.block_dim = 32;  // one warp: nothing left to prefetch for
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, vp)
                  .status()
                  .IsInvalidArgument());

  GpuPeelOptions ec = GpuPeelOptions::Ec();
  ec.block_dim = 32 * 64;  // 64 warps: block scan needs <= 32
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, ec)
                  .status()
                  .IsInvalidArgument());

  GpuPeelOptions sm = GpuPeelOptions::Sm();
  sm.shared_buffer_capacity = 1u << 20;  // B larger than shared memory
  EXPECT_TRUE(RunGpuPeel(testing::CliqueGraph(4).graph, sm)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------- Fault injection matrix ----

sim::DeviceOptions FaultyDevice(const std::string& spec) {
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = spec;
  return device;
}

/// The buffering variants whose recovery paths differ: plain atomic append,
/// append without ring recycling, and shared-memory staging.
std::vector<VariantCase> ResilienceVariants() {
  VariantCase ring{SmallGeometry(), "Ring"};
  GpuPeelOptions append = SmallGeometry();
  append.ring_buffer = false;
  VariantCase no_ring{append, "Append"};
  GpuPeelOptions sm = SmallGeometry(GpuPeelOptions::Sm());
  sm.shared_buffer_capacity = 256;
  VariantCase shared{sm, "SM"};
  return {ring, no_ring, shared};
}

class FaultMatrixTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(FaultMatrixTest, TransientLaunchFailuresAreRetried) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  auto result = RunGpuPeel(g, GetParam().options,
                           FaultyDevice("launch_fail@2;launch_fail@5"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.retries, 2u);
  EXPECT_FALSE(result->metrics.degraded);
  EXPECT_EQ(result->metrics.cpu_fallback_levels, 0u);
}

TEST_P(FaultMatrixTest, TransientCopyFailuresAreRetried) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  auto result =
      RunGpuPeel(g, GetParam().options, FaultyDevice("copy_fail@1;copy_fail@3"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.retries, 2u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST_P(FaultMatrixTest, BitflipIsDetectedRolledBackAndReexecuted) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  auto result = RunGpuPeel(g, GetParam().options,
                           FaultyDevice("bitflip:launch=5,word=0,bit=4"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  // The flipped degree word violates a round invariant, so the level is
  // rolled back to the checkpoint and re-executed (the flip is one-shot).
  EXPECT_GE(result->metrics.levels_reexecuted, 1u);
  EXPECT_GT(result->metrics.checkpoints_taken, 0u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST_P(FaultMatrixTest, DeviceLossDegradesToCpuWarmStart) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  auto result = RunGpuPeel(g, GetParam().options,
                           FaultyDevice("device_lost@launch=6"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_TRUE(result->metrics.degraded);
  EXPECT_EQ(result->metrics.devices_lost, 1u);
  EXPECT_GE(result->metrics.cpu_fallback_levels, 1u);
}

TEST_P(FaultMatrixTest, SetupAllocFailureDegradesToCpu) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  auto result =
      RunGpuPeel(g, GetParam().options, FaultyDevice("alloc_fail@2"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_TRUE(result->metrics.degraded);
  // Nothing ran on the device: the whole decomposition is CPU levels.
  EXPECT_EQ(result->metrics.cpu_fallback_levels, result->metrics.rounds);
}

TEST_P(FaultMatrixTest, PersistentLaunchFailureExhaustsRetriesThenDegrades) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  auto result = RunGpuPeel(g, GetParam().options,
                           FaultyDevice("launch_fail:p=1.0,seed=3"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_TRUE(result->metrics.degraded);
  EXPECT_GE(result->metrics.retries,
            GetParam().options.resilience.max_op_retries);
}

INSTANTIATE_TEST_SUITE_P(
    BufferVariants, FaultMatrixTest, ::testing::ValuesIn(ResilienceVariants()),
    [](const ::testing::TestParamInfo<VariantCase>& info) {
      return info.param.name;
    });

TEST(GpuPeelFaultTest, FallbackDisabledSurfacesDeviceLoss) {
  GpuPeelOptions options = SmallGeometry();
  options.resilience.cpu_fallback = false;
  const auto g = testing::RandomSuite()[0].graph;
  auto result = RunGpuPeel(g, options, FaultyDevice("device_lost@launch=4"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviceLost()) << result.status().ToString();
}

TEST(GpuPeelFaultTest, ResilienceDisabledSurfacesFirstFault) {
  GpuPeelOptions options = SmallGeometry();
  options.resilience.enabled = false;
  const auto g = testing::CliqueGraph(8).graph;
  auto launch = RunGpuPeel(g, options, FaultyDevice("launch_fail@1"));
  EXPECT_TRUE(launch.status().IsUnavailable());
  auto alloc = RunGpuPeel(g, options, FaultyDevice("alloc_fail@1"));
  EXPECT_TRUE(alloc.status().IsOutOfMemory());
}

TEST(GpuPeelFaultTest, MalformedSpecRejectedCleanly) {
  auto result = RunGpuPeel(testing::CliqueGraph(4).graph, SmallGeometry(),
                           FaultyDevice("explode@7"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GpuPeelFaultTest, LaunchCountExcludesFailedAttempts) {
  // Metric-exact accounting under transients: the clique peels in 10 rounds
  // of 2 kernels each, and the one rejected attempt is not an execution.
  auto result = RunGpuPeel(testing::CliqueGraph(10).graph, SmallGeometry(),
                           FaultyDevice("launch_fail@3"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->MaxCore(), 9u);
  EXPECT_EQ(result->metrics.rounds, 10u);
  EXPECT_EQ(result->metrics.counters.kernel_launches, 20u);
  EXPECT_EQ(result->metrics.retries, 1u);
}

TEST(GpuPeelFaultTest, NoFaultPlanTakesNoCheckpoints) {
  // The resilient machinery must be pay-for-what-you-use: without a plan,
  // no checkpoints, no retries, no validation.
  auto result = RunGpuPeel(testing::CliqueGraph(10).graph, SmallGeometry(),
                           SmallDevice());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.checkpoints_taken, 0u);
  EXPECT_EQ(result->metrics.retries, 0u);
  EXPECT_EQ(result->metrics.levels_reexecuted, 0u);
  EXPECT_FALSE(result->metrics.degraded);
}

// ------------------------------------------------------ Variant naming ----

TEST(GpuPeelOptionsTest, VariantNames) {
  EXPECT_EQ(GpuPeelOptions::Ours().VariantName(), "Ours");
  EXPECT_EQ(GpuPeelOptions::Sm().VariantName(), "SM");
  EXPECT_EQ(GpuPeelOptions::Vp().VariantName(), "VP");
  EXPECT_EQ(GpuPeelOptions::Bc().VariantName(), "BC");
  EXPECT_EQ(GpuPeelOptions::Bc().WithSm().VariantName(), "BC+SM");
  EXPECT_EQ(GpuPeelOptions::Bc().WithVp().VariantName(), "BC+VP");
  EXPECT_EQ(GpuPeelOptions::Ec().VariantName(), "EC");
  EXPECT_EQ(GpuPeelOptions::Ec().WithSm().VariantName(), "EC+SM");
  EXPECT_EQ(GpuPeelOptions::Ec().WithVp().VariantName(), "EC+VP");
  EXPECT_EQ(GpuPeelOptions::AblationVariants().size(), 9u);
}

}  // namespace
}  // namespace kcore
