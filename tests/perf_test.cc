#include <gtest/gtest.h>

#include "perf/cost_model.h"
#include "perf/decompose_result.h"
#include "perf/modeled_clock.h"
#include "perf/perf_counters.h"

namespace kcore {
namespace {

TEST(PerfCountersTest, AdditionAccumulatesEveryField) {
  PerfCounters a;
  a.lane_ops = 1;
  a.global_reads = 2;
  a.global_writes = 3;
  a.global_atomics = 4;
  a.shared_ops = 5;
  a.shared_atomics = 6;
  a.barriers = 7;
  a.scan_steps = 8;
  a.kernel_launches = 9;
  a.edges_traversed = 10;
  a.vertices_scanned = 11;
  a.buffer_appends = 12;
  a.hindex_evals = 13;
  a.messages = 14;
  a.vector_op_calls = 15;
  PerfCounters b = a;
  b += a;
  EXPECT_EQ(b.lane_ops, 2u);
  EXPECT_EQ(b.global_atomics, 8u);
  EXPECT_EQ(b.barriers, 14u);
  EXPECT_EQ(b.kernel_launches, 18u);
  EXPECT_EQ(b.vector_op_calls, 30u);
  EXPECT_EQ(b.messages, 28u);
}

TEST(CostModelTest, UnitTimeScalesWithWork) {
  const CostModel model = GpuNativeCostModel();
  PerfCounters small;
  small.lane_ops = 1000;
  PerfCounters big;
  big.lane_ops = 1000000;
  EXPECT_GT(model.UnitTimeNs(big), 100 * model.UnitTimeNs(small));
}

TEST(CostModelTest, ParallelWidthDividesParallelWork) {
  CostModel narrow = GpuNativeCostModel();
  narrow.unit_parallel_width = 1;
  CostModel wide = GpuNativeCostModel();
  wide.unit_parallel_width = 1024;
  PerfCounters work;
  work.lane_ops = 1 << 20;
  EXPECT_NEAR(narrow.UnitTimeNs(work) / wide.UnitTimeNs(work), 1024.0, 1.0);
}

TEST(CostModelTest, BarriersNotDividedByWidth) {
  CostModel model = GpuNativeCostModel();
  PerfCounters work;
  work.barriers = 10;
  EXPECT_DOUBLE_EQ(model.UnitTimeNs(work), 10 * model.barrier_ns);
}

TEST(CostModelTest, SystemModelCostsMoreThanNative) {
  const CostModel native = GpuNativeCostModel();
  const CostModel system = GpuSystemCostModel();
  PerfCounters work;
  work.lane_ops = 100000;
  work.global_reads = 100000;
  work.global_writes = 50000;
  EXPECT_GT(system.UnitTimeNs(work), 10 * native.UnitTimeNs(work));
}

TEST(CostModelTest, CpuModelIsScalar) {
  const CostModel cpu = CpuCostModel();
  EXPECT_DOUBLE_EQ(cpu.unit_parallel_width, 1.0);
  EXPECT_DOUBLE_EQ(cpu.kernel_launch_ns, 0.0);
}

TEST(ModeledClockTest, ParallelPhaseTakesMaxOverLanes) {
  ModeledClock clock(CpuCostModel());
  PerfCounters fast;
  fast.lane_ops = 10;
  PerfCounters slow;
  slow.lane_ops = 1000000;
  std::vector<PerfCounters> lanes = {fast, slow, fast};
  clock.AddParallelPhase(lanes, /*ends_with_barrier=*/false);
  const CostModel cpu = CpuCostModel();
  EXPECT_DOUBLE_EQ(clock.ms(), cpu.UnitTimeNs(slow) / 1e6);
}

TEST(ModeledClockTest, BarrierAndOverheadAccumulate) {
  ModeledClock clock(CpuCostModel());
  std::vector<PerfCounters> lanes(2);
  clock.AddParallelPhase(lanes, /*ends_with_barrier=*/true);
  clock.AddOverheadNs(1e6);
  EXPECT_NEAR(clock.ms(), (CpuCostModel().barrier_ns + 1e6) / 1e6, 1e-12);
}

TEST(ModeledClockTest, SerialAddsUnitTime) {
  ModeledClock clock(GpuNativeCostModel());
  PerfCounters work;
  work.global_atomics = 1280;
  clock.AddSerial(work);
  const CostModel model = GpuNativeCostModel();
  EXPECT_DOUBLE_EQ(clock.ms() * 1e6, model.UnitTimeNs(work));
}

TEST(DecomposeResultTest, MaxCore) {
  DecomposeResult result;
  EXPECT_EQ(result.MaxCore(), 0u);
  result.core = {0, 3, 1, 3, 2};
  EXPECT_EQ(result.MaxCore(), 3u);
}

}  // namespace
}  // namespace kcore
