#include <gtest/gtest.h>

#include "perf/cost_model.h"
#include "perf/decompose_result.h"
#include "perf/modeled_clock.h"
#include "perf/perf_counters.h"

namespace kcore {
namespace {

TEST(PerfCountersTest, AdditionAccumulatesEveryField) {
  PerfCounters a;
  a.lane_ops = 1;
  a.global_reads = 2;
  a.global_writes = 3;
  a.global_atomics = 4;
  a.shared_ops = 5;
  a.shared_atomics = 6;
  a.barriers = 7;
  a.scan_steps = 8;
  a.kernel_launches = 9;
  a.edges_traversed = 10;
  a.vertices_scanned = 11;
  a.buffer_appends = 12;
  a.hindex_evals = 13;
  a.messages = 14;
  a.vector_op_calls = 15;
  PerfCounters b = a;
  b += a;
  EXPECT_EQ(b.lane_ops, 2u);
  EXPECT_EQ(b.global_atomics, 8u);
  EXPECT_EQ(b.barriers, 14u);
  EXPECT_EQ(b.kernel_launches, 18u);
  EXPECT_EQ(b.vector_op_calls, 30u);
  EXPECT_EQ(b.messages, 28u);
}

TEST(CostModelTest, UnitTimeScalesWithWork) {
  const CostModel model = GpuNativeCostModel();
  PerfCounters small;
  small.lane_ops = 1000;
  PerfCounters big;
  big.lane_ops = 1000000;
  EXPECT_GT(model.UnitTimeNs(big), 100 * model.UnitTimeNs(small));
}

TEST(CostModelTest, ParallelWidthDividesParallelWork) {
  CostModel narrow = GpuNativeCostModel();
  narrow.unit_parallel_width = 1;
  CostModel wide = GpuNativeCostModel();
  wide.unit_parallel_width = 1024;
  PerfCounters work;
  work.lane_ops = 1 << 20;
  EXPECT_NEAR(narrow.UnitTimeNs(work) / wide.UnitTimeNs(work), 1024.0, 1.0);
}

TEST(CostModelTest, BarriersNotDividedByWidth) {
  CostModel model = GpuNativeCostModel();
  PerfCounters work;
  work.barriers = 10;
  EXPECT_DOUBLE_EQ(model.UnitTimeNs(work), 10 * model.barrier_ns);
}

TEST(CostModelTest, SystemModelCostsMoreThanNative) {
  const CostModel native = GpuNativeCostModel();
  const CostModel system = GpuSystemCostModel();
  PerfCounters work;
  work.lane_ops = 100000;
  work.global_reads = 100000;
  work.global_writes = 50000;
  EXPECT_GT(system.UnitTimeNs(work), 10 * native.UnitTimeNs(work));
}

TEST(CostModelTest, CpuModelIsScalar) {
  const CostModel cpu = CpuCostModel();
  EXPECT_DOUBLE_EQ(cpu.unit_parallel_width, 1.0);
  EXPECT_DOUBLE_EQ(cpu.kernel_launch_ns, 0.0);
}

TEST(ModeledClockTest, ParallelPhaseTakesMaxOverLanes) {
  ModeledClock clock(CpuCostModel());
  PerfCounters fast;
  fast.lane_ops = 10;
  PerfCounters slow;
  slow.lane_ops = 1000000;
  std::vector<PerfCounters> lanes = {fast, slow, fast};
  clock.AddParallelPhase(lanes, /*ends_with_barrier=*/false);
  const CostModel cpu = CpuCostModel();
  EXPECT_DOUBLE_EQ(clock.ms(), cpu.UnitTimeNs(slow) / 1e6);
}

TEST(ModeledClockTest, BarrierAndOverheadAccumulate) {
  ModeledClock clock(CpuCostModel());
  std::vector<PerfCounters> lanes(2);
  clock.AddParallelPhase(lanes, /*ends_with_barrier=*/true);
  clock.AddOverheadNs(1e6);
  EXPECT_NEAR(clock.ms(), (CpuCostModel().barrier_ns + 1e6) / 1e6, 1e-12);
}

TEST(ModeledClockTest, SerialAddsUnitTime) {
  ModeledClock clock(GpuNativeCostModel());
  PerfCounters work;
  work.global_atomics = 1280;
  clock.AddSerial(work);
  const CostModel model = GpuNativeCostModel();
  EXPECT_DOUBLE_EQ(clock.ms() * 1e6, model.UnitTimeNs(work));
}

// The charged/uncharged classification documented in DESIGN.md's counter
// reference table: every PerfCounters field is either charged by
// CostModel::UnitTimeNs or explicitly an uncharged meter. Setting one field
// at a time proves the classification against the real cost formulas, and
// the sizeof guard forces whoever adds a field to classify it here (and in
// DESIGN.md) before the build goes green again.
TEST(PerfCountersTest, EveryCounterIsChargedOrDocumentedUncharged) {
  struct Field {
    const char* name;
    uint64_t PerfCounters::* member;
  };
  // Charged: these feed UnitTimeNs in every cost model.
  static const Field kCharged[] = {
      {"lane_ops", &PerfCounters::lane_ops},
      {"global_reads", &PerfCounters::global_reads},
      {"global_writes", &PerfCounters::global_writes},
      {"global_atomics", &PerfCounters::global_atomics},
      {"shared_ops", &PerfCounters::shared_ops},
      {"shared_atomics", &PerfCounters::shared_atomics},
      {"barriers", &PerfCounters::barriers},
      {"scan_steps", &PerfCounters::scan_steps},
  };
  // Uncharged meters: reported, never timed (their work is already counted
  // by the charged fields as it happens; kernel_launches is charged per
  // launch as CostModel::kernel_launch_ns by the Device, not per count
  // here).
  static const Field kUncharged[] = {
      {"kernel_launches", &PerfCounters::kernel_launches},
      {"edges_traversed", &PerfCounters::edges_traversed},
      {"vertices_scanned", &PerfCounters::vertices_scanned},
      {"buffer_appends", &PerfCounters::buffer_appends},
      {"compactions", &PerfCounters::compactions},
      {"scan_vertices_skipped", &PerfCounters::scan_vertices_skipped},
      {"hindex_evals", &PerfCounters::hindex_evals},
      {"messages", &PerfCounters::messages},
      {"vector_op_calls", &PerfCounters::vector_op_calls},
      {"loop_bin_thread", &PerfCounters::loop_bin_thread},
      {"loop_bin_warp", &PerfCounters::loop_bin_warp},
      {"loop_bin_block", &PerfCounters::loop_bin_block},
  };
  // A new field must be added to exactly one list (and to DESIGN.md).
  static_assert(sizeof(PerfCounters) ==
                    (std::size(kCharged) + std::size(kUncharged)) *
                        sizeof(uint64_t),
                "PerfCounters gained a field: classify it as charged or "
                "uncharged here and in DESIGN.md's counter table");

  const CostModel models[] = {GpuNativeCostModel(), GpuSystemCostModel(),
                              CpuCostModel()};
  for (const CostModel& model : models) {
    for (const Field& field : kCharged) {
      PerfCounters c;
      c.*field.member = 1000;
      EXPECT_GT(model.UnitTimeNs(c), 0.0) << field.name;
    }
    for (const Field& field : kUncharged) {
      PerfCounters c;
      c.*field.member = 1000;
      EXPECT_EQ(model.UnitTimeNs(c), 0.0) << field.name;
    }
  }
}

TEST(DecomposeResultTest, MaxCore) {
  DecomposeResult result;
  EXPECT_EQ(result.MaxCore(), 0u);
  result.core = {0, 3, 1, 3, 2};
  EXPECT_EQ(result.MaxCore(), 3u);
}

}  // namespace
}  // namespace kcore
