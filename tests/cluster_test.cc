// End-to-end tests for the simulated multi-node engine (DESIGN.md §14):
// cluster coreness must be bit-identical to the BZ oracle for every
// partition strategy, node count and per-node device count; the buffered
// network layer must aggregate exactly as specified; faults mid-round must
// recover (or degrade) without ever yielding a wrong answer.
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_peel.h"
#include "cluster/network.h"
#include "cluster/partition.h"
#include "common/thread_pool.h"
#include "cpu/naive_ref.h"
#include "perf/trace.h"
#include "serve/engine.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

struct ShapeName {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    return std::string(PartitionStrategyName(std::get<1>(info.param))) + "_" +
           std::to_string(std::get<0>(info.param)) + "nodes";
  }
};

class ClusterShapeTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, PartitionStrategy>> {
 protected:
  uint32_t num_nodes() const { return std::get<0>(GetParam()); }
  PartitionStrategy strategy() const { return std::get<1>(GetParam()); }
};

TEST_P(ClusterShapeTest, MatchesOracleOnFullSuite) {
  for (uint32_t devices : {1u, 2u}) {
    ClusterOptions options;
    options.num_nodes = num_nodes();
    options.devices_per_node = devices;
    options.partition = strategy();
    for (const NamedGraph& g : FullSuite()) {
      const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
      auto result = RunClusterPeel(g.graph, options);
      ASSERT_TRUE(result.ok())
          << g.name << ": " << result.status().ToString();
      EXPECT_EQ(result->core, oracle)
          << g.name << " nodes=" << num_nodes() << " devices=" << devices
          << " partition=" << PartitionStrategyName(strategy());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapeTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u),
                       ::testing::ValuesIn(AllPartitionStrategies())),
    ShapeName());

TEST(ClusterTest, SimcheckCleanOnFullSuite) {
  ClusterOptions options;
  options.num_nodes = 3;
  options.node_device.check_mode = true;
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunClusterPeel(g.graph, options);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(ClusterTest, EmptyGraph) {
  const CsrGraph empty = BuildUndirectedGraphWithVertexCount({}, 0);
  auto result = RunClusterPeel(empty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->core.empty());
}

TEST(ClusterTest, ZeroNodesRejected) {
  ClusterOptions options;
  options.num_nodes = 0;
  EXPECT_TRUE(RunClusterPeel(testing::CliqueGraph(4).graph, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ClusterTest, ZeroDevicesRejected) {
  ClusterOptions options;
  options.devices_per_node = 0;
  EXPECT_TRUE(RunClusterPeel(testing::CliqueGraph(4).graph, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ClusterTest, SingleNodeHasNoTraffic) {
  ClusterOptions options;
  options.num_nodes = 1;
  options.devices_per_node = 2;
  auto result = RunClusterPeel(testing::RandomSuite()[0].graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.comm_bytes, 0u);
  EXPECT_EQ(result->metrics.comm_messages, 0u);
  EXPECT_EQ(result->metrics.comm_ms, 0.0);
}

TEST(ClusterTest, BorderPropagationNeedsExtraSubRounds) {
  // A path spanning every node: the k=1 shell peels strictly through node
  // borders, so sub-rounds must exceed rounds (the multi-GPU observation
  // lifted to the cluster barrier).
  const auto g = testing::PathGraph(64);
  ClusterOptions options;
  options.num_nodes = 4;
  auto result = RunClusterPeel(g.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->core, g.expected_core);
  EXPECT_GT(result->metrics.iterations, result->metrics.rounds);
  EXPECT_GT(result->metrics.comm_bytes, 0u);
}

TEST(ClusterTest, CancelledBeforeStart) {
  CancelToken token;
  token.Cancel();
  CancelContext cancel;
  cancel.token = &token;
  ClusterOptions options;
  options.cancel = &cancel;
  auto result = RunClusterPeel(testing::CliqueGraph(8).graph, options);
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

// ------------------------------------------------------- Network layer ----

TEST(ClusterNetworkTest, AggregatesSameVertexInPlace) {
  ClusterNetwork network(2, NetworkOptions());
  network.Buffer(0, 1, /*v=*/7, 1);
  network.Buffer(0, 1, /*v=*/7, 2);
  network.Buffer(0, 1, /*v=*/9, 1);
  EXPECT_EQ(network.PendingEntries(), 2u);

  std::vector<std::unordered_map<VertexId, uint32_t>> inboxes(2);
  EXPECT_GT(network.Flush(&inboxes), 0.0);
  EXPECT_EQ(inboxes[1].at(7), 3u);
  EXPECT_EQ(inboxes[1].at(9), 1u);
  EXPECT_TRUE(inboxes[0].empty());
  EXPECT_EQ(network.PendingEntries(), 0u);
}

TEST(ClusterNetworkTest, FlushesExactlyOncePerLink) {
  ClusterNetwork network(3, NetworkOptions());
  // Many buffered deltas on two links; one flush must emit exactly one
  // message per busy link and nothing on idle links.
  for (VertexId v = 0; v < 10; ++v) network.Buffer(0, 1, v, 1);
  for (VertexId v = 0; v < 4; ++v) network.Buffer(2, 0, v, 1);
  std::vector<std::unordered_map<VertexId, uint32_t>> inboxes(3);
  network.Flush(&inboxes);
  EXPECT_EQ(network.LinkFlushCount(0, 1), 1u);
  EXPECT_EQ(network.LinkFlushCount(2, 0), 1u);
  EXPECT_EQ(network.LinkFlushCount(0, 2), 0u);
  EXPECT_EQ(network.LinkFlushCount(1, 0), 0u);
  EXPECT_EQ(network.stats().messages, 2u);
  EXPECT_EQ(network.stats().flushes, 1u);

  // An empty flush costs nothing and does not count.
  EXPECT_EQ(network.Flush(&inboxes), 0.0);
  EXPECT_EQ(network.stats().flushes, 1u);
  EXPECT_EQ(network.LinkFlushCount(0, 1), 1u);
}

TEST(ClusterNetworkTest, ModeledCostMatchesHandComputation) {
  NetworkOptions options;
  options.link_latency_us = 2.0;
  options.link_bandwidth_gbps = 1.0;  // 1 byte per modeled ns
  ClusterNetwork network(2, options);
  for (VertexId v = 0; v < 3; ++v) network.Buffer(0, 1, v, 1);
  std::vector<std::unordered_map<VertexId, uint32_t>> inboxes(2);
  const double ns = network.Flush(&inboxes);
  // One message: 64-byte header + 3 entries x 8 bytes = 88 bytes at
  // 1 byte/ns, plus 2 us latency.
  EXPECT_DOUBLE_EQ(ns, 88.0 + 2000.0);
  EXPECT_EQ(network.stats().bytes_on_wire, 88u);
  EXPECT_EQ(network.stats().entries, 3u);
  EXPECT_EQ(network.MessageBytes(3), 88u);
}

TEST(ClusterNetworkTest, SlowestSenderGatesTheBarrier) {
  NetworkOptions options;
  options.link_latency_us = 0.0;
  options.link_bandwidth_gbps = 1.0;
  ClusterNetwork network(3, options);
  // Node 0 sends on two links (its NIC serializes: costs add); node 1 sends
  // one message in parallel with node 0.
  network.Buffer(0, 1, 1, 1);
  network.Buffer(0, 2, 2, 1);
  network.Buffer(1, 2, 3, 1);
  std::vector<std::unordered_map<VertexId, uint32_t>> inboxes(3);
  const double ns = network.Flush(&inboxes);
  EXPECT_DOUBLE_EQ(ns, 2.0 * (64.0 + 8.0));
}

TEST(ClusterTest, BytesOnWireGoldenOnFourVertexPath) {
  // Path 0-1-2-3 under a contiguous 2-node split ({0,1} | {2,3}). The only
  // border traffic is in round k=1, sub-round 1: node 0 peels 0 then 1 and
  // buffers one decrement for foreign 2; node 1 peels 3 then 2 and buffers
  // one decrement for foreign 1. One flush, two links, one entry each:
  // 2 x (64 + 8) = 144 bytes.
  const auto g = testing::PathGraph(4);
  ClusterOptions options;
  options.num_nodes = 2;
  options.partition = PartitionStrategy::kContiguous;
  auto result = RunClusterPeel(g.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->core, g.expected_core);
  EXPECT_EQ(result->metrics.comm_bytes, 144u);
  EXPECT_EQ(result->metrics.comm_messages, 2u);
}

TEST(ClusterTest, ModeledCommDeterministicAcrossRuns) {
  // With a 1-thread pool the whole run is single-threaded; two runs must
  // agree bit-for-bit on every modeled number.
  ThreadPool pool(1);
  ClusterOptions options;
  options.num_nodes = 4;
  options.partition = PartitionStrategy::kEdgeCut;
  options.pool = &pool;
  const auto g = testing::RandomSuite()[2].graph;  // ba
  auto first = RunClusterPeel(g, options);
  auto second = RunClusterPeel(g, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->core, second->core);
  EXPECT_EQ(first->metrics.comm_ms, second->metrics.comm_ms);
  EXPECT_EQ(first->metrics.modeled_ms, second->metrics.modeled_ms);
  EXPECT_EQ(first->metrics.comm_bytes, second->metrics.comm_bytes);
  EXPECT_EQ(first->metrics.comm_messages, second->metrics.comm_messages);
  EXPECT_EQ(first->metrics.iterations, second->metrics.iterations);
}

TEST(ClusterTest, CommCostScalesWithNetworkKnobs) {
  const auto g = testing::RandomSuite()[0].graph;
  ClusterOptions fast;
  fast.num_nodes = 3;
  ClusterOptions slow = fast;
  slow.network.link_latency_us *= 100.0;
  slow.network.link_bandwidth_gbps /= 100.0;
  auto fast_result = RunClusterPeel(g, fast);
  auto slow_result = RunClusterPeel(g, slow);
  ASSERT_TRUE(fast_result.ok() && slow_result.ok());
  // Pure model: the answer and the traffic are identical, only time moves.
  EXPECT_EQ(fast_result->core, slow_result->core);
  EXPECT_EQ(fast_result->metrics.comm_bytes, slow_result->metrics.comm_bytes);
  EXPECT_GT(slow_result->metrics.comm_ms, fast_result->metrics.comm_ms);
}

// ----------------------------------------------------- Comm overlap -------

TEST(ClusterTest, OverlapIsBitIdenticalAndNoSlower) {
  for (const NamedGraph& g : FullSuite()) {
    ClusterOptions on;
    on.num_nodes = 3;
    on.overlap = true;
    ClusterOptions off = on;
    off.overlap = false;
    auto with = RunClusterPeel(g.graph, on);
    auto without = RunClusterPeel(g.graph, off);
    ASSERT_TRUE(with.ok() && without.ok()) << g.name;
    EXPECT_EQ(with->core, without->core) << g.name;
    EXPECT_EQ(with->metrics.comm_bytes, without->metrics.comm_bytes)
        << g.name;
    EXPECT_EQ(with->metrics.iterations, without->metrics.iterations)
        << g.name;
    // Overlap hides exchange time behind the next sub-round's compute; it
    // can only help the modeled clock.
    EXPECT_LE(with->metrics.modeled_ms, without->metrics.modeled_ms)
        << g.name;
  }
}

// ------------------------------------------------------ Fault matrix ------

TEST(ClusterFaultTest, NodeLossRepartitionsOntoSurvivors) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  ClusterOptions options;
  options.num_nodes = 4;
  options.node_fault_specs = {"", "device_lost@launch=4", "", ""};
  auto result = RunClusterPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.devices_lost, 1u);
  EXPECT_GE(result->metrics.levels_reexecuted, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(ClusterFaultTest, SequentialNodeLossesKeepRepartitioning) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  ClusterOptions options;
  options.num_nodes = 4;
  options.node_fault_specs = {"device_lost@launch=9",
                              "device_lost@launch=3", "", ""};
  auto result = RunClusterPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.devices_lost, 2u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(ClusterFaultTest, LosingOneDeviceKillsTheWholeNode) {
  // Node granularity: with M=2 the fault plan lands on both devices of node
  // 1, but even a single device loss retires the node as a unit and its
  // whole share moves to a survivor.
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  ClusterOptions options;
  options.num_nodes = 2;
  options.devices_per_node = 2;
  options.node_fault_specs = {"", "device_lost@launch=3"};
  auto result = RunClusterPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.devices_lost, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(ClusterFaultTest, AllNodesLostFallsBackToCpu) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  ClusterOptions options;
  options.num_nodes = 2;
  options.node_fault_specs = {"device_lost@launch=2",
                              "device_lost@launch=2"};
  auto result = RunClusterPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_TRUE(result->metrics.degraded);
  EXPECT_GE(result->metrics.cpu_fallback_levels, 1u);
}

TEST(ClusterFaultTest, MidRoundFaultMatrixNeverYieldsWrongCoreness) {
  // The fault x shape matrix of the differential suite's fault leg, driven
  // directly: transient launch failures and node losses injected mid-round
  // must either recover exactly or degrade to the exact CPU answer.
  const auto g = testing::RandomSuite()[4].graph;  // planted core
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  const char* kSpecs[] = {"launch_fail@3", "launch_fail@7",
                          "device_lost@launch=2", "device_lost@launch=11"};
  for (const char* spec : kSpecs) {
    for (uint32_t nodes : {2u, 3u}) {
      ClusterOptions options;
      options.num_nodes = nodes;
      options.node_fault_specs.assign(nodes, "");
      options.node_fault_specs[nodes - 1] = spec;
      auto result = RunClusterPeel(g, options);
      ASSERT_TRUE(result.ok())
          << spec << " nodes=" << nodes << ": "
          << result.status().ToString();
      EXPECT_EQ(result->core, oracle) << spec << " nodes=" << nodes;
    }
  }
}

TEST(ClusterFaultTest, TransientLaunchFailuresAreRetried) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  ClusterOptions options;
  options.num_nodes = 3;
  options.node_fault_specs = {"launch_fail@4"};
  auto result = RunClusterPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(ClusterFaultTest, FallbackDisabledSurfacesTotalLoss) {
  ClusterOptions options;
  options.num_nodes = 2;
  options.resilience.cpu_fallback = false;
  options.node_fault_specs = {"device_lost@launch=1",
                              "device_lost@launch=1"};
  auto result = RunClusterPeel(testing::RandomSuite()[0].graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviceLost()) << result.status().ToString();
}

TEST(ClusterFaultTest, NoFaultPlanTakesNoCheckpoints) {
  ClusterOptions options;
  options.num_nodes = 3;
  auto result = RunClusterPeel(testing::CliqueGraph(10).graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.checkpoints_taken, 0u);
  EXPECT_EQ(result->metrics.devices_lost, 0u);
  EXPECT_FALSE(result->metrics.degraded);
}

// --------------------------------------------------- Engine integration ---

TEST(ClusterEngineTest, MakeEngineRoutesToCluster) {
  EngineConfig config;
  config.cluster.num_nodes = 3;
  config.cluster.partition = PartitionStrategy::kEdgeCut;
  auto engine = MakeEngine(EngineKind::kCluster, config);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->kind(), EngineKind::kCluster);
  EXPECT_STREQ(engine->name(), "cluster");
  EXPECT_TRUE(engine->uses_device());

  const auto g = testing::RandomSuite()[0].graph;
  auto result = engine->Decompose(g, EngineRunContext{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, RunNaiveReference(g).core);
  EXPECT_TRUE(engine->HealthCheck(EngineRunContext{}).ok());
}

TEST(ClusterEngineTest, TraceCarriesPerNodeAndCommSpans) {
  Trace trace;
  ClusterOptions options;
  options.num_nodes = 2;
  options.trace = &trace;
  const auto g = testing::RandomSuite()[0].graph;
  auto result = RunClusterPeel(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.comm_ms, 0.0);
  // Comm spans live on the master timeline; per-node compute spans on the
  // per-device pids add further kernel time on top of them.
  const double comm_ns = trace.TotalDurNs(kTraceCatKernel, "border_exchange");
  EXPECT_GT(comm_ns, 0.0);
  EXPECT_GT(trace.TotalDurNs(kTraceCatKernel), comm_ns);
}

}  // namespace
}  // namespace kcore
