// Tests for single-k direct core mining: Xiang's CPU algorithm
// (src/cpu/xiang.h), the simulated-GPU kernel pipeline (GpuSingleKCore),
// and the SingleKCore router. Ground truth throughout is the BZ
// decomposition filtered at k (v is in the k-core iff core(v) >= k), which
// the direct miners must reproduce for every k — including k past the
// degeneracy, where the core is empty.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gpu_peel.h"
#include "core/single_k.h"
#include "cpu/bz.h"
#include "cpu/xiang.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

GpuPeelOptions SmallGeometry(GpuPeelOptions base = {}) {
  base.num_blocks = 4;
  base.block_dim = 64;  // 2 warps
  return base;
}

sim::DeviceOptions SmallDevice() {
  sim::DeviceOptions device;
  device.num_sms = 4;
  return device;
}

/// The oracle: membership bitmap of the k-core from a full BZ decomposition.
std::vector<uint8_t> BzFilter(const CsrGraph& graph, uint32_t k) {
  const std::vector<uint32_t> core = RunBz(graph).core;
  std::vector<uint8_t> in_core(core.size(), 0);
  for (size_t v = 0; v < core.size(); ++v) in_core[v] = core[v] >= k;
  return in_core;
}

void ExpectMatchesOracle(const SingleKCoreResult& result,
                         const CsrGraph& graph, uint32_t k,
                         const std::string& label) {
  const std::vector<uint8_t> oracle = BzFilter(graph, k);
  ASSERT_EQ(result.k, k) << label;
  ASSERT_EQ(result.in_core.size(), oracle.size()) << label;
  EXPECT_EQ(result.in_core, oracle) << label << " k=" << k;
  // The dense member list is the bitmap, ascending.
  std::vector<uint32_t> expected_vertices;
  for (uint32_t v = 0; v < oracle.size(); ++v) {
    if (oracle[v] != 0) expected_vertices.push_back(v);
  }
  EXPECT_EQ(result.vertices, expected_vertices) << label << " k=" << k;
}

// ------------------------------------------------------------ CPU Xiang ----

TEST(XiangSingleKTest, MatchesBzFilterForEveryKOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const uint32_t k_max = RunBz(g.graph).MaxCore();
    for (uint32_t k = 1; k <= k_max + 2; ++k) {
      ExpectMatchesOracle(XiangSingleKCore(g.graph, k), g.graph, k, g.name);
    }
  }
}

TEST(XiangSingleKTest, DifferentialCorpora) {
  // Generator families beyond the shared roster: power-law tails and a
  // denser planted community, the shapes where direct mining pays off.
  std::vector<NamedGraph> corpora;
  {
    NamedGraph g;
    g.name = "chung_lu";
    g.graph = BuildUndirectedGraph(GenerateChungLuPowerLaw(500, 1500, 2.5, 31));
    corpora.push_back(std::move(g));
  }
  {
    SkewedPowerLawOptions skew;
    NamedGraph g;
    g.name = "skew";
    g.graph = BuildUndirectedGraph(GenerateSkewedPowerLaw(skew, 37));
    corpora.push_back(std::move(g));
  }
  {
    PlantedCoreOptions planted;
    planted.core_size = 32;
    planted.core_density = 0.9;
    NamedGraph g;
    g.name = "planted_dense";
    g.graph = BuildUndirectedGraph(OverlayPlantedCore(
        GenerateErdosRenyi(600, 1200, 41), 600, planted, 43));
    corpora.push_back(std::move(g));
  }
  for (const NamedGraph& g : corpora) {
    const uint32_t k_max = RunBz(g.graph).MaxCore();
    for (uint32_t k : {1u, 2u, 3u, k_max, k_max + 1}) {
      if (k < 1) continue;
      ExpectMatchesOracle(XiangSingleKCore(g.graph, k), g.graph, k, g.name);
    }
  }
}

TEST(XiangSingleKTest, MetricsPopulated) {
  const auto result = XiangSingleKCore(testing::CliqueGraph(8).graph, 3);
  EXPECT_EQ(result.metrics.rounds, 1u);
  EXPECT_GT(result.metrics.counters.vertices_scanned, 0u);
  EXPECT_GT(result.metrics.modeled_ms, 0.0);
  // Direct mining touches no kernel: the launch counter stays zero (the
  // router tests below key off this).
  EXPECT_EQ(result.metrics.counters.kernel_launches, 0u);
}

// ------------------------------------------------------------ GPU miner ----

TEST(GpuSingleKTest, MatchesBzFilterForEveryKOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const uint32_t k_max = RunBz(g.graph).MaxCore();
    for (uint32_t k = 1; k <= k_max + 2; ++k) {
      auto result = RunGpuSingleKCore(g.graph, k, SmallGeometry(),
                                      SmallDevice());
      ASSERT_TRUE(result.ok()) << g.name << " k=" << k << ": "
                               << result.status().ToString();
      ExpectMatchesOracle(*result, g.graph, k, g.name);
      EXPECT_EQ(result->metrics.rounds, 1u);
      // The whole point: one scan launch + one loop launch per query.
      EXPECT_EQ(result->metrics.counters.kernel_launches, 2u)
          << g.name << " k=" << k;
    }
  }
}

TEST(GpuSingleKTest, ComposesWithAblationVariantsAndExpandBins) {
  const NamedGraph g = testing::RandomSuite()[0];
  const uint32_t k = 3;
  std::vector<GpuPeelOptions> configs;
  for (const GpuPeelOptions& variant : GpuPeelOptions::AblationVariants()) {
    configs.push_back(SmallGeometry(variant));
  }
  for (ExpandStrategy strategy :
       {ExpandStrategy::kThread, ExpandStrategy::kBlock,
        ExpandStrategy::kAuto}) {
    GpuPeelOptions options = SmallGeometry().WithExpand(strategy);
    options.block_expand_threshold = 32;
    configs.push_back(options);
  }
  configs.push_back(SmallGeometry().WithRenumber());
  for (const GpuPeelOptions& options : configs) {
    auto result = RunGpuSingleKCore(g.graph, k, options, SmallDevice());
    ASSERT_TRUE(result.ok())
        << options.VariantName() << ": " << result.status().ToString();
    ExpectMatchesOracle(*result, g.graph, k, options.VariantName());
  }
}

TEST(GpuSingleKTest, SimcheckClean) {
  sim::DeviceOptions device = SmallDevice();
  device.check_mode = true;
  const NamedGraph g = testing::RandomSuite()[0];
  auto result = RunGpuSingleKCore(g.graph, 3, SmallGeometry(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesOracle(*result, g.graph, 3, "simcheck");
}

TEST(GpuSingleKTest, InvalidArguments) {
  const CsrGraph& g = testing::CliqueGraph(4).graph;
  EXPECT_TRUE(RunGpuSingleKCore(g, 0).status().IsInvalidArgument());
  GpuPeelOptions bad = SmallGeometry();
  bad.block_dim = 48;  // not a multiple of 32
  EXPECT_TRUE(RunGpuSingleKCore(g, 2, bad).status().IsInvalidArgument());
}

// -------------------------------------------------------- fault handling ----

TEST(GpuSingleKFaultTest, TransientLaunchFailureIsRetried) {
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "launch_fail@1";
  const NamedGraph g = testing::RandomSuite()[0];
  auto result = RunGpuSingleKCore(g.graph, 3, SmallGeometry(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesOracle(*result, g.graph, 3, "transient");
  EXPECT_GE(result->metrics.retries, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(GpuSingleKFaultTest, BitflipsAreInert) {
  // Single-k marks nothing corruptible (no checkpoint to roll back to), so
  // an armed bitflip never fires: deg stays ECC-protected and the answer is
  // exact with zero recovery work.
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "bitflip:launch=1,word=0,bit=4";
  const NamedGraph g = testing::RandomSuite()[0];
  auto result = RunGpuSingleKCore(g.graph, 3, SmallGeometry(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesOracle(*result, g.graph, 3, "bitflip");
  EXPECT_FALSE(result->metrics.degraded);
  EXPECT_EQ(result->metrics.levels_reexecuted, 0u);
}

TEST(GpuSingleKFaultTest, DeviceLossFallsBackToCpuXiang) {
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "device_lost@launch=1";
  const NamedGraph g = testing::RandomSuite()[0];
  auto result = RunGpuSingleKCore(g.graph, 3, SmallGeometry(), device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMatchesOracle(*result, g.graph, 3, "device_lost");
  EXPECT_TRUE(result->metrics.degraded);
  EXPECT_EQ(result->metrics.devices_lost, 1u);
}

TEST(GpuSingleKFaultTest, FallbackDisabledSurfacesLoss) {
  GpuPeelOptions options = SmallGeometry();
  options.resilience.cpu_fallback = false;
  sim::DeviceOptions device = SmallDevice();
  device.fault_spec = "device_lost@launch=1";
  auto result =
      RunGpuSingleKCore(testing::CliqueGraph(6).graph, 3, options, device);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviceLost()) << result.status().ToString();
}

// ---------------------------------------------------------------- router ----

TEST(SingleKRouterTest, ExplicitEnginesAgreeWithOracle) {
  const NamedGraph g = testing::RandomSuite()[1];  // er_dense
  for (SingleKEngine engine : {SingleKEngine::kCpu, SingleKEngine::kGpu}) {
    SingleKOptions options;
    options.engine = engine;
    options.gpu = SmallGeometry();
    auto result = SingleKCore(g.graph, 4, options);
    ASSERT_TRUE(result.ok())
        << SingleKEngineName(engine) << ": " << result.status().ToString();
    ExpectMatchesOracle(*result, g.graph, 4, SingleKEngineName(engine));
  }
}

TEST(SingleKRouterTest, AutoRoutesByGraphSize) {
  SingleKOptions options;
  options.gpu = SmallGeometry();
  // Tiny graph: below the edge threshold, kAuto answers on CPU (no kernel
  // launches in the metrics).
  auto small = SingleKCore(testing::CliqueGraph(6).graph, 3, options);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ(small->metrics.counters.kernel_launches, 0u);
  // Past the threshold, kAuto goes to the GPU (scan + loop = 2 launches).
  options.auto_gpu_min_edges = 1;
  auto large = SingleKCore(testing::CliqueGraph(6).graph, 3, options);
  ASSERT_TRUE(large.ok()) << large.status().ToString();
  EXPECT_EQ(large->metrics.counters.kernel_launches, 2u);
}

TEST(SingleKRouterTest, RejectsKBelowOne) {
  auto result = SingleKCore(testing::CliqueGraph(4).graph, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SingleKRouterTest, EngineNames) {
  EXPECT_STREQ(SingleKEngineName(SingleKEngine::kAuto), "auto");
  EXPECT_STREQ(SingleKEngineName(SingleKEngine::kCpu), "cpu");
  EXPECT_STREQ(SingleKEngineName(SingleKEngine::kGpu), "gpu");
}

}  // namespace
}  // namespace kcore
