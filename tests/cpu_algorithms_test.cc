#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cpu/bz.h"
#include "cpu/hindex.h"
#include "cpu/mpm.h"
#include "cpu/naive_ref.h"
#include "cpu/park.h"
#include "cpu/pkc.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

// ---------------------------------------------------------------- HIndex --

TEST(HIndexTest, PaperFig2Example) {
  // Sorted estimates [5,5,3,3,2,2] -> h-index 3 (the paper's worked example).
  const std::vector<uint32_t> values = {5, 5, 3, 3, 2, 2};
  EXPECT_EQ(HIndex(values), 3u);
}

TEST(HIndexTest, EdgeCases) {
  EXPECT_EQ(HIndex(std::vector<uint32_t>{}), 0u);
  EXPECT_EQ(HIndex(std::vector<uint32_t>{0, 0, 0}), 0u);
  EXPECT_EQ(HIndex(std::vector<uint32_t>{100}), 1u);
  EXPECT_EQ(HIndex(std::vector<uint32_t>{1, 1, 1, 1}), 1u);
  EXPECT_EQ(HIndex(std::vector<uint32_t>{4, 4, 4, 4}), 4u);
  EXPECT_EQ(HIndex(std::vector<uint32_t>{5, 4, 3, 2, 1}), 3u);
}

TEST(HIndexTest, CapLimitsResult) {
  const std::vector<uint32_t> values = {9, 9, 9, 9, 9};
  EXPECT_EQ(HIndex(values, 5), 5u);
  EXPECT_EQ(HIndex(values, 3), 3u);
  EXPECT_EQ(HIndex(values, 0), 0u);
}

TEST(HIndexTest, MatchesSortDefinition) {
  // Property check against the sort-based definition on random multisets.
  Rng rng(99);
  HIndexEvaluator evaluator;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint32_t> values(rng.UniformInt(40));
    for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(30));
    std::vector<uint32_t> sorted = values;
    std::sort(sorted.rbegin(), sorted.rend());
    uint32_t expected = 0;
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] >= i + 1) expected = static_cast<uint32_t>(i + 1);
    }
    EXPECT_EQ(evaluator.Evaluate(values, static_cast<uint32_t>(values.size())),
              expected);
  }
}

TEST(HIndexTest, EvaluatorReusableAcrossSizes) {
  HIndexEvaluator evaluator;
  EXPECT_EQ(evaluator.Evaluate(std::vector<uint32_t>{3, 3, 3}, 3), 3u);
  EXPECT_EQ(evaluator.Evaluate(std::vector<uint32_t>{1}, 1), 1u);
  EXPECT_EQ(evaluator.Evaluate(std::vector<uint32_t>{2, 2, 9, 9, 9, 9}, 6),
            4u);
}

// ------------------------------------------------- Hand-labeled results --

TEST(NaiveReferenceTest, HandLabeledGraphs) {
  for (const NamedGraph& g : {testing::PaperFigureGraph(),
                              testing::CliqueGraph(6), testing::CycleGraph(8),
                              testing::StarGraph(5), testing::PathGraph(7),
                              testing::TwoCliquesGraph(5, 8),
                              testing::WithIsolatedVertices()}) {
    const DecomposeResult result = RunNaiveReference(g.graph);
    EXPECT_EQ(result.core, g.expected_core) << g.name;
  }
}

TEST(BzTest, HandLabeledGraphs) {
  for (const NamedGraph& g : {testing::PaperFigureGraph(),
                              testing::CliqueGraph(6), testing::CycleGraph(8),
                              testing::StarGraph(5),
                              testing::WithIsolatedVertices()}) {
    const DecomposeResult result = RunBz(g.graph);
    EXPECT_EQ(result.core, g.expected_core) << g.name;
  }
}

TEST(BzTest, EmptyGraph) {
  const DecomposeResult result = RunBz(CsrGraph());
  EXPECT_TRUE(result.core.empty());
  EXPECT_EQ(result.MaxCore(), 0u);
}

TEST(BzTest, MetricsPopulated) {
  const auto g = testing::CliqueGraph(8).graph;
  const DecomposeResult result = RunBz(g);
  EXPECT_EQ(result.MaxCore(), 7u);
  EXPECT_EQ(result.metrics.rounds, 8u);
  EXPECT_GT(result.metrics.modeled_ms, 0.0);
  EXPECT_EQ(result.metrics.counters.edges_traversed, g.NumDirectedEdges());
  EXPECT_GT(result.metrics.peak_device_bytes, g.MemoryBytes());
}

// ------------------------------------------- Cross-algorithm agreement ----

class CpuSuiteTest : public ::testing::TestWithParam<int> {};

TEST(CpuAgreementTest, AllEnginesMatchOracleOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    if (!g.expected_core.empty()) {
      EXPECT_EQ(oracle, g.expected_core) << g.name << " (oracle)";
    }
    EXPECT_EQ(RunBz(g.graph).core, oracle) << g.name << " (BZ)";
    EXPECT_EQ(RunParKSerial(g.graph).core, oracle) << g.name << " (ParK-s)";
    ParKOptions park;
    park.num_threads = 8;
    EXPECT_EQ(RunParK(g.graph, park).core, oracle) << g.name << " (ParK)";
    EXPECT_EQ(RunPkcSerial(g.graph, PkcVariant::kOriginal).core, oracle)
        << g.name << " (PKC-o serial)";
    EXPECT_EQ(RunPkcSerial(g.graph, PkcVariant::kCompacted).core, oracle)
        << g.name << " (PKC serial)";
    PkcOptions pkc;
    pkc.num_threads = 8;
    pkc.variant = PkcVariant::kOriginal;
    EXPECT_EQ(RunPkc(g.graph, pkc).core, oracle) << g.name << " (PKC-o)";
    pkc.variant = PkcVariant::kCompacted;
    EXPECT_EQ(RunPkc(g.graph, pkc).core, oracle) << g.name << " (PKC)";
    EXPECT_EQ(RunMpmSerial(g.graph).core, oracle) << g.name << " (MPM-s)";
    MpmOptions mpm;
    mpm.num_threads = 8;
    EXPECT_EQ(RunMpm(g.graph, mpm).core, oracle) << g.name << " (MPM)";
  }
}

TEST(CpuAgreementTest, RepeatedParallelRunsAreStable) {
  // Parallel engines must be deterministic in their *result* despite racy
  // schedules; run several times to shake out interleavings.
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  for (int i = 0; i < 5; ++i) {
    PkcOptions pkc;
    pkc.num_threads = 16;
    EXPECT_EQ(RunPkc(g, pkc).core, oracle);
    ParKOptions park;
    park.num_threads = 16;
    EXPECT_EQ(RunParK(g, park).core, oracle);
  }
}

// ------------------------------------------------------- Metrics shapes ---

TEST(MetricsShapeTest, MpmDoesMoreEdgeWorkThanPeeling) {
  // The paper's core observation about MPM: h-index refinement re-touches
  // edges across iterations, so its edge traffic exceeds one-pass peeling.
  const auto g = testing::RandomSuite()[1].graph;  // dense ER
  const auto mpm = RunMpmSerial(g);
  const auto pkc = RunPkcSerial(g);
  EXPECT_GT(mpm.metrics.counters.edges_traversed,
            pkc.metrics.counters.edges_traversed);
  EXPECT_GT(mpm.metrics.counters.hindex_evals, g.NumVertices());
}

TEST(MetricsShapeTest, PkcCompactionScansLessOnHighKmax) {
  // Planted-core graph: thousands of low-degree vertices peel early, then
  // many rounds touch only the dense core. Compaction should cut scans.
  PlantedCoreOptions planted;
  planted.core_size = 40;
  planted.core_density = 0.9;
  const CsrGraph g = BuildUndirectedGraph(OverlayPlantedCore(
      GenerateErdosRenyi(3000, 4500, 31), 3000, planted, 37));
  const auto original = RunPkcSerial(g, PkcVariant::kOriginal);
  const auto compacted = RunPkcSerial(g, PkcVariant::kCompacted);
  EXPECT_EQ(original.core, compacted.core);
  EXPECT_LT(compacted.metrics.counters.vertices_scanned,
            original.metrics.counters.vertices_scanned / 2);
  EXPECT_LT(compacted.metrics.modeled_ms, original.metrics.modeled_ms);
}

TEST(MetricsShapeTest, ParKSubLevelsCounted) {
  const auto g = testing::PathGraph(50).graph;
  const auto result = RunParKSerial(g);
  // A path peels in one round (k=1) via many BFS sub-levels.
  EXPECT_GE(result.metrics.iterations, 10u);
}

TEST(MetricsShapeTest, RoundsEqualKmaxPlusOne) {
  for (const NamedGraph& g :
       {testing::CliqueGraph(5), testing::CycleGraph(6)}) {
    const auto park = RunParKSerial(g.graph);
    EXPECT_EQ(park.metrics.rounds, park.MaxCore() + 1) << g.name;
    const auto pkc = RunPkcSerial(g.graph);
    EXPECT_EQ(pkc.metrics.rounds, pkc.MaxCore() + 1) << g.name;
  }
}

}  // namespace
}  // namespace kcore
