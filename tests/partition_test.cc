// Partition-invariant property suite (DESIGN.md §14): every strategy at
// every node count must produce a disjoint cover of V with valid
// mirror/master references and stay inside its own balance bound, on every
// graph in the test suite. These invariants are what the cluster engine's
// correctness rests on, so they are tested directly, not only through the
// end-to-end coreness checks in cluster_test.cc.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/partition.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

constexpr uint32_t kNodeCounts[] = {1, 2, 3, 5, 8};

struct ParamName {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    return std::string(PartitionStrategyName(std::get<0>(info.param))) + "_" +
           std::to_string(std::get<1>(info.param)) + "nodes";
  }
};

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<PartitionStrategy, uint32_t>> {
 protected:
  PartitionStrategy strategy() const { return std::get<0>(GetParam()); }
  uint32_t num_nodes() const { return std::get<1>(GetParam()); }
};

TEST_P(PartitionPropertyTest, DisjointCoverWithValidMirrors) {
  for (const NamedGraph& g : FullSuite()) {
    auto partition = BuildPartition(g.graph, strategy(), num_nodes());
    ASSERT_TRUE(partition.ok()) << g.name;
    std::string why;
    EXPECT_TRUE(ValidatePartition(g.graph, *partition, &why))
        << g.name << ": " << why;

    // Belt and braces beyond ValidatePartition: the owner map itself is a
    // total function into [0, num_nodes).
    ASSERT_EQ(partition->owner.size(), g.graph.NumVertices()) << g.name;
    uint64_t owned_total = 0;
    for (const NodePartition& node : partition->nodes) {
      owned_total += node.owned.size();
    }
    EXPECT_EQ(owned_total, g.graph.NumVertices()) << g.name;
    for (uint32_t owner : partition->owner) {
      ASSERT_LT(owner, num_nodes()) << g.name;
    }
    // Every mirror's master is a different node that really owns it.
    for (uint32_t node = 0; node < num_nodes(); ++node) {
      for (VertexId m : partition->nodes[node].mirrors) {
        const uint32_t master = partition->owner[m];
        ASSERT_NE(master, node) << g.name;
        const auto& owned = partition->nodes[master].owned;
        EXPECT_TRUE(std::binary_search(owned.begin(), owned.end(), m))
            << g.name << ": mirror " << m << " not in master's owned list";
      }
    }
  }
}

TEST_P(PartitionPropertyTest, EdgeMassWithinStrategyBound) {
  for (const NamedGraph& g : FullSuite()) {
    auto partition = BuildPartition(g.graph, strategy(), num_nodes());
    ASSERT_TRUE(partition.ok()) << g.name;
    const double share =
        static_cast<double>(g.graph.NumDirectedEdges()) / num_nodes();
    const double max_degree = g.graph.MaxDegree();
    for (uint32_t node = 0; node < num_nodes(); ++node) {
      const double mass =
          static_cast<double>(partition->nodes[node].edge_mass);
      switch (strategy()) {
        case PartitionStrategy::kContiguous: {
          // Contiguous balances vertex count, not mass: every node owns at
          // most ceil(V / N) vertices.
          const uint64_t chunk =
              (g.graph.NumVertices() + num_nodes() - 1) / num_nodes();
          EXPECT_LE(partition->nodes[node].owned.size(), chunk) << g.name;
          break;
        }
        case PartitionStrategy::kDegreeBalanced:
          // The sweep closes a range within one vertex of its cumulative
          // share, so no node exceeds share + max_degree.
          EXPECT_LE(mass, share + max_degree)
              << g.name << " node " << node;
          break;
        case PartitionStrategy::kEdgeCut:
          // The greedy placement is hard-capped at
          // kEdgeCutCapacityFactor * share (+ one whole adjacency, since a
          // vertex's mass lands atomically; +1 for the degree-0 load floor).
          EXPECT_LE(mass, kEdgeCutCapacityFactor * std::max(1.0, share) +
                              2.0 * max_degree + 1.0)
              << g.name << " node " << node;
          break;
      }
    }
  }
}

TEST_P(PartitionPropertyTest, DeterministicAcrossRebuilds) {
  for (const NamedGraph& g : FullSuite()) {
    auto first = BuildPartition(g.graph, strategy(), num_nodes());
    auto second = BuildPartition(g.graph, strategy(), num_nodes());
    ASSERT_TRUE(first.ok() && second.ok()) << g.name;
    EXPECT_EQ(first->owner, second->owner) << g.name;
    EXPECT_EQ(first->total_cut_edges, second->total_cut_edges) << g.name;
    for (uint32_t node = 0; node < num_nodes(); ++node) {
      EXPECT_EQ(first->nodes[node].owned, second->nodes[node].owned)
          << g.name;
      EXPECT_EQ(first->nodes[node].mirrors, second->nodes[node].mirrors)
          << g.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PartitionPropertyTest,
    ::testing::Combine(::testing::ValuesIn(AllPartitionStrategies()),
                       ::testing::ValuesIn(kNodeCounts)),
    ParamName());

TEST(PartitionTest, ZeroNodesRejected) {
  EXPECT_TRUE(BuildPartition(testing::CliqueGraph(4).graph,
                             PartitionStrategy::kContiguous, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST(PartitionTest, MoreNodesThanVertices) {
  const auto g = testing::CliqueGraph(3);
  for (PartitionStrategy strategy : AllPartitionStrategies()) {
    auto partition = BuildPartition(g.graph, strategy, 16);
    ASSERT_TRUE(partition.ok());
    std::string why;
    EXPECT_TRUE(ValidatePartition(g.graph, *partition, &why)) << why;
  }
}

TEST(PartitionTest, EmptyGraph) {
  const CsrGraph empty = BuildUndirectedGraphWithVertexCount({}, 0);
  for (PartitionStrategy strategy : AllPartitionStrategies()) {
    auto partition = BuildPartition(empty, strategy, 3);
    ASSERT_TRUE(partition.ok());
    std::string why;
    EXPECT_TRUE(ValidatePartition(empty, *partition, &why)) << why;
    EXPECT_EQ(partition->total_cut_edges, 0u);
  }
}

TEST(PartitionTest, NameParseRoundTrip) {
  for (PartitionStrategy strategy : AllPartitionStrategies()) {
    PartitionStrategy parsed;
    ASSERT_TRUE(ParsePartitionStrategy(PartitionStrategyName(strategy),
                                       &parsed));
    EXPECT_EQ(parsed, strategy);
  }
  PartitionStrategy untouched = PartitionStrategy::kEdgeCut;
  EXPECT_FALSE(ParsePartitionStrategy("metis", &untouched));
  EXPECT_EQ(untouched, PartitionStrategy::kEdgeCut);
  EXPECT_FALSE(ParsePartitionStrategy("", &untouched));
}

TEST(PartitionTest, EdgeCutBeatsContiguousOnCommunityGraph) {
  // Two unequal cliques joined by one edge: greedy placement fills one node
  // with the heavy clique until capacity pressure pushes the light clique to
  // the other (cut = the 2 directed bridge edges), while the contiguous
  // chunk boundary lands inside the heavy clique. The cliques must be
  // unequal: with 8+8 the bridge's affinity drags the second hub onto the
  // first node before capacity bites, and the contiguous midpoint happens
  // to fall exactly on the clique boundary.
  const auto g = testing::TwoCliquesGraph(5, 8);
  auto contiguous =
      BuildPartition(g.graph, PartitionStrategy::kContiguous, 2);
  auto edgecut = BuildPartition(g.graph, PartitionStrategy::kEdgeCut, 2);
  ASSERT_TRUE(contiguous.ok() && edgecut.ok());
  EXPECT_LE(edgecut->total_cut_edges, contiguous->total_cut_edges);
  EXPECT_EQ(edgecut->total_cut_edges, 2u);
}

TEST(PartitionTest, DegreeBalancedEvensOutSkewedMass) {
  // A hub graph under a contiguous split piles the hub adjacency onto the
  // first node; the degree-balanced sweep must land near 1.0.
  const auto g = testing::FullSuite().back().graph;  // hub
  auto contiguous =
      BuildPartition(g, PartitionStrategy::kContiguous, 4);
  auto balanced =
      BuildPartition(g, PartitionStrategy::kDegreeBalanced, 4);
  ASSERT_TRUE(contiguous.ok() && balanced.ok());
  EXPECT_LT(balanced->BalanceRatio(), contiguous->BalanceRatio());
  const double share = static_cast<double>(g.NumDirectedEdges()) / 4;
  EXPECT_LE(balanced->BalanceRatio(), (share + g.MaxDegree()) / share);
}

// ------------------------------------------------ Node-loss repartition ---

TEST(PartitionTest, RepartitionMovesDeadShareToSurvivors) {
  for (PartitionStrategy strategy : AllPartitionStrategies()) {
    for (const NamedGraph& g : FullSuite()) {
      auto partition = BuildPartition(g.graph, strategy, 4);
      ASSERT_TRUE(partition.ok()) << g.name;
      const std::vector<uint8_t> dead = {0, 1, 0, 1};
      ASSERT_TRUE(
          RepartitionOntoSurvivors(g.graph, dead, &*partition).ok())
          << g.name;
      std::string why;
      EXPECT_TRUE(ValidatePartition(g.graph, *partition, &why))
          << g.name << ": " << why;
      EXPECT_TRUE(partition->nodes[1].owned.empty()) << g.name;
      EXPECT_TRUE(partition->nodes[3].owned.empty()) << g.name;
    }
  }
}

TEST(PartitionTest, RepartitionWithoutSurvivorsFails) {
  const auto g = testing::CliqueGraph(6);
  auto partition =
      BuildPartition(g.graph, PartitionStrategy::kContiguous, 2);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(RepartitionOntoSurvivors(g.graph, {1, 1}, &*partition)
                  .IsFailedPrecondition());
  EXPECT_TRUE(RepartitionOntoSurvivors(g.graph, {0}, &*partition)
                  .IsFailedPrecondition());
}

TEST(PartitionTest, ValidateCatchesCorruptedOwnerMap) {
  const auto g = testing::CliqueGraph(6);
  auto partition =
      BuildPartition(g.graph, PartitionStrategy::kContiguous, 2);
  ASSERT_TRUE(partition.ok());
  partition->owner[0] = 1;  // owned list no longer agrees
  std::string why;
  EXPECT_FALSE(ValidatePartition(g.graph, *partition, &why));
  EXPECT_FALSE(why.empty());
}

}  // namespace
}  // namespace kcore
