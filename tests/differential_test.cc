// Differential fuzzing across every decomposition engine: seeded randomized
// graphs (Erdős–Rényi, Chung–Lu, hub-skew, plus adversarial fixed shapes)
// run through BZ (the oracle) and every other engine — ParK, PKC (both
// variants), MPM, the GPU peeler under all four expansion strategies, the
// multi-GPU driver, and VETGA — asserting identical core numbers.
//
// On a mismatch the harness greedily shrinks the edge list (ddmin-style
// chunk removal) to a minimal still-failing graph and prints the generator
// seed plus the reduced edge list, so the failure is reproducible from the
// test log alone.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_peel.h"
#include "cluster/partition.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/statusor.h"
#include "core/gpu_peel.h"
#include "core/incremental_core.h"
#include "core/multi_gpu_peel.h"
#include "cpu/bz.h"
#include "cpu/mpm.h"
#include "cpu/park.h"
#include "cpu/pkc.h"
#include "generators/generators.h"
#include "graph/edge_update.h"
#include "graph/graph_builder.h"
#include "vetga/vetga.h"

namespace kcore {
namespace {

/// One engine under test: name + a runner returning core numbers.
struct Engine {
  std::string name;
  std::function<StatusOr<std::vector<uint32_t>>(const CsrGraph&)> run;
};

/// Small kernel geometry so hundreds of simulated launches stay inside the
/// tier-1 budget; geometry never changes core numbers, only modeled time.
GpuPeelOptions SmallGpuOptions(ExpandStrategy strategy) {
  GpuPeelOptions options;
  options.num_blocks = 4;
  options.block_dim = 64;
  options.expand_strategy = strategy;
  return options;
}

std::vector<Engine> AllEngines() {
  std::vector<Engine> engines;
  engines.push_back({"park", [](const CsrGraph& g) {
                       return StatusOr<std::vector<uint32_t>>(
                           RunParK(g).core);
                     }});
  engines.push_back({"pkc", [](const CsrGraph& g) {
                       return StatusOr<std::vector<uint32_t>>(RunPkc(g).core);
                     }});
  engines.push_back({"pkc-o", [](const CsrGraph& g) {
                       PkcOptions options;
                       options.variant = PkcVariant::kOriginal;
                       return StatusOr<std::vector<uint32_t>>(
                           RunPkc(g, options).core);
                     }});
  engines.push_back({"mpm", [](const CsrGraph& g) {
                       return StatusOr<std::vector<uint32_t>>(RunMpm(g).core);
                     }});
  static const ExpandStrategy kStrategies[] = {
      ExpandStrategy::kThread, ExpandStrategy::kWarp, ExpandStrategy::kBlock,
      ExpandStrategy::kAuto};
  for (ExpandStrategy strategy : kStrategies) {
    engines.push_back(
        {std::string("gpu-") + ExpandStrategyName(strategy),
         [strategy](const CsrGraph& g) -> StatusOr<std::vector<uint32_t>> {
           KCORE_ASSIGN_OR_RETURN(DecomposeResult result,
                                  RunGpuPeel(g, SmallGpuOptions(strategy)));
           return result.core;
         }});
  }
  engines.push_back(
      {"multigpu", [](const CsrGraph& g) -> StatusOr<std::vector<uint32_t>> {
         MultiGpuOptions options;
         options.num_workers = 2;
         KCORE_ASSIGN_OR_RETURN(DecomposeResult result,
                                RunMultiGpuPeel(g, options));
         return result.core;
       }});
  engines.push_back(
      {"vetga", [](const CsrGraph& g) -> StatusOr<std::vector<uint32_t>> {
         KCORE_ASSIGN_OR_RETURN(DecomposeResult result, RunVetga(g));
         return result.core;
       }});
  // The simulated cluster at every node count x partition strategy: the
  // partition, the border-delta exchange, and the cluster fixpoint must all
  // be invisible in the coreness output.
  for (uint32_t nodes : {1u, 2u, 4u}) {
    for (PartitionStrategy strategy : AllPartitionStrategies()) {
      engines.push_back(
          {StrFormat("cluster-%s-%un", PartitionStrategyName(strategy),
                     static_cast<unsigned>(nodes)),
           [nodes, strategy](const CsrGraph& g)
               -> StatusOr<std::vector<uint32_t>> {
             ClusterOptions options;
             options.num_nodes = nodes;
             options.partition = strategy;
             KCORE_ASSIGN_OR_RETURN(DecomposeResult result,
                                    RunClusterPeel(g, options));
             return result.core;
           }});
    }
  }
  return engines;
}

/// A fuzz case: the raw edge list (kept so the shrinker can bisect it), the
/// vertex count, and a reproduction label including the seed.
struct FuzzCase {
  std::string label;
  EdgeList edges;
  VertexId num_vertices = 0;
};

CsrGraph BuildCase(const EdgeList& edges, VertexId num_vertices) {
  return BuildUndirectedGraphWithVertexCount(edges, num_vertices);
}

VertexId MaxEndpoint(const EdgeList& edges) {
  uint64_t max_id = 0;
  for (const auto& e : edges) {
    max_id = std::max({max_id, e.u, e.v});
  }
  return static_cast<VertexId>(edges.empty() ? 0 : max_id + 1);
}

/// Duplicate-heavy self-loop-free multigraph: random edges where ~half are
/// repeated verbatim and some flipped. BuildGraph's dedup must collapse them
/// so every engine sees the same simple graph.
EdgeList GenerateMultigraph(uint32_t n, uint64_t m, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  while (edges.size() < m) {
    const uint64_t u = rng.UniformInt(n);
    uint64_t v = rng.UniformInt(n);
    if (u == v) v = (v + 1) % n;
    edges.push_back({u, v});
    if (rng.Bernoulli(0.5)) edges.push_back({u, v});   // parallel copy
    if (rng.Bernoulli(0.25)) edges.push_back({v, u});  // reversed copy
  }
  return edges;
}

EdgeList CliqueEdges(uint32_t n, uint32_t base = 0) {
  EdgeList edges;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) edges.push_back({base + i, base + j});
  }
  return edges;
}

std::vector<FuzzCase> FuzzCorpus() {
  std::vector<FuzzCase> corpus;
  const auto add = [&](std::string label, EdgeList edges,
                       VertexId num_vertices = 0) {
    FuzzCase fc;
    fc.label = std::move(label);
    fc.num_vertices =
        num_vertices != 0 ? num_vertices : MaxEndpoint(edges);
    fc.edges = std::move(edges);
    corpus.push_back(std::move(fc));
  };

  // Adversarial fixed shapes.
  add("star16", [] {
    EdgeList e;
    for (uint64_t i = 1; i <= 16; ++i) e.push_back({0, i});
    return e;
  }());
  add("path12", [] {
    EdgeList e;
    for (uint64_t i = 0; i + 1 < 12; ++i) e.push_back({i, i + 1});
    return e;
  }());
  add("cycle9", [] {
    EdgeList e;
    for (uint64_t i = 0; i < 9; ++i) e.push_back({i, (i + 1) % 9});
    return e;
  }());
  add("clique7", CliqueEdges(7));
  add("two_cliques", [] {
    EdgeList e = CliqueEdges(5);
    EdgeList b = CliqueEdges(6, 5);
    e.insert(e.end(), b.begin(), b.end());
    e.push_back({0, 5});  // bridge
    return e;
  }());
  add("isolated", {{1, 3}, {3, 5}, {5, 1}}, 8);
  add("chain_of_stars", [] {
    // Hubs 0..3 in a path, each with 8 private leaves: shells 1 everywhere
    // but highly irregular scan/loop frontiers.
    EdgeList e;
    uint64_t next = 4;
    for (uint64_t h = 0; h < 4; ++h) {
      if (h + 1 < 4) e.push_back({h, h + 1});
      for (int leaf = 0; leaf < 8; ++leaf) e.push_back({h, next++});
    }
    return e;
  }());

  // Seeded random families. Four seeds per family.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    add(StrFormat("er_n120_m400_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateErdosRenyi(120, 400, seed), 120);
    add(StrFormat("er_dense_n60_m900_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateErdosRenyi(60, 900, seed), 60);
    add(StrFormat("chunglu_n150_m450_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateChungLuPowerLaw(150, 450, 2.3, seed), 150);
    HubGraphOptions hub;
    hub.num_vertices = 150;
    hub.num_hubs = 3;
    hub.spokes_per_vertex = 2;
    hub.background_edges = 120;
    add(StrFormat("hub_n150_seed%llu", static_cast<unsigned long long>(seed)),
        GenerateHubGraph(hub, seed), 150);
    add(StrFormat("multigraph_n80_m200_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateMultigraph(80, 200, seed), 80);
  }
  return corpus;
}

/// True iff `engine` disagrees with the BZ oracle on this graph (an engine
/// error also counts as a failure for the shrinker's purposes).
bool Disagrees(const Engine& engine, const CsrGraph& graph) {
  const std::vector<uint32_t> oracle = RunBz(graph).core;
  auto result = engine.run(graph);
  return !result.ok() || *result != oracle;
}

/// ddmin-style greedy shrink: repeatedly try dropping chunks of edges while
/// the engine still disagrees with the oracle, halving the chunk size until
/// single-edge granularity is exhausted.
EdgeList ShrinkMismatch(const Engine& engine, EdgeList edges,
                        VertexId num_vertices) {
  size_t chunk = edges.size() / 2;
  while (chunk > 0) {
    bool removed_any = false;
    for (size_t start = 0; start < edges.size();) {
      EdgeList candidate;
      candidate.reserve(edges.size());
      const size_t end = std::min(edges.size(), start + chunk);
      candidate.insert(candidate.end(), edges.begin(), edges.begin() + start);
      candidate.insert(candidate.end(), edges.begin() + end, edges.end());
      if (!candidate.empty() &&
          Disagrees(engine, BuildCase(candidate, num_vertices))) {
        edges = std::move(candidate);
        removed_any = true;
        // Re-test from the same offset: the next chunk slid into place.
      } else {
        start += chunk;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return edges;
}

std::string FormatEdges(const EdgeList& edges) {
  std::string out;
  for (const auto& e : edges) {
    out += StrFormat("%llu %llu\n", static_cast<unsigned long long>(e.u),
                     static_cast<unsigned long long>(e.v));
  }
  return out;
}

TEST(DifferentialFuzz, AllEnginesMatchOracle) {
  const std::vector<Engine> engines = AllEngines();
  const std::vector<FuzzCase> corpus = FuzzCorpus();
  // The issue's floor: at least 200 graph x engine combinations.
  ASSERT_GE(engines.size() * corpus.size(), 200u);

  uint64_t combos = 0;
  for (const FuzzCase& fc : corpus) {
    const CsrGraph graph = BuildCase(fc.edges, fc.num_vertices);
    const std::vector<uint32_t> oracle = RunBz(graph).core;
    for (const Engine& engine : engines) {
      ++combos;
      auto result = engine.run(graph);
      ASSERT_TRUE(result.ok())
          << engine.name << " failed on " << fc.label << ": "
          << result.status().ToString();
      if (*result == oracle) continue;
      // Mismatch: shrink and dump a self-contained reproduction.
      const EdgeList reduced =
          ShrinkMismatch(engine, fc.edges, fc.num_vertices);
      FAIL() << engine.name << " disagrees with BZ on " << fc.label
             << "\nreduced to " << reduced.size()
             << " edges (num_vertices=" << fc.num_vertices
             << "):\n" << FormatEdges(reduced);
    }
  }
  // Belt and braces: the loop actually exercised the promised volume.
  EXPECT_GE(combos, 200u);
}

TEST(DifferentialFuzz, ClusterFaultMatrixNeverDisagrees) {
  // The recovery ladder (retry -> node-loss repartition -> CPU fallback)
  // must never change a core number, only the modeled clock. Each fault
  // plan lands on the last node so the exchange and repartition paths are
  // both live when it fires. The adversarial fixed shapes plus one seeded
  // case per family keep this leg inside the tier-1 budget; a mismatch is
  // shrunk with the same ddmin reducer as the fault-free sweep.
  const char* fault_matrix[] = {
      "launch_fail@3",
      "launch_fail@7",
      "device_lost@launch=2",
      "device_lost@launch=9",
  };
  std::vector<FuzzCase> corpus;
  for (const FuzzCase& fc : FuzzCorpus()) {
    const bool fixed_shape = fc.label.find("seed") == std::string::npos;
    if (fixed_shape || fc.label.find("seed1") != std::string::npos) {
      corpus.push_back(fc);
    }
  }
  ASSERT_GE(corpus.size(), 12u);
  for (const char* spec : fault_matrix) {
    for (uint32_t nodes : {2u, 3u}) {
      Engine engine{
          StrFormat("cluster-faulty-%un[%s]", static_cast<unsigned>(nodes),
                    spec),
          [nodes, spec](const CsrGraph& g)
              -> StatusOr<std::vector<uint32_t>> {
            ClusterOptions options;
            options.num_nodes = nodes;
            options.node_fault_specs.assign(nodes, "");
            options.node_fault_specs.back() = spec;
            KCORE_ASSIGN_OR_RETURN(DecomposeResult result,
                                   RunClusterPeel(g, options));
            return result.core;
          }};
      for (const FuzzCase& fc : corpus) {
        const CsrGraph graph = BuildCase(fc.edges, fc.num_vertices);
        if (!Disagrees(engine, graph)) continue;
        const EdgeList reduced =
            ShrinkMismatch(engine, fc.edges, fc.num_vertices);
        FAIL() << engine.name << " disagrees with BZ on " << fc.label
               << "\nreduced to " << reduced.size()
               << " edges (num_vertices=" << fc.num_vertices
               << "):\n" << FormatEdges(reduced);
      }
    }
  }
}

// ------------------------------------------------- update-stream fuzzing --
// Same differential discipline for the incremental maintenance engine:
// seeded random update streams replayed batch-by-batch through a fresh
// IncrementalCoreEngine, every committed snapshot checked against a fresh
// BZ of a host-side edge mirror. A mismatch is ddmin-shrunk over the
// OPERATIONS of the stream (replaying from the initial graph each probe;
// candidates whose remainder turns invalid after a drop are skipped).

/// Small geometry so the many simulated launches stay in the tier-1 budget.
IncrementalOptions StreamOptions() {
  IncrementalOptions options;
  options.num_blocks = 4;
  options.block_dim = 64;
  options.repeel.num_blocks = 4;
  options.repeel.block_dim = 64;
  return options;
}

std::set<std::pair<VertexId, VertexId>> EdgeSetOf(const CsrGraph& g) {
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : g.Neighbors(v)) {
      if (v < u) edges.insert({v, u});
    }
  }
  return edges;
}

/// Generates a stream of `ops` updates valid under sequential semantics:
/// each op is judged against the net edge state so far.
UpdateBatch GenerateStream(const CsrGraph& initial, size_t ops,
                           uint64_t seed) {
  Rng rng(seed);
  auto present = EdgeSetOf(initial);
  const VertexId n = initial.NumVertices();
  UpdateBatch stream;
  while (stream.size() < ops) {
    const auto a = static_cast<VertexId>(rng.UniformInt(n));
    const auto b = static_cast<VertexId>(rng.UniformInt(n));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (present.count({key.first, key.second}) != 0) {
      stream.push_back(EdgeUpdate::Remove(a, b));
      present.erase({key.first, key.second});
    } else {
      stream.push_back(EdgeUpdate::Insert(a, b));
      present.insert({key.first, key.second});
    }
  }
  return stream;
}

enum class StreamVerdict {
  kAgrees,     ///< Every committed snapshot matched the oracle.
  kDisagrees,  ///< Snapshot mismatch or engine fault: a counterexample.
  kInvalid,    ///< Batch-validation rejection: not a counterexample.
};

/// Replays `stream` in `batch_size` windows through a fresh engine built
/// over `initial`, checking each committed snapshot against a fresh BZ of
/// the mirror. Batch-validation rejections (which the shrinker creates by
/// dropping an insert whose remove survives) report kInvalid.
StreamVerdict ReplayStream(const CsrGraph& initial, const UpdateBatch& stream,
                           size_t batch_size, std::string* why = nullptr,
                           const std::string& fault_spec = {}) {
  sim::DeviceOptions device;
  device.fault_spec = fault_spec;
  auto engine = IncrementalCoreEngine::Create(initial, StreamOptions(),
                                              device);
  if (!engine.ok()) {
    if (why != nullptr) *why = "Create: " + engine.status().ToString();
    return StreamVerdict::kDisagrees;
  }
  auto present = EdgeSetOf(initial);
  for (size_t off = 0; off < stream.size(); off += batch_size) {
    const size_t len = std::min(batch_size, stream.size() - off);
    auto result = (*engine)->ApplyUpdates(
        std::span<const EdgeUpdate>(stream.data() + off, len));
    if (!result.ok()) {
      const Status& s = result.status();
      if (s.IsInvalidArgument() || s.IsFailedPrecondition() ||
          s.IsNotFound()) {
        return StreamVerdict::kInvalid;
      }
      if (why != nullptr) {
        *why = StrFormat("batch at op %zu: %s", off, s.ToString().c_str());
      }
      return StreamVerdict::kDisagrees;
    }
    for (size_t i = off; i < off + len; ++i) {
      const auto key = std::minmax(stream[i].u, stream[i].v);
      if (stream[i].kind == EdgeUpdate::Kind::kInsert) {
        present.insert({key.first, key.second});
      } else {
        present.erase({key.first, key.second});
      }
    }
    EdgeList mirror;
    mirror.reserve(present.size());
    for (const auto& [u, v] : present) mirror.push_back({u, v});
    const CsrGraph now =
        BuildUndirectedGraphWithVertexCount(mirror, initial.NumVertices());
    if (result->core != RunBz(now).core) {
      if (why != nullptr) {
        *why = StrFormat("snapshot after op %zu diverged from BZ", off + len);
      }
      return StreamVerdict::kDisagrees;
    }
  }
  return StreamVerdict::kAgrees;
}

/// ddmin over stream operations, generic over the verdict so the shrinker
/// itself is testable against an injected failure.
using StreamOracle = std::function<StreamVerdict(const UpdateBatch&)>;

UpdateBatch ShrinkUpdateStream(UpdateBatch stream,
                               const StreamOracle& verdict) {
  size_t chunk = stream.size() / 2;
  while (chunk > 0) {
    bool removed_any = false;
    for (size_t start = 0; start < stream.size();) {
      UpdateBatch candidate;
      candidate.reserve(stream.size());
      const size_t end = std::min(stream.size(), start + chunk);
      candidate.insert(candidate.end(), stream.begin(),
                       stream.begin() + static_cast<ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       stream.begin() + static_cast<ptrdiff_t>(end),
                       stream.end());
      if (!candidate.empty() &&
          verdict(candidate) == StreamVerdict::kDisagrees) {
        stream = std::move(candidate);
        removed_any = true;
      } else {
        start += chunk;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return stream;
}

std::string FormatStream(const UpdateBatch& stream) {
  std::string out;
  for (const EdgeUpdate& u : stream) {
    out += StrFormat("%c %u %u\n",
                     u.kind == EdgeUpdate::Kind::kInsert ? '+' : '-',
                     static_cast<unsigned>(u.u), static_cast<unsigned>(u.v));
  }
  return out;
}

TEST(UpdateStreamFuzz, IncrementalEngineMatchesOracleAcrossStreams) {
  struct StreamCase {
    std::string label;
    CsrGraph graph;
  };
  std::vector<StreamCase> cases;
  for (uint64_t seed : {11u, 12u}) {
    cases.push_back({StrFormat("er_n80_m200_seed%llu",
                               static_cast<unsigned long long>(seed)),
                     BuildUndirectedGraphWithVertexCount(
                         GenerateErdosRenyi(80, 200, seed), 80)});
    cases.push_back({StrFormat("chunglu_n90_m250_seed%llu",
                               static_cast<unsigned long long>(seed)),
                     BuildUndirectedGraphWithVertexCount(
                         GenerateChungLuPowerLaw(90, 250, 2.3, seed), 90)});
  }
  // Planted dense community: updates land on a deep core, not just shells.
  {
    PlantedCoreOptions planted;
    planted.core_size = 16;
    planted.core_density = 0.8;
    EdgeList list = GenerateErdosRenyi(70, 140, 77);
    list = OverlayPlantedCore(std::move(list), 70, planted, 78);
    cases.push_back(
        {"planted_n70", BuildUndirectedGraphWithVertexCount(list, 70)});
  }

  for (const StreamCase& sc : cases) {
    const UpdateBatch stream = GenerateStream(sc.graph, 72, 5);
    // Batch-size sweep: singleton batches, a prime mid-size, and a window
    // larger than most subcores; partitioning must not change semantics.
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{32}}) {
      std::string why;
      const StreamVerdict verdict =
          ReplayStream(sc.graph, stream, batch_size, &why);
      ASSERT_NE(verdict, StreamVerdict::kInvalid)
          << sc.label << ": generated stream rejected as invalid";
      if (verdict == StreamVerdict::kAgrees) continue;
      const UpdateBatch reduced = ShrinkUpdateStream(
          stream, [&](const UpdateBatch& candidate) {
            return ReplayStream(sc.graph, candidate, batch_size);
          });
      FAIL() << "incremental engine diverged on " << sc.label
             << " (batch_size=" << batch_size << "): " << why
             << "\nreduced to " << reduced.size()
             << " ops:\n" << FormatStream(reduced);
    }
  }
}

TEST(UpdateStreamFuzz, StreamShrinkerReducesInjectedMismatch) {
  // Injected failure: "any op touching vertex 3 is a counterexample" — the
  // shrinker must reduce a 60-op stream to exactly one such op while only
  // ever seeing verdicts, never engine internals.
  const CsrGraph initial = BuildUndirectedGraphWithVertexCount(
      GenerateErdosRenyi(30, 60, 5), 30);
  const UpdateBatch stream = GenerateStream(initial, 60, 6);
  const auto touches3 = [](const UpdateBatch& candidate) {
    for (const EdgeUpdate& u : candidate) {
      if (u.u == 3 || u.v == 3) return StreamVerdict::kDisagrees;
    }
    return StreamVerdict::kAgrees;
  };
  ASSERT_EQ(touches3(stream), StreamVerdict::kDisagrees)
      << "seed produced no op touching vertex 3; pick another seed";
  const UpdateBatch reduced = ShrinkUpdateStream(stream, touches3);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_TRUE(reduced[0].u == 3 || reduced[0].v == 3);
}

TEST(UpdateStreamFuzz, StreamReplayIsExactUnderFaultMatrix) {
  // The exactness contract must survive the fault matrix: a bitflip in the
  // coreness array (caught by post-batch validation, batch retried from the
  // checkpoint) and device loss (degraded to the exact CPU path). Every
  // committed snapshot still has to bit-match the BZ oracle.
  const CsrGraph initial = BuildUndirectedGraphWithVertexCount(
      GenerateErdosRenyi(60, 150, 21), 60);
  const UpdateBatch stream = GenerateStream(initial, 40, 22);
  const char* fault_matrix[] = {
      "bitflip:launch=3,alloc=inc_core,word=7,bit=4",
      "device_lost@launch=4",
  };
  for (const char* spec : fault_matrix) {
    std::string why;
    const StreamVerdict verdict = ReplayStream(initial, stream, 8, &why, spec);
    EXPECT_EQ(verdict, StreamVerdict::kAgrees)
        << "faults=" << spec << ": " << why;
  }
}

/// The shrinker itself must terminate and preserve the mismatch property;
/// exercise it against a deliberately broken "engine" so a future real
/// mismatch gets a working reducer, not a first-ever run of this code.
TEST(DifferentialFuzz, ShrinkerReducesInjectedMismatch) {
  // Claims every vertex has core number 0: disagrees wherever m > 0.
  Engine broken{"broken", [](const CsrGraph& g) {
                  return StatusOr<std::vector<uint32_t>>(
                      std::vector<uint32_t>(g.NumVertices(), 0));
                }};
  EdgeList edges = GenerateErdosRenyi(40, 120, 99);
  ASSERT_TRUE(Disagrees(broken, BuildCase(edges, 40)));
  const EdgeList reduced = ShrinkMismatch(broken, edges, 40);
  // A single edge suffices to contradict the all-zero claim.
  EXPECT_EQ(reduced.size(), 1u);
  EXPECT_TRUE(Disagrees(broken, BuildCase(reduced, 40)));
}

}  // namespace
}  // namespace kcore
