// Differential fuzzing across every decomposition engine: seeded randomized
// graphs (Erdős–Rényi, Chung–Lu, hub-skew, plus adversarial fixed shapes)
// run through BZ (the oracle) and every other engine — ParK, PKC (both
// variants), MPM, the GPU peeler under all four expansion strategies, the
// multi-GPU driver, and VETGA — asserting identical core numbers.
//
// On a mismatch the harness greedily shrinks the edge list (ddmin-style
// chunk removal) to a minimal still-failing graph and prints the generator
// seed plus the reduced edge list, so the failure is reproducible from the
// test log alone.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "common/statusor.h"
#include "core/gpu_peel.h"
#include "core/multi_gpu_peel.h"
#include "cpu/bz.h"
#include "cpu/mpm.h"
#include "cpu/park.h"
#include "cpu/pkc.h"
#include "generators/generators.h"
#include "graph/graph_builder.h"
#include "vetga/vetga.h"

namespace kcore {
namespace {

/// One engine under test: name + a runner returning core numbers.
struct Engine {
  std::string name;
  std::function<StatusOr<std::vector<uint32_t>>(const CsrGraph&)> run;
};

/// Small kernel geometry so hundreds of simulated launches stay inside the
/// tier-1 budget; geometry never changes core numbers, only modeled time.
GpuPeelOptions SmallGpuOptions(ExpandStrategy strategy) {
  GpuPeelOptions options;
  options.num_blocks = 4;
  options.block_dim = 64;
  options.expand_strategy = strategy;
  return options;
}

std::vector<Engine> AllEngines() {
  std::vector<Engine> engines;
  engines.push_back({"park", [](const CsrGraph& g) {
                       return StatusOr<std::vector<uint32_t>>(
                           RunParK(g).core);
                     }});
  engines.push_back({"pkc", [](const CsrGraph& g) {
                       return StatusOr<std::vector<uint32_t>>(RunPkc(g).core);
                     }});
  engines.push_back({"pkc-o", [](const CsrGraph& g) {
                       PkcOptions options;
                       options.variant = PkcVariant::kOriginal;
                       return StatusOr<std::vector<uint32_t>>(
                           RunPkc(g, options).core);
                     }});
  engines.push_back({"mpm", [](const CsrGraph& g) {
                       return StatusOr<std::vector<uint32_t>>(RunMpm(g).core);
                     }});
  static const ExpandStrategy kStrategies[] = {
      ExpandStrategy::kThread, ExpandStrategy::kWarp, ExpandStrategy::kBlock,
      ExpandStrategy::kAuto};
  for (ExpandStrategy strategy : kStrategies) {
    engines.push_back(
        {std::string("gpu-") + ExpandStrategyName(strategy),
         [strategy](const CsrGraph& g) -> StatusOr<std::vector<uint32_t>> {
           KCORE_ASSIGN_OR_RETURN(DecomposeResult result,
                                  RunGpuPeel(g, SmallGpuOptions(strategy)));
           return result.core;
         }});
  }
  engines.push_back(
      {"multigpu", [](const CsrGraph& g) -> StatusOr<std::vector<uint32_t>> {
         MultiGpuOptions options;
         options.num_workers = 2;
         KCORE_ASSIGN_OR_RETURN(DecomposeResult result,
                                RunMultiGpuPeel(g, options));
         return result.core;
       }});
  engines.push_back(
      {"vetga", [](const CsrGraph& g) -> StatusOr<std::vector<uint32_t>> {
         KCORE_ASSIGN_OR_RETURN(DecomposeResult result, RunVetga(g));
         return result.core;
       }});
  return engines;
}

/// A fuzz case: the raw edge list (kept so the shrinker can bisect it), the
/// vertex count, and a reproduction label including the seed.
struct FuzzCase {
  std::string label;
  EdgeList edges;
  VertexId num_vertices = 0;
};

CsrGraph BuildCase(const EdgeList& edges, VertexId num_vertices) {
  return BuildUndirectedGraphWithVertexCount(edges, num_vertices);
}

VertexId MaxEndpoint(const EdgeList& edges) {
  uint64_t max_id = 0;
  for (const auto& e : edges) {
    max_id = std::max({max_id, e.u, e.v});
  }
  return static_cast<VertexId>(edges.empty() ? 0 : max_id + 1);
}

/// Duplicate-heavy self-loop-free multigraph: random edges where ~half are
/// repeated verbatim and some flipped. BuildGraph's dedup must collapse them
/// so every engine sees the same simple graph.
EdgeList GenerateMultigraph(uint32_t n, uint64_t m, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  while (edges.size() < m) {
    const uint64_t u = rng.UniformInt(n);
    uint64_t v = rng.UniformInt(n);
    if (u == v) v = (v + 1) % n;
    edges.push_back({u, v});
    if (rng.Bernoulli(0.5)) edges.push_back({u, v});   // parallel copy
    if (rng.Bernoulli(0.25)) edges.push_back({v, u});  // reversed copy
  }
  return edges;
}

EdgeList CliqueEdges(uint32_t n, uint32_t base = 0) {
  EdgeList edges;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) edges.push_back({base + i, base + j});
  }
  return edges;
}

std::vector<FuzzCase> FuzzCorpus() {
  std::vector<FuzzCase> corpus;
  const auto add = [&](std::string label, EdgeList edges,
                       VertexId num_vertices = 0) {
    FuzzCase fc;
    fc.label = std::move(label);
    fc.num_vertices =
        num_vertices != 0 ? num_vertices : MaxEndpoint(edges);
    fc.edges = std::move(edges);
    corpus.push_back(std::move(fc));
  };

  // Adversarial fixed shapes.
  add("star16", [] {
    EdgeList e;
    for (uint64_t i = 1; i <= 16; ++i) e.push_back({0, i});
    return e;
  }());
  add("path12", [] {
    EdgeList e;
    for (uint64_t i = 0; i + 1 < 12; ++i) e.push_back({i, i + 1});
    return e;
  }());
  add("cycle9", [] {
    EdgeList e;
    for (uint64_t i = 0; i < 9; ++i) e.push_back({i, (i + 1) % 9});
    return e;
  }());
  add("clique7", CliqueEdges(7));
  add("two_cliques", [] {
    EdgeList e = CliqueEdges(5);
    EdgeList b = CliqueEdges(6, 5);
    e.insert(e.end(), b.begin(), b.end());
    e.push_back({0, 5});  // bridge
    return e;
  }());
  add("isolated", {{1, 3}, {3, 5}, {5, 1}}, 8);
  add("chain_of_stars", [] {
    // Hubs 0..3 in a path, each with 8 private leaves: shells 1 everywhere
    // but highly irregular scan/loop frontiers.
    EdgeList e;
    uint64_t next = 4;
    for (uint64_t h = 0; h < 4; ++h) {
      if (h + 1 < 4) e.push_back({h, h + 1});
      for (int leaf = 0; leaf < 8; ++leaf) e.push_back({h, next++});
    }
    return e;
  }());

  // Seeded random families. Four seeds per family.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    add(StrFormat("er_n120_m400_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateErdosRenyi(120, 400, seed), 120);
    add(StrFormat("er_dense_n60_m900_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateErdosRenyi(60, 900, seed), 60);
    add(StrFormat("chunglu_n150_m450_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateChungLuPowerLaw(150, 450, 2.3, seed), 150);
    HubGraphOptions hub;
    hub.num_vertices = 150;
    hub.num_hubs = 3;
    hub.spokes_per_vertex = 2;
    hub.background_edges = 120;
    add(StrFormat("hub_n150_seed%llu", static_cast<unsigned long long>(seed)),
        GenerateHubGraph(hub, seed), 150);
    add(StrFormat("multigraph_n80_m200_seed%llu",
                  static_cast<unsigned long long>(seed)),
        GenerateMultigraph(80, 200, seed), 80);
  }
  return corpus;
}

/// True iff `engine` disagrees with the BZ oracle on this graph (an engine
/// error also counts as a failure for the shrinker's purposes).
bool Disagrees(const Engine& engine, const CsrGraph& graph) {
  const std::vector<uint32_t> oracle = RunBz(graph).core;
  auto result = engine.run(graph);
  return !result.ok() || *result != oracle;
}

/// ddmin-style greedy shrink: repeatedly try dropping chunks of edges while
/// the engine still disagrees with the oracle, halving the chunk size until
/// single-edge granularity is exhausted.
EdgeList ShrinkMismatch(const Engine& engine, EdgeList edges,
                        VertexId num_vertices) {
  size_t chunk = edges.size() / 2;
  while (chunk > 0) {
    bool removed_any = false;
    for (size_t start = 0; start < edges.size();) {
      EdgeList candidate;
      candidate.reserve(edges.size());
      const size_t end = std::min(edges.size(), start + chunk);
      candidate.insert(candidate.end(), edges.begin(), edges.begin() + start);
      candidate.insert(candidate.end(), edges.begin() + end, edges.end());
      if (!candidate.empty() &&
          Disagrees(engine, BuildCase(candidate, num_vertices))) {
        edges = std::move(candidate);
        removed_any = true;
        // Re-test from the same offset: the next chunk slid into place.
      } else {
        start += chunk;
      }
    }
    if (!removed_any) chunk /= 2;
  }
  return edges;
}

std::string FormatEdges(const EdgeList& edges) {
  std::string out;
  for (const auto& e : edges) {
    out += StrFormat("%llu %llu\n", static_cast<unsigned long long>(e.u),
                     static_cast<unsigned long long>(e.v));
  }
  return out;
}

TEST(DifferentialFuzz, AllEnginesMatchOracle) {
  const std::vector<Engine> engines = AllEngines();
  const std::vector<FuzzCase> corpus = FuzzCorpus();
  // The issue's floor: at least 200 graph x engine combinations.
  ASSERT_GE(engines.size() * corpus.size(), 200u);

  uint64_t combos = 0;
  for (const FuzzCase& fc : corpus) {
    const CsrGraph graph = BuildCase(fc.edges, fc.num_vertices);
    const std::vector<uint32_t> oracle = RunBz(graph).core;
    for (const Engine& engine : engines) {
      ++combos;
      auto result = engine.run(graph);
      ASSERT_TRUE(result.ok())
          << engine.name << " failed on " << fc.label << ": "
          << result.status().ToString();
      if (*result == oracle) continue;
      // Mismatch: shrink and dump a self-contained reproduction.
      const EdgeList reduced =
          ShrinkMismatch(engine, fc.edges, fc.num_vertices);
      FAIL() << engine.name << " disagrees with BZ on " << fc.label
             << "\nreduced to " << reduced.size()
             << " edges (num_vertices=" << fc.num_vertices
             << "):\n" << FormatEdges(reduced);
    }
  }
  // Belt and braces: the loop actually exercised the promised volume.
  EXPECT_GE(combos, 200u);
}

/// The shrinker itself must terminate and preserve the mismatch property;
/// exercise it against a deliberately broken "engine" so a future real
/// mismatch gets a working reducer, not a first-ever run of this code.
TEST(DifferentialFuzz, ShrinkerReducesInjectedMismatch) {
  // Claims every vertex has core number 0: disagrees wherever m > 0.
  Engine broken{"broken", [](const CsrGraph& g) {
                  return StatusOr<std::vector<uint32_t>>(
                      std::vector<uint32_t>(g.NumVertices(), 0));
                }};
  EdgeList edges = GenerateErdosRenyi(40, 120, 99);
  ASSERT_TRUE(Disagrees(broken, BuildCase(edges, 40)));
  const EdgeList reduced = ShrinkMismatch(broken, edges, 40);
  // A single edge suffices to contradict the all-zero claim.
  EXPECT_EQ(reduced.size(), 1u);
  EXPECT_TRUE(Disagrees(broken, BuildCase(reduced, 40)));
}

}  // namespace
}  // namespace kcore
