#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cusim/atomics.h"
#include "cusim/block.h"
#include "cusim/device.h"
#include "cusim/warp.h"
#include "cusim/warp_scan.h"

namespace kcore::sim {
namespace {

// ----------------------------------------------------------- Device memory -

TEST(DeviceTest, AllocTracksCurrentAndPeak) {
  DeviceOptions options;
  options.global_mem_bytes = 1 << 20;
  Device device(options);
  {
    auto a = device.Alloc<uint32_t>(1000);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(device.current_bytes(), 4000u);
    auto b = device.Alloc<uint64_t>(500);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(device.current_bytes(), 8000u);
    EXPECT_EQ(device.peak_bytes(), 8000u);
  }
  // RAII frees both; peak persists.
  EXPECT_EQ(device.current_bytes(), 0u);
  EXPECT_EQ(device.peak_bytes(), 8000u);
}

TEST(DeviceTest, AllocFailsOverCapacity) {
  DeviceOptions options;
  options.global_mem_bytes = 1024;
  Device device(options);
  auto ok = device.Alloc<uint8_t>(1024);
  ASSERT_TRUE(ok.ok());
  auto fail = device.Alloc<uint8_t>(1);
  EXPECT_TRUE(fail.status().IsOutOfMemory());
}

TEST(DeviceTest, ZeroInitializedAllocations) {
  Device device;
  auto arr = device.Alloc<uint32_t>(64);
  ASSERT_TRUE(arr.ok());
  for (uint32_t v : arr->span()) EXPECT_EQ(v, 0u);
}

TEST(DeviceTest, AllocByteSizeOverflowIsOutOfMemory) {
  // count * sizeof(U) wraps uint64_t: without the overflow guard this would
  // slip under global_mem_bytes and "succeed" with a tiny allocation.
  Device device;
  const size_t wrap_count =
      (std::numeric_limits<uint64_t>::max() / sizeof(uint64_t)) + 1;
  auto fail = device.Alloc<uint64_t>(wrap_count);
  EXPECT_TRUE(fail.status().IsOutOfMemory());
  auto fail_uninit = device.AllocUninit<uint64_t>(wrap_count);
  EXPECT_TRUE(fail_uninit.status().IsOutOfMemory());
  EXPECT_EQ(device.current_bytes(), 0u);
}

TEST(DeviceTest, AllocUninitAccountsLikeAlloc) {
  DeviceOptions options;
  options.global_mem_bytes = 1 << 20;
  Device device(options);
  {
    auto arr = device.AllocUninit<uint32_t>(1000);
    ASSERT_TRUE(arr.ok());
    EXPECT_EQ(arr->size(), 1000u);
    EXPECT_EQ(device.current_bytes(), 4000u);
    // Contents are unspecified until written; a full overwrite + readback
    // must round-trip.
    std::vector<uint32_t> host(1000);
    std::iota(host.begin(), host.end(), 7u);
    ASSERT_TRUE(arr->CopyFromHost(host).ok());
    std::vector<uint32_t> back(1000);
    ASSERT_TRUE(arr->CopyToHost(back).ok());
    EXPECT_EQ(back, host);
  }
  EXPECT_EQ(device.current_bytes(), 0u);
  auto fail = device.AllocUninit<uint8_t>((1 << 20) + 1);
  EXPECT_TRUE(fail.status().IsOutOfMemory());
}

TEST(DeviceTest, CopyRoundTripChargesTransfer) {
  Device device;
  auto arr = device.Alloc<uint32_t>(8);
  ASSERT_TRUE(arr.ok());
  std::vector<uint32_t> host = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(arr->CopyFromHost(host).ok());
  std::vector<uint32_t> back(8);
  ASSERT_TRUE(arr->CopyToHost(back).ok());
  EXPECT_EQ(back, host);
  EXPECT_GT(device.transfer_ms(), 0.0);
}

TEST(DeviceTest, MoveTransfersOwnership) {
  Device device;
  auto arr = device.Alloc<uint64_t>(10);
  ASSERT_TRUE(arr.ok());
  DeviceArray<uint64_t> moved = std::move(arr).value();
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_EQ(device.current_bytes(), 80u);
  moved.Reset();
  EXPECT_EQ(device.current_bytes(), 0u);
}

// ----------------------------------------------------------------- Launch --

TEST(LaunchTest, AllBlocksRunWithCorrectGeometry) {
  Device device;
  std::vector<std::atomic<int>> block_runs(6);
  ASSERT_TRUE(device.Launch(6, 64, [&](auto& block) {
    EXPECT_EQ(block.num_blocks(), 6u);
    EXPECT_EQ(block.block_dim(), 64u);
    EXPECT_EQ(block.num_warps(), 2u);
    EXPECT_EQ(block.grid_threads(), 384u);
    block_runs[block.block_id()].fetch_add(1);
  })
                  .ok());
  for (auto& r : block_runs) EXPECT_EQ(r.load(), 1);
  EXPECT_GT(device.modeled_ms(), 0.0);
  EXPECT_EQ(device.totals().kernel_launches, 1u);
}

TEST(LaunchTest, CrossBlockAtomicsAreReal) {
  Device device;
  auto counter = device.Alloc<uint64_t>(1);
  ASSERT_TRUE(counter.ok());
  ASSERT_TRUE(device.Launch(16, 32, [&](auto& block) {
    block.ForEachThread([&](uint32_t) {
      AtomicAdd(counter->data(), uint64_t{1}, block.counters());
    });
  })
                  .ok());
  EXPECT_EQ(counter->data()[0], 16u * 32);
}

TEST(LaunchTest, ModeledTimeGrowsWithWork) {
  Device device;
  ASSERT_TRUE(device.Launch(4, 32, [&](auto& block) {
    block.ForEachThread([](uint32_t) {});
  })
                  .ok());
  const double small = device.modeled_ms();
  device.ResetClock();
  ASSERT_TRUE(device.Launch(4, 32, [&](auto& block) {
    for (int i = 0; i < 2000; ++i) {
      block.ForEachThread([](uint32_t) {});
    }
  })
                  .ok());
  EXPECT_GT(device.modeled_ms(), small);
}

// ------------------------------------------------------------ Block/Warp ---

TEST(BlockTest, SharedAllocZeroedAndBudgeted) {
  BlockCtx block(0, 1, 64, 1024);
  auto* a = block.SharedAlloc<uint32_t>(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0u);
  a[0] = 7;
  auto* b = block.SharedAlloc<uint64_t>(50);
  EXPECT_EQ(a[0], 7u);  // distinct regions
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_GE(block.shared_used(), 800u);
}

TEST(BlockTest, ForEachWarpCoversAllWarps) {
  BlockCtx block(0, 1, 256, 1024);
  std::vector<int> seen;
  block.ForEachWarp([&](WarpCtx& warp) {
    seen.push_back(static_cast<int>(warp.warp_id()));
    EXPECT_EQ(warp.num_warps(), 8u);
  });
  EXPECT_EQ(seen.size(), 8u);
  for (int w = 0; w < 8; ++w) EXPECT_EQ(seen[w], w);
}

TEST(WarpTest, BallotSyncBuildsBitmap) {
  PerfCounters counters;
  WarpCtx warp(0, 1, &counters);
  const uint32_t bits = warp.BallotSync([](uint32_t lane) {
    return lane % 3 == 0;
  });
  for (uint32_t lane = 0; lane < 32; ++lane) {
    EXPECT_EQ((bits >> lane) & 1u, lane % 3 == 0 ? 1u : 0u);
  }
}

TEST(WarpTest, PopcAndLaneMask) {
  EXPECT_EQ(WarpCtx::Popc(0u), 0u);
  EXPECT_EQ(WarpCtx::Popc(0xffffffffu), 32u);
  EXPECT_EQ(WarpCtx::LaneMaskLt(0), 0u);
  EXPECT_EQ(WarpCtx::LaneMaskLt(1), 1u);
  EXPECT_EQ(WarpCtx::LaneMaskLt(5), 0x1fu);
  EXPECT_EQ(WarpCtx::LaneMaskLt(31), 0x7fffffffu);
}

// ---------------------------------------------------------------- Atomics --

TEST(AtomicsTest, AddSubReturnOldValue) {
  PerfCounters c;
  uint32_t value = 10;
  EXPECT_EQ(AtomicAdd(&value, 5u, c), 10u);
  EXPECT_EQ(value, 15u);
  EXPECT_EQ(AtomicSub(&value, 3u, c), 15u);
  EXPECT_EQ(value, 12u);
  EXPECT_EQ(c.global_atomics, 2u);
}

TEST(AtomicsTest, SharedSpaceCountsSeparately) {
  PerfCounters c;
  uint64_t value = 0;
  AtomicAdd(&value, uint64_t{1}, c, MemSpace::kShared);
  EXPECT_EQ(c.shared_atomics, 1u);
  EXPECT_EQ(c.global_atomics, 0u);
}

TEST(AtomicsTest, AtomicMaxMonotone) {
  PerfCounters c;
  uint32_t value = 5;
  EXPECT_EQ(AtomicMax(&value, 3u, c), 5u);
  EXPECT_EQ(value, 5u);
  EXPECT_EQ(AtomicMax(&value, 9u, c), 5u);
  EXPECT_EQ(value, 9u);
}

TEST(AtomicsTest, CasReturnsOld) {
  PerfCounters c;
  uint32_t value = 4;
  EXPECT_EQ(AtomicCas(&value, 4u, 7u, c), 4u);
  EXPECT_EQ(value, 7u);
  EXPECT_EQ(AtomicCas(&value, 4u, 9u, c), 7u);  // mismatch: no change
  EXPECT_EQ(value, 7u);
}

// ------------------------------------------------------------------ Scans --

std::vector<uint32_t> ReferenceInclusive(const std::vector<uint32_t>& in) {
  std::vector<uint32_t> out(in.size());
  std::partial_sum(in.begin(), in.end(), out.begin());
  return out;
}

TEST(WarpScanTest, HillisSteeleMatchesReference) {
  PerfCounters c;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    std::vector<uint32_t> values(kWarpSize);
    for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(100));
    const auto expected = ReferenceInclusive(values);
    HillisSteeleInclusiveScan(values.data(), c);
    EXPECT_EQ(values, expected) << "seed " << seed;
  }
  EXPECT_GT(c.scan_steps, 0u);
}

TEST(WarpScanTest, BlellochMatchesReference) {
  PerfCounters c;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 31);
    std::vector<uint32_t> values(kWarpSize);
    for (auto& v : values) v = static_cast<uint32_t>(rng.UniformInt(50));
    const uint32_t expected_total =
        std::accumulate(values.begin(), values.end(), 0u);
    // Exclusive scan expectation.
    std::vector<uint32_t> expected(kWarpSize, 0);
    for (size_t i = 1; i < kWarpSize; ++i) {
      expected[i] = expected[i - 1] + values[i - 1];
    }
    const uint32_t total = BlellochExclusiveScan(values.data(), c);
    EXPECT_EQ(total, expected_total);
    EXPECT_EQ(values, expected);
  }
}

TEST(WarpScanTest, BallotScanMatchesFlags) {
  PerfCounters c;
  WarpCtx warp(0, 1, &c);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 7);
    uint32_t flags[kWarpSize];
    for (auto& f : flags) f = rng.Bernoulli(0.4) ? 1 : 0;
    uint32_t exclusive[kWarpSize];
    const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
    uint32_t running = 0;
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      EXPECT_EQ(exclusive[lane], running);
      running += flags[lane];
    }
    EXPECT_EQ(total, running);
  }
}

TEST(WarpScanTest, BlockScanTwoStage) {
  for (uint32_t warps : {1u, 2u, 8u, 32u}) {
    BlockCtx block(0, 1, warps * kWarpSize, 1024);
    Rng rng(warps);
    std::vector<uint32_t> flags(warps * kWarpSize);
    for (auto& f : flags) f = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<uint32_t> exclusive(flags.size());
    const uint32_t total =
        BlockExclusiveScan(block, flags.data(), exclusive.data());
    uint32_t running = 0;
    for (size_t i = 0; i < flags.size(); ++i) {
      EXPECT_EQ(exclusive[i], running) << "warps=" << warps << " i=" << i;
      running += flags[i];
    }
    EXPECT_EQ(total, running);
  }
}

TEST(WarpScanTest, BlellochCostsMoreStepsThanHs) {
  // The paper's stated reason for preferring HS at warp width.
  PerfCounters hs;
  PerfCounters bl;
  std::vector<uint32_t> a(kWarpSize, 1);
  std::vector<uint32_t> b(kWarpSize, 1);
  HillisSteeleInclusiveScan(a.data(), hs);
  BlellochExclusiveScan(b.data(), bl);
  EXPECT_GT(bl.scan_steps, hs.scan_steps);
}

// ------------------------------------------------- DeviceArray lifetimes -

TEST(DeviceArrayTest, DoubleResetReleasesOnce) {
  Device device;
  auto arr = device.Alloc<uint32_t>(1000);
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(device.current_bytes(), 4000u);
  arr->Reset();
  EXPECT_EQ(device.current_bytes(), 0u);
  arr->Reset();  // second Reset must be a no-op, not a double release
  EXPECT_EQ(device.current_bytes(), 0u);
}

TEST(DeviceArrayTest, MoveAssignOverLiveArrayReleasesExactlyOnce) {
  Device device;
  auto a = device.Alloc<uint32_t>(1000);
  auto b = device.Alloc<uint32_t>(500);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(device.current_bytes(), 6000u);
  *b = std::move(*a);  // b's old allocation released, a's transferred
  EXPECT_EQ(device.current_bytes(), 4000u);
  b->Reset();
  EXPECT_EQ(device.current_bytes(), 0u);
  a->Reset();  // moved-from: no-op
  EXPECT_EQ(device.current_bytes(), 0u);
}

TEST(DeviceArrayTest, CopyFromHostSizeMismatchDies) {
  Device device;
  auto arr = device.Alloc<uint32_t>(8);
  ASSERT_TRUE(arr.ok());
  const std::vector<uint32_t> big(9, 0);
  EXPECT_DEATH(arr->CopyFromHost(big), "");
}

TEST(DeviceArrayTest, CopyToHostSizeMismatchDies) {
  Device device;
  auto arr = device.Alloc<uint32_t>(8);
  ASSERT_TRUE(arr.ok());
  std::vector<uint32_t> big(9, 0);
  EXPECT_DEATH(arr->CopyToHost(big), "");
}

TEST(BlockTest, SharedAllocOverflowingByteSizeDies) {
  // count * sizeof(T) wraps size_t: the wrapped product would slip past the
  // budget check and memset far out of bounds.
  BlockCtx block(0, 1, 64, 1024);
  const size_t wrap_count =
      std::numeric_limits<size_t>::max() / sizeof(uint64_t) + 1;
  EXPECT_DEATH(block.SharedAlloc<uint64_t>(wrap_count), "");
}

// -------------------------------------------------------------- simcheck -

DeviceOptions CheckedOptions() {
  DeviceOptions options;
  options.check_mode = true;
  return options;
}

TEST(SimcheckTest, OffByDefaultAndZeroStateWhenDisabled) {
  // Shield from an inherited KCORE_SIMCHECK=1 (ci_check.sh runs the suite
  // under it); "default" here means options + environment both unset.
  unsetenv("KCORE_SIMCHECK");
  Device device;
  EXPECT_EQ(device.checker(), nullptr);
  EXPECT_TRUE(device.CheckStatus().ok());
}

TEST(SimcheckTest, CleanKernelProducesCleanReport) {
  Device device(CheckedOptions());
  auto data = device.Alloc<uint32_t>(256, "data");
  auto sum = device.Alloc<uint32_t>(1, "sum");
  ASSERT_TRUE(data.ok() && sum.ok());
  uint32_t* d = data->data();
  uint32_t* s = sum->data();
  ASSERT_TRUE(device.Launch(4, 64, "fill", [&](auto& block) {
    auto& c = block.counters();
    block.ForEachThread([&](uint32_t t) {
      const uint32_t i = block.block_id() * 64 + t;
      GlobalStore(&d[i], i, c);       // disjoint cells across blocks
      AtomicAdd(s, uint32_t{1}, c);   // shared cell, but atomic
    });
  })
                  .ok());
  ASSERT_TRUE(device.Launch(4, 64, "read", [&](auto& block) {
    auto& c = block.counters();
    block.ForEachThread([&](uint32_t t) {
      const uint32_t i = block.block_id() * 64 + t;
      EXPECT_EQ(GlobalLoad(&d[i], c), i);
    });
  })
                  .ok());
  EXPECT_TRUE(device.CheckStatus().ok()) << device.CheckStatus().ToString();
  EXPECT_TRUE(device.checker()->report().clean());
}

TEST(SimcheckTest, MemcheckFlagsOutOfBoundsAccessAndContainsIt) {
  Device device(CheckedOptions());
  auto data = device.Alloc<uint32_t>(16, "small");
  ASSERT_TRUE(data.ok());
  uint32_t* d = data->data();
  std::atomic<uint32_t> observed{7};
  ASSERT_TRUE(device.Launch(1, 32, "oob", [&](auto& block) {
    auto& c = block.counters();
    // One past the end: flagged, and the load is contained to T{} instead
    // of dereferencing (keeps this test ASan-clean).
    observed = GlobalLoad(&d[16], c);
    GlobalStore(&d[16], 42u, c);  // contained store
  })
                  .ok());
  const CheckReport& report = device.checker()->report();
  EXPECT_EQ(observed.load(), 0u);
  EXPECT_EQ(report.count(CheckKind::kMemcheck), 2u);
  EXPECT_FALSE(device.CheckStatus().ok());
  EXPECT_TRUE(device.CheckStatus().IsFailedPrecondition());
}

TEST(SimcheckTest, InitcheckFlagsReadOfNeverWrittenWord) {
  Device device(CheckedOptions());
  auto data = device.AllocUninit<uint32_t>(8, "uninit");
  ASSERT_TRUE(data.ok());
  uint32_t* d = data->data();
  std::atomic<uint32_t> observed{7};
  ASSERT_TRUE(device.Launch(1, 32, "read_uninit", [&](auto& block) {
    auto& c = block.counters();
    GlobalStore(&d[0], 5u, c);
    observed = GlobalLoad(&d[0], c) + GlobalLoad(&d[1], c);  // d[1] is junk
  })
                  .ok());
  const CheckReport& report = device.checker()->report();
  EXPECT_EQ(observed.load(), 5u);  // the invalid read was contained to 0
  EXPECT_EQ(report.count(CheckKind::kInitcheck), 1u);
  EXPECT_EQ(report.violations()[0].allocation, "uninit");
  EXPECT_EQ(report.violations()[0].offset, 4u);
}

TEST(SimcheckTest, InitcheckAcceptsCopyFromHostAsInitialization) {
  Device device(CheckedOptions());
  auto data = device.AllocUninit<uint32_t>(8, "staged");
  ASSERT_TRUE(data.ok());
  const std::vector<uint32_t> host(8, 3);
  ASSERT_TRUE(data->CopyFromHost(host).ok());
  uint32_t* d = data->data();
  ASSERT_TRUE(device.Launch(1, 32, "read_staged", [&](auto& block) {
    auto& c = block.counters();
    EXPECT_EQ(GlobalLoad(&d[7], c), 3u);
  })
                  .ok());
  EXPECT_TRUE(device.CheckStatus().ok()) << device.CheckStatus().ToString();
}

TEST(SimcheckTest, InitcheckFlagsCopyToHostOfUninitializedMemory) {
  Device device(CheckedOptions());
  auto data = device.AllocUninit<uint32_t>(4, "never_written");
  ASSERT_TRUE(data.ok());
  std::vector<uint32_t> host(4, 0);
  ASSERT_TRUE(data->CopyToHost(host).ok());
  EXPECT_EQ(device.checker()->report().count(CheckKind::kInitcheck), 4u);
}

TEST(SimcheckTest, RacecheckFlagsCrossBlockPlainWrites) {
  Device device(CheckedOptions());
  auto cell = device.Alloc<uint32_t>(1, "cell");
  ASSERT_TRUE(cell.ok());
  uint32_t* p = cell->data();
  // Every block plain-stores the same word in one launch: a real data race
  // the redundancy-avoidance logic would never survive. Detection is
  // schedule-independent (shadow tags carry block id + launch epoch), so
  // this fires even if the host serializes the blocks.
  ASSERT_TRUE(device.Launch(4, 32, "racy", [&](auto& block) {
    auto& c = block.counters();
    GlobalStore(p, block.block_id(), c);
  })
                  .ok());
  EXPECT_GE(device.checker()->report().count(CheckKind::kRacecheck), 1u);
  EXPECT_FALSE(device.CheckStatus().ok());
}

TEST(SimcheckTest, RacecheckAllowsAtomicsAndStaleReads) {
  Device device(CheckedOptions());
  auto cell = device.Alloc<uint32_t>(1, "counter");
  ASSERT_TRUE(cell.ok());
  uint32_t* p = cell->data();
  // Device-wide atomics racing plain reads of the same word are the paper's
  // Alg. 3 lines 20-24 pattern (stale deg reads vs. atomicSub) — legal.
  ASSERT_TRUE(device.Launch(4, 32, "atomic_vs_read", [&](auto& block) {
    auto& c = block.counters();
    (void)GlobalLoad(p, c);
    AtomicAdd(p, 1u, c);
    AtomicSub(p, 1u, c);
  })
                  .ok());
  EXPECT_TRUE(device.CheckStatus().ok()) << device.CheckStatus().ToString();
}

TEST(SimcheckTest, RacecheckIgnoresWritesFromDifferentLaunches) {
  Device device(CheckedOptions());
  auto cell = device.Alloc<uint32_t>(1, "cell");
  ASSERT_TRUE(cell.ok());
  uint32_t* p = cell->data();
  ASSERT_TRUE(device.Launch(1, 32, "first", [&](auto& block) {
    GlobalStore(p, 1u, block.counters());
  })
                  .ok());
  ASSERT_TRUE(device.Launch(2, 32, "second", [&](auto& block) {
    if (block.block_id() == 1) GlobalStore(p, 2u, block.counters());
  })
                  .ok());
  EXPECT_TRUE(device.CheckStatus().ok()) << device.CheckStatus().ToString();
}

TEST(SimcheckTest, SynccheckFlagsCrossWarpSharedConflictWithoutBarrier) {
  Device device(CheckedOptions());
  ASSERT_TRUE(device.Launch(1, 64, "missing_sync", [&](auto& block) {
    auto& c = block.counters();
    auto* flag = block.template SharedAlloc<uint32_t>(1);
    block.ForEachWarp([&](WarpCtx& warp) {
      // Warp 0 publishes, warp 1 consumes — with no Sync() in between, the
      // classic missing-__syncthreads() bug.
      if (warp.warp_id() == 0) {
        SharedStore(flag, 1u, c);
      } else {
        (void)SharedLoad(flag, c);
      }
    });
  })
                  .ok());
  EXPECT_GE(device.checker()->report().count(CheckKind::kSynccheck), 1u);
  EXPECT_FALSE(device.CheckStatus().ok());
}

TEST(SimcheckTest, SynccheckAcceptsBarrierSeparatedSharedTraffic) {
  Device device(CheckedOptions());
  ASSERT_TRUE(device.Launch(1, 64, "with_sync", [&](auto& block) {
    auto& c = block.counters();
    auto* flag = block.template SharedAlloc<uint32_t>(1);
    block.ForEachWarp([&](WarpCtx& warp) {
      if (warp.warp_id() == 0) SharedStore(flag, 1u, c);
    });
    block.Sync();
    block.ForEachWarp([&](WarpCtx& warp) {
      if (warp.warp_id() != 0) {
        EXPECT_EQ(SharedLoad(flag, c), 1u);
      }
    });
  })
                  .ok());
  EXPECT_TRUE(device.CheckStatus().ok()) << device.CheckStatus().ToString();
}

TEST(SimcheckTest, SynccheckAllowsSharedAtomics) {
  Device device(CheckedOptions());
  ASSERT_TRUE(device.Launch(1, 128, "shared_atomics", [&](auto& block) {
    auto& c = block.counters();
    auto* e = block.template SharedAlloc<uint64_t>(1);
    block.ForEachThread([&](uint32_t) {
      AtomicAdd(e, uint64_t{1}, c, MemSpace::kShared);
    });
  })
                  .ok());
  EXPECT_TRUE(device.CheckStatus().ok()) << device.CheckStatus().ToString();
}

TEST(SimcheckTest, LeakReportSurvivesDeviceDestruction) {
  auto device = std::make_unique<Device>(CheckedOptions());
  std::shared_ptr<SimChecker> checker = device->checker();
  ASSERT_NE(checker, nullptr);
  auto arr = device->Alloc<uint32_t>(64, "leaky");
  ASSERT_TRUE(arr.ok());
  DeviceArray<uint32_t> leaked = std::move(*arr);
  device.reset();  // leaked is still alive: one leak, reported at teardown
  EXPECT_EQ(checker->report().count(CheckKind::kLeak), 1u);
  EXPECT_EQ(checker->report().violations()[0].allocation, "leaky");
  leaked.Reset();  // must not touch the destroyed Device
}

TEST(SimcheckTest, FreedAllocationsAreNotLeaks) {
  auto device = std::make_unique<Device>(CheckedOptions());
  std::shared_ptr<SimChecker> checker = device->checker();
  {
    auto arr = device->Alloc<uint32_t>(64, "scoped");
    ASSERT_TRUE(arr.ok());
  }
  device.reset();
  EXPECT_TRUE(checker->report().clean());
}

TEST(SimcheckTest, EnvVariableEnablesChecking) {
  ASSERT_EQ(setenv("KCORE_SIMCHECK", "1", 1), 0);
  Device device;
  ASSERT_EQ(unsetenv("KCORE_SIMCHECK"), 0);
  EXPECT_NE(device.checker(), nullptr);
}

}  // namespace
}  // namespace kcore::sim
