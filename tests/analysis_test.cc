#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/core_analysis.h"
#include "analysis/snapshots.h"
#include "cpu/bz.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::NamedGraph;

// --------------------------------------------------------- Core analysis ---

TEST(KShellTest, ShellsPartitionVertices) {
  const auto g = testing::PaperFigureGraph();
  const auto core = RunBz(g.graph).core;
  std::set<VertexId> seen;
  for (uint32_t k = 0; k <= 3; ++k) {
    for (VertexId v : KShellMembers(core, k)) {
      EXPECT_TRUE(seen.insert(v).second);
      EXPECT_EQ(core[v], k);
    }
  }
  EXPECT_EQ(seen.size(), g.graph.NumVertices());
}

TEST(KCoreSubgraphTest, MinDegreeInvariantHolds) {
  // Property: the k-core subgraph has minimum degree >= k, for every k.
  for (const NamedGraph& g : testing::RandomSuite()) {
    const auto core = RunBz(g.graph).core;
    const uint32_t k_max = *std::max_element(core.begin(), core.end());
    for (uint32_t k = 1; k <= k_max; ++k) {
      const InducedSubgraph sub = KCoreSubgraph(g.graph, core, k);
      for (VertexId v = 0; v < sub.graph.NumVertices(); ++v) {
        EXPECT_GE(sub.graph.Degree(v), k)
            << g.name << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(KCoreSubgraphTest, MaximalityOnPaperGraph) {
  // The 3-core of the paper graph is exactly the K4; adding any other
  // vertex would break the min-degree property (checked by construction).
  const auto g = testing::PaperFigureGraph();
  const auto core = RunBz(g.graph).core;
  const InducedSubgraph sub = KCoreSubgraph(g.graph, core, 3);
  EXPECT_EQ(sub.parent_ids, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(CoreHistogramTest, CountsMatch) {
  const auto g = testing::PaperFigureGraph();
  const auto core = RunBz(g.graph).core;
  const auto histogram = CoreHistogram(core);
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[0], 0u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 3u);
  EXPECT_EQ(histogram[3], 4u);
}

TEST(CoreHistogramTest, EmptyCore) {
  EXPECT_TRUE(CoreHistogram({}).empty());
}

TEST(DegeneracyOrderingTest, IsPermutationWithBoundedForwardDegree) {
  for (const NamedGraph& g : testing::RandomSuite()) {
    const auto order = DegeneracyOrdering(g.graph);
    ASSERT_EQ(order.size(), g.graph.NumVertices());
    const auto core = RunBz(g.graph).core;
    const uint32_t degeneracy =
        core.empty() ? 0 : *std::max_element(core.begin(), core.end());
    std::vector<uint32_t> position(order.size());
    for (uint32_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    // Degeneracy-order property: forward degree <= degeneracy.
    for (VertexId v = 0; v < g.graph.NumVertices(); ++v) {
      uint32_t forward = 0;
      for (VertexId u : g.graph.Neighbors(v)) {
        if (position[u] > position[v]) ++forward;
      }
      EXPECT_LE(forward, degeneracy) << g.name << " v=" << v;
    }
  }
}

TEST(TopSpreadersTest, RankedByCoreThenDegree) {
  const auto g = testing::PaperFigureGraph();
  const auto core = RunBz(g.graph).core;
  const auto top = TopSpreaders(g.graph, core, 4);
  ASSERT_EQ(top.size(), 4u);
  // The K4 vertices (core 3) come first; vertex 0 has the highest degree.
  EXPECT_EQ(top[0], 0u);
  for (VertexId v : top) EXPECT_EQ(core[v], 3u);
}

TEST(TopSpreadersTest, CountClamped) {
  const auto g = testing::CliqueGraph(3);
  const auto core = RunBz(g.graph).core;
  EXPECT_EQ(TopSpreaders(g.graph, core, 10).size(), 3u);
}

// ------------------------------------------------------------ Snapshots ----

CitationOptions SmallCorpusOptions() {
  CitationOptions options;
  options.num_papers = 4000;
  options.num_authors = 600;
  options.num_topics = 6;
  options.first_year = 1980;
  options.last_year = 2000;
  options.seed = 11;
  return options;
}

TEST(SnapshotTest, CaseStudyShape) {
  const CitationCorpus corpus = GenerateCitationCorpus(SmallCorpusOptions());
  const SnapshotCore s1 = AnalyzeSnapshot(corpus, 1995);
  const SnapshotCore s2 = AnalyzeSnapshot(corpus, 2000);

  // The network grows with the cutoff, and so does (weakly) k_max — the
  // paper's G1 (k_max 12) vs G2 (k_max 18) pattern.
  EXPECT_LT(s1.num_edges, s2.num_edges);
  EXPECT_LE(s1.k_max, s2.k_max);
  EXPECT_GT(s1.k_max, 0u);
  EXPECT_FALSE(s1.kmax_core_authors.empty());
  EXPECT_FALSE(s2.kmax_core_authors.empty());

  const SnapshotComparison cmp = CompareSnapshots(s1, s2);
  // Set algebra is a partition of S1 ∪ S2.
  EXPECT_EQ(cmp.in_both.size() + cmp.only_first.size(),
            s1.kmax_core_authors.size());
  EXPECT_EQ(cmp.in_both.size() + cmp.only_second.size(),
            s2.kmax_core_authors.size());
  // The sliding author-activity window makes early authors fall out.
  EXPECT_FALSE(cmp.only_second.empty());
}

TEST(SnapshotTest, IdenticalSnapshotsFullyOverlap) {
  const CitationCorpus corpus = GenerateCitationCorpus(SmallCorpusOptions());
  const SnapshotCore s = AnalyzeSnapshot(corpus, 1995);
  const SnapshotComparison cmp = CompareSnapshots(s, s);
  EXPECT_EQ(cmp.in_both.size(), s.kmax_core_authors.size());
  EXPECT_TRUE(cmp.only_first.empty());
  EXPECT_TRUE(cmp.only_second.empty());
}

TEST(SnapshotTest, KmaxCoreIsActuallyACore) {
  // The reported k_max-core authors induce a subgraph of min degree k_max.
  const CitationCorpus corpus = GenerateCitationCorpus(SmallCorpusOptions());
  const SnapshotCore s = AnalyzeSnapshot(corpus, 2000);
  const EdgeList edges = BuildAuthorInteractionEdges(corpus, 2000);
  auto built = BuildGraph(edges);
  ASSERT_TRUE(built.ok());
  const auto core = RunNaiveReference(built->graph).core;
  std::set<uint64_t> members(s.kmax_core_authors.begin(),
                             s.kmax_core_authors.end());
  uint64_t matched = 0;
  for (VertexId v = 0; v < built->graph.NumVertices(); ++v) {
    if (core[v] == s.k_max) {
      EXPECT_TRUE(members.count(built->original_ids[v]) == 1);
      ++matched;
    }
  }
  EXPECT_EQ(matched, s.kmax_core_authors.size());
}

}  // namespace
}  // namespace kcore
