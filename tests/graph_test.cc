#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "generators/citation.h"
#include "generators/generators.h"
#include "graph/csr_graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/subgraph.h"
#include "test_graphs.h"

namespace kcore {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// -------------------------------------------------------------- CsrGraph --

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumDirectedEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(CsrGraphTest, AccessorsOnTriangle) {
  const CsrGraph g = BuildUndirectedGraph({{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumUndirectedEdges(), 3u);
  EXPECT_EQ(g.NumDirectedEdges(), 6u);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.Degree(v), 2u);
    EXPECT_EQ(g.Neighbors(v).size(), 2u);
  }
  EXPECT_TRUE(g.Validate().ok());
}

TEST(CsrGraphTest, DegreeArrayMatchesDegrees) {
  const auto g = testing::PaperFigureGraph().graph;
  const auto deg = g.DegreeArray();
  ASSERT_EQ(deg.size(), g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(deg[v], g.Degree(v));
  }
}

TEST(CsrGraphTest, ValidateRejectsAsymmetry) {
  // Hand-build a broken graph: edge 0->1 without 1->0.
  CsrGraph g({0, 1, 1}, {1});
  const Status s = g.Validate();
  EXPECT_TRUE(s.IsCorruption());
}

TEST(CsrGraphTest, ValidateRejectsSelfLoop) {
  CsrGraph g({0, 1}, {0});
  EXPECT_TRUE(g.Validate().IsCorruption());
}

TEST(CsrGraphTest, MemoryBytesPositive) {
  const auto g = testing::CliqueGraph(5).graph;
  EXPECT_GT(g.MemoryBytes(), 0u);
}

// ---------------------------------------------------------- GraphBuilder --

TEST(GraphBuilderTest, UndirectedizesAndDedups) {
  // Duplicate edges and both directions collapse to one undirected edge.
  const CsrGraph g =
      BuildUndirectedGraph({{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumUndirectedEdges(), 2u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, RemovesSelfLoops) {
  const CsrGraph g = BuildUndirectedGraph({{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.NumUndirectedEdges(), 1u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, RecodesSparseIds) {
  EdgeList edges = {{1000000007ull, 42ull}, {42ull, 99999ull}};
  auto built = BuildGraph(edges);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->graph.NumVertices(), 3u);
  EXPECT_EQ(built->graph.NumUndirectedEdges(), 2u);
  ASSERT_EQ(built->original_ids.size(), 3u);
  // Dense IDs assigned in first-appearance order.
  EXPECT_EQ(built->original_ids[0], 1000000007ull);
  EXPECT_EQ(built->original_ids[1], 42ull);
  EXPECT_EQ(built->original_ids[2], 99999ull);
}

TEST(GraphBuilderTest, NoRecodeRejectsHugeIds) {
  BuildOptions options;
  options.recode_ids = false;
  EdgeList edges = {{0, 1ull << 40}};
  auto built = BuildGraph(edges, options);
  EXPECT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsInvalidArgument());
}

TEST(GraphBuilderTest, AdjacencySorted) {
  const CsrGraph g = BuildUndirectedGraph({{3, 1}, {3, 0}, {3, 2}});
  const auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphBuilderTest, VertexCountPreservesIsolated) {
  const CsrGraph g = BuildUndirectedGraphWithVertexCount({{0, 1}}, 5);
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, DirectedKeepsOneDirection) {
  BuildOptions options;
  options.make_undirected = false;
  options.recode_ids = false;
  auto built = BuildGraph({{0, 1}, {2, 1}}, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->graph.Degree(0), 1u);
  EXPECT_EQ(built->graph.Degree(1), 0u);
  EXPECT_EQ(built->graph.Degree(2), 1u);
}

// ---------------------------------------------------------------- IO -----

TEST(GraphIoTest, EdgeListTextRoundTrip) {
  EdgeList edges = {{0, 1}, {2, 3}, {1, 2}};
  const std::string path = TempPath("edges.txt");
  ASSERT_TRUE(SaveEdgeListText(edges, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, edges);
}

TEST(GraphIoTest, EdgeListSkipsCommentsAndBlank) {
  const std::string path = TempPath("commented.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header\n% konect style\n\n 0\t1\n2 3 extra\n", f);
  std::fclose(f);
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[1].v, 3u);
}

TEST(GraphIoTest, EdgeListRejectsGarbage) {
  const std::string path = TempPath("bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0 1\nnot numbers\n", f);
  std::fclose(f);
  const Status s = LoadEdgeListText(path).status();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The error names the file and the offending line.
  EXPECT_NE(s.message().find(":2:"), std::string::npos) << s.ToString();
}

TEST(GraphIoTest, EdgeListRejectsTruncatedLine) {
  const std::string path = TempPath("truncated.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0 1\n1 2\n7\n", f);  // last line lost its target endpoint
  std::fclose(f);
  const Status s = LoadEdgeListText(path).status();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find(":3:"), std::string::npos) << s.ToString();
}

TEST(GraphIoTest, EdgeListRejectsNegativeIds) {
  // sscanf's %llu silently wraps "-3" to a huge vertex id; the strict parser
  // must reject it instead of fabricating a 2^64-scale graph.
  const std::string path = TempPath("negative.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("0 -3\n", f);
  std::fclose(f);
  const Status s = LoadEdgeListText(path).status();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("negative"), std::string::npos) << s.ToString();
}

TEST(GraphIoTest, EdgeListRejectsOverflowAndStuckTokens) {
  const std::string path = TempPath("overflow.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("99999999999999999999999999 1\n", f);  // > 2^64
  std::fclose(f);
  EXPECT_TRUE(LoadEdgeListText(path).status().IsInvalidArgument());

  const std::string stuck = TempPath("stuck.txt");
  f = std::fopen(stuck.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 2x\n", f);  // target runs into garbage
  std::fclose(f);
  EXPECT_TRUE(LoadEdgeListText(stuck).status().IsInvalidArgument());
}

TEST(GraphIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadEdgeListText("/nonexistent/x.txt").status().IsIOError());
  EXPECT_TRUE(LoadCsrBinary("/nonexistent/x.bin").status().IsIOError());
}

TEST(GraphIoTest, CsrBinaryRoundTrip) {
  const auto g = testing::PaperFigureGraph().graph;
  const std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveCsrBinary(g, path).ok());
  auto loaded = LoadCsrBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == g);
}

TEST(GraphIoTest, CsrBinaryDetectsCorruption) {
  const auto g = testing::CliqueGraph(6).graph;
  const std::string path = TempPath("corrupt.bin");
  ASSERT_TRUE(SaveCsrBinary(g, path).ok());
  // Flip one payload byte (XOR so the value is guaranteed to change).
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 48, SEEK_SET);
  const int original = std::fgetc(f);
  ASSERT_NE(original, EOF);
  std::fseek(f, 48, SEEK_SET);
  std::fputc(original ^ 0xff, f);
  std::fclose(f);
  EXPECT_TRUE(LoadCsrBinary(path).status().IsCorruption());
}

TEST(GraphIoTest, CsrBinaryRejectsBadMagic) {
  const std::string path = TempPath("notagraph.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 64; ++i) std::fputc(i, f);
  std::fclose(f);
  EXPECT_TRUE(LoadCsrBinary(path).status().IsCorruption());
}

// --------------------------------------------------------------- Stats ---

TEST(GraphStatsTest, CliqueStats) {
  const auto g = testing::CliqueGraph(5).graph;
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_vertices, 5u);
  EXPECT_EQ(stats.num_edges, 10u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 4.0);
  EXPECT_DOUBLE_EQ(stats.degree_stddev, 0.0);
  EXPECT_EQ(stats.max_degree, 4u);
}

TEST(GraphStatsTest, StarStatsSkewed) {
  const auto g = testing::StarGraph(10).graph;
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.max_degree, 10u);
  EXPECT_GT(stats.degree_stddev, 2.0);
  EXPECT_NEAR(stats.avg_degree, 20.0 / 11, 1e-9);
}

TEST(GraphStatsTest, EmptyGraphStats) {
  const GraphStats stats = ComputeGraphStats(CsrGraph());
  EXPECT_EQ(stats.num_vertices, 0u);
  EXPECT_EQ(stats.max_degree, 0u);
}

// ------------------------------------------------------------- Subgraph --

TEST(SubgraphTest, InducedTriangle) {
  const auto g = testing::PaperFigureGraph().graph;
  std::vector<bool> keep(g.NumVertices(), false);
  keep[0] = keep[1] = keep[2] = keep[3] = true;  // the K4
  const InducedSubgraph sub = ExtractInducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.NumVertices(), 4u);
  EXPECT_EQ(sub.graph.NumUndirectedEdges(), 6u);
  EXPECT_TRUE(sub.graph.Validate().ok());
  EXPECT_EQ(sub.parent_ids, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(SubgraphTest, EmptySelection) {
  const auto g = testing::CliqueGraph(4).graph;
  const InducedSubgraph sub =
      ExtractInducedSubgraph(g, std::vector<bool>(4, false));
  EXPECT_EQ(sub.graph.NumVertices(), 0u);
}

TEST(SubgraphTest, CrossEdgesDropped) {
  const auto g = testing::TwoCliquesGraph(4, 4).graph;
  std::vector<bool> keep(g.NumVertices(), false);
  keep[0] = keep[4] = true;  // endpoints of the bridge edge
  const InducedSubgraph sub = ExtractInducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.NumVertices(), 2u);
  EXPECT_EQ(sub.graph.NumUndirectedEdges(), 1u);
}

// ------------------------------------------------------------ Generators --

TEST(GeneratorsTest, ErdosRenyiExactEdgeCount) {
  const EdgeList edges = GenerateErdosRenyi(100, 500, 3);
  EXPECT_EQ(edges.size(), 500u);
  const CsrGraph g = BuildUndirectedGraph(edges);
  EXPECT_EQ(g.NumUndirectedEdges(), 500u);  // sampling was without repeats
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  EXPECT_EQ(GenerateErdosRenyi(50, 100, 9), GenerateErdosRenyi(50, 100, 9));
  EXPECT_NE(GenerateErdosRenyi(50, 100, 9), GenerateErdosRenyi(50, 100, 10));
}

TEST(GeneratorsTest, BarabasiAlbertDegrees) {
  const CsrGraph g = BuildUndirectedGraph(GenerateBarabasiAlbert(300, 3, 5));
  EXPECT_EQ(g.NumVertices(), 300u);
  // Every non-seed vertex attached with >= 3 edges.
  for (VertexId v = 4; v < 300; ++v) EXPECT_GE(g.Degree(v), 3u);
  // Preferential attachment produces a hub noticeably above the minimum.
  EXPECT_GT(g.MaxDegree(), 12u);
}

TEST(GeneratorsTest, RmatShapeAndDeterminism) {
  RmatOptions options;
  options.scale = 8;
  options.num_edges = 2000;
  options.seed = 21;
  const EdgeList a = GenerateRmat(options);
  const EdgeList b = GenerateRmat(options);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2000u);
  for (const RawEdge& e : a) {
    EXPECT_LT(e.u, 256u);
    EXPECT_LT(e.v, 256u);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(GeneratorsTest, ChungLuSkewedDegrees) {
  const CsrGraph g =
      BuildUndirectedGraph(GenerateChungLuPowerLaw(2000, 8000, 2.3, 7));
  const GraphStats stats = ComputeGraphStats(g);
  // Power-law: stddev well above the mean.
  EXPECT_GT(stats.degree_stddev, stats.avg_degree);
}

TEST(GeneratorsTest, PlantedCoreRaisesKmax) {
  PlantedCoreOptions planted;
  planted.core_size = 30;
  planted.core_density = 0.9;
  const EdgeList base = GenerateErdosRenyi(500, 700, 3);
  const CsrGraph with_core =
      BuildUndirectedGraph(OverlayPlantedCore(base, 500, planted, 4));
  // The planted community has min internal degree ~0.9*29 ~ 26.
  uint32_t high_degree = 0;
  for (VertexId v = 0; v < with_core.NumVertices(); ++v) {
    if (with_core.Degree(v) >= 20) ++high_degree;
  }
  EXPECT_GE(high_degree, 25u);
}

TEST(GeneratorsTest, HubGraphExtremeSkew) {
  HubGraphOptions options;
  options.num_vertices = 2000;
  options.num_hubs = 4;
  options.spokes_per_vertex = 2;
  options.background_edges = 500;
  const CsrGraph g = BuildUndirectedGraph(GenerateHubGraph(options, 8));
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_GT(stats.max_degree, 500u);
  EXPECT_GT(stats.degree_stddev, 5 * stats.avg_degree);
}

// ------------------------------------------------------------- Citation --

TEST(CitationTest, CorpusRespectsConfig) {
  CitationOptions options;
  options.num_papers = 500;
  options.num_authors = 200;
  options.seed = 3;
  const CitationCorpus corpus = GenerateCitationCorpus(options);
  ASSERT_EQ(corpus.papers.size(), 500u);
  uint32_t prev_year = 0;
  for (const Paper& p : corpus.papers) {
    EXPECT_GE(p.year, options.first_year);
    EXPECT_LE(p.year, options.last_year);
    EXPECT_GE(p.year, prev_year);  // years non-decreasing
    prev_year = p.year;
    EXPECT_GE(p.authors.size(), 1u);
    for (uint32_t a : p.authors) EXPECT_LT(a, options.num_authors);
  }
}

TEST(CitationTest, ReferencesPointBackward) {
  CitationOptions options;
  options.num_papers = 400;
  options.seed = 5;
  const CitationCorpus corpus = GenerateCitationCorpus(options);
  for (size_t p = 0; p < corpus.papers.size(); ++p) {
    for (uint32_t ref : corpus.papers[p].references) {
      ASSERT_LT(ref, p);
      EXPECT_LE(corpus.papers[ref].year, corpus.papers[p].year);
    }
  }
}

TEST(CitationTest, InteractionNetworkGrowsWithCutoff) {
  CitationOptions options;
  options.num_papers = 1000;
  options.seed = 7;
  const CitationCorpus corpus = GenerateCitationCorpus(options);
  const EdgeList early = BuildAuthorInteractionEdges(corpus, 1990);
  const EdgeList late = BuildAuthorInteractionEdges(corpus, 2000);
  EXPECT_LT(early.size(), late.size());
  EXPECT_GT(early.size(), 0u);
}

}  // namespace
}  // namespace kcore
