#include <vector>

#include <gtest/gtest.h>

#include "core/gpu_peel.h"
#include "core/multi_gpu_peel.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

class MultiGpuWorkerCountTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MultiGpuWorkerCountTest, MatchesOracleOnFullSuite) {
  MultiGpuOptions options;
  options.num_workers = GetParam();
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunMultiGpuPeel(g.graph, options);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle)
        << g.name << " workers=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MultiGpuWorkerCountTest,
                         ::testing::Values(1u, 2u, 3u, 7u));

TEST(MultiGpuTest, SimcheckCleanOnFullSuite) {
  // The workers peel through raw host pointers, so simcheck's coverage here
  // is allocation lifetimes + host copies (see DESIGN.md); the run must
  // still come back clean and correct.
  MultiGpuOptions options;
  options.worker_device.check_mode = true;
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunMultiGpuPeel(g.graph, options);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(MultiGpuTest, ZeroWorkersRejected) {
  MultiGpuOptions options;
  options.num_workers = 0;
  EXPECT_TRUE(RunMultiGpuPeel(testing::CliqueGraph(4).graph, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiGpuTest, PartitioningShrinksPerGpuFootprint) {
  // The §VII motivation: each GPU holds only its slice, so the per-device
  // peak drops as workers are added.
  const auto g = testing::RandomSuite()[3].graph;  // rmat
  MultiGpuOptions one;
  one.num_workers = 1;
  MultiGpuOptions four;
  four.num_workers = 4;
  auto single = RunMultiGpuPeel(g, one);
  auto multi = RunMultiGpuPeel(g, four);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_LT(multi->metrics.peak_device_bytes,
            single->metrics.peak_device_bytes);
}

TEST(MultiGpuTest, GraphTooBigForOneDeviceFitsOnFour) {
  const auto g = testing::RandomSuite()[2].graph;  // BA, 500 vertices
  MultiGpuOptions options;
  options.num_workers = 1;
  options.worker_device.global_mem_bytes = 16 << 10;  // 16 KB per GPU
  EXPECT_TRUE(RunMultiGpuPeel(g, options).status().IsOutOfMemory());
  options.num_workers = 8;
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, RunNaiveReference(g).core);
}

TEST(MultiGpuTest, BorderPropagationNeedsExtraSubRounds) {
  // A path spanning all partitions: the k=1 shell peels strictly through
  // partition borders, so sub-rounds must exceed rounds (§VII's observation
  // that one round may need several border synchronizations).
  const auto g = testing::PathGraph(64);
  MultiGpuOptions options;
  options.num_workers = 4;
  auto result = RunMultiGpuPeel(g.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->core, g.expected_core);
  EXPECT_GT(result->metrics.iterations, result->metrics.rounds);
}

TEST(MultiGpuTest, AgreesWithSingleGpuKernels) {
  const auto g = testing::RandomSuite()[4].graph;  // planted core
  auto single = RunGpuPeel(g);
  MultiGpuOptions options;
  options.num_workers = 5;
  auto multi = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single->core, multi->core);
  EXPECT_EQ(single->metrics.rounds, multi->metrics.rounds);
}

TEST(MultiGpuTest, MoreWorkersThanVertices) {
  const auto g = testing::CliqueGraph(3);
  MultiGpuOptions options;
  options.num_workers = 16;
  auto result = RunMultiGpuPeel(g.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->core, g.expected_core);
}

// ---------------------------------------------------- Fault injection -----

TEST(MultiGpuFaultTest, WorkerLossReshardsOntoSurvivors) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  MultiGpuOptions options;
  options.num_workers = 4;
  options.worker_fault_specs = {"", "device_lost@launch=3", "", ""};
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_EQ(result->metrics.devices_lost, 1u);
  // The interrupted round re-executes from the checkpoint on the survivors.
  EXPECT_GE(result->metrics.levels_reexecuted, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(MultiGpuFaultTest, SequentialLossesKeepResharding) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  MultiGpuOptions options;
  options.num_workers = 4;
  options.worker_fault_specs = {"device_lost@launch=5", "device_lost@launch=2",
                                "", ""};
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_EQ(result->metrics.devices_lost, 2u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(MultiGpuFaultTest, AllWorkersLostFallsBackToCpu) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  MultiGpuOptions options;
  options.num_workers = 2;
  options.worker_fault_specs = {"device_lost@launch=2",
                                "device_lost@launch=2"};
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_TRUE(result->metrics.degraded);
  EXPECT_EQ(result->metrics.devices_lost, 2u);
  EXPECT_GE(result->metrics.cpu_fallback_levels, 1u);
}

TEST(MultiGpuFaultTest, SetupAllocFailureStartsWorkerDead) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  MultiGpuOptions options;
  options.num_workers = 3;
  options.worker_fault_specs = {"alloc_fail@1"};
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_EQ(result->metrics.devices_lost, 1u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(MultiGpuFaultTest, TransientCopyFailuresAreRetried) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  MultiGpuOptions options;
  options.num_workers = 3;
  options.worker_fault_specs = {"copy_fail@2", "copy_fail@1"};
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.retries, 2u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(MultiGpuFaultTest, BitflipIsDetectedAndRolledBack) {
  const auto g = testing::RandomSuite()[0].graph;
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  MultiGpuOptions options;
  options.num_workers = 4;
  options.worker_fault_specs = {"bitflip:launch=2,word=0,bit=3"};
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, oracle);
  EXPECT_GE(result->metrics.levels_reexecuted, 1u);
  EXPECT_GT(result->metrics.checkpoints_taken, 0u);
  EXPECT_FALSE(result->metrics.degraded);
}

TEST(MultiGpuFaultTest, FallbackDisabledSurfacesTotalLoss) {
  const auto g = testing::RandomSuite()[0].graph;
  MultiGpuOptions options;
  options.num_workers = 2;
  options.resilience.cpu_fallback = false;
  options.worker_fault_specs = {"device_lost@launch=1",
                                "device_lost@launch=1"};
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviceLost()) << result.status().ToString();
}

TEST(MultiGpuFaultTest, ResilienceDisabledSurfacesFirstFault) {
  const auto g = testing::CliqueGraph(8).graph;
  MultiGpuOptions options;
  options.num_workers = 2;
  options.resilience.enabled = false;
  options.worker_fault_specs = {"copy_fail@1"};
  auto result = RunMultiGpuPeel(g, options);
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
}

TEST(MultiGpuFaultTest, NoFaultPlanTakesNoCheckpoints) {
  MultiGpuOptions options;
  options.num_workers = 3;
  auto result = RunMultiGpuPeel(testing::CliqueGraph(10).graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.checkpoints_taken, 0u);
  EXPECT_EQ(result->metrics.retries, 0u);
  EXPECT_EQ(result->metrics.devices_lost, 0u);
  EXPECT_FALSE(result->metrics.degraded);
}

}  // namespace
}  // namespace kcore
