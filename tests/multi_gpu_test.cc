#include <vector>

#include <gtest/gtest.h>

#include "core/gpu_peel.h"
#include "core/multi_gpu_peel.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

class MultiGpuWorkerCountTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MultiGpuWorkerCountTest, MatchesOracleOnFullSuite) {
  MultiGpuOptions options;
  options.num_workers = GetParam();
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunMultiGpuPeel(g.graph, options);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle)
        << g.name << " workers=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, MultiGpuWorkerCountTest,
                         ::testing::Values(1u, 2u, 3u, 7u));

TEST(MultiGpuTest, SimcheckCleanOnFullSuite) {
  // The workers peel through raw host pointers, so simcheck's coverage here
  // is allocation lifetimes + host copies (see DESIGN.md); the run must
  // still come back clean and correct.
  MultiGpuOptions options;
  options.worker_device.check_mode = true;
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunMultiGpuPeel(g.graph, options);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(MultiGpuTest, ZeroWorkersRejected) {
  MultiGpuOptions options;
  options.num_workers = 0;
  EXPECT_TRUE(RunMultiGpuPeel(testing::CliqueGraph(4).graph, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiGpuTest, PartitioningShrinksPerGpuFootprint) {
  // The §VII motivation: each GPU holds only its slice, so the per-device
  // peak drops as workers are added.
  const auto g = testing::RandomSuite()[3].graph;  // rmat
  MultiGpuOptions one;
  one.num_workers = 1;
  MultiGpuOptions four;
  four.num_workers = 4;
  auto single = RunMultiGpuPeel(g, one);
  auto multi = RunMultiGpuPeel(g, four);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_LT(multi->metrics.peak_device_bytes,
            single->metrics.peak_device_bytes);
}

TEST(MultiGpuTest, GraphTooBigForOneDeviceFitsOnFour) {
  const auto g = testing::RandomSuite()[2].graph;  // BA, 500 vertices
  MultiGpuOptions options;
  options.num_workers = 1;
  options.worker_device.global_mem_bytes = 16 << 10;  // 16 KB per GPU
  EXPECT_TRUE(RunMultiGpuPeel(g, options).status().IsOutOfMemory());
  options.num_workers = 8;
  auto result = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->core, RunNaiveReference(g).core);
}

TEST(MultiGpuTest, BorderPropagationNeedsExtraSubRounds) {
  // A path spanning all partitions: the k=1 shell peels strictly through
  // partition borders, so sub-rounds must exceed rounds (§VII's observation
  // that one round may need several border synchronizations).
  const auto g = testing::PathGraph(64);
  MultiGpuOptions options;
  options.num_workers = 4;
  auto result = RunMultiGpuPeel(g.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->core, g.expected_core);
  EXPECT_GT(result->metrics.iterations, result->metrics.rounds);
}

TEST(MultiGpuTest, AgreesWithSingleGpuKernels) {
  const auto g = testing::RandomSuite()[4].graph;  // planted core
  auto single = RunGpuPeel(g);
  MultiGpuOptions options;
  options.num_workers = 5;
  auto multi = RunMultiGpuPeel(g, options);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(single->core, multi->core);
  EXPECT_EQ(single->metrics.rounds, multi->metrics.rounds);
}

TEST(MultiGpuTest, MoreWorkersThanVertices) {
  const auto g = testing::CliqueGraph(3);
  MultiGpuOptions options;
  options.num_workers = 16;
  auto result = RunMultiGpuPeel(g.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->core, g.expected_core);
}

}  // namespace
}  // namespace kcore
