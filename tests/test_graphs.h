#ifndef KCORE_TESTS_TEST_GRAPHS_H_
#define KCORE_TESTS_TEST_GRAPHS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "generators/generators.h"
#include "graph/csr_graph.h"
#include "graph/graph_builder.h"

namespace kcore::testing {

/// A named graph with its expected core numbers (empty when the expectation
/// is "agree with the oracle" rather than a hand-computed vector).
struct NamedGraph {
  std::string name;
  CsrGraph graph;
  std::vector<uint32_t> expected_core;  // may be empty
};

/// The example graph of the paper's Fig. 1 / Fig. 2: a 3-core (red K4-ish
/// cluster), a 2-shell ring around it, and 1-shell pendants. Hand-labeled
/// core numbers.
inline NamedGraph PaperFigureGraph() {
  // Vertices 0-3: dense 3-core (K4). Vertices 4-6: 2-shell triangle hanging
  // off vertex 0 (A-like: degree 3 but core 2). Vertices 7-8: 1-shell tail.
  EdgeList edges = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},  // K4
      {0, 4}, {4, 5}, {5, 6}, {6, 4},                  // triangle + bridge
      {5, 7}, {7, 8},                                  // pendant path
  };
  NamedGraph g;
  g.name = "paper_figure";
  g.graph = BuildUndirectedGraph(edges);
  g.expected_core = {3, 3, 3, 3, 2, 2, 2, 1, 1};
  return g;
}

inline NamedGraph CliqueGraph(uint32_t n) {
  EdgeList edges;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  NamedGraph g;
  g.name = "clique" + std::to_string(n);
  g.graph = BuildUndirectedGraph(edges);
  g.expected_core.assign(n, n - 1);
  return g;
}

inline NamedGraph CycleGraph(uint32_t n) {
  EdgeList edges;
  for (uint32_t i = 0; i < n; ++i) edges.push_back({i, (i + 1) % n});
  NamedGraph g;
  g.name = "cycle" + std::to_string(n);
  g.graph = BuildUndirectedGraph(edges);
  g.expected_core.assign(n, 2);
  return g;
}

inline NamedGraph StarGraph(uint32_t leaves) {
  EdgeList edges;
  for (uint32_t i = 1; i <= leaves; ++i) edges.push_back({0, i});
  NamedGraph g;
  g.name = "star" + std::to_string(leaves);
  g.graph = BuildUndirectedGraph(edges);
  g.expected_core.assign(leaves + 1, 1);
  return g;
}

inline NamedGraph PathGraph(uint32_t n) {
  EdgeList edges;
  for (uint32_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  NamedGraph g;
  g.name = "path" + std::to_string(n);
  g.graph = BuildUndirectedGraph(edges);
  g.expected_core.assign(n, 1);
  return g;
}

/// Two cliques joined by a single edge: distinct shells per component.
inline NamedGraph TwoCliquesGraph(uint32_t a, uint32_t b) {
  EdgeList edges;
  for (uint32_t i = 0; i < a; ++i) {
    for (uint32_t j = i + 1; j < a; ++j) edges.push_back({i, j});
  }
  for (uint32_t i = 0; i < b; ++i) {
    for (uint32_t j = i + 1; j < b; ++j) edges.push_back({a + i, a + j});
  }
  edges.push_back({0, a});
  NamedGraph g;
  g.name = "cliques" + std::to_string(a) + "_" + std::to_string(b);
  g.graph = BuildUndirectedGraph(edges);
  g.expected_core.reserve(a + b);
  for (uint32_t i = 0; i < a; ++i) g.expected_core.push_back(a - 1);
  for (uint32_t i = 0; i < b; ++i) g.expected_core.push_back(b - 1);
  return g;
}

/// Graph with isolated vertices (core 0) mixed in.
inline NamedGraph WithIsolatedVertices() {
  EdgeList edges = {{1, 3}, {3, 5}, {5, 1}};  // triangle on odd vertices
  NamedGraph g;
  g.name = "isolated";
  g.graph = BuildUndirectedGraphWithVertexCount(edges, 7);
  g.expected_core = {0, 2, 0, 2, 0, 2, 0};
  return g;
}

/// Deterministic random graphs of assorted shapes (no expected vector; test
/// against the oracle).
inline std::vector<NamedGraph> RandomSuite() {
  std::vector<NamedGraph> suite;
  {
    NamedGraph g;
    g.name = "er_small";
    g.graph = BuildUndirectedGraph(GenerateErdosRenyi(200, 600, 7));
    suite.push_back(std::move(g));
  }
  {
    NamedGraph g;
    g.name = "er_dense";
    g.graph = BuildUndirectedGraph(GenerateErdosRenyi(120, 2500, 11));
    suite.push_back(std::move(g));
  }
  {
    NamedGraph g;
    g.name = "ba";
    g.graph = BuildUndirectedGraph(GenerateBarabasiAlbert(500, 4, 13));
    suite.push_back(std::move(g));
  }
  {
    RmatOptions rmat;
    rmat.scale = 10;
    rmat.num_edges = 6000;
    rmat.seed = 17;
    NamedGraph g;
    g.name = "rmat";
    g.graph = BuildUndirectedGraph(GenerateRmat(rmat));
    suite.push_back(std::move(g));
  }
  {
    PlantedCoreOptions planted;
    planted.core_size = 24;
    planted.core_density = 0.8;
    NamedGraph g;
    g.name = "planted";
    g.graph = BuildUndirectedGraph(OverlayPlantedCore(
        GenerateErdosRenyi(400, 800, 19), 400, planted, 23));
    suite.push_back(std::move(g));
  }
  {
    HubGraphOptions hub;
    hub.num_vertices = 600;
    hub.num_hubs = 5;
    hub.spokes_per_vertex = 2;
    hub.background_edges = 300;
    NamedGraph g;
    g.name = "hub";
    g.graph = BuildUndirectedGraph(GenerateHubGraph(hub, 29));
    suite.push_back(std::move(g));
  }
  return suite;
}

/// Everything: hand-labeled structures + the random suite.
inline std::vector<NamedGraph> FullSuite() {
  std::vector<NamedGraph> suite;
  suite.push_back(PaperFigureGraph());
  suite.push_back(CliqueGraph(6));
  suite.push_back(CycleGraph(10));
  suite.push_back(StarGraph(12));
  suite.push_back(PathGraph(9));
  suite.push_back(TwoCliquesGraph(5, 8));
  suite.push_back(WithIsolatedVertices());
  for (auto& g : RandomSuite()) suite.push_back(std::move(g));
  return suite;
}

}  // namespace kcore::testing

#endif  // KCORE_TESTS_TEST_GRAPHS_H_
