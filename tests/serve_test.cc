// Tests for the serving layer (src/serve): the unified Engine interface,
// the KcoreServer loop (admission, backpressure, priorities, breaker,
// cancellation, drain) and the chaos-soak harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "cpu/bz.h"
#include "graph/edge_update.h"
#include "cpu/xiang.h"
#include "perf/trace.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "serve/soak.h"
#include "test_graphs.h"

namespace kcore {
namespace {

CsrGraph SoakGraph() { return testing::RandomSuite()[0].graph; }  // er_small

// ---------------------------------------------------------------- engines

TEST(EngineTest, KindNamesRoundTrip) {
  for (EngineKind kind :
       {EngineKind::kGpu, EngineKind::kMultiGpu, EngineKind::kCluster,
        EngineKind::kVetga, EngineKind::kBz, EngineKind::kPkc,
        EngineKind::kPark, EngineKind::kMpm}) {
    EngineKind parsed;
    ASSERT_TRUE(ParseEngineKind(EngineKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  EngineKind parsed;
  EXPECT_FALSE(ParseEngineKind("warp-drive", &parsed));
}

TEST(EngineTest, EveryKindMatchesBzOracle) {
  const auto named = testing::PaperFigureGraph();
  const DecomposeResult oracle = RunBz(named.graph);
  for (EngineKind kind :
       {EngineKind::kGpu, EngineKind::kMultiGpu, EngineKind::kCluster,
        EngineKind::kVetga, EngineKind::kBz, EngineKind::kPkc,
        EngineKind::kPark, EngineKind::kMpm}) {
    auto engine = MakeEngine(kind);
    auto result = engine->Decompose(named.graph, {});
    ASSERT_TRUE(result.ok()) << engine->name() << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->core, oracle.core) << engine->name();
  }
}

TEST(EngineTest, SingleKMatchesOracleOnGpuAndCpu) {
  const CsrGraph graph = SoakGraph();
  const DecomposeResult oracle = RunBz(graph);
  for (EngineKind kind : {EngineKind::kGpu, EngineKind::kBz}) {
    auto engine = MakeEngine(kind);
    for (uint32_t k = 1; k <= oracle.MaxCore() + 1; ++k) {
      auto result = engine->SingleK(graph, k, {});
      ASSERT_TRUE(result.ok()) << engine->name();
      for (VertexId v = 0; v < graph.NumVertices(); ++v) {
        EXPECT_EQ(result->in_core[v] != 0, oracle.core[v] >= k)
            << engine->name() << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(EngineTest, SingleKRejectsKZero) {
  auto engine = MakeEngine(EngineKind::kBz);
  auto result = engine->SingleK(SoakGraph(), 0, {});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(EngineTest, HealthCheckReportsDeviceLossFromFaultPlan) {
  EngineConfig config;
  config.device.fault_spec = "device_lost@launch=1";
  auto engine = MakeEngine(EngineKind::kGpu, std::move(config));
  EXPECT_TRUE(engine->HealthCheck({}).IsDeviceLost());
  EXPECT_TRUE(MakeEngine(EngineKind::kGpu)->HealthCheck({}).ok());
  EXPECT_TRUE(MakeEngine(EngineKind::kBz)->HealthCheck({}).ok());
}

// Deadline-at-round-boundary contract, asserted via simprof spans: after
// the engine marks the expiry, not one more kernel runs — the device is
// released within one peel round.
TEST(EngineTest, ExpiredDeadlineStopsKernelsAtRoundBoundary) {
  const CsrGraph graph = SoakGraph();
  CancelContext cancel;
  cancel.deadline = Deadline::AfterMillis(0);
  Trace trace;
  EngineRunContext ctx;
  ctx.cancel = &cancel;
  ctx.trace = &trace;
  auto result = MakeEngine(EngineKind::kGpu)->Decompose(graph, ctx);
  ASSERT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();

  double mark_ts = -1.0;
  for (const TraceEvent& event : trace.events()) {
    if (event.name.rfind("deadline_exceeded", 0) == 0) mark_ts = event.ts_ns;
  }
  ASSERT_GE(mark_ts, 0.0) << "engine did not mark the expiry in the trace";
  for (const TraceEvent& event : trace.events()) {
    if (event.cat == kTraceCatKernel) {
      EXPECT_LE(event.ts_ns, mark_ts)
          << "kernel span '" << event.name
          << "' launched after the deadline mark";
    }
  }
}

TEST(EngineTest, PreCancelledTokenStopsRun) {
  CancelToken token;
  token.Cancel();
  CancelContext cancel;
  cancel.token = &token;
  EngineRunContext ctx;
  ctx.cancel = &cancel;
  for (EngineKind kind :
       {EngineKind::kGpu, EngineKind::kMultiGpu, EngineKind::kVetga,
        EngineKind::kBz}) {
    auto result = MakeEngine(kind)->Decompose(SoakGraph(), ctx);
    EXPECT_TRUE(result.status().IsCancelled()) << EngineKindName(kind);
  }
}

// ----------------------------------------------------------------- server

TEST(ServerTest, AnswersAllRequestTypes) {
  const CsrGraph graph = SoakGraph();
  const DecomposeResult oracle = RunBz(graph);
  KcoreServer server(graph);

  ServeRequest full;
  full.type = RequestType::kFullDecompose;
  auto full_response = server.Submit(full).get();
  ASSERT_TRUE(full_response.status.ok());
  EXPECT_EQ(full_response.core, oracle.core);
  EXPECT_GT(full_response.metrics.sequence, 0u);

  ServeRequest single;
  single.type = RequestType::kSingleK;
  single.k = 2;
  auto single_response = server.Submit(single).get();
  ASSERT_TRUE(single_response.status.ok());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(single_response.single_k.in_core[v] != 0, oracle.core[v] >= 2);
  }

  ServeRequest point;
  point.type = RequestType::kCoreOf;
  point.v = 7;
  auto point_response = server.Submit(point).get();
  ASSERT_TRUE(point_response.status.ok());
  EXPECT_EQ(point_response.core_of, oracle.core[7]);
  // The full decompose warmed the cache; the point query must not have
  // re-run an engine.
  EXPECT_TRUE(point_response.metrics.cache_hit);

  ServeRequest top;
  top.type = RequestType::kTopK;
  top.limit = 5;
  auto top_response = server.Submit(top).get();
  ASSERT_TRUE(top_response.status.ok());
  ASSERT_EQ(top_response.top.size(), 5u);
  for (size_t i = 1; i < top_response.top.size(); ++i) {
    EXPECT_GE(top_response.top[i - 1].second, top_response.top[i].second);
  }
  for (const auto& [v, c] : top_response.top) {
    EXPECT_EQ(c, oracle.core[v]);
  }

  ServeRequest bad;
  bad.type = RequestType::kCoreOf;
  bad.v = graph.NumVertices() + 3;
  EXPECT_TRUE(server.Submit(bad).get().status.IsInvalidArgument());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(ServerTest, ColdPointQueryWarmsCacheOnce) {
  KcoreServer server(SoakGraph());
  ServeRequest point;
  point.type = RequestType::kCoreOf;
  point.v = 0;
  auto cold = server.Submit(point).get();
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.metrics.cache_hit);  // paid the decomposition
  auto warm = server.Submit(point).get();
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.metrics.cache_hit);
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST(ServerTest, ShedsWhenHeavyQueueFullAndNothingIsDropped) {
  ServerOptions options;
  options.start_paused = true;
  options.heavy_queue_capacity = 2;
  KcoreServer server(SoakGraph(), options);

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    ServeRequest request;
    request.type = RequestType::kFullDecompose;
    futures.push_back(server.Submit(request));
  }
  // Paused runner: 2 admitted, 3 shed immediately with a backoff hint.
  int shed = 0;
  for (int i = 2; i < 5; ++i) {
    auto response = futures[static_cast<size_t>(i)].get();
    EXPECT_TRUE(response.status.IsResourceExhausted());
    EXPECT_TRUE(response.metrics.shed);
    EXPECT_GT(response.metrics.retry_after_ms, 0.0);
    ++shed;
  }
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(server.stats().shed, 3u);
  // Shutdown drains the two admitted requests: both resolve OK.
  ASSERT_TRUE(server.Shutdown().ok());
  EXPECT_TRUE(futures[0].get().status.ok());
  EXPECT_TRUE(futures[1].get().status.ok());
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(ServerTest, PointQueriesDispatchBeforeEarlierHeavyWork) {
  ServerOptions options;
  options.start_paused = true;
  KcoreServer server(SoakGraph(), options);
  ServeRequest heavy;
  heavy.type = RequestType::kFullDecompose;
  auto heavy_future = server.Submit(heavy);
  ServeRequest point;
  point.type = RequestType::kCoreOf;
  point.v = 1;
  auto point_future = server.Submit(point);
  server.Resume();
  const auto heavy_response = heavy_future.get();
  const auto point_response = point_future.get();
  ASSERT_TRUE(heavy_response.status.ok());
  ASSERT_TRUE(point_response.status.ok());
  // The point query was admitted second but ran first.
  EXPECT_GT(point_response.metrics.sequence,
            heavy_response.metrics.sequence);
  EXPECT_LT(point_response.metrics.run_order,
            heavy_response.metrics.run_order);
}

TEST(ServerTest, HeavyWorkIsNotStarvedByPointBursts) {
  ServerOptions options;
  options.start_paused = true;
  options.point_burst_limit = 2;
  KcoreServer server(SoakGraph(), options);
  ServeRequest heavy;
  heavy.type = RequestType::kFullDecompose;
  auto heavy_future = server.Submit(heavy);
  std::vector<std::future<ServeResponse>> points;
  for (int i = 0; i < 10; ++i) {
    ServeRequest point;
    point.type = RequestType::kCoreOf;
    point.v = static_cast<VertexId>(i);
    points.push_back(server.Submit(point));
  }
  server.Resume();
  const auto heavy_response = heavy_future.get();
  for (auto& future : points) ASSERT_TRUE(future.get().status.ok());
  ASSERT_TRUE(heavy_response.status.ok());
  // At most point_burst_limit point dispatches may precede the heavy one.
  EXPECT_LE(heavy_response.metrics.run_order, 3u);
}

TEST(ServerTest, BreakerTripsOnRepeatedDeviceLossAndAnswersDegraded) {
  const CsrGraph graph = SoakGraph();
  const DecomposeResult oracle = RunBz(graph);
  ServerOptions options;
  options.breaker_trip_threshold = 2;
  options.breaker_cooldown_requests = 100;  // stay open for this test
  options.engine_config.device.fault_spec = "device_lost@launch=1";
  KcoreServer server(graph, options);

  for (int i = 0; i < 4; ++i) {
    ServeRequest request;
    request.type = RequestType::kFullDecompose;
    auto response = server.Submit(request).get();
    ASSERT_TRUE(response.status.ok()) << "request " << i;
    EXPECT_EQ(response.core, oracle.core) << "request " << i;
    EXPECT_TRUE(response.metrics.degraded) << "request " << i;
    if (i < 2) {
      // Primary attempted and died; the request retried on the CPU.
      EXPECT_EQ(response.metrics.retries, 1u) << "request " << i;
    } else {
      // Breaker open: routed straight to the CPU, no wasted GPU run.
      EXPECT_EQ(response.metrics.retries, 0u) << "request " << i;
      EXPECT_EQ(response.metrics.breaker, BreakerState::kOpen);
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker, BreakerState::kOpen);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.gpu_attempts, 2u);
  EXPECT_EQ(stats.gpu_failures, 2u);
  EXPECT_EQ(stats.degraded, 4u);
}

TEST(ServerTest, BreakerRecoversThroughHalfOpenProbe) {
  const CsrGraph graph = SoakGraph();
  ServerOptions options;
  options.breaker_trip_threshold = 2;
  options.breaker_cooldown_requests = 2;
  // Scripted engine pool health: the first two primary attempts hit a dead
  // device, every later one is healthy.
  options.fault_plan_fn = [](uint64_t attempt) {
    return attempt < 2 ? std::string("device_lost@launch=1") : std::string();
  };
  KcoreServer server(graph, options);

  std::vector<ServeResponse> responses;
  for (int i = 0; i < 4; ++i) {
    ServeRequest request;
    request.type = RequestType::kFullDecompose;
    responses.push_back(server.Submit(request).get());
    ASSERT_TRUE(responses.back().status.ok()) << "request " << i;
  }
  // 0: primary dies (consecutive=1) -> CPU. 1: primary dies -> trips open
  // -> CPU (cooldown 1/2). 2: open -> CPU (cooldown 2/2 -> half-open).
  // 3: half-open probe passes, runs on the recovered primary.
  EXPECT_TRUE(responses[0].metrics.degraded);
  EXPECT_TRUE(responses[1].metrics.degraded);
  EXPECT_TRUE(responses[2].metrics.degraded);
  EXPECT_FALSE(responses[3].metrics.degraded);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker, BreakerState::kClosed);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.breaker_recoveries, 1u);
}

TEST(ServerTest, CancelledWhileQueuedAnswersCancelledWithoutRunning) {
  ServerOptions options;
  options.start_paused = true;
  KcoreServer server(SoakGraph(), options);
  CancelToken token;
  ServeRequest request;
  request.type = RequestType::kFullDecompose;
  request.cancel = &token;
  auto future = server.Submit(request);
  token.Cancel();
  server.Resume();
  const auto response = future.get();
  EXPECT_TRUE(response.status.IsCancelled());
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(ServerTest, ExpiredDeadlineThroughServerLeavesNoKernelAfterMark) {
  KcoreServer server(SoakGraph());
  Trace trace;
  ServeRequest request;
  request.type = RequestType::kFullDecompose;
  request.deadline = Deadline::AfterMillis(0.05);
  request.trace = &trace;
  const auto response = server.Submit(request).get();
  if (!response.status.IsDeadlineExceeded()) {
    // The run beat the deadline (possible on a fast machine with an empty
    // queue); nothing to assert about interruption then.
    ASSERT_TRUE(response.status.ok());
    return;
  }
  double mark_ts = -1.0;
  for (const TraceEvent& event : trace.events()) {
    if (event.name.rfind("deadline_exceeded", 0) == 0) mark_ts = event.ts_ns;
  }
  // The request may also have expired while queued, before any engine ran;
  // only a run that started must have marked its interruption.
  if (trace.events().empty()) return;
  ASSERT_GE(mark_ts, 0.0);
  for (const TraceEvent& event : trace.events()) {
    if (event.cat == kTraceCatKernel) {
      EXPECT_LE(event.ts_ns, mark_ts);
    }
  }
}

TEST(ServerTest, MidRunCancellationResolvesAndStopsKernels) {
  KcoreServer server(SoakGraph());
  CancelToken token;
  Trace trace;
  ServeRequest request;
  request.type = RequestType::kFullDecompose;
  request.cancel = &token;
  request.trace = &trace;
  auto future = server.Submit(request);
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  token.Cancel();
  const auto response = future.get();
  // Race by design: the run either finished first (OK) or was cut at the
  // next round boundary (Cancelled). Both must resolve; a cancelled run
  // must not launch kernels past its mark.
  if (response.status.IsCancelled()) {
    double mark_ts = -1.0;
    for (const TraceEvent& event : trace.events()) {
      if (event.name.rfind("cancelled", 0) == 0) mark_ts = event.ts_ns;
    }
    if (mark_ts >= 0.0) {
      for (const TraceEvent& event : trace.events()) {
        if (event.cat == kTraceCatKernel) {
          EXPECT_LE(event.ts_ns, mark_ts);
        }
      }
    }
  } else {
    EXPECT_TRUE(response.status.ok());
  }
}

TEST(ServerTest, ShutdownDrainsEveryQueuedRequest) {
  ServerOptions options;
  options.start_paused = true;
  KcoreServer server(SoakGraph(), options);
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    ServeRequest request;
    request.type =
        i % 2 == 0 ? RequestType::kCoreOf : RequestType::kSingleK;
    request.v = static_cast<VertexId>(i);
    request.k = 2;
    futures.push_back(server.Submit(request));
  }
  ASSERT_TRUE(server.Shutdown().ok());
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(server.stats().completed, 6u);
  // Idempotent second shutdown.
  EXPECT_TRUE(server.Shutdown().IsFailedPrecondition());
}

TEST(ServerTest, SubmitAfterShutdownIsRejectedNotDropped) {
  KcoreServer server(SoakGraph());
  ASSERT_TRUE(server.Shutdown().ok());
  ServeRequest request;
  request.type = RequestType::kCoreOf;
  const auto response = server.Submit(request).get();
  EXPECT_TRUE(response.status.IsFailedPrecondition());
  EXPECT_EQ(server.stats().rejected, 1u);
}

// ---------------------------------------------------------------- updates

std::set<std::pair<VertexId, VertexId>> EdgeSet(const CsrGraph& g) {
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : g.Neighbors(v)) {
      if (v < u) edges.insert({v, u});
    }
  }
  return edges;
}

CsrGraph GraphOf(const std::set<std::pair<VertexId, VertexId>>& edges,
                 VertexId n) {
  EdgeList list;
  list.reserve(edges.size());
  for (const auto& [u, v] : edges) list.push_back({u, v});
  return BuildUndirectedGraphWithVertexCount(list, n);
}

std::pair<VertexId, VertexId> FindAbsentPair(
    const std::set<std::pair<VertexId, VertexId>>& edges, VertexId n,
    uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    const auto a = static_cast<VertexId>(rng.UniformInt(n));
    const auto b = static_cast<VertexId>(rng.UniformInt(n));
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (edges.count({key.first, key.second}) == 0) return key;
  }
}

TEST(ServerTest, UpdatesRefreshCacheAndAllReadPathsServeTheNewGraph) {
  // The staleness regression this PR guards against: a warm cached
  // decomposition must never answer a point query for a graph that an
  // update batch has since replaced.
  const CsrGraph graph = SoakGraph();
  KcoreServer server(graph);

  ServeRequest full;
  full.type = RequestType::kFullDecompose;
  ASSERT_TRUE(server.Submit(full).get().status.ok());  // warm the cache

  auto edges = EdgeSet(graph);
  const std::vector<uint32_t> before = RunBz(graph).core;
  const auto [a, b] = FindAbsentPair(edges, graph.NumVertices(), 3);
  const VertexId ru = 0;
  const VertexId rv = graph.Neighbors(0)[0];

  ServeRequest update;
  update.type = RequestType::kApplyUpdates;
  update.updates = {EdgeUpdate::Insert(a, b), EdgeUpdate::Remove(ru, rv)};
  auto uresp = server.Submit(update).get();
  ASSERT_TRUE(uresp.status.ok()) << uresp.status.ToString();

  edges.insert(std::minmax(a, b));
  edges.erase(std::minmax(ru, rv));
  const std::vector<uint32_t> oracle =
      RunBz(GraphOf(edges, graph.NumVertices())).core;
  EXPECT_EQ(uresp.core, oracle);
  EXPECT_EQ(uresp.update_epoch, 1u);
  std::vector<VertexId> expect_changed;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (before[v] != oracle[v]) expect_changed.push_back(v);
  }
  EXPECT_EQ(uresp.update_changed, expect_changed);

  // Point query: must answer from the NEW graph, and from cache — the
  // committed batch refreshed the snapshot without a re-decomposition.
  ServeRequest point;
  point.type = RequestType::kCoreOf;
  point.v = expect_changed.empty() ? 0 : expect_changed[0];
  auto presp = server.Submit(point).get();
  ASSERT_TRUE(presp.status.ok());
  EXPECT_EQ(presp.core_of, oracle[point.v]);
  EXPECT_TRUE(presp.metrics.cache_hit);

  // Heavy reads decompose the updated serving graph, not the original.
  auto fresp = server.Submit(full).get();
  ASSERT_TRUE(fresp.status.ok());
  EXPECT_EQ(fresp.core, oracle);

  ServeRequest single;
  single.type = RequestType::kSingleK;
  single.k = 2;
  auto sresp = server.Submit(single).get();
  ASSERT_TRUE(sresp.status.ok());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(sresp.single_k.in_core[v] != 0, oracle[v] >= 2) << v;
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.update_edges, 2u);
  EXPECT_EQ(stats.graph_epoch, 1u);
}

TEST(ServerTest, UpdateQueueShedsWhenFullAndDrainsOnShutdown) {
  const CsrGraph graph = SoakGraph();
  ServerOptions options;
  options.start_paused = true;
  options.update_queue_capacity = 1;
  KcoreServer server(graph, options);

  const auto edges = EdgeSet(graph);
  const auto [a, b] = FindAbsentPair(edges, graph.NumVertices(), 5);
  ServeRequest update;
  update.type = RequestType::kApplyUpdates;
  update.updates = {EdgeUpdate::Insert(a, b)};

  auto admitted = server.Submit(update);
  std::vector<std::future<ServeResponse>> shed;
  shed.push_back(server.Submit(update));
  shed.push_back(server.Submit(update));
  for (auto& f : shed) {
    auto response = f.get();
    EXPECT_TRUE(response.status.IsResourceExhausted());
    EXPECT_TRUE(response.metrics.shed);
    EXPECT_GT(response.metrics.retry_after_ms, 0.0);
  }
  EXPECT_EQ(server.stats().shed, 2u);

  // Shutdown drains the admitted update; it commits, nothing is dropped.
  ASSERT_TRUE(server.Shutdown().ok());
  auto response = admitted.get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.update_epoch, 1u);
  auto with_edge = edges;
  with_edge.insert({a, b});
  EXPECT_EQ(response.core, RunBz(GraphOf(with_edge,
                                         graph.NumVertices())).core);
}

TEST(ServerTest, UpdatesDegradeExactViaHostPathWhenDeviceLost) {
  // Device loss on every GPU batch: the first update trips the breaker and
  // retries on the SAME engine's host path; later updates route straight to
  // it. Every committed answer must still bit-match the oracle, and the
  // epoch history must stay linear across the degradation.
  const CsrGraph graph = SoakGraph();
  ServerOptions options;
  options.breaker_trip_threshold = 1;
  options.breaker_cooldown_requests = 100;  // stay open for this test
  options.engine_config.device.fault_spec = "device_lost@launch=1";
  KcoreServer server(graph, options);

  auto edges = EdgeSet(graph);
  for (uint64_t i = 0; i < 3; ++i) {
    const auto [a, b] = FindAbsentPair(edges, graph.NumVertices(), 40 + i);
    ServeRequest update;
    update.type = RequestType::kApplyUpdates;
    update.updates = {EdgeUpdate::Insert(a, b)};
    auto response = server.Submit(update).get();
    ASSERT_TRUE(response.status.ok()) << "update " << i << ": "
                                      << response.status.ToString();
    EXPECT_TRUE(response.metrics.degraded) << "update " << i;
    EXPECT_EQ(response.update_epoch, i + 1) << "update " << i;
    if (i == 0) {
      EXPECT_EQ(response.metrics.retries, 1u);  // primary attempted, died
    } else {
      EXPECT_EQ(response.metrics.retries, 0u);  // breaker open: host direct
      EXPECT_EQ(response.metrics.breaker, BreakerState::kOpen);
    }
    edges.insert({a, b});
    EXPECT_EQ(response.core,
              RunBz(GraphOf(edges, graph.NumVertices())).core)
        << "update " << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker, BreakerState::kOpen);
  EXPECT_EQ(stats.updates_applied, 3u);
  EXPECT_EQ(stats.graph_epoch, 3u);
}

TEST(ServerTest, InvalidUpdateBatchFailsWithoutTrippingBreakerOrEpoch) {
  // Validation rejections are the CALLER's fault on any engine: they must
  // surface unchanged, leave the committed epoch alone, and not count as
  // primary-engine failures toward the breaker.
  const CsrGraph graph = SoakGraph();
  KcoreServer server(graph);

  ServeRequest bad;
  bad.type = RequestType::kApplyUpdates;
  bad.updates = {EdgeUpdate::Insert(0, graph.Neighbors(0)[0])};  // present
  auto response = server.Submit(bad).get();
  EXPECT_TRUE(response.status.IsFailedPrecondition())
      << response.status.ToString();

  ServeRequest absent;
  absent.type = RequestType::kApplyUpdates;
  absent.updates = {EdgeUpdate::Remove(
      FindAbsentPair(EdgeSet(graph), graph.NumVertices(), 9).first,
      FindAbsentPair(EdgeSet(graph), graph.NumVertices(), 9).second)};
  EXPECT_TRUE(server.Submit(absent).get().status.IsNotFound());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker, BreakerState::kClosed);
  EXPECT_EQ(stats.breaker_trips, 0u);
  EXPECT_EQ(stats.updates_applied, 0u);
  EXPECT_EQ(stats.graph_epoch, 0u);
  EXPECT_EQ(stats.failed, 2u);

  // The graph is untouched: a fresh read still matches the original oracle.
  ServeRequest full;
  full.type = RequestType::kFullDecompose;
  auto fresp = server.Submit(full).get();
  ASSERT_TRUE(fresp.status.ok());
  EXPECT_EQ(fresp.core, RunBz(graph).core);
}

TEST(ServerTest, UpdatesRejectedOnEngineWithoutUpdateSupport) {
  // The CPU engines maintain update state host-side (they are the degraded
  // path), so the unsupported kinds are the multi-device drivers.
  ServerOptions options;
  options.engine = EngineKind::kVetga;
  KcoreServer server(SoakGraph(), options);
  ServeRequest update;
  update.type = RequestType::kApplyUpdates;
  update.updates = {EdgeUpdate::Insert(0, 2)};
  auto response = server.Submit(update).get();
  EXPECT_TRUE(response.status.IsFailedPrecondition())
      << response.status.ToString();
  EXPECT_EQ(server.stats().updates_applied, 0u);
}

// ------------------------------------------------------------------- soak

TEST(SoakTest, ShortSeededSoakUnderDeviceLossIsClean) {
  SoakOptions options;
  options.num_requests = 200;
  options.seed = 17;
  options.cancel_fraction = 0.05;
  options.deadline_fraction = 0.05;
  options.server.engine_config.device.fault_spec = "device_lost@launch=4";
  auto report = RunSoak(SoakGraph(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->unresolved, 0u);
  EXPECT_EQ(report->failed, 0u);
  EXPECT_GT(report->completed, 0u);
  EXPECT_GT(report->degraded, 0u);  // the fault plan must have engaged
  EXPECT_EQ(report->completed + report->shed + report->cancelled +
                report->deadline_exceeded + report->failed,
            report->requests);
  const std::string json = SoakReportJson("test", SoakGraph(), options, *report);
  EXPECT_NE(json.find("\"bench\": \"serving\""), std::string::npos);
  EXPECT_NE(json.find("device_lost@launch=4"), std::string::npos);
}

TEST(SoakTest, MutatingSoakCommitsUpdatesAndStaysClean) {
  SoakOptions options;
  options.num_requests = 150;
  options.seed = 31;
  options.update_fraction = 0.15;
  options.update_batch = 4;
  auto report = RunSoak(SoakGraph(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean());
  EXPECT_GT(report->updates, 0u);
  EXPECT_EQ(report->updates_committed, report->updates);
  EXPECT_GT(report->update_edges, 0u);
  EXPECT_EQ(report->server.graph_epoch, report->updates_committed);
  const std::string json = SoakReportJson("test", SoakGraph(), options,
                                          *report);
  EXPECT_NE(json.find("\"update_fraction\": 0.15"), std::string::npos);
  EXPECT_NE(json.find("\"updates\""), std::string::npos);
}

TEST(SoakTest, FaultFreeSoakNeverDegrades) {
  SoakOptions options;
  options.num_requests = 120;
  options.seed = 23;
  options.cancel_fraction = 0.0;
  options.deadline_fraction = 0.0;
  auto report = RunSoak(SoakGraph(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean());
  EXPECT_EQ(report->degraded, 0u);
  EXPECT_EQ(report->server.breaker_trips, 0u);
  EXPECT_EQ(report->completed, report->requests);
}

}  // namespace
}  // namespace kcore
