#include <vector>

#include <gtest/gtest.h>

#include "core/gpu_peel.h"
#include "cpu/naive_ref.h"
#include "test_graphs.h"
#include "vetga/vetga.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

TEST(VetgaTest, MatchesOracleOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunVetga(g.graph);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(VetgaTest, SimcheckCleanOnFullSuite) {
  VetgaConfig config;
  config.device.check_mode = true;
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunVetga(g.graph, config);
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(VetgaTest, EmptyGraph) {
  auto result = RunVetga(CsrGraph());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->core.empty());
}

TEST(VetgaTest, VectorOpCallsCounted) {
  const auto g = testing::CliqueGraph(8).graph;
  auto result = RunVetga(g);
  ASSERT_TRUE(result.ok());
  // At least two primitives per round plus per-iteration sequences.
  EXPECT_GE(result->metrics.counters.vector_op_calls,
            2ull * result->metrics.rounds);
  EXPECT_GT(result->metrics.iterations, 0u);
}

TEST(VetgaTest, DispatchOverheadDominatesSmallGraphs) {
  // Same graph, 10x dispatch cost => clearly slower modeled time: the
  // defining VETGA characteristic (per-primitive kernel dispatch).
  const auto g = testing::CycleGraph(64).graph;
  VetgaConfig cheap;
  cheap.op_dispatch_ns = 1000;
  VetgaConfig pricey;
  pricey.op_dispatch_ns = 100000;
  auto a = RunVetga(g, cheap);
  auto b = RunVetga(g, pricey);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->metrics.modeled_ms, 5 * a->metrics.modeled_ms);
}

TEST(VetgaTest, SlowerThanNativeKernelsAndBiggerFootprint) {
  // Table III/V shape on one graph: Ours beats VETGA in modeled time, and
  // VETGA's int64 tensors cost more device memory.
  const auto g = testing::RandomSuite()[2].graph;  // BA graph
  auto vetga = RunVetga(g);
  auto ours = RunGpuPeel(g);
  ASSERT_TRUE(vetga.ok());
  ASSERT_TRUE(ours.ok());
  EXPECT_EQ(vetga->core, ours->core);
  EXPECT_GT(vetga->metrics.modeled_ms, ours->metrics.modeled_ms);
  EXPECT_GT(vetga->metrics.peak_device_bytes, g.MemoryBytes());
}

TEST(VetgaTest, LoadTimeModeled) {
  const auto g = testing::RandomSuite()[0].graph;
  VetgaConfig config;
  config.load_ns_per_edge = 5000;
  auto result = RunVetga(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->metrics.load_ms,
              g.NumUndirectedEdges() * 5000.0 / 1e6, 1e-9);
}

TEST(VetgaTest, TimeoutReported) {
  VetgaConfig config;
  config.modeled_timeout_ms = 1e-6;
  auto result = RunVetga(testing::RandomSuite()[0].graph, config);
  EXPECT_TRUE(result.status().IsTimeout());
}

TEST(VetgaTest, OomOnTinyDevice) {
  VetgaConfig config;
  config.device.global_mem_bytes = 4 << 10;
  auto result = RunVetga(testing::RandomSuite()[0].graph, config);
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

}  // namespace
}  // namespace kcore
