#include <vector>

#include <gtest/gtest.h>

#include "cpu/naive_ref.h"
#include "systems/gswitch.h"
#include "systems/gunrock.h"
#include "systems/medusa.h"
#include "test_graphs.h"

namespace kcore {
namespace {

using testing::FullSuite;
using testing::NamedGraph;

SystemConfig SmallSystem() {
  SystemConfig config;
  config.logical_blocks = 8;
  return config;
}

// ----------------------------------------------------------- Correctness ---

TEST(SystemsTest, SimcheckCleanOnAllBaselines) {
  // The baselines run host-orchestrated (no Launch), so simcheck observes
  // allocation lifetimes + host copies; clean reports assert no leak and no
  // uninitialized readback on every roster graph.
  SystemConfig config = SmallSystem();
  config.device.check_mode = true;
  for (const NamedGraph& g : FullSuite()) {
    ASSERT_TRUE(RunMedusaMpm(g.graph, config).ok()) << g.name;
    ASSERT_TRUE(RunMedusaPeel(g.graph, config).ok()) << g.name;
    ASSERT_TRUE(RunGunrockKCore(g.graph, config).ok()) << g.name;
    ASSERT_TRUE(RunGSwitchKCore(g.graph, g.graph.MaxDegree() + 1, config).ok())
        << g.name;
  }
}

TEST(MedusaMpmTest, MatchesOracleOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunMedusaMpm(g.graph, SmallSystem());
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(MedusaPeelTest, MatchesOracleOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunMedusaPeel(g.graph, SmallSystem());
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(GunrockTest, MatchesOracleOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const std::vector<uint32_t> oracle = RunNaiveReference(g.graph).core;
    auto result = RunGunrockKCore(g.graph, SmallSystem());
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle) << g.name;
  }
}

TEST(GSwitchTest, MatchesOracleOnFullSuite) {
  for (const NamedGraph& g : FullSuite()) {
    const auto oracle_result = RunNaiveReference(g.graph);
    auto result = RunGSwitchKCore(g.graph, oracle_result.MaxCore(),
                                  SmallSystem());
    ASSERT_TRUE(result.ok()) << g.name << ": " << result.status().ToString();
    EXPECT_EQ(result->core, oracle_result.core) << g.name;
  }
}

TEST(GSwitchTest, TooSmallKmaxLeavesHighCoresUnpeeled) {
  // The paper hardcodes rounds; an undersized bound is a real failure mode.
  const auto g = testing::TwoCliquesGraph(4, 8);  // cores 3 and 7
  auto result = RunGSwitchKCore(g.graph, 3, SmallSystem());
  ASSERT_TRUE(result.ok());
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(result->core[v], 3u);
  for (VertexId v = 4; v < 12; ++v) EXPECT_GT(result->core[v], 3u);
}

// ------------------------------------------------------------- Failure -----

TEST(SystemsTest, MedusaOomOnSmallDevice) {
  SystemConfig config = SmallSystem();
  config.device.global_mem_bytes = 16 << 10;  // 16 KB
  const auto g = testing::RandomSuite()[0].graph;
  auto result = RunMedusaMpm(g, config);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfMemory());
}

TEST(SystemsTest, TimeoutReported) {
  SystemConfig config = SmallSystem();
  config.modeled_timeout_ms = 1e-6;  // everything times out
  const auto g = testing::RandomSuite()[0].graph;
  EXPECT_TRUE(RunMedusaMpm(g, config).status().IsTimeout());
  EXPECT_TRUE(RunMedusaPeel(g, config).status().IsTimeout());
  EXPECT_TRUE(RunGunrockKCore(g, config).status().IsTimeout());
  EXPECT_TRUE(RunGSwitchKCore(g, 50, config).status().IsTimeout());
}

// ----------------------------------------------- Relative work profiles ----

TEST(SystemsTest, MedusaWorkloadProfiles) {
  // Medusa's BSP model materializes one message per directed edge on every
  // superstep — the full-sweep workload profile the paper attributes its
  // slowness to. (Which of MPM/Peel wins depends on the graph: the paper's
  // Table III has Peel ahead on amazon0601 but MPM ahead on patentcite.)
  const auto g = testing::RandomSuite()[1].graph;  // dense ER
  auto mpm = RunMedusaMpm(g, SmallSystem());
  auto peel = RunMedusaPeel(g, SmallSystem());
  ASSERT_TRUE(mpm.ok());
  ASSERT_TRUE(peel.ok());
  const uint64_t m = g.NumDirectedEdges();
  EXPECT_EQ(mpm->metrics.counters.messages,
            static_cast<uint64_t>(mpm->metrics.iterations) * m);
  EXPECT_EQ(peel->metrics.counters.messages,
            static_cast<uint64_t>(peel->metrics.iterations) * m);
  EXPECT_GT(mpm->metrics.iterations, 1u);
  // Peel runs at least one superstep per round, k_max+1 rounds.
  EXPECT_EQ(peel->metrics.rounds, peel->MaxCore() + 1);
  EXPECT_GE(peel->metrics.iterations, peel->metrics.rounds);
}

TEST(SystemsTest, GSwitchScansLessThanGunrock) {
  // Autotuned sparse frontiers avoid Gunrock's full filter sweeps.
  const auto g = testing::PathGraph(2000);
  auto gunrock = RunGunrockKCore(g.graph, SmallSystem());
  auto gswitch = RunGSwitchKCore(g.graph, 1, SmallSystem());
  ASSERT_TRUE(gunrock.ok());
  ASSERT_TRUE(gswitch.ok());
  EXPECT_LT(gswitch->metrics.counters.vertices_scanned,
            gunrock->metrics.counters.vertices_scanned / 4);
  EXPECT_LT(gswitch->metrics.modeled_ms, gunrock->metrics.modeled_ms);
}

TEST(SystemsTest, MedusaMemoryIncludesPerEdgeState) {
  const auto g = testing::RandomSuite()[0].graph;
  auto medusa = RunMedusaPeel(g, SmallSystem());
  auto gswitch = RunGSwitchKCore(g, 20, SmallSystem());
  ASSERT_TRUE(medusa.ok());
  ASSERT_TRUE(gswitch.ok());
  // Messages (4B/slot) + reverse index (8B/slot) dominate Medusa's footprint.
  EXPECT_GT(medusa->metrics.peak_device_bytes,
            gswitch->metrics.peak_device_bytes);
}

TEST(SystemsTest, RepeatedRunsStable) {
  const auto g = testing::RandomSuite()[4].graph;  // planted core
  const std::vector<uint32_t> oracle = RunNaiveReference(g).core;
  for (int i = 0; i < 3; ++i) {
    auto result = RunGunrockKCore(g, SmallSystem());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->core, oracle);
  }
}

}  // namespace
}  // namespace kcore
