#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace kcore {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

namespace {

RequestClass ClassOf(RequestType type) {
  switch (type) {
    case RequestType::kCoreOf:
    case RequestType::kTopK:
      return RequestClass::kPoint;
    case RequestType::kApplyUpdates:
      return RequestClass::kUpdate;
    default:
      return RequestClass::kHeavy;
  }
}

/// An engine failure (trips the breaker, triggers the in-request CPU retry)
/// as opposed to the request's own outcome (cancellation, expiry, bad
/// arguments), which must surface unchanged and leave the breaker alone.
bool IsEngineFault(const Status& status) {
  return !status.ok() && !status.IsCancelled() &&
         !status.IsDeadlineExceeded() && !status.IsInvalidArgument();
}

/// Same split for update batches, whose own invalid-batch outcomes use two
/// more codes: FailedPrecondition (inserting a present edge) and NotFound
/// (removing an absent one). Those reject the batch on ANY engine — retrying
/// on the host path would just reject again — so they surface unchanged.
bool IsUpdateFault(const Status& status) {
  return IsEngineFault(status) && !status.IsFailedPrecondition() &&
         !status.IsNotFound();
}

}  // namespace

KcoreServer::KcoreServer(CsrGraph graph, ServerOptions options)
    : graph_(std::move(graph)), options_(std::move(options)) {
  // Engine-internal CPU fallback would swallow permanent device loss and
  // starve the breaker of its failure signal; the server owns degradation.
  options_.engine_config.gpu.resilience.cpu_fallback = false;
  options_.engine_config.multi_gpu.resilience.cpu_fallback = false;
  options_.engine_config.incremental.cpu_fallback = false;
  options_.engine_config.incremental.repeel.resilience.cpu_fallback = false;
  primary_ = MakeEngine(options_.engine, options_.engine_config);
  fallback_ = MakeEngine(EngineKind::kBz);
  paused_ = options_.start_paused;
  runner_ = std::thread([this] { RunnerLoop(); });
}

KcoreServer::~KcoreServer() { (void)Shutdown(); }

std::future<ServeResponse> KcoreServer::Submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  const RequestClass cls = ClassOf(request.type);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      ++stats_.rejected;
      ServeResponse response;
      response.status =
          Status::FailedPrecondition("kcore_server is shut down");
      promise.set_value(std::move(response));
      return future;
    }
    std::deque<Pending>* queue = &heavy_queue_;
    uint64_t capacity = options_.heavy_queue_capacity;
    const char* label = "heavy";
    double per_request_ms = last_heavy_run_ms_;
    if (cls == RequestClass::kPoint) {
      queue = &point_queue_;
      capacity = options_.point_queue_capacity;
      label = "point";
      per_request_ms = 1.0;
    } else if (cls == RequestClass::kUpdate) {
      queue = &update_queue_;
      capacity = options_.update_queue_capacity;
      label = "update";
      per_request_ms = last_update_run_ms_;
    }
    if (queue->size() >= capacity) {
      // Backpressure: shed NOW with a backoff hint instead of letting the
      // queue grow without bound. A shed is still a response — nothing is
      // silently dropped.
      ++stats_.shed;
      ServeResponse response;
      response.metrics.shed = true;
      response.metrics.retry_after_ms =
          cls == RequestClass::kPoint
              ? 1.0
              : per_request_ms * static_cast<double>(queue->size());
      response.status = Status::ResourceExhausted(
          StrFormat("%s queue full (%llu queued); retry in ~%.1f ms", label,
                    static_cast<unsigned long long>(queue->size()),
                    response.metrics.retry_after_ms));
      promise.set_value(std::move(response));
      return future;
    }
    Pending pending;
    pending.request = std::move(request);
    pending.promise = std::move(promise);
    pending.sequence = ++next_sequence_;
    ++stats_.admitted;
    queue->push_back(std::move(pending));
  }
  work_cv_.notify_one();
  return future;
}

void KcoreServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

Status KcoreServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("kcore_server already shut down");
    }
    shutting_down_ = true;
    paused_ = false;  // drain even a paused server
  }
  work_cv_.notify_all();
  if (runner_.joinable()) runner_.join();
  return Status::OK();
}

ServerStats KcoreServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats snapshot = stats_;
  snapshot.breaker = breaker_;
  snapshot.point_queue_depth = point_queue_.size();
  snapshot.update_queue_depth = update_queue_.size();
  snapshot.heavy_queue_depth = heavy_queue_.size();
  return snapshot;
}

bool KcoreServer::PopNext(Pending* out) {
  // Caller holds mu_. Three-tier priority: point (microseconds against the
  // cache) -> update (localized re-peel) -> heavy (full engine pass), each
  // tier with a burst limit so a flood of one class cannot starve the
  // classes below it forever.
  const bool below_point = !update_queue_.empty() || !heavy_queue_.empty();
  if (!point_queue_.empty() &&
      (!below_point || point_burst_ < options_.point_burst_limit)) {
    ++point_burst_;
    *out = std::move(point_queue_.front());
    point_queue_.pop_front();
    return true;
  }
  point_burst_ = 0;
  if (!update_queue_.empty() &&
      (heavy_queue_.empty() ||
       update_burst_ < options_.update_burst_limit)) {
    ++update_burst_;
    *out = std::move(update_queue_.front());
    update_queue_.pop_front();
    return true;
  }
  update_burst_ = 0;
  if (!heavy_queue_.empty()) {
    *out = std::move(heavy_queue_.front());
    heavy_queue_.pop_front();
    return true;
  }
  return false;
}

void KcoreServer::RunnerLoop() {
  while (true) {
    Pending pending;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutting_down_ ||
               (!paused_ && (!point_queue_.empty() ||
                             !update_queue_.empty() ||
                             !heavy_queue_.empty()));
      });
      have = PopNext(&pending);
      if (!have && shutting_down_) {
        runner_exited_ = true;
        return;
      }
    }
    if (have) Dispatch(std::move(pending));
  }
}

void KcoreServer::Answer(Pending pending, ServeResponse response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Status& status = response.status;
    if (status.ok()) {
      ++stats_.completed;
      if (response.metrics.degraded) ++stats_.degraded;
      if (response.metrics.cache_hit) ++stats_.cache_hits;
    } else if (status.IsCancelled()) {
      ++stats_.cancelled;
    } else if (status.IsDeadlineExceeded()) {
      ++stats_.deadline_exceeded;
    } else {
      ++stats_.failed;
    }
  }
  pending.promise.set_value(std::move(response));
}

template <typename Result>
StatusOr<Result> KcoreServer::RunWithBreaker(
    const CancelContext& cancel, Trace* trace, ServeMetrics* metrics,
    const std::function<StatusOr<Result>(Engine*, const EngineRunContext&)>&
        fn) {
  EngineRunContext ctx;
  ctx.cancel = &cancel;
  ctx.trace = trace;

  bool try_primary = false;
  bool probing = false;
  uint64_t attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    try_primary = AllowPrimaryLocked();
    probing = breaker_ == BreakerState::kHalfOpen;
    if (try_primary) {
      attempt = stats_.gpu_attempts++;
      if (probing) ++stats_.breaker_probes;
    }
  }
  if (try_primary) {
    std::string fault_override;
    if (options_.fault_plan_fn) {
      fault_override = options_.fault_plan_fn(attempt);
      ctx.fault_spec_override = &fault_override;
    }
    bool primary_ok = true;
    if (probing) {
      // Half-open: health-check the engine pool before risking the real
      // request on it. A dead probe re-opens the breaker at the cost of
      // one launch, not one wasted half-run.
      if (Status health = primary_->HealthCheck(ctx); !health.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        OnPrimaryFailureLocked();
        primary_ok = false;
      }
    }
    if (primary_ok) {
      auto result = fn(primary_.get(), ctx);
      if (result.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        OnPrimarySuccessLocked();
        return result;
      }
      if (!IsEngineFault(result.status())) return result;
      {
        std::lock_guard<std::mutex> lock(mu_);
        OnPrimaryFailureLocked();
      }
      // The request is immediately retried on the exact CPU path below —
      // an engine death costs latency, never a dropped or wrong answer.
      ++metrics->retries;
    }
  }
  metrics->degraded = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    OnFallbackServedLocked();
  }
  KCORE_RETURN_IF_ERROR(cancel.Check("serve fallback entry"));
  EngineRunContext fallback_ctx;
  fallback_ctx.cancel = &cancel;
  fallback_ctx.trace = trace;
  return fn(fallback_.get(), fallback_ctx);
}

StatusOr<UpdateResult> KcoreServer::RunUpdate(
    const CancelContext& cancel, Trace* trace, ServeMetrics* metrics,
    std::span<const EdgeUpdate> batch) {
  if (!primary_->supports_updates()) {
    return Status::FailedPrecondition(
        StrFormat("%s engine does not maintain an updatable decomposition",
                  primary_->name()));
  }
  EngineRunContext ctx;
  ctx.cancel = &cancel;
  ctx.trace = trace;

  bool try_primary = false;
  bool probing = false;
  uint64_t attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    try_primary = AllowPrimaryLocked();
    probing = breaker_ == BreakerState::kHalfOpen;
    if (try_primary) {
      attempt = stats_.gpu_attempts++;
      if (probing) ++stats_.breaker_probes;
    }
  }
  if (try_primary) {
    std::string fault_override;
    if (options_.fault_plan_fn) {
      fault_override = options_.fault_plan_fn(attempt);
      ctx.fault_spec_override = &fault_override;
    }
    bool primary_ok = true;
    if (probing) {
      if (Status health = primary_->HealthCheck(ctx); !health.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        OnPrimaryFailureLocked();
        primary_ok = false;
      }
    }
    if (primary_ok) {
      auto result = primary_->ApplyUpdates(graph_, batch, ctx);
      if (result.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        OnPrimarySuccessLocked();
        return result;
      }
      if (!IsUpdateFault(result.status())) return result;
      {
        std::lock_guard<std::mutex> lock(mu_);
        OnPrimaryFailureLocked();
      }
      // Retried below on the same engine's exact host path — an engine
      // death costs latency, never a dropped batch or a forked epoch.
      ++metrics->retries;
    }
  }
  // Degraded path: the SAME engine's host maintenance algorithm against the
  // SAME committed state. Routing updates to the fallback_ engine (as
  // RunWithBreaker does for reads) would create a second state-holder whose
  // epoch history diverges from the primary's the moment it commits.
  metrics->degraded = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    OnFallbackServedLocked();
  }
  KCORE_RETURN_IF_ERROR(cancel.Check("serve update fallback entry"));
  EngineRunContext host_ctx;
  host_ctx.cancel = &cancel;
  host_ctx.trace = trace;
  host_ctx.prefer_host = true;
  return primary_->ApplyUpdates(graph_, batch, host_ctx);
}

Status KcoreServer::EnsureCache(const CancelContext& cancel, Trace* trace,
                                ServeMetrics* metrics) {
  // A committed update advances graph_epoch_: a cache from an older epoch
  // answers point queries with pre-update core numbers, so it recomputes
  // here (the staleness regression the epoch tag exists to prevent).
  if (cache_warm_ && cache_epoch_ == graph_epoch_) {
    metrics->cache_hit = true;
    return Status::OK();
  }
  auto result = RunWithBreaker<DecomposeResult>(
      cancel, trace, metrics,
      [this](Engine* engine, const EngineRunContext& ctx) {
        return engine->Decompose(ServingGraph(), ctx);
      });
  if (!result.ok()) return result.status();
  cache_core_ = std::move(result->core);
  cache_warm_ = true;
  cache_epoch_ = graph_epoch_;
  return Status::OK();
}

void KcoreServer::Dispatch(Pending pending) {
  ServeResponse response;
  ServeMetrics& metrics = response.metrics;
  metrics.sequence = pending.sequence;
  metrics.queue_ms = pending.queued.ElapsedMillis();
  Trace* const trace = pending.request.trace;
  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics.run_order = ++next_run_order_;
    metrics.breaker = breaker_;
  }
  WallTimer run_timer;
  const CancelContext cancel{pending.request.cancel,
                             pending.request.deadline};
  const ServeRequest& request = pending.request;

  if (Status live = cancel.Check("serve dispatch"); !live.ok()) {
    // Expired or cancelled while queued: answered without touching an
    // engine (and without charging run time to the device).
    response.status = live;
  } else {
    switch (request.type) {
      case RequestType::kFullDecompose: {
        auto result = RunWithBreaker<DecomposeResult>(
            cancel, trace, &metrics,
            [this](Engine* engine, const EngineRunContext& ctx) {
              return engine->Decompose(ServingGraph(), ctx);
            });
        if (result.ok()) {
          response.core = std::move(result->core);
          cache_core_ = response.core;  // refresh the point-query cache
          cache_warm_ = true;
          cache_epoch_ = graph_epoch_;
        } else {
          response.status = result.status();
        }
        break;
      }
      case RequestType::kSingleK: {
        const uint32_t k = request.k;
        auto result = RunWithBreaker<SingleKCoreResult>(
            cancel, trace, &metrics,
            [this, k](Engine* engine, const EngineRunContext& ctx) {
              return engine->SingleK(ServingGraph(), k, ctx);
            });
        if (result.ok()) {
          response.single_k = std::move(*result);
        } else {
          response.status = result.status();
        }
        break;
      }
      case RequestType::kCoreOf: {
        if (request.v >= graph_.NumVertices()) {
          response.status = Status::InvalidArgument(
              StrFormat("core_of: vertex %u out of range [0, %u)", request.v,
                        graph_.NumVertices()));
          break;
        }
        response.status = EnsureCache(cancel, trace, &metrics);
        if (response.status.ok()) response.core_of = cache_core_[request.v];
        break;
      }
      case RequestType::kTopK: {
        response.status = EnsureCache(cancel, trace, &metrics);
        if (!response.status.ok()) break;
        const uint32_t limit = std::min<uint64_t>(
            request.limit, static_cast<uint64_t>(cache_core_.size()));
        response.top.reserve(cache_core_.size());
        for (VertexId v = 0; v < cache_core_.size(); ++v) {
          response.top.emplace_back(v, cache_core_[v]);
        }
        std::partial_sort(response.top.begin(),
                          response.top.begin() + limit, response.top.end(),
                          [](const auto& a, const auto& b) {
                            if (a.second != b.second)
                              return a.second > b.second;
                            return a.first < b.first;
                          });
        response.top.resize(limit);
        break;
      }
      case RequestType::kApplyUpdates: {
        auto result = RunUpdate(cancel, trace, &metrics, request.updates);
        if (!result.ok()) {
          response.status = result.status();
          break;
        }
        response.update_epoch = result->epoch;
        response.update_changed = std::move(result->changed);
        response.core = std::move(result->core);
        // Commit serving-side: materialize the engine's committed graph for
        // subsequent heavy requests and refresh the point cache straight
        // from the batch's snapshot (no recompute needed).
        auto graph = primary_->UpdatedGraph();
        if (!graph.ok()) {
          response.status = graph.status();
          break;
        }
        updated_graph_ = std::move(*graph);
        graph_epoch_ = result->epoch;
        cache_core_ = response.core;
        cache_warm_ = true;
        cache_epoch_ = graph_epoch_;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.updates_applied;
          stats_.update_edges += request.updates.size();
          stats_.graph_epoch = graph_epoch_;
        }
        break;
      }
    }
  }
  metrics.run_ms = run_timer.ElapsedMillis();
  if (response.status.ok()) {
    const RequestClass cls = ClassOf(request.type);
    if (cls == RequestClass::kHeavy) {
      std::lock_guard<std::mutex> lock(mu_);
      last_heavy_run_ms_ = std::max(0.1, metrics.run_ms);
    } else if (cls == RequestClass::kUpdate) {
      std::lock_guard<std::mutex> lock(mu_);
      last_update_run_ms_ = std::max(0.1, metrics.run_ms);
    }
  }
  Answer(std::move(pending), std::move(response));
}

bool KcoreServer::AllowPrimaryLocked() const {
  return breaker_ != BreakerState::kOpen;
}

void KcoreServer::OnPrimarySuccessLocked() {
  if (breaker_ == BreakerState::kHalfOpen) {
    breaker_ = BreakerState::kClosed;
    ++stats_.breaker_recoveries;
  }
  consecutive_failures_ = 0;
  stats_.breaker = breaker_;
}

void KcoreServer::OnPrimaryFailureLocked() {
  ++stats_.gpu_failures;
  ++consecutive_failures_;
  const bool trip =
      breaker_ == BreakerState::kHalfOpen ||
      (breaker_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.breaker_trip_threshold);
  if (trip) {
    breaker_ = BreakerState::kOpen;
    open_served_ = 0;
    ++stats_.breaker_trips;
  }
  stats_.breaker = breaker_;
}

void KcoreServer::OnFallbackServedLocked() {
  if (breaker_ == BreakerState::kOpen &&
      ++open_served_ >= options_.breaker_cooldown_requests) {
    breaker_ = BreakerState::kHalfOpen;
    stats_.breaker = breaker_;
  }
}

}  // namespace kcore
