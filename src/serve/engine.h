#ifndef KCORE_SERVE_ENGINE_H_
#define KCORE_SERVE_ENGINE_H_

#include <memory>
#include <span>
#include <string>

#include "cluster/cluster_peel.h"
#include "common/cancellation.h"
#include "common/statusor.h"
#include "core/gpu_peel_options.h"
#include "core/incremental_core.h"
#include "core/multi_gpu_peel.h"
#include "cusim/annotations.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "graph/edge_update.h"
#include "perf/decompose_result.h"
#include "perf/trace.h"
#include "vetga/vetga.h"

namespace kcore {

/// The decomposition engines the serving layer can route to (ROADMAP:
/// a unified engine interface instead of per-driver free functions).
enum class EngineKind {
  kGpu,       ///< Single-GPU peeling (core/gpu_peel.h), the paper's engine.
  kMultiGpu,  ///< Sharded fleet peeling (core/multi_gpu_peel.h).
  kCluster,   ///< Simulated multi-node peeling (cluster/cluster_peel.h).
  kVetga,     ///< Vector-primitive baseline (vetga/vetga.h).
  kBz,        ///< Batagelj–Zaveršnik bucket peeling (cpu/bz.h).
  kPkc,       ///< PKC parallel h-index peeling (cpu/pkc.h).
  kPark,      ///< ParK level-synchronous peeling (cpu/park.h).
  kMpm,       ///< Montresor h-index iteration (cpu/mpm.h).
};

/// Short name used by CLI flags, stats output and bench labels
/// ("gpu", "multigpu", "cluster", "vetga", "bz", "pkc", "park", "mpm").
KCORE_HOST_ONLY const char* EngineKindName(EngineKind kind);

/// Parses a CLI token; returns false on an unknown token, leaving *out
/// untouched.
KCORE_HOST_ONLY bool ParseEngineKind(const std::string& token,
                                     EngineKind* out);

/// Per-run context threaded through an Engine call by the serving loop.
struct EngineRunContext {
  /// Request lifecycle: polled at engine round boundaries (see
  /// common/cancellation.h). Not owned; nullptr = run to completion.
  const CancelContext* cancel = nullptr;
  /// Non-null receives the run's simprof timeline — INCLUDING failed,
  /// cancelled and expired runs, which is how the serving tests assert
  /// that no kernel span follows the cancellation mark (the
  /// release-the-device-within-one-round contract).
  Trace* trace = nullptr;
  /// Non-null overrides the configured device fault plan for this run
  /// (cusim/fault_injection.h grammar; empty string = no injected faults
  /// and no KCORE_FAULTS fallback is suppressed — the override is the
  /// spec handed to the device verbatim). Device-less engines ignore it.
  const std::string* fault_spec_override = nullptr;
  /// ApplyUpdates only: route the batch through the engine's exact host
  /// (CPU) maintenance path against the SAME committed state, skipping the
  /// device entirely. The serving breaker's degraded path — the answer is
  /// still exact and the epoch history stays linear (a second state-holder
  /// would fork it). Ignored by host engines and by non-update calls.
  bool prefer_host = false;
};

/// Configuration shared by every engine a server owns. Only the fields
/// relevant to the chosen kind apply; the rest are inert.
struct EngineConfig {
  /// GPU peeling options (geometry, variants, resilience). `cancel` is
  /// overwritten per run from EngineRunContext.
  GpuPeelOptions gpu;
  /// Device template for the kGpu path. A FRESH device is created per run
  /// so injected fault plans (fault_spec or KCORE_FAULTS) attach to each
  /// request deterministically and a lost device never leaks into the next
  /// request.
  sim::DeviceOptions device;
  /// Fleet options for kMultiGpu (`cancel`/`trace` overwritten per run).
  MultiGpuOptions multi_gpu;
  /// Cluster shape + network model for kCluster (`cancel`/`trace`
  /// overwritten per run; the context's fault override lands on
  /// cluster.node_device).
  ClusterOptions cluster;
  /// Config for kVetga (`cancel`/`trace` overwritten per run).
  VetgaConfig vetga;
  /// Options for the kGpu engine's persistent incremental-maintenance state
  /// (ApplyUpdates). `cancel` is overwritten per run from EngineRunContext;
  /// `repeel` covers the escape-hatch full re-peel.
  IncrementalOptions incremental;
};

/// A k-core decomposition engine behind a uniform, serving-friendly
/// interface: full decomposition, direct single-k mining, and a cheap
/// health probe, all honoring the run context's cancellation and trace
/// plumbing. Implementations are stateless between runs (safe to reuse
/// across requests from one thread) — except the update path, where
/// supports_updates() engines deliberately keep the evolving graph and
/// coreness across requests (see ApplyUpdates). They are NOT required to
/// be thread-safe — the server serializes runs on its runner thread.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const = 0;
  const char* name() const { return EngineKindName(kind()); }

  /// True when runs execute on a simulated device and are therefore
  /// subject to fault plans (KCORE_FAULTS / DeviceOptions::fault_spec).
  virtual bool uses_device() const = 0;

  /// Full decomposition of `graph`.
  [[nodiscard]] KCORE_HOST_ONLY virtual StatusOr<DecomposeResult> Decompose(
      const CsrGraph& graph, const EngineRunContext& ctx) = 0;

  /// Direct single-k mining ("give me the k-core"). The base implementation
  /// answers on the CPU (Xiang's linear algorithm) after honoring the
  /// cancellation context; device engines override with their kernel path.
  [[nodiscard]] KCORE_HOST_ONLY virtual StatusOr<SingleKCoreResult> SingleK(
      const CsrGraph& graph, uint32_t k, const EngineRunContext& ctx);

  /// Cheap liveness probe: for device engines, creates a device under the
  /// current fault plan and issues one health-check launch; Unavailable is
  /// transient noise, DeviceLost means the plan kills devices outright.
  /// Host engines always report OK. Used by the server's half-open breaker
  /// probe before risking a real request on the primary engine.
  [[nodiscard]] KCORE_HOST_ONLY virtual Status HealthCheck(
      const EngineRunContext& ctx);

  /// True when the engine maintains a persistent updatable decomposition:
  /// ApplyUpdates commits epochs and UpdatedGraph serves the committed
  /// graph. A deliberate departure from "stateless between runs" — edge
  /// updates only beat a fresh decomposition when the state survives the
  /// request; the serving loop treats such engines as the single holder of
  /// the evolving graph.
  virtual bool supports_updates() const { return false; }

  /// Applies one edge-update batch against the engine's persistent serving
  /// state and commits a new epoch. The state is lazily seeded from
  /// `initial` on the first call; later calls ignore `initial` (the
  /// committed graph evolves engine-side). Batch semantics (sequential
  /// validation, all-or-nothing commit) match IncrementalCoreEngine /
  /// DynamicKCore::ApplyBatch. The base implementation answers
  /// FailedPrecondition for engines with no maintenance path.
  [[nodiscard]] KCORE_HOST_ONLY virtual StatusOr<UpdateResult> ApplyUpdates(
      const CsrGraph& initial, std::span<const EdgeUpdate> batch,
      const EngineRunContext& ctx);

  /// Materializes the committed (post-update) serving graph as sorted CSR.
  /// FailedPrecondition until the first ApplyUpdates call seeds the state.
  [[nodiscard]] KCORE_HOST_ONLY virtual StatusOr<CsrGraph> UpdatedGraph()
      const;
};

/// Builds an engine of `kind` over `config`. Never fails: unknown kinds
/// are impossible by construction (enum) and configuration errors surface
/// from the first run instead.
KCORE_HOST_ONLY std::unique_ptr<Engine> MakeEngine(EngineKind kind,
                                                   EngineConfig config = {});

}  // namespace kcore

#endif  // KCORE_SERVE_ENGINE_H_
