#ifndef KCORE_SERVE_SOAK_H_
#define KCORE_SERVE_SOAK_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "cusim/annotations.h"
#include "graph/csr_graph.h"
#include "serve/server.h"

namespace kcore {

/// Chaos-soak configuration: a seeded mixed workload fired at a KcoreServer,
/// typically with a fault plan attached (ServerOptions::engine_config.device
/// .fault_spec or KCORE_FAULTS) so the admission, breaker and cancellation
/// machinery all engage while every completed answer is checked bit-for-bit
/// against the BZ oracle.
struct SoakOptions {
  /// Total requests submitted (ISSUE 8's acceptance bar: >= 5000 for the
  /// committed BENCH_serving.json run; CI runs a short seeded soak).
  uint64_t num_requests = 5000;
  uint64_t seed = 1;

  /// Workload mix. point + single_k must be <= 1; the rest are full
  /// decompositions. Point queries split evenly core_of / top-k.
  double point_fraction = 0.60;
  double single_k_fraction = 0.25;

  /// Mutation slice: fraction of workload slots that submit an edge-update
  /// batch instead of a read. Updates are SYNC POINTS — the driver drains
  /// every in-flight read first, settles the update immediately, rebuilds
  /// the oracle with a fresh BZ over its own graph mirror, and checks the
  /// response snapshot and changed-set bit-for-bit. They are excluded from
  /// the cancel/deadline chaos (a cancelled update has no answer to
  /// verify). 0 keeps the legacy read-only workload AND the legacy RNG
  /// stream (no extra draw is consumed), so committed read-only bench
  /// runs replay unchanged.
  double update_fraction = 0.0;
  /// Edge updates per mutation batch.
  uint32_t update_batch = 8;

  /// Fraction of requests whose token the driver cancels right after
  /// submission (they resolve Cancelled at dispatch or at the engine's next
  /// round boundary — both paths must stay leak-free under soak).
  double cancel_fraction = 0.02;
  /// Fraction of requests submitted with an (almost) already-expired
  /// deadline, exercising the expiry paths the same way.
  double deadline_fraction = 0.02;

  /// Submission window: at most this many requests in flight before the
  /// driver blocks on the oldest future. Large enough to fill queues and
  /// trigger shedding when the runner falls behind.
  uint32_t max_inflight = 128;

  ServerOptions server;
};

/// Latency distribution over the completed requests.
struct LatencyStats {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Soak outcome. The invariants the harness enforces:
///  - mismatches == 0: every OK answer bit-matched the BZ oracle;
///  - unresolved == 0: every submitted request's future resolved (nothing
///    silently dropped, clean shutdown drain included);
///  - requests == completed + shed + cancelled + deadline_exceeded + failed.
struct SoakReport {
  uint64_t requests = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t failed = 0;
  uint64_t degraded = 0;     ///< Completed via the CPU fallback path.
  uint64_t cache_hits = 0;   ///< Point queries served from warm cache.
  uint64_t mismatches = 0;   ///< Oracle disagreements (must be 0).
  uint64_t unresolved = 0;   ///< Futures never resolved (must be 0).
  uint64_t updates = 0;            ///< Update batches submitted.
  uint64_t updates_committed = 0;  ///< Update batches committed OK.
  uint64_t update_edges = 0;       ///< Edge updates across committed batches.
  LatencyStats queue_ms;
  LatencyStats run_ms;
  ServerStats server;        ///< Final server counters (breaker trips etc.).
  double wall_ms = 0.0;      ///< Whole-soak wall time.

  /// True when the soak's hard invariants all held.
  bool Clean() const {
    return mismatches == 0 && unresolved == 0 && failed == 0 &&
           completed > 0;
  }
};

/// Runs the chaos soak: computes the BZ oracle, drives the seeded workload
/// through a fresh KcoreServer, verifies every completed answer, shuts the
/// server down cleanly, and reports. Fails only on harness-level errors
/// (e.g. an empty graph); workload-level problems land in the report.
[[nodiscard]] KCORE_HOST_ONLY StatusOr<SoakReport> RunSoak(
    const CsrGraph& graph, const SoakOptions& options);

/// Renders the report as the BENCH_serving.json document (bench JSON idiom:
/// one top-level object, hand-built).
KCORE_HOST_ONLY std::string SoakReportJson(const std::string& label,
                                           const CsrGraph& graph,
                                           const SoakOptions& options,
                                           const SoakReport& report);

/// One-line human summary ("soak: 5000 req, 4897 ok, ...").
KCORE_HOST_ONLY std::string SoakReportSummary(const SoakReport& report);

}  // namespace kcore

#endif  // KCORE_SERVE_SOAK_H_
