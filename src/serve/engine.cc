#include "serve/engine.h"

#include <utility>

#include "common/strings.h"
#include "core/gpu_peel.h"
#include "core/single_k.h"
#include "cpu/bz.h"
#include "cpu/dynamic_core.h"
#include "cpu/mpm.h"
#include "cpu/park.h"
#include "cpu/pkc.h"
#include "cpu/xiang.h"

namespace kcore {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kGpu:
      return "gpu";
    case EngineKind::kMultiGpu:
      return "multigpu";
    case EngineKind::kCluster:
      return "cluster";
    case EngineKind::kVetga:
      return "vetga";
    case EngineKind::kBz:
      return "bz";
    case EngineKind::kPkc:
      return "pkc";
    case EngineKind::kPark:
      return "park";
    case EngineKind::kMpm:
      return "mpm";
  }
  return "unknown";
}

bool ParseEngineKind(const std::string& token, EngineKind* out) {
  for (EngineKind kind :
       {EngineKind::kGpu, EngineKind::kMultiGpu, EngineKind::kCluster,
        EngineKind::kVetga, EngineKind::kBz, EngineKind::kPkc,
        EngineKind::kPark, EngineKind::kMpm}) {
    if (token == EngineKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

StatusOr<SingleKCoreResult> Engine::SingleK(const CsrGraph& graph, uint32_t k,
                                            const EngineRunContext& ctx) {
  if (k < 1) {
    return Status::InvalidArgument("single-k mining requires k >= 1");
  }
  if (ctx.cancel != nullptr) {
    KCORE_RETURN_IF_ERROR(ctx.cancel->Check("single-k CPU entry"));
  }
  return XiangSingleKCore(graph, k);
}

Status Engine::HealthCheck(const EngineRunContext&) { return Status::OK(); }

StatusOr<UpdateResult> Engine::ApplyUpdates(const CsrGraph&,
                                            std::span<const EdgeUpdate>,
                                            const EngineRunContext&) {
  return Status::FailedPrecondition(StrFormat(
      "%s engine does not maintain an updatable decomposition", name()));
}

StatusOr<CsrGraph> Engine::UpdatedGraph() const {
  return Status::FailedPrecondition(StrFormat(
      "%s engine holds no update state (no ApplyUpdates batch applied)",
      name()));
}

namespace {

/// Resolves the device options for one run: the configured template with the
/// context's fault-plan override applied.
sim::DeviceOptions RunDeviceOptions(const sim::DeviceOptions& base,
                                    const EngineRunContext& ctx) {
  sim::DeviceOptions options = base;
  if (ctx.fault_spec_override != nullptr) {
    options.fault_spec = *ctx.fault_spec_override;
  }
  if (ctx.trace != nullptr) options.profile = true;
  return options;
}

/// Single-GPU peeling engine. Each run gets a fresh device so fault plans
/// attach per request and a latched DeviceLost cannot poison later runs.
class GpuEngine : public Engine {
 public:
  explicit GpuEngine(EngineConfig config) : config_(std::move(config)) {}

  EngineKind kind() const override { return EngineKind::kGpu; }
  bool uses_device() const override { return true; }

  StatusOr<DecomposeResult> Decompose(const CsrGraph& graph,
                                      const EngineRunContext& ctx) override {
    sim::Device device(RunDeviceOptions(config_.device, ctx));
    GpuPeelOptions options = config_.gpu;
    options.cancel = ctx.cancel;
    GpuPeelDecomposer decomposer(&device, options);
    auto result = decomposer.Decompose(graph);
    // Export the timeline ok-or-not: the cancellation tests inspect the
    // spans of runs that did NOT finish.
    if (ctx.trace != nullptr && device.profiler() != nullptr) {
      ctx.trace->Append(device.profiler()->trace());
    }
    return result;
  }

  StatusOr<SingleKCoreResult> SingleK(const CsrGraph& graph, uint32_t k,
                                      const EngineRunContext& ctx) override {
    sim::Device device(RunDeviceOptions(config_.device, ctx));
    GpuPeelOptions options = config_.gpu;
    options.cancel = ctx.cancel;
    auto result = GpuSingleKCore(graph, k, options, &device);
    if (ctx.trace != nullptr && device.profiler() != nullptr) {
      ctx.trace->Append(device.profiler()->trace());
    }
    return result;
  }

  Status HealthCheck(const EngineRunContext& ctx) override {
    // Once update state exists, probe ITS device: the breaker's half-open
    // probe must see the health of the state-holding device, not of a
    // throwaway one (a re-attach under the current fault plan happens here
    // if the previous batch lost the device).
    if (incremental_ != nullptr) {
      incremental_->set_device_options(RunDeviceOptions(config_.device, ctx));
      return incremental_->HealthCheck();
    }
    sim::Device device(RunDeviceOptions(config_.device, ctx));
    return device.HealthCheck("serve_probe");
  }

  bool supports_updates() const override { return true; }

  StatusOr<UpdateResult> ApplyUpdates(const CsrGraph& initial,
                                      std::span<const EdgeUpdate> batch,
                                      const EngineRunContext& ctx) override {
    // The documented departure from fresh-device-per-run: incremental
    // maintenance only beats a fresh peel when CSR + coreness stay resident
    // across batches, so the engine lives for the server's lifetime. Fault
    // plans still attach per request — the run's device options take effect
    // at the next (re)attach, and a latched DeviceLost forces exactly such
    // a re-attach before the next GPU batch.
    const sim::DeviceOptions run_device = RunDeviceOptions(config_.device, ctx);
    if (incremental_ == nullptr) {
      auto created =
          IncrementalCoreEngine::Create(initial, config_.incremental,
                                        run_device);
      if (!created.ok()) return created.status();
      incremental_ = std::move(*created);
      trace_exported_ = 0;
    }
    incremental_->set_device_options(run_device);
    incremental_->set_cancel(ctx.cancel);
    // A re-attach replaces the device and resets its profiler trace, so the
    // per-batch export cursor restarts from the top of the new trace.
    if (incremental_->needs_reattach()) trace_exported_ = 0;
    StatusOr<UpdateResult> result =
        ctx.prefer_host ? incremental_->ApplyUpdatesCpu(batch)
                        : incremental_->ApplyUpdates(batch);
    incremental_->set_cancel(nullptr);
    if (ctx.trace != nullptr && incremental_->device() != nullptr &&
        incremental_->device()->profiler() != nullptr) {
      const Trace& full = incremental_->device()->profiler()->trace();
      // Mid-batch recovery can also have replaced the device; a cursor past
      // the end means "new trace" and the slice restarts at zero.
      if (trace_exported_ > full.num_events()) trace_exported_ = 0;
      ctx.trace->AppendFrom(full, trace_exported_);
      trace_exported_ = full.num_events();
    }
    return result;
  }

  StatusOr<CsrGraph> UpdatedGraph() const override {
    if (incremental_ == nullptr) {
      return Status::FailedPrecondition(
          "gpu engine holds no update state (no ApplyUpdates batch applied)");
    }
    return incremental_->CurrentGraph();
  }

 private:
  EngineConfig config_;
  /// Persistent incremental-maintenance state (lazily seeded by the first
  /// ApplyUpdates); the single holder of the evolving serving graph.
  std::unique_ptr<IncrementalCoreEngine> incremental_;
  /// Events of the persistent device's profiler trace already exported to a
  /// request's Trace (per-batch slice cursor).
  size_t trace_exported_ = 0;
};

/// Sharded multi-GPU peeling engine.
class MultiGpuEngine : public Engine {
 public:
  explicit MultiGpuEngine(EngineConfig config) : config_(std::move(config)) {}

  EngineKind kind() const override { return EngineKind::kMultiGpu; }
  bool uses_device() const override { return true; }

  StatusOr<DecomposeResult> Decompose(const CsrGraph& graph,
                                      const EngineRunContext& ctx) override {
    MultiGpuOptions options = config_.multi_gpu;
    options.worker_device = RunDeviceOptions(options.worker_device, ctx);
    options.cancel = ctx.cancel;
    options.trace = ctx.trace;
    return RunMultiGpuPeel(graph, options);
  }

  Status HealthCheck(const EngineRunContext& ctx) override {
    sim::Device device(
        RunDeviceOptions(config_.multi_gpu.worker_device, ctx));
    return device.HealthCheck("serve_probe");
  }

 private:
  EngineConfig config_;
};

/// Simulated multi-node cluster engine.
class ClusterEngine : public Engine {
 public:
  explicit ClusterEngine(EngineConfig config) : config_(std::move(config)) {}

  EngineKind kind() const override { return EngineKind::kCluster; }
  bool uses_device() const override { return true; }

  StatusOr<DecomposeResult> Decompose(const CsrGraph& graph,
                                      const EngineRunContext& ctx) override {
    ClusterOptions options = config_.cluster;
    options.node_device = RunDeviceOptions(options.node_device, ctx);
    options.cancel = ctx.cancel;
    options.trace = ctx.trace;
    return RunClusterPeel(graph, options);
  }

  Status HealthCheck(const EngineRunContext& ctx) override {
    sim::Device device(RunDeviceOptions(config_.cluster.node_device, ctx));
    return device.HealthCheck("serve_probe");
  }

 private:
  EngineConfig config_;
};

/// Vector-primitive baseline engine.
class VetgaEngine : public Engine {
 public:
  explicit VetgaEngine(EngineConfig config) : config_(std::move(config)) {}

  EngineKind kind() const override { return EngineKind::kVetga; }
  bool uses_device() const override { return true; }

  StatusOr<DecomposeResult> Decompose(const CsrGraph& graph,
                                      const EngineRunContext& ctx) override {
    VetgaConfig config = config_.vetga;
    config.device = RunDeviceOptions(config.device, ctx);
    config.cancel = ctx.cancel;
    config.trace = ctx.trace;
    return RunVetga(graph, config);
  }

  Status HealthCheck(const EngineRunContext& ctx) override {
    sim::Device device(RunDeviceOptions(config_.vetga.device, ctx));
    return device.HealthCheck("serve_probe");
  }

 private:
  EngineConfig config_;
};

/// Host-algorithm engines share one wrapper: an entry cancellation check
/// (the host algorithms run to completion once started — they are fast
/// enough that round-boundary polling buys nothing) and no device.
class CpuEngine : public Engine {
 public:
  explicit CpuEngine(EngineKind kind) : kind_(kind) {}

  EngineKind kind() const override { return kind_; }
  bool uses_device() const override { return false; }

  StatusOr<DecomposeResult> Decompose(const CsrGraph& graph,
                                      const EngineRunContext& ctx) override {
    if (ctx.cancel != nullptr) {
      KCORE_RETURN_IF_ERROR(ctx.cancel->Check("cpu engine entry"));
    }
    switch (kind_) {
      case EngineKind::kBz:
        return RunBz(graph);
      case EngineKind::kPkc:
        return RunPkc(graph);
      case EngineKind::kPark:
        return RunParK(graph);
      case EngineKind::kMpm:
        return RunMpm(graph);
      default:
        return Status::Internal("CpuEngine built with a device engine kind");
    }
  }

  bool supports_updates() const override { return true; }

  StatusOr<UpdateResult> ApplyUpdates(const CsrGraph& initial,
                                      std::span<const EdgeUpdate> batch,
                                      const EngineRunContext& ctx) override {
    if (ctx.cancel != nullptr) {
      KCORE_RETURN_IF_ERROR(ctx.cancel->Check("cpu engine update entry"));
    }
    // Host engines share the exact traversal-locality maintenance path;
    // prefer_host is a no-op (this IS the host path).
    if (dynamic_ == nullptr) {
      dynamic_ = std::make_unique<DynamicKCore>(initial);
    }
    auto changed = dynamic_->ApplyBatch(batch);
    if (!changed.ok()) return changed.status();
    UpdateResult result;
    result.epoch = ++update_epoch_;
    result.changed = std::move(*changed);
    result.core = dynamic_->core();
    result.affected = dynamic_->last_update_evaluations();
    return result;
  }

  StatusOr<CsrGraph> UpdatedGraph() const override {
    if (dynamic_ == nullptr) {
      return Status::FailedPrecondition(StrFormat(
          "%s engine holds no update state (no ApplyUpdates batch applied)",
          name()));
    }
    return dynamic_->ToCsrGraph();
  }

 private:
  EngineKind kind_;
  /// Persistent host maintenance state (lazily seeded by ApplyUpdates).
  std::unique_ptr<DynamicKCore> dynamic_;
  uint64_t update_epoch_ = 0;
};

}  // namespace

std::unique_ptr<Engine> MakeEngine(EngineKind kind, EngineConfig config) {
  switch (kind) {
    case EngineKind::kGpu:
      return std::make_unique<GpuEngine>(std::move(config));
    case EngineKind::kMultiGpu:
      return std::make_unique<MultiGpuEngine>(std::move(config));
    case EngineKind::kCluster:
      return std::make_unique<ClusterEngine>(std::move(config));
    case EngineKind::kVetga:
      return std::make_unique<VetgaEngine>(std::move(config));
    case EngineKind::kBz:
    case EngineKind::kPkc:
    case EngineKind::kPark:
    case EngineKind::kMpm:
      return std::make_unique<CpuEngine>(kind);
  }
  return std::make_unique<CpuEngine>(EngineKind::kBz);
}

}  // namespace kcore
