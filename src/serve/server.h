#ifndef KCORE_SERVE_SERVER_H_
#define KCORE_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/timer.h"
#include "cusim/annotations.h"
#include "graph/csr_graph.h"
#include "graph/edge_update.h"
#include "perf/decompose_result.h"
#include "perf/trace.h"
#include "serve/engine.h"

namespace kcore {

/// What a request asks of the server.
enum class RequestType {
  /// Full decomposition: responds with core[v] for every vertex (and
  /// refreshes the server's cached decomposition).
  kFullDecompose,
  /// Direct k-core mining: membership + vertex list of the k-core.
  kSingleK,
  /// Point query: the core number of one vertex (cached decomposition).
  kCoreOf,
  /// Point query: the `limit` vertices of highest core number (cached
  /// decomposition; ties broken by ascending vertex id).
  kTopK,
  /// Edge-update batch: commits a new graph epoch on the primary engine's
  /// persistent incremental state and responds with the new epoch, the
  /// changed vertices, and the full coreness snapshot (in `core`).
  kApplyUpdates,
};

/// Admission classes. Point queries answer from the cached decomposition in
/// microseconds; update batches mutate the serving graph on the resident
/// incremental state (milliseconds); heavy requests run a full engine pass.
/// Separate bounded queues keep a burst of one class from starving the
/// others.
enum class RequestClass { kPoint, kUpdate, kHeavy };

/// Circuit-breaker state over the primary engine (DESIGN.md §12).
enum class BreakerState {
  kClosed,    ///< Primary engine healthy; requests run on it.
  kOpen,      ///< Tripped: requests answered by the CPU fallback (degraded).
  kHalfOpen,  ///< Cooldown elapsed: the next engine request probes primary.
};

KCORE_HOST_ONLY const char* BreakerStateName(BreakerState state);

/// One queued unit of work.
struct ServeRequest {
  RequestType type = RequestType::kCoreOf;
  /// kSingleK: the k to mine (>= 1).
  uint32_t k = 1;
  /// kCoreOf: the vertex to look up.
  VertexId v = 0;
  /// kTopK: how many vertices to return.
  uint32_t limit = 10;
  /// kApplyUpdates: the batch to commit (sequential semantics; the whole
  /// batch is rejected if any update is invalid and nothing is applied).
  std::vector<EdgeUpdate> updates;
  /// Expired requests are answered DeadlineExceeded — at admission, at
  /// dispatch, or at the engine's next round boundary, whichever comes
  /// first. Default = no deadline.
  Deadline deadline;
  /// Cooperative cancellation; not owned, must outlive the response.
  /// Cancelled requests are answered Cancelled on the same schedule.
  const CancelToken* cancel = nullptr;
  /// Non-null receives the engine run's simprof timeline (also for
  /// cancelled/expired runs — see EngineRunContext::trace). Not owned.
  Trace* trace = nullptr;
};

/// Per-request execution report, attached to every response — including
/// shed and failed ones (ISSUE: no request is silently dropped; every
/// submission is answered and accounted).
struct ServeMetrics {
  /// Admission-to-dispatch wall time. 0 for requests shed at admission.
  double queue_ms = 0.0;
  /// Dispatch-to-response wall time (engine + verification + fallback).
  double run_ms = 0.0;
  /// Fallback re-executions after a primary-engine failure (a request that
  /// dies on the GPU is immediately retried on the CPU, so it still gets an
  /// exact answer).
  uint32_t retries = 0;
  /// Answered by the CPU fallback path (breaker open, or the in-request
  /// retry after a primary failure). The answer is still exact.
  bool degraded = false;
  /// Rejected at admission by backpressure (status ResourceExhausted).
  bool shed = false;
  /// Point query answered from the warm cached decomposition.
  bool cache_hit = false;
  /// Load-shedding hint: suggested client backoff before resubmitting.
  /// Only set on shed responses.
  double retry_after_ms = 0.0;
  /// Admission order (1-based, monotonically increasing across classes).
  uint64_t sequence = 0;
  /// Dispatch order (1-based; 0 = never dispatched, i.e. shed).
  uint64_t run_order = 0;
  /// Breaker state observed at dispatch.
  BreakerState breaker = BreakerState::kClosed;
};

/// The answer to one request. `status` gates payload validity: on !ok()
/// only `metrics` is meaningful.
struct ServeResponse {
  Status status = Status::OK();
  /// kFullDecompose: core[v] per vertex.
  std::vector<uint32_t> core;
  /// kSingleK payload.
  SingleKCoreResult single_k;
  /// kCoreOf payload.
  uint32_t core_of = 0;
  /// kTopK payload: (vertex, core) pairs, core descending, id ascending.
  std::vector<std::pair<VertexId, uint32_t>> top;
  /// kApplyUpdates payload: the committed graph epoch after the batch and
  /// the vertices whose core number changed (ascending). The full post-batch
  /// coreness snapshot rides in `core`.
  uint64_t update_epoch = 0;
  std::vector<VertexId> update_changed;
  ServeMetrics metrics;
};

/// Aggregate serving statistics (all-time since construction).
struct ServerStats {
  uint64_t admitted = 0;   ///< Requests accepted into a queue.
  uint64_t completed = 0;  ///< Responses with status OK.
  uint64_t shed = 0;       ///< Rejected by backpressure at admission.
  uint64_t rejected = 0;   ///< Submitted after shutdown (FailedPrecondition).
  uint64_t cancelled = 0;  ///< Responses with status Cancelled.
  uint64_t deadline_exceeded = 0;  ///< Responses with DeadlineExceeded.
  uint64_t failed = 0;     ///< Responses with any other error status.
  uint64_t degraded = 0;   ///< OK responses answered by the CPU fallback.
  uint64_t cache_hits = 0;       ///< Point queries served from warm cache.
  uint64_t gpu_attempts = 0;     ///< Primary-engine runs started.
  uint64_t gpu_failures = 0;     ///< Primary-engine runs that failed.
  uint64_t breaker_trips = 0;    ///< Closed/HalfOpen -> Open transitions.
  uint64_t breaker_probes = 0;   ///< HalfOpen probe attempts.
  uint64_t breaker_recoveries = 0;  ///< HalfOpen -> Closed transitions.
  uint64_t updates_applied = 0;  ///< Committed kApplyUpdates batches.
  uint64_t update_edges = 0;     ///< Edge updates across committed batches.
  uint64_t graph_epoch = 0;      ///< Committed serving-graph epoch.
  BreakerState breaker = BreakerState::kClosed;
  uint64_t point_queue_depth = 0;  ///< Snapshot at stats() time.
  uint64_t update_queue_depth = 0;  ///< Snapshot at stats() time.
  uint64_t heavy_queue_depth = 0;  ///< Snapshot at stats() time.
};

/// Server tuning knobs.
struct ServerOptions {
  /// Primary engine requests run on while the breaker is closed.
  EngineKind engine = EngineKind::kGpu;
  /// Configuration handed to the primary engine. The server forces
  /// `gpu.resilience.cpu_fallback = false` (and the multi-GPU equivalent):
  /// engine-internal CPU fallback would hide permanent device loss from the
  /// breaker, leaving it closed while every request quietly degrades. The
  /// breaker IS the fallback policy at this layer; transient-op retries
  /// inside the engine stay on.
  EngineConfig engine_config;

  /// Bounded queue capacities; a Submit beyond capacity is shed
  /// immediately with ResourceExhausted and a retry-after hint.
  uint64_t point_queue_capacity = 1024;
  uint64_t update_queue_capacity = 256;
  uint64_t heavy_queue_capacity = 128;
  /// Anti-starvation: after this many consecutive point dispatches with
  /// lower-priority work waiting, one update/heavy request is dispatched.
  /// Point queries otherwise always go first (they are microseconds
  /// against the cache).
  uint32_t point_burst_limit = 16;
  /// Likewise one tier down: after this many consecutive update dispatches
  /// with heavy work waiting, one heavy request runs. Updates otherwise go
  /// before heavy requests (localized re-peel vs full decomposition).
  uint32_t update_burst_limit = 4;

  /// Consecutive primary-engine failures that trip the breaker open.
  uint32_t breaker_trip_threshold = 3;
  /// Requests served while open before the breaker goes half-open and
  /// probes the primary engine again. Request-count cooldown keeps the
  /// state machine deterministic under test (wall-clock cooldowns flake).
  uint32_t breaker_cooldown_requests = 8;

  /// Construct with the runner paused: requests queue but do not dispatch
  /// until Resume() (or Shutdown(), which drains). Lets tests fill queues
  /// deterministically; production servers leave this false.
  bool start_paused = false;

  /// Optional per-attempt fault-plan override for the primary engine
  /// (attempt = 0-based count of primary runs + probes). Non-null plans
  /// replace EngineConfig::device.fault_spec for that run; empty string =
  /// healthy device. Lets tests script "engine dies twice, then recovers"
  /// without wall-clock coupling. nullptr = use the configured plan.
  std::function<std::string(uint64_t attempt)> fault_plan_fn;
};

/// A long-lived k-core serving loop over one graph (ISSUE 8's tentpole):
/// bounded admission with load shedding, two-class priority dispatch,
/// deadline/cancellation enforcement down to engine round boundaries, and a
/// circuit breaker that degrades to exact CPU answers when the primary
/// engine keeps dying — the state machine DESIGN.md §12 documents
/// (admit -> queue -> run -> degrade/shed/cancel -> drain).
///
/// Threading: Submit/stats are thread-safe; one internal runner thread owns
/// every engine run (the engines below share the process-default thread
/// pool, which handles one batch at a time). Shutdown stops admission,
/// drains the queues, and joins the runner; the destructor calls it.
class KcoreServer {
 public:
  KCORE_HOST_ONLY explicit KcoreServer(CsrGraph graph,
                                       ServerOptions options = {});
  KCORE_HOST_ONLY ~KcoreServer();

  KcoreServer(const KcoreServer&) = delete;
  KcoreServer& operator=(const KcoreServer&) = delete;

  /// Admits `request` or sheds it. ALWAYS returns a future that becomes
  /// ready: with the answer, with Cancelled/DeadlineExceeded, with
  /// ResourceExhausted (shed; metrics.retry_after_ms set), or with
  /// FailedPrecondition after shutdown. Thread-safe.
  [[nodiscard]] KCORE_HOST_ONLY std::future<ServeResponse> Submit(
      ServeRequest request);

  /// Releases a start_paused runner. No-op otherwise.
  KCORE_HOST_ONLY void Resume();

  /// Stops admission, drains every queued request (each still runs and
  /// resolves its future — the clean-shutdown contract), and joins the
  /// runner. Idempotent; returns OK on the first call, FailedPrecondition
  /// afterwards.
  KCORE_HOST_ONLY Status Shutdown();

  KCORE_HOST_ONLY ServerStats stats() const;

  const CsrGraph& graph() const { return graph_; }

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    WallTimer queued;
    uint64_t sequence = 0;
  };

  KCORE_HOST_ONLY void RunnerLoop();
  KCORE_HOST_ONLY bool PopNext(Pending* out);
  KCORE_HOST_ONLY void Dispatch(Pending pending);
  KCORE_HOST_ONLY void Answer(Pending pending, ServeResponse response);

  /// Runs `fn` (a primary-engine invocation) under the breaker policy,
  /// falling back to `fallback` for an exact degraded answer. See .cc.
  template <typename Result>
  KCORE_HOST_ONLY StatusOr<Result> RunWithBreaker(
      const CancelContext& cancel, Trace* trace, ServeMetrics* metrics,
      const std::function<StatusOr<Result>(Engine*, const EngineRunContext&)>&
          fn);

  /// Runs an update batch under the breaker policy. Unlike RunWithBreaker,
  /// the degraded path is the SAME primary engine's exact host maintenance
  /// path (EngineRunContext::prefer_host) — routing updates to a second
  /// engine would fork the committed epoch history. See .cc.
  KCORE_HOST_ONLY StatusOr<UpdateResult> RunUpdate(
      const CancelContext& cancel, Trace* trace, ServeMetrics* metrics,
      std::span<const EdgeUpdate> batch);

  /// The graph heavy requests and the fallback run against: the original
  /// construction graph until the first committed update batch, the
  /// materialized committed graph afterwards. Runner-thread only.
  KCORE_HOST_ONLY const CsrGraph& ServingGraph() const {
    return graph_epoch_ == 0 ? graph_ : updated_graph_;
  }

  /// Ensures cache_core_ holds a decomposition of the CURRENT graph epoch
  /// (running one if cold or stale — a committed update invalidates it).
  KCORE_HOST_ONLY Status EnsureCache(const CancelContext& cancel,
                                     Trace* trace, ServeMetrics* metrics);

  /// Breaker bookkeeping; all called with mu_ held.
  KCORE_HOST_ONLY bool AllowPrimaryLocked() const;
  KCORE_HOST_ONLY void OnPrimarySuccessLocked();
  KCORE_HOST_ONLY void OnPrimaryFailureLocked();
  KCORE_HOST_ONLY void OnFallbackServedLocked();

  const CsrGraph graph_;
  ServerOptions options_;
  std::unique_ptr<Engine> primary_;
  std::unique_ptr<Engine> fallback_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Pending> point_queue_;
  std::deque<Pending> update_queue_;
  std::deque<Pending> heavy_queue_;
  bool paused_ = false;
  bool shutting_down_ = false;
  bool runner_exited_ = false;
  uint32_t point_burst_ = 0;
  uint32_t update_burst_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t next_run_order_ = 0;
  double last_heavy_run_ms_ = 1.0;   // retry-after estimator seeds
  double last_update_run_ms_ = 1.0;

  // Breaker state (guarded by mu_).
  BreakerState breaker_ = BreakerState::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t open_served_ = 0;

  ServerStats stats_;  // guarded by mu_

  // Runner-thread-only state (no lock needed).
  std::vector<uint32_t> cache_core_;
  bool cache_warm_ = false;
  /// Graph epoch the cached decomposition was computed at; a committed
  /// update advances graph_epoch_, making an older cache stale (the fix for
  /// point queries answering from a pre-update decomposition).
  uint64_t cache_epoch_ = 0;
  uint64_t graph_epoch_ = 0;
  /// Materialized committed graph after the first update batch (see
  /// ServingGraph()); empty and unused before that.
  CsrGraph updated_graph_;

  std::thread runner_;
};

}  // namespace kcore

#endif  // KCORE_SERVE_SERVER_H_
