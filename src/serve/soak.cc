#include "serve/soak.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "common/timer.h"
#include "cpu/bz.h"
#include "graph/graph_builder.h"

namespace kcore {

namespace {

/// Everything the driver needs to verify one in-flight request later.
struct InFlight {
  std::future<ServeResponse> future;
  RequestType type = RequestType::kCoreOf;
  uint32_t k = 1;
  VertexId v = 0;
  uint32_t limit = 0;
  /// Owned token for driver-side cancellation (must outlive the response).
  std::unique_ptr<CancelToken> token;
};

/// Driver-side mirror of the evolving serving graph: generates
/// sequentially-valid update batches and rebuilds the oracle graph after
/// each committed batch (the referee never trusts the server's state).
class SoakGraphMirror {
 public:
  explicit SoakGraphMirror(const CsrGraph& g) : n_(g.NumVertices()) {
    for (VertexId v = 0; v < n_; ++v) {
      for (VertexId u : g.Neighbors(v)) {
        if (v < u) edges_.insert({v, u});
      }
    }
  }

  /// Each update is judged against the net state so far, so the batch
  /// passes the engines' sequential-semantics validation by construction.
  UpdateBatch RandomBatch(Rng& rng, size_t size, double insert_bias) {
    UpdateBatch batch;
    std::set<std::pair<VertexId, VertexId>> state = edges_;
    while (batch.size() < size) {
      const bool insert =
          rng.UniformInt(1000) < static_cast<uint64_t>(insert_bias * 1000);
      if (insert) {
        const VertexId u = static_cast<VertexId>(rng.UniformInt(n_));
        const VertexId v = static_cast<VertexId>(rng.UniformInt(n_));
        if (u == v) continue;
        const auto key = std::minmax(u, v);
        if (state.count({key.first, key.second}) != 0) continue;
        state.insert({key.first, key.second});
        batch.push_back(EdgeUpdate::Insert(u, v));
      } else {
        if (state.empty()) continue;
        auto it = state.begin();
        std::advance(it, rng.UniformInt(state.size()));
        batch.push_back(EdgeUpdate::Remove(it->first, it->second));
        state.erase(it);
      }
    }
    return batch;
  }

  void Apply(const UpdateBatch& batch) {
    for (const EdgeUpdate& e : batch) {
      const auto key = std::minmax(e.u, e.v);
      if (e.kind == EdgeUpdate::Kind::kInsert) {
        edges_.insert({key.first, key.second});
      } else {
        edges_.erase({key.first, key.second});
      }
    }
  }

  CsrGraph ToGraph() const {
    EdgeList list;
    for (const auto& [u, v] : edges_) list.push_back({u, v});
    return BuildUndirectedGraphWithVertexCount(list, n_);
  }

 private:
  VertexId n_;
  std::set<std::pair<VertexId, VertexId>> edges_;
};

LatencyStats Percentiles(std::vector<double> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const size_t index = static_cast<size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(index, samples.size() - 1)];
  };
  stats.p50 = at(0.50);
  stats.p90 = at(0.90);
  stats.p99 = at(0.99);
  stats.max = samples.back();
  return stats;
}

}  // namespace

StatusOr<SoakReport> RunSoak(const CsrGraph& graph,
                             const SoakOptions& options) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return Status::InvalidArgument("soak: empty graph");
  if (options.point_fraction + options.single_k_fraction > 1.0) {
    return Status::InvalidArgument(
        "soak: point_fraction + single_k_fraction must be <= 1");
  }

  const bool mutating =
      options.update_fraction > 0.0 && options.update_batch > 0;
  if (mutating &&
      !MakeEngine(options.server.engine)->supports_updates()) {
    return Status::InvalidArgument(StrFormat(
        "soak: update_fraction > 0 but the %s engine does not maintain an "
        "updatable decomposition",
        EngineKindName(options.server.engine)));
  }

  WallTimer total_timer;
  // The oracle is pure host code: immune to KCORE_FAULTS by construction,
  // which is what makes it a trustworthy referee under chaos. Under a
  // mutating workload it is rebuilt from the driver's own mirror after each
  // committed batch.
  DecomposeResult oracle = RunBz(graph);
  uint32_t k_max = oracle.MaxCore();

  // Deterministic expected top-k list (core descending, id ascending);
  // verified answers compare against its prefix.
  std::vector<std::pair<VertexId, uint32_t>> expected_top;
  const auto rebuild_expected_top = [&] {
    expected_top.clear();
    expected_top.reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      expected_top.emplace_back(v, oracle.core[v]);
    }
    std::sort(expected_top.begin(), expected_top.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
  };
  rebuild_expected_top();
  SoakGraphMirror mirror(graph);

  KcoreServer server(graph, options.server);
  Rng rng(options.seed);
  SoakReport report;
  report.requests = options.num_requests;
  std::vector<double> queue_samples;
  std::vector<double> run_samples;
  queue_samples.reserve(options.num_requests);
  run_samples.reserve(options.num_requests);

  const auto verify = [&](const InFlight& meta, const ServeResponse& resp) {
    if (resp.metrics.shed) {
      ++report.shed;
      return;
    }
    const Status& status = resp.status;
    if (status.IsCancelled()) {
      ++report.cancelled;
      return;
    }
    if (status.IsDeadlineExceeded()) {
      ++report.deadline_exceeded;
      return;
    }
    if (!status.ok()) {
      ++report.failed;
      return;
    }
    ++report.completed;
    if (resp.metrics.degraded) ++report.degraded;
    if (resp.metrics.cache_hit) ++report.cache_hits;
    queue_samples.push_back(resp.metrics.queue_ms);
    run_samples.push_back(resp.metrics.run_ms);
    switch (meta.type) {
      case RequestType::kFullDecompose:
        if (resp.core != oracle.core) ++report.mismatches;
        break;
      case RequestType::kSingleK: {
        if (resp.single_k.in_core.size() != oracle.core.size()) {
          ++report.mismatches;
          break;
        }
        for (VertexId v = 0; v < n; ++v) {
          const bool expected = oracle.core[v] >= meta.k;
          if ((resp.single_k.in_core[v] != 0) != expected) {
            ++report.mismatches;
            break;
          }
        }
        break;
      }
      case RequestType::kCoreOf:
        if (resp.core_of != oracle.core[meta.v]) ++report.mismatches;
        break;
      case RequestType::kTopK: {
        const size_t want = std::min<size_t>(meta.limit, expected_top.size());
        if (resp.top.size() != want ||
            !std::equal(resp.top.begin(), resp.top.end(),
                        expected_top.begin())) {
          ++report.mismatches;
        }
        break;
      }
      case RequestType::kApplyUpdates:
        // Updates settle synchronously at their sync point (below), never
        // through the in-flight window.
        break;
    }
  };

  std::deque<InFlight> inflight;
  const auto settle_front = [&]() {
    InFlight meta = std::move(inflight.front());
    inflight.pop_front();
    // A live server always resolves (that is the Submit contract); the
    // generous bound only turns a harness deadlock into a counted failure
    // instead of a hung soak.
    if (meta.future.wait_for(std::chrono::seconds(120)) !=
        std::future_status::ready) {
      ++report.unresolved;
      return;
    }
    verify(meta, meta.future.get());
  };

  uint64_t expected_epoch = 0;
  for (uint64_t i = 0; i < options.num_requests; ++i) {
    // Mutation slice. The extra RNG draw is only consumed under a mutating
    // workload, so read-only soaks replay their legacy request streams.
    if (mutating && rng.Bernoulli(options.update_fraction)) {
      while (!inflight.empty()) settle_front();
      const UpdateBatch batch =
          mirror.RandomBatch(rng, options.update_batch, 0.55);
      ServeRequest request;
      request.type = RequestType::kApplyUpdates;
      request.updates = batch;
      ++report.updates;
      std::future<ServeResponse> future = server.Submit(std::move(request));
      if (future.wait_for(std::chrono::seconds(120)) !=
          std::future_status::ready) {
        ++report.unresolved;
        continue;
      }
      const ServeResponse resp = future.get();
      if (resp.metrics.shed) {
        ++report.shed;
        continue;
      }
      if (!resp.status.ok()) {
        ++report.failed;
        continue;
      }
      ++report.completed;
      if (resp.metrics.degraded) ++report.degraded;
      queue_samples.push_back(resp.metrics.queue_ms);
      run_samples.push_back(resp.metrics.run_ms);
      // Commit the mirror and re-referee: post-batch coreness must match a
      // fresh BZ bit-for-bit, and the changed set must be the exact diff.
      const std::vector<uint32_t> before = oracle.core;
      mirror.Apply(batch);
      oracle = RunBz(mirror.ToGraph());
      k_max = oracle.MaxCore();
      rebuild_expected_top();
      std::vector<VertexId> expected_changed;
      for (VertexId v = 0; v < n; ++v) {
        if (before[v] != oracle.core[v]) expected_changed.push_back(v);
      }
      ++expected_epoch;
      if (resp.core != oracle.core ||
          resp.update_changed != expected_changed ||
          resp.update_epoch != expected_epoch) {
        ++report.mismatches;
      }
      ++report.updates_committed;
      report.update_edges += batch.size();
      continue;
    }
    InFlight meta;
    ServeRequest request;
    const double dice = rng.UniformReal();
    if (dice < options.point_fraction) {
      if (rng.Bernoulli(0.5)) {
        request.type = RequestType::kCoreOf;
        request.v = static_cast<VertexId>(rng.UniformInt(n));
        meta.v = request.v;
      } else {
        request.type = RequestType::kTopK;
        request.limit = 1 + static_cast<uint32_t>(rng.UniformInt(24));
        meta.limit = request.limit;
      }
    } else if (dice < options.point_fraction + options.single_k_fraction) {
      request.type = RequestType::kSingleK;
      request.k = 1 + static_cast<uint32_t>(rng.UniformInt(k_max + 2));
      meta.k = request.k;
    } else {
      request.type = RequestType::kFullDecompose;
    }
    meta.type = request.type;
    const bool cancel_this = rng.Bernoulli(options.cancel_fraction);
    if (cancel_this) {
      meta.token = std::make_unique<CancelToken>();
      request.cancel = meta.token.get();
    }
    if (rng.Bernoulli(options.deadline_fraction)) {
      request.deadline = Deadline::AfterMillis(0.01);
    }
    meta.future = server.Submit(std::move(request));
    if (cancel_this) meta.token->Cancel();
    inflight.push_back(std::move(meta));
    while (inflight.size() >= options.max_inflight) settle_front();
  }
  while (!inflight.empty()) settle_front();

  // Clean shutdown: admission stops, anything still queued drains. Every
  // future was already settled above, so this mainly asserts the runner
  // exits; a second Shutdown (the destructor) is a no-op.
  (void)server.Shutdown();
  report.server = server.stats();
  report.queue_ms = Percentiles(std::move(queue_samples));
  report.run_ms = Percentiles(std::move(run_samples));
  report.wall_ms = total_timer.ElapsedMillis();
  return report;
}

std::string SoakReportJson(const std::string& label, const CsrGraph& graph,
                           const SoakOptions& options,
                           const SoakReport& report) {
  std::string fault_spec = options.server.engine_config.device.fault_spec;
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("KCORE_FAULTS")) fault_spec = env;
  }
  const auto latency = [](const LatencyStats& stats) {
    return StrFormat(
        "{\"p50\": %.4f, \"p90\": %.4f, \"p99\": %.4f, \"max\": %.4f}",
        stats.p50, stats.p90, stats.p99, stats.max);
  };
  std::string json = "{\n";
  json += StrFormat("  \"bench\": \"serving\",\n  \"label\": \"%s\",\n",
                    label.c_str());
  json += StrFormat(
      "  \"graph\": {\"vertices\": %u, \"edges\": %llu},\n",
      graph.NumVertices(),
      static_cast<unsigned long long>(graph.NumUndirectedEdges()));
  json += StrFormat(
      "  \"workload\": {\"requests\": %llu, \"seed\": %llu, "
      "\"engine\": \"%s\", \"point_fraction\": %.2f, "
      "\"single_k_fraction\": %.2f, \"cancel_fraction\": %.2f, "
      "\"deadline_fraction\": %.2f, \"max_inflight\": %u, "
      "\"fault_spec\": \"%s\"},\n",
      static_cast<unsigned long long>(options.num_requests),
      static_cast<unsigned long long>(options.seed),
      EngineKindName(options.server.engine), options.point_fraction,
      options.single_k_fraction, options.cancel_fraction,
      options.deadline_fraction, options.max_inflight, fault_spec.c_str());
  if (options.update_fraction > 0.0) {
    // Mutation-slice block only under a mutating workload, keeping the
    // committed read-only BENCH_serving.json byte-stable.
    json.insert(json.size() - 3,
                StrFormat(", \"update_fraction\": %.2f, "
                          "\"update_batch\": %u",
                          options.update_fraction, options.update_batch));
    json += StrFormat(
        "  \"updates\": {\"submitted\": %llu, \"committed\": %llu, "
        "\"edges\": %llu, \"graph_epoch\": %llu},\n",
        static_cast<unsigned long long>(report.updates),
        static_cast<unsigned long long>(report.updates_committed),
        static_cast<unsigned long long>(report.update_edges),
        static_cast<unsigned long long>(report.server.graph_epoch));
  }
  json += StrFormat(
      "  \"report\": {\n"
      "    \"completed\": %llu, \"shed\": %llu, \"cancelled\": %llu,\n"
      "    \"deadline_exceeded\": %llu, \"failed\": %llu, "
      "\"degraded\": %llu,\n"
      "    \"cache_hits\": %llu, \"mismatches\": %llu, "
      "\"unresolved\": %llu,\n",
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.cancelled),
      static_cast<unsigned long long>(report.deadline_exceeded),
      static_cast<unsigned long long>(report.failed),
      static_cast<unsigned long long>(report.degraded),
      static_cast<unsigned long long>(report.cache_hits),
      static_cast<unsigned long long>(report.mismatches),
      static_cast<unsigned long long>(report.unresolved));
  json += StrFormat("    \"queue_ms\": %s,\n    \"run_ms\": %s,\n",
                    latency(report.queue_ms).c_str(),
                    latency(report.run_ms).c_str());
  json += StrFormat(
      "    \"server\": {\"gpu_attempts\": %llu, \"gpu_failures\": %llu, "
      "\"breaker_trips\": %llu, \"breaker_probes\": %llu, "
      "\"breaker_recoveries\": %llu, \"final_breaker\": \"%s\"},\n",
      static_cast<unsigned long long>(report.server.gpu_attempts),
      static_cast<unsigned long long>(report.server.gpu_failures),
      static_cast<unsigned long long>(report.server.breaker_trips),
      static_cast<unsigned long long>(report.server.breaker_probes),
      static_cast<unsigned long long>(report.server.breaker_recoveries),
      BreakerStateName(report.server.breaker));
  json += StrFormat("    \"wall_ms\": %.3f\n  }\n}\n", report.wall_ms);
  return json;
}

std::string SoakReportSummary(const SoakReport& report) {
  std::string updates;
  if (report.updates > 0) {
    updates = StrFormat(
        " | %llu updates (%llu committed, %llu edges)",
        static_cast<unsigned long long>(report.updates),
        static_cast<unsigned long long>(report.updates_committed),
        static_cast<unsigned long long>(report.update_edges));
  }
  return StrFormat(
      "soak: %llu req | %llu ok (%llu degraded, %llu cache-hit) | "
      "%llu shed | %llu cancelled | %llu deadline | %llu failed | "
      "%llu mismatches | %llu unresolved%s | breaker trips %llu | "
      "p99 queue %.2f ms, p99 run %.2f ms | %.0f ms total",
      static_cast<unsigned long long>(report.requests),
      static_cast<unsigned long long>(report.completed),
      static_cast<unsigned long long>(report.degraded),
      static_cast<unsigned long long>(report.cache_hits),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.cancelled),
      static_cast<unsigned long long>(report.deadline_exceeded),
      static_cast<unsigned long long>(report.failed),
      static_cast<unsigned long long>(report.mismatches),
      static_cast<unsigned long long>(report.unresolved), updates.c_str(),
      static_cast<unsigned long long>(report.server.breaker_trips),
      report.queue_ms.p99, report.run_ms.p99, report.wall_ms);
}

}  // namespace kcore
