#ifndef KCORE_GENERATORS_CITATION_H_
#define KCORE_GENERATORS_CITATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.h"

namespace kcore {

/// A paper in the synthetic temporal citation corpus (stands in for the
/// ArnetMiner dataset of the paper's Fig. 10 case study).
struct Paper {
  uint32_t year = 0;
  std::vector<uint32_t> authors;     ///< Author IDs.
  std::vector<uint32_t> references;  ///< Indices of cited (earlier) papers.
};

struct CitationCorpus {
  std::vector<Paper> papers;
  uint32_t num_authors = 0;
};

/// Controls corpus growth. Authors belong to topic communities; papers cite
/// mostly within their community and preferentially cite highly-cited work,
/// and each community's author pool drifts over time so early-active authors
/// fall out of later cores (the Fig. 10 phenomenon).
struct CitationOptions {
  uint32_t num_papers = 20000;
  uint32_t num_authors = 3000;
  uint32_t num_topics = 10;           ///< As in the ArnetMiner subset used.
  uint32_t first_year = 1980;
  uint32_t last_year = 2000;
  uint32_t min_authors_per_paper = 1;
  uint32_t max_authors_per_paper = 4;
  uint32_t citations_per_paper = 8;
  double cross_topic_citation_prob = 0.1;
  /// Fraction of each community's author pool active at any one time; the
  /// active window slides with the years.
  double active_fraction = 0.35;
  uint64_t seed = 42;
};

/// Generates a reproducible synthetic citation corpus.
CitationCorpus GenerateCitationCorpus(const CitationOptions& options);

/// Builds the author interaction network of papers published in or before
/// `cutoff_year`: an (undirected) edge (u,v) exists iff some paper
/// (co-)authored by u within the cutoff cites a paper (co-)authored by v
/// (paper §VI Case Study preprocessing).
EdgeList BuildAuthorInteractionEdges(const CitationCorpus& corpus,
                                     uint32_t cutoff_year);

}  // namespace kcore

#endif  // KCORE_GENERATORS_CITATION_H_
