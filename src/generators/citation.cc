#include "generators/citation.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace kcore {

CitationCorpus GenerateCitationCorpus(const CitationOptions& options) {
  KCORE_CHECK_GE(options.num_topics, 1u);
  KCORE_CHECK_GE(options.num_authors, options.num_topics);
  KCORE_CHECK_LE(options.first_year, options.last_year);
  KCORE_CHECK_GE(options.min_authors_per_paper, 1u);
  KCORE_CHECK_GE(options.max_authors_per_paper,
                 options.min_authors_per_paper);
  Rng rng(options.seed);

  CitationCorpus corpus;
  corpus.num_authors = options.num_authors;
  corpus.papers.reserve(options.num_papers);

  const uint32_t authors_per_topic = options.num_authors / options.num_topics;
  const uint32_t num_years = options.last_year - options.first_year + 1;

  // citation_count[p] + 1 drives preferential citing.
  std::vector<uint32_t> citation_count;
  citation_count.reserve(options.num_papers);
  // Per-topic list of paper indices, for within-topic citations.
  std::vector<std::vector<uint32_t>> topic_papers(options.num_topics);
  std::vector<uint32_t> paper_topic;
  paper_topic.reserve(options.num_papers);

  for (uint32_t p = 0; p < options.num_papers; ++p) {
    Paper paper;
    // Years increase with paper index so references always point backward.
    const uint32_t year_index =
        static_cast<uint32_t>((static_cast<uint64_t>(p) * num_years) /
                              options.num_papers);
    paper.year = options.first_year + year_index;

    const auto topic = static_cast<uint32_t>(
        rng.UniformInt(options.num_topics));

    // Active author window for this topic slides with time: authors are
    // ordered within the topic, and the window start advances with the year.
    const auto window_size = std::max<uint32_t>(
        2, static_cast<uint32_t>(authors_per_topic * options.active_fraction));
    const uint32_t slide_range =
        authors_per_topic > window_size ? authors_per_topic - window_size : 0;
    const uint32_t window_start =
        num_years <= 1
            ? 0
            : static_cast<uint32_t>(
                  (static_cast<uint64_t>(year_index) * slide_range) /
                  (num_years - 1));

    const auto num_paper_authors = static_cast<uint32_t>(rng.UniformRange(
        options.min_authors_per_paper, options.max_authors_per_paper));
    for (uint32_t a = 0; a < num_paper_authors; ++a) {
      const uint32_t local =
          window_start + static_cast<uint32_t>(rng.UniformInt(window_size));
      const uint32_t author =
          topic * authors_per_topic + std::min(local, authors_per_topic - 1);
      if (std::find(paper.authors.begin(), paper.authors.end(), author) ==
          paper.authors.end()) {
        paper.authors.push_back(author);
      }
    }

    // Citations: preferential within topic, occasionally across topics.
    for (uint32_t c = 0; c < options.citations_per_paper; ++c) {
      const uint32_t cite_topic =
          rng.Bernoulli(options.cross_topic_citation_prob)
              ? static_cast<uint32_t>(rng.UniformInt(options.num_topics))
              : topic;
      const auto& pool = topic_papers[cite_topic];
      if (pool.empty()) continue;
      // Two-candidate preferential choice: pick two uniform candidates, keep
      // the more-cited one. Cheap approximation of degree-proportional.
      const uint32_t cand1 = pool[rng.UniformInt(pool.size())];
      const uint32_t cand2 = pool[rng.UniformInt(pool.size())];
      const uint32_t cited =
          citation_count[cand1] >= citation_count[cand2] ? cand1 : cand2;
      if (std::find(paper.references.begin(), paper.references.end(),
                    cited) == paper.references.end()) {
        paper.references.push_back(cited);
        ++citation_count[cited];
      }
    }

    topic_papers[topic].push_back(p);
    paper_topic.push_back(topic);
    citation_count.push_back(0);
    corpus.papers.push_back(std::move(paper));
  }
  return corpus;
}

EdgeList BuildAuthorInteractionEdges(const CitationCorpus& corpus,
                                     uint32_t cutoff_year) {
  EdgeList edges;
  for (const Paper& paper : corpus.papers) {
    if (paper.year > cutoff_year) continue;
    // Co-authorship also links authors (they interacted on the paper).
    for (size_t i = 0; i < paper.authors.size(); ++i) {
      for (size_t j = i + 1; j < paper.authors.size(); ++j) {
        edges.push_back({paper.authors[i], paper.authors[j]});
      }
    }
    for (uint32_t ref : paper.references) {
      const Paper& cited = corpus.papers[ref];
      if (cited.year > cutoff_year) continue;
      for (uint32_t citing_author : paper.authors) {
        for (uint32_t cited_author : cited.authors) {
          if (citing_author != cited_author) {
            edges.push_back({citing_author, cited_author});
          }
        }
      }
    }
  }
  return edges;
}

}  // namespace kcore
