#include "generators/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace kcore {

namespace {

/// Packs an unordered pair into one key for dedup during sampling.
uint64_t PairKey(uint32_t u, uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

EdgeList GenerateErdosRenyi(uint32_t num_vertices, uint64_t num_edges,
                            uint64_t seed) {
  KCORE_CHECK_GE(num_vertices, 2u);
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  KCORE_CHECK_LE(num_edges, max_edges);
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  EdgeList edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    const auto u = static_cast<uint32_t>(rng.UniformInt(num_vertices));
    const auto v = static_cast<uint32_t>(rng.UniformInt(num_vertices));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) edges.push_back({u, v});
  }
  return edges;
}

EdgeList GenerateBarabasiAlbert(uint32_t num_vertices,
                                uint32_t edges_per_vertex, uint64_t seed) {
  KCORE_CHECK_GE(edges_per_vertex, 1u);
  KCORE_CHECK_GT(num_vertices, edges_per_vertex);
  Rng rng(seed);
  EdgeList edges;
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // realizes degree-proportional (preferential) attachment.
  std::vector<uint32_t> targets;
  targets.reserve(static_cast<size_t>(num_vertices) * edges_per_vertex * 2);

  // Seed clique over the first edges_per_vertex+1 vertices.
  const uint32_t seed_n = edges_per_vertex + 1;
  for (uint32_t u = 0; u < seed_n; ++u) {
    for (uint32_t v = u + 1; v < seed_n; ++v) {
      edges.push_back({u, v});
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::unordered_set<uint32_t> chosen;
  for (uint32_t v = seed_n; v < num_vertices; ++v) {
    chosen.clear();
    while (chosen.size() < edges_per_vertex) {
      const uint32_t u = targets[rng.UniformInt(targets.size())];
      chosen.insert(u);
    }
    for (uint32_t u : chosen) {
      edges.push_back({u, v});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return edges;
}

EdgeList GenerateRmat(const RmatOptions& options) {
  const double total = options.a + options.b + options.c + options.d;
  KCORE_CHECK(std::abs(total - 1.0) < 1e-9);
  const uint32_t n = 1u << options.scale;
  Rng rng(options.seed);
  EdgeList edges;
  edges.reserve(options.num_edges);
  for (uint64_t i = 0; i < options.num_edges; ++i) {
    uint32_t u = 0;
    uint32_t v = 0;
    for (uint32_t bit = options.scale; bit-- > 0;) {
      const double r = rng.UniformReal();
      if (r < options.a) {
        // top-left: no bits set
      } else if (r < options.a + options.b) {
        v |= 1u << bit;
      } else if (r < options.a + options.b + options.c) {
        u |= 1u << bit;
      } else {
        u |= 1u << bit;
        v |= 1u << bit;
      }
    }
    if (u == v) {
      --i;  // resample self-loops to keep the edge budget
      continue;
    }
    edges.push_back({u, v});
    (void)n;
  }
  return edges;
}

EdgeList GenerateChungLuPowerLaw(uint32_t num_vertices, uint64_t num_edges,
                                 double exponent, uint64_t seed) {
  KCORE_CHECK_GT(exponent, 2.0);
  KCORE_CHECK_GE(num_vertices, 2u);
  Rng rng(seed);

  // Expected-degree weights w_i ~ (i+1)^(-1/(exponent-1)).
  std::vector<double> prefix(num_vertices + 1, 0.0);
  const double gamma = 1.0 / (exponent - 1.0);
  for (uint32_t i = 0; i < num_vertices; ++i) {
    prefix[i + 1] = prefix[i] + std::pow(static_cast<double>(i + 1), -gamma);
  }
  const double total_weight = prefix[num_vertices];

  auto sample_vertex = [&]() -> uint32_t {
    const double target = rng.UniformReal() * total_weight;
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
    const auto idx = static_cast<uint32_t>(it - prefix.begin());
    return idx == 0 ? 0 : std::min(idx - 1, num_vertices - 1);
  };

  EdgeList edges;
  edges.reserve(num_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  uint64_t attempts = 0;
  const uint64_t max_attempts = num_edges * 50 + 1000;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    const uint32_t u = sample_vertex();
    const uint32_t v = sample_vertex();
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) edges.push_back({u, v});
  }
  return edges;
}

EdgeList OverlayPlantedCore(EdgeList background, uint32_t num_vertices,
                            const PlantedCoreOptions& options, uint64_t seed) {
  KCORE_CHECK_LE(options.core_size, num_vertices);
  Rng rng(seed);

  // Choose the planted community by reservoir-free partial Fisher–Yates.
  std::vector<uint32_t> pool(num_vertices);
  for (uint32_t i = 0; i < num_vertices; ++i) pool[i] = i;
  for (uint32_t i = 0; i < options.core_size; ++i) {
    const auto j =
        static_cast<uint32_t>(i + rng.UniformInt(num_vertices - i));
    std::swap(pool[i], pool[j]);
  }

  for (uint32_t i = 0; i < options.core_size; ++i) {
    for (uint32_t j = i + 1; j < options.core_size; ++j) {
      if (rng.Bernoulli(options.core_density)) {
        background.push_back({pool[i], pool[j]});
      }
    }
  }
  return background;
}

EdgeList GenerateHubGraph(const HubGraphOptions& options, uint64_t seed) {
  KCORE_CHECK_GT(options.num_vertices, options.num_hubs);
  Rng rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<size_t>(options.num_vertices) *
                    options.spokes_per_vertex +
                options.background_edges);

  // Hubs are vertices [0, num_hubs); they form a clique among themselves.
  for (uint32_t h1 = 0; h1 < options.num_hubs; ++h1) {
    for (uint32_t h2 = h1 + 1; h2 < options.num_hubs; ++h2) {
      edges.push_back({h1, h2});
    }
  }
  for (uint32_t v = options.num_hubs; v < options.num_vertices; ++v) {
    for (uint32_t s = 0; s < options.spokes_per_vertex; ++s) {
      const auto hub = static_cast<uint32_t>(rng.UniformInt(options.num_hubs));
      edges.push_back({hub, v});
    }
  }
  // Sparse uniform background so the graph is not a pure star forest.
  for (uint64_t i = 0; i < options.background_edges; ++i) {
    const auto u = static_cast<uint32_t>(rng.UniformInt(options.num_vertices));
    const auto v = static_cast<uint32_t>(rng.UniformInt(options.num_vertices));
    if (u != v) edges.push_back({u, v});
  }
  return edges;
}

EdgeList GenerateSkewedPowerLaw(const SkewedPowerLawOptions& options,
                                uint64_t seed) {
  KCORE_CHECK_GT(options.num_vertices, options.num_hubs + options.hub_degree);
  Rng rng(seed);
  // Chung–Lu already gives the first vertices the largest expected degrees,
  // so making them the hubs compounds the skew instead of diluting it.
  EdgeList edges = GenerateChungLuPowerLaw(options.num_vertices,
                                           options.tail_edges,
                                           options.exponent, seed * 31 + 7);
  std::unordered_set<uint32_t> spokes;
  spokes.reserve(options.hub_degree * 2);
  for (uint32_t h = 0; h < options.num_hubs; ++h) {
    spokes.clear();
    while (spokes.size() < options.hub_degree) {
      const auto v = static_cast<uint32_t>(
          options.num_hubs +
          rng.UniformInt(options.num_vertices - options.num_hubs));
      if (spokes.insert(v).second) edges.push_back({h, v});
    }
  }
  return edges;
}

}  // namespace kcore
