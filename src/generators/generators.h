#ifndef KCORE_GENERATORS_GENERATORS_H_
#define KCORE_GENERATORS_GENERATORS_H_

#include <cstdint>

#include "graph/edge_list.h"

namespace kcore {

/// Erdős–Rényi G(n, m): m edges sampled uniformly without replacement from
/// all unordered pairs (no self-loops). Endpoints are dense in [0, n).
EdgeList GenerateErdosRenyi(uint32_t num_vertices, uint64_t num_edges,
                            uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices chosen
/// proportionally to degree. Produces heavy-tailed collaboration-network-like
/// degree distributions with k_max ~= edges_per_vertex.
EdgeList GenerateBarabasiAlbert(uint32_t num_vertices,
                                uint32_t edges_per_vertex, uint64_t seed);

/// Parameters for the RMAT recursive-matrix generator (web-graph-like).
struct RmatOptions {
  uint32_t scale = 16;       ///< Vertices = 2^scale.
  uint64_t num_edges = 1 << 20;
  double a = 0.57;           ///< Quadrant probabilities; must sum to 1.
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  uint64_t seed = 1;
};

/// RMAT generator (Chakrabarti et al.); skewed degrees, community structure.
EdgeList GenerateRmat(const RmatOptions& options);

/// Chung–Lu graph with power-law expected degrees: weight of vertex i is
/// proportional to (i+1)^(-1/(exponent-1)), scaled so the expected edge count
/// is `num_edges`. Produces power-law degree sequences with tunable skew.
EdgeList GenerateChungLuPowerLaw(uint32_t num_vertices, uint64_t num_edges,
                                 double exponent, uint64_t seed);

/// Overlay configuration for graphs with a planted dense core, used to reach
/// the high k_max values of web crawls (Table I: in-2004, indochina-2004...).
struct PlantedCoreOptions {
  uint32_t core_size = 256;     ///< Vertices in the planted community.
  double core_density = 0.5;    ///< Edge probability inside the community.
};

/// Adds a G(core_size, core_density) community over randomly chosen vertices
/// of `background`; the result has k_max >= roughly core_size*core_density.
/// Endpoint IDs follow the background's vertex universe `num_vertices`.
EdgeList OverlayPlantedCore(EdgeList background, uint32_t num_vertices,
                            const PlantedCoreOptions& options, uint64_t seed);

/// Hub-dominated graph mimicking the `trackers` dataset: a few hubs of huge
/// degree, most vertices of degree 1-4, degree stddev >> mean.
struct HubGraphOptions {
  uint32_t num_vertices = 100000;
  uint32_t num_hubs = 12;
  uint32_t spokes_per_vertex = 2;   ///< Hub attachments per ordinary vertex.
  uint64_t background_edges = 50000;
};

EdgeList GenerateHubGraph(const HubGraphOptions& options, uint64_t seed);

/// Skewed power-law graph built for load-balancing studies (DESIGN.md §8):
/// a sparse Chung–Lu power-law tail (most vertices of degree 1-4) plus a few
/// mega-hubs, each attached to `hub_degree` distinct tail vertices. The tail
/// keeps k_max small (few peeling rounds) while the frontier of every round
/// mixes thousands of tiny adjacencies with a handful of huge ones — the
/// worst case for one-warp-per-vertex expansion.
struct SkewedPowerLawOptions {
  uint32_t num_vertices = 60000;
  uint64_t tail_edges = 45000;  ///< Chung–Lu background edge budget.
  double exponent = 2.6;        ///< Power-law exponent (must be > 2).
  uint32_t num_hubs = 4;        ///< Mega-hubs, vertices [0, num_hubs).
  uint32_t hub_degree = 8000;   ///< Distinct spokes per hub.
};

EdgeList GenerateSkewedPowerLaw(const SkewedPowerLawOptions& options,
                                uint64_t seed);

}  // namespace kcore

#endif  // KCORE_GENERATORS_GENERATORS_H_
