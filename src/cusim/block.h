#ifndef KCORE_CUSIM_BLOCK_H_
#define KCORE_CUSIM_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "cusim/warp.h"
#include "perf/perf_counters.h"

namespace kcore::sim {

/// One thread block of a simulated kernel launch.
///
/// Execution semantics: a block runs on one host OS thread. Its warps
/// execute sequentially inside each barrier interval (a legal SIMT
/// schedule); `Sync()` marks `__syncthreads()` boundaries, which under warp
/// serialization are ordering no-ops but are counted for the cost model.
/// Distinct blocks of one launch run on *different* host threads
/// concurrently, so all cross-block interactions through device memory
/// (atomics on deg[], gpu_count, ...) are real races, exactly the ones the
/// paper's redundancy-avoidance logic (Alg. 3 lines 20-24) must survive.
class BlockCtx {
 public:
  BlockCtx(uint32_t block_id, uint32_t num_blocks, uint32_t block_dim,
           uint32_t shared_mem_bytes)
      : block_id_(block_id),
        num_blocks_(num_blocks),
        block_dim_(block_dim),
        shared_(shared_mem_bytes) {
    KCORE_CHECK_EQ(block_dim % kWarpSize, 0u);
  }

  BlockCtx(const BlockCtx&) = delete;
  BlockCtx& operator=(const BlockCtx&) = delete;

  uint32_t block_id() const { return block_id_; }
  uint32_t num_blocks() const { return num_blocks_; }
  uint32_t block_dim() const { return block_dim_; }
  uint32_t num_warps() const { return block_dim_ / kWarpSize; }
  /// Total threads across the launch (NUM_THREADS in the paper's §III).
  uint64_t grid_threads() const {
    return static_cast<uint64_t>(num_blocks_) * block_dim_;
  }

  PerfCounters& counters() { return counters_; }

  /// Allocates `count` zero-initialized Ts from this block's shared memory.
  /// Exceeding the per-block shared-memory budget is a configuration bug
  /// (CUDA would fail the launch), hence fatal.
  template <typename T>
  T* SharedAlloc(size_t count) {
    const size_t align = alignof(T) < 8 ? 8 : alignof(T);
    size_t offset = (shared_used_ + align - 1) / align * align;
    const size_t bytes = count * sizeof(T);
    KCORE_CHECK(offset + bytes <= shared_.size());
    shared_used_ = offset + bytes;
    std::memset(shared_.data() + offset, 0, bytes);
    counters_.shared_ops += count;
    return reinterpret_cast<T*>(shared_.data() + offset);
  }

  /// Bytes of shared memory currently allocated in this block.
  size_t shared_used() const { return shared_used_; }

  /// Runs fn(warp) for every warp of the block, in warp-ID order.
  template <typename Fn>
  void ForEachWarp(Fn&& fn) {
    const uint32_t warps = num_warps();
    for (uint32_t w = 0; w < warps; ++w) {
      WarpCtx warp(w, warps, &counters_);
      fn(warp);
    }
  }

  /// Runs fn(thread_in_block) for every thread of the block, in order.
  /// Mirrors per-thread kernel code like the scan kernel (Alg. 2).
  template <typename Fn>
  void ForEachThread(Fn&& fn) {
    for (uint32_t t = 0; t < block_dim_; ++t) fn(t);
    counters_.lane_ops += block_dim_;
  }

  /// __syncthreads(): counted block barrier.
  void Sync() { ++counters_.barriers; }

 private:
  uint32_t block_id_;
  uint32_t num_blocks_;
  uint32_t block_dim_;
  std::vector<std::byte> shared_;
  size_t shared_used_ = 0;
  PerfCounters counters_;
};

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_BLOCK_H_
