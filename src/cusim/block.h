#ifndef KCORE_CUSIM_BLOCK_H_
#define KCORE_CUSIM_BLOCK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "cusim/simcheck.h"
#include "cusim/warp.h"
#include "perf/perf_counters.h"

namespace kcore::sim {

/// One thread block of a simulated kernel launch.
///
/// Execution semantics: a block runs on one host OS thread. Its warps
/// execute sequentially inside each barrier interval (a legal SIMT
/// schedule); `Sync()` marks `__syncthreads()` boundaries, which under warp
/// serialization are ordering no-ops but are counted for the cost model.
/// Distinct blocks of one launch run on *different* host threads
/// concurrently, so all cross-block interactions through device memory
/// (atomics on deg[], gpu_count, ...) are real races, exactly the ones the
/// paper's redundancy-avoidance logic (Alg. 3 lines 20-24) must survive.
///
/// `Checked` selects the simcheck instrumentation at compile time:
/// BlockCtxT<false> (alias BlockCtx) carries plain PerfCounters and runs the
/// exact uninstrumented code path; BlockCtxT<true> (alias CheckedBlockCtx)
/// carries CheckedPerfCounters, tracks the executing warp and barrier
/// interval for synccheck, and routes every atomics.h accessor through the
/// SimChecker. Device::Launch instantiates the kernel against both and
/// dispatches at launch time, so kernels must accept the block generically
/// (`[&](auto& block)`).
template <bool Checked>
class BlockCtxT {
 public:
  using Counters =
      std::conditional_t<Checked, CheckedPerfCounters, PerfCounters>;

  BlockCtxT(uint32_t block_id, uint32_t num_blocks, uint32_t block_dim,
            uint32_t shared_mem_bytes)
      : block_id_(block_id),
        num_blocks_(num_blocks),
        block_dim_(block_dim),
        shared_(shared_mem_bytes) {
    KCORE_CHECK_EQ(block_dim % kWarpSize, 0u);
  }

  BlockCtxT(const BlockCtxT&) = delete;
  BlockCtxT& operator=(const BlockCtxT&) = delete;

  uint32_t block_id() const { return block_id_; }
  uint32_t num_blocks() const { return num_blocks_; }
  uint32_t block_dim() const { return block_dim_; }
  uint32_t num_warps() const { return block_dim_ / kWarpSize; }
  /// Total threads across the launch (NUM_THREADS in the paper's §III).
  uint64_t grid_threads() const {
    return static_cast<uint64_t>(num_blocks_) * block_dim_;
  }

  /// The block's counters. For the checked instantiation this is a
  /// CheckedPerfCounters — thread it through kernel helpers as `auto&` (an
  /// explicit `PerfCounters&` binding would silently skip checking).
  Counters& counters() { return counters_; }

  /// Wires the checker into counters(); called by Device::Launch before the
  /// kernel runs (checked instantiation only).
  void InstallChecker(SimChecker* checker)
    requires Checked
  {
    counters_.checker = checker;
    counters_.block = this;
  }

  /// Allocates `count` zero-initialized Ts from this block's shared memory.
  /// Exceeding the per-block shared-memory budget is a configuration bug
  /// (CUDA would fail the launch), hence fatal.
  template <typename T>
  T* SharedAlloc(size_t count) {
    const size_t align = alignof(T) < 8 ? 8 : alignof(T);
    size_t offset = (shared_used_ + align - 1) / align * align;
    // Guard count*sizeof(T) against wrap-around before using the product:
    // an overflowing request must fail, not slip past the budget check.
    KCORE_CHECK(offset <= shared_.size());
    KCORE_CHECK(count <= (shared_.size() - offset) / sizeof(T));
    const size_t bytes = count * sizeof(T);
    shared_used_ = offset + bytes;
    std::memset(shared_.data() + offset, 0, bytes);
    counters_.shared_ops += count;
    return reinterpret_cast<T*>(shared_.data() + offset);
  }

  /// Bytes of shared memory currently allocated in this block.
  size_t shared_used() const { return shared_used_; }

  /// Base of the block's shared-memory arena (simcheck bounds checks).
  const std::byte* shared_data() const { return shared_.data(); }

  /// Per-block shared-memory shadow cells, lazily sized by simcheck. Unused
  /// (and never allocated) when checking is off.
  std::vector<uint64_t>& shared_shadow() { return shared_shadow_; }

  /// Runs fn(warp) for every warp of the block, in warp-ID order.
  template <typename Fn>
  void ForEachWarp(Fn&& fn) {
    const uint32_t warps = num_warps();
    for (uint32_t w = 0; w < warps; ++w) {
      WarpCtx warp(w, warps, &counters_);
      if constexpr (Checked) current_warp_ = w;
      fn(warp);
    }
    if constexpr (Checked) current_warp_ = 0;
  }

  /// Runs fn(thread_in_block) for every thread of the block, in order.
  /// Mirrors per-thread kernel code like the scan kernel (Alg. 2).
  template <typename Fn>
  void ForEachThread(Fn&& fn) {
    if constexpr (Checked) {
      // Warp-outer / thread-inner so the warp tracking synccheck relies on
      // costs one store per 32 threads, not one per thread.
      for (uint32_t base = 0; base < block_dim_; base += kWarpSize) {
        current_warp_ = base / kWarpSize;
        const uint32_t end = std::min(block_dim_, base + kWarpSize);
        for (uint32_t t = base; t < end; ++t) fn(t);
      }
      current_warp_ = 0;
    } else {
      for (uint32_t t = 0; t < block_dim_; ++t) fn(t);
    }
    counters_.lane_ops += block_dim_;
  }

  /// __syncthreads(): counted block barrier. Also advances the barrier
  /// interval that synccheck tags shared-memory accesses with.
  void Sync() {
    ++counters_.barriers;
    if constexpr (Checked) ++sync_interval_;
  }

  /// Warp currently executing (tracked by the checked instantiation only).
  uint32_t current_warp() const { return current_warp_; }
  /// Barrier interval: incremented by every Sync() when checked.
  uint32_t sync_interval() const { return sync_interval_; }

 private:
  uint32_t block_id_;
  uint32_t num_blocks_;
  uint32_t block_dim_;
  std::vector<std::byte> shared_;
  size_t shared_used_ = 0;
  uint32_t current_warp_ = 0;
  uint32_t sync_interval_ = 0;
  std::vector<uint64_t> shared_shadow_;
  Counters counters_;
};

/// The uninstrumented block type — what kernels see on every unchecked
/// launch, and the type to construct directly in block-level unit tests.
using BlockCtx = BlockCtxT<false>;

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_BLOCK_H_
