#ifndef KCORE_CUSIM_ANNOTATIONS_H_
#define KCORE_CUSIM_ANNOTATIONS_H_

/// Source annotations anchoring the simlint static analyzer (tools/simlint)
/// to the cusim kernel DSL. They are the simulated-device analogues of CUDA's
/// __global__ / __host__ execution-space qualifiers: cusim kernels are plain
/// C++ lambdas and functions, so nothing in the type system records which
/// code runs "on device" (under a Launch, against the modeled clock) versus
/// on the host (driving thread). These macros record that contract where the
/// compiler can see it, and simlint enforces it:
///
///   KCORE_KERNEL     — function executes inside a kernel (called from a
///                      Device::Launch lambda, directly or transitively).
///                      simlint applies the device-side rules to its body:
///                      sync-divergence, cross-block-race, host-confinement.
///   KCORE_HOST_ONLY  — method/function must only be called from the host
///                      (driving) thread, never from kernel code: Alloc,
///                      Launch, clock readers, graph IO. The device.h
///                      "thread compatibility" prose, made machine-checkable.
///   KCORE_OBSERVER   — zero-cost-off observer code (simprof / simcheck /
///                      trace hooks). Must not mutate charged PerfCounters
///                      fields, the modeled clock, or call CostModel charging
///                      paths — simlint's modeled-clock-purity rule statically
///                      enforces the "profiled run is bit-identical to an
///                      unprofiled one" invariant that trace_test asserts
///                      dynamically.
///
/// Under clang the macros also expand to `annotate` attributes so a future
/// LibTooling frontend (tools/simlint/frontend_clang.cc) can find the same
/// anchors in the AST; under gcc they expand to nothing and cost nothing.
/// simlint's built-in frontend keys on the literal macro names, so analysis
/// works identically under either compiler.
///
/// Suppressions: a finding may be silenced in place with
///   // simlint:allow(<rule>): reason
/// on the offending line or on a comment-only line directly above it.
/// Unused suppressions are themselves findings (stale-suppression), so
/// silenced exceptions cannot outlive the code they excuse.

#if defined(__clang__)
#define KCORE_KERNEL __attribute__((annotate("kcore_kernel")))
#define KCORE_HOST_ONLY __attribute__((annotate("kcore_host_only")))
#define KCORE_OBSERVER __attribute__((annotate("kcore_observer")))
#else
#define KCORE_KERNEL
#define KCORE_HOST_ONLY
#define KCORE_OBSERVER
#endif

#endif  // KCORE_CUSIM_ANNOTATIONS_H_
