#ifndef KCORE_CUSIM_ATOMICS_H_
#define KCORE_CUSIM_ATOMICS_H_

#include <atomic>
#include <cstdint>

#include "cusim/simcheck.h"
#include "perf/perf_counters.h"

namespace kcore::sim {

/// Which memory space an atomic targets; determines both the charged cost
/// and the counter it increments.
enum class MemSpace { kGlobal, kShared };

/// Each accessor has two overloads. The PerfCounters& versions below are
/// the plain simulation path — zero instructions of checking overhead. The
/// CheckedPerfCounters& overloads further down are what kernel code
/// resolves to inside a checked launch (see simcheck.h): they validate the
/// access with the SimChecker and delegate here when it passes. A vetoed
/// checked access is *contained*: the memory is never touched and the op
/// returns T{} / old-value 0, so deliberately buggy test kernels stay safe
/// to execute under host sanitizers.

/// CUDA atomicAdd: returns the old value. Real std::atomic_ref RMW, so
/// concurrently-running simulated blocks exercise genuine data races.
template <typename T>
inline T AtomicAdd(T* address, T value, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  return std::atomic_ref<T>(*address).fetch_add(value,
                                                std::memory_order_relaxed);
}

/// CUDA atomicSub: returns the old value.
template <typename T>
inline T AtomicSub(T* address, T value, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  return std::atomic_ref<T>(*address).fetch_sub(value,
                                                std::memory_order_relaxed);
}

/// CUDA atomicMax: returns the old value. (CAS loop: std::atomic_ref has no
/// fetch_max until C++26.)
template <typename T>
inline T AtomicMax(T* address, T value, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  std::atomic_ref<T> ref(*address);
  T old = ref.load(std::memory_order_relaxed);
  while (old < value && !ref.compare_exchange_weak(
                            old, value, std::memory_order_relaxed)) {
  }
  return old;
}

/// CUDA atomicCAS: returns the old value.
template <typename T>
inline T AtomicCas(T* address, T expected, T desired, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  std::atomic_ref<T>(*address).compare_exchange_strong(
      expected, desired, std::memory_order_relaxed);
  return expected;  // compare_exchange loads the old value into `expected`
}

/// Plain (non-atomic in CUDA terms) load/store with access counting. Used
/// where the simulated kernel would issue an ordinary global access, but a
/// relaxed atomic load keeps the host program free of C++ data-race UB when
/// another simulated block writes the same address concurrently.
template <typename T>
inline T GlobalLoad(const T* address, PerfCounters& counters) {
  ++counters.global_reads;
  // atomic_ref requires a mutable lvalue; the load itself never writes.
  return std::atomic_ref<T>(*const_cast<T*>(address))
      .load(std::memory_order_relaxed);
}

template <typename T>
inline void GlobalStore(T* address, T value, PerfCounters& counters) {
  ++counters.global_writes;
  std::atomic_ref<T>(*address).store(value, std::memory_order_relaxed);
}

/// Plain shared-memory load/store. Shared memory is block-private, so no
/// atomic_ref is needed for host-level soundness; the accessors exist so
/// synccheck can observe cross-warp shared traffic and flag missing Sync()
/// barriers. Counted as shared ops for the cost model.
template <typename T>
inline T SharedLoad(const T* address, PerfCounters& counters) {
  ++counters.shared_ops;
  return *address;
}

template <typename T>
inline void SharedStore(T* address, T value, PerfCounters& counters) {
  ++counters.shared_ops;
  *address = value;
}

// ---------------------------------------------------------------------------
// Checked overloads: selected by overload resolution whenever the counters
// argument is the CheckedPerfCounters of a BlockCtxT<true>. Each validates
// the access with the SimChecker, contains it on veto (still counting the
// op so checked/unchecked counter totals agree), and otherwise delegates to
// the unchecked implementation above.

namespace internal {
template <typename T>
inline bool CheckOp(const CheckedPerfCounters& counters, const T* address,
                    MemSpace space, CheckAccess access) {
  if (space == MemSpace::kGlobal) {
    return CheckGlobalOp(counters, address, sizeof(T), access);
  }
  return CheckSharedOp(counters, address, sizeof(T), access);
}

inline void CountAtomic(PerfCounters& counters, MemSpace space) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
}
}  // namespace internal

template <typename T>
inline T AtomicAdd(T* address, T value, CheckedPerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (!internal::CheckOp(counters, address, space, CheckAccess::kAtomic)) {
    internal::CountAtomic(counters, space);
    return T{};
  }
  return AtomicAdd(address, value, static_cast<PerfCounters&>(counters),
                   space);
}

template <typename T>
inline T AtomicSub(T* address, T value, CheckedPerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (!internal::CheckOp(counters, address, space, CheckAccess::kAtomic)) {
    internal::CountAtomic(counters, space);
    return T{};
  }
  return AtomicSub(address, value, static_cast<PerfCounters&>(counters),
                   space);
}

template <typename T>
inline T AtomicMax(T* address, T value, CheckedPerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (!internal::CheckOp(counters, address, space, CheckAccess::kAtomic)) {
    internal::CountAtomic(counters, space);
    return T{};
  }
  return AtomicMax(address, value, static_cast<PerfCounters&>(counters),
                   space);
}

template <typename T>
inline T AtomicCas(T* address, T expected, T desired,
                   CheckedPerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (!internal::CheckOp(counters, address, space, CheckAccess::kAtomic)) {
    internal::CountAtomic(counters, space);
    return T{};
  }
  return AtomicCas(address, expected, desired,
                   static_cast<PerfCounters&>(counters), space);
}

template <typename T>
inline T GlobalLoad(const T* address, CheckedPerfCounters& counters) {
  if (!CheckGlobalOp(counters, address, sizeof(T), CheckAccess::kRead)) {
    ++counters.global_reads;
    return T{};
  }
  return GlobalLoad(address, static_cast<PerfCounters&>(counters));
}

template <typename T>
inline void GlobalStore(T* address, T value, CheckedPerfCounters& counters) {
  if (!CheckGlobalOp(counters, address, sizeof(T), CheckAccess::kWrite)) {
    ++counters.global_writes;
    return;
  }
  GlobalStore(address, value, static_cast<PerfCounters&>(counters));
}

template <typename T>
inline T SharedLoad(const T* address, CheckedPerfCounters& counters) {
  if (!CheckSharedOp(counters, address, sizeof(T), CheckAccess::kRead)) {
    ++counters.shared_ops;
    return T{};
  }
  return SharedLoad(address, static_cast<PerfCounters&>(counters));
}

template <typename T>
inline void SharedStore(T* address, T value, CheckedPerfCounters& counters) {
  if (!CheckSharedOp(counters, address, sizeof(T), CheckAccess::kWrite)) {
    ++counters.shared_ops;
    return;
  }
  SharedStore(address, value, static_cast<PerfCounters&>(counters));
}

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_ATOMICS_H_
