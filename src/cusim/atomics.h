#ifndef KCORE_CUSIM_ATOMICS_H_
#define KCORE_CUSIM_ATOMICS_H_

#include <atomic>
#include <cstdint>

#include "perf/perf_counters.h"

namespace kcore::sim {

/// Which memory space an atomic targets; determines both the charged cost
/// and the counter it increments.
enum class MemSpace { kGlobal, kShared };

/// CUDA atomicAdd: returns the old value. Real std::atomic_ref RMW, so
/// concurrently-running simulated blocks exercise genuine data races.
template <typename T>
inline T AtomicAdd(T* address, T value, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  return std::atomic_ref<T>(*address).fetch_add(value,
                                                std::memory_order_relaxed);
}

/// CUDA atomicSub: returns the old value.
template <typename T>
inline T AtomicSub(T* address, T value, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  return std::atomic_ref<T>(*address).fetch_sub(value,
                                                std::memory_order_relaxed);
}

/// CUDA atomicMax: returns the old value. (CAS loop: std::atomic_ref has no
/// fetch_max until C++26.)
template <typename T>
inline T AtomicMax(T* address, T value, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  std::atomic_ref<T> ref(*address);
  T old = ref.load(std::memory_order_relaxed);
  while (old < value && !ref.compare_exchange_weak(
                            old, value, std::memory_order_relaxed)) {
  }
  return old;
}

/// CUDA atomicCAS: returns the old value.
template <typename T>
inline T AtomicCas(T* address, T expected, T desired, PerfCounters& counters,
                   MemSpace space = MemSpace::kGlobal) {
  if (space == MemSpace::kGlobal) {
    ++counters.global_atomics;
  } else {
    ++counters.shared_atomics;
  }
  std::atomic_ref<T>(*address).compare_exchange_strong(
      expected, desired, std::memory_order_relaxed);
  return expected;  // compare_exchange loads the old value into `expected`
}

/// Plain (non-atomic in CUDA terms) load/store with access counting. Used
/// where the simulated kernel would issue an ordinary global access, but a
/// relaxed atomic load keeps the host program free of C++ data-race UB when
/// another simulated block writes the same address concurrently.
template <typename T>
inline T GlobalLoad(const T* address, PerfCounters& counters) {
  ++counters.global_reads;
  // atomic_ref requires a mutable lvalue; the load itself never writes.
  return std::atomic_ref<T>(*const_cast<T*>(address))
      .load(std::memory_order_relaxed);
}

template <typename T>
inline void GlobalStore(T* address, T value, PerfCounters& counters) {
  ++counters.global_writes;
  std::atomic_ref<T>(*address).store(value, std::memory_order_relaxed);
}

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_ATOMICS_H_
