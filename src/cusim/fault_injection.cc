#include "cusim/fault_injection.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace kcore::sim {

namespace {

/// Default plan seed: expanded per clause position so two clauses without
/// explicit seeds still draw independent streams.
constexpr uint64_t kDefaultSeed = 0xfa17ed0dd5eedULL;

StatusOr<uint64_t> ParseU64(const std::string& clause,
                            const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || errno == ERANGE ||
      value[0] == '-') {
    return Status::InvalidArgument("fault spec: bad number '" + value +
                                   "' in clause '" + clause + "'");
  }
  return static_cast<uint64_t>(parsed);
}

StatusOr<double> ParseProb(const std::string& clause,
                           const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || *end != '\0' || errno == ERANGE || parsed < 0.0 ||
      parsed > 1.0) {
    return Status::InvalidArgument("fault spec: probability '" + value +
                                   "' out of [0,1] in clause '" + clause +
                                   "'");
  }
  return parsed;
}

StatusOr<FaultKind> ParseKind(const std::string& name) {
  if (name == "alloc_fail") return FaultKind::kAllocFail;
  if (name == "launch_fail") return FaultKind::kLaunchFail;
  if (name == "copy_fail") return FaultKind::kCopyFail;
  if (name == "bitflip") return FaultKind::kBitflip;
  if (name == "device_lost") return FaultKind::kDeviceLost;
  return Status::InvalidArgument("fault spec: unknown fault kind '" + name +
                                 "'");
}

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAllocFail:
      return "alloc_fail";
    case FaultKind::kLaunchFail:
      return "launch_fail";
    case FaultKind::kCopyFail:
      return "copy_fail";
    case FaultKind::kBitflip:
      return "bitflip";
    case FaultKind::kDeviceLost:
      return "device_lost";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  return StrFormat("%s@%llu: %s", FaultKindToString(kind),
                   static_cast<unsigned long long>(op_index), detail.c_str());
}

StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& clause_text : SplitNonEmpty(spec, ";")) {
    // Split "kind[@params]" / "kind[:params]" at the first '@' or ':'.
    const size_t sep = clause_text.find_first_of("@:");
    const std::string name = clause_text.substr(0, sep);
    KCORE_ASSIGN_OR_RETURN(const FaultKind kind, ParseKind(name));
    FaultClause clause;
    clause.kind = kind;

    if (sep != std::string::npos) {
      const std::string params = clause_text.substr(sep + 1);
      for (const std::string& param : SplitNonEmpty(params, ",")) {
        const size_t eq = param.find('=');
        if (eq == std::string::npos) {
          // Bare number: the op index ("alloc_fail@3").
          KCORE_ASSIGN_OR_RETURN(clause.at, ParseU64(clause_text, param));
          continue;
        }
        const std::string key = param.substr(0, eq);
        const std::string value = param.substr(eq + 1);
        if (key == "at" || key == "launch") {
          KCORE_ASSIGN_OR_RETURN(clause.at, ParseU64(clause_text, value));
        } else if (key == "p") {
          KCORE_ASSIGN_OR_RETURN(clause.p, ParseProb(clause_text, value));
        } else if (key == "seed") {
          KCORE_ASSIGN_OR_RETURN(clause.seed, ParseU64(clause_text, value));
        } else if (key == "alloc" && kind == FaultKind::kBitflip) {
          clause.alloc = value;
        } else if (key == "word" && kind == FaultKind::kBitflip) {
          if (value == "rand") {
            clause.word_rand = true;
          } else {
            KCORE_ASSIGN_OR_RETURN(clause.word, ParseU64(clause_text, value));
            clause.word_rand = false;
          }
        } else if (key == "bit" && kind == FaultKind::kBitflip) {
          if (value == "rand") {
            clause.bit_rand = true;
          } else {
            KCORE_ASSIGN_OR_RETURN(const uint64_t bit,
                                   ParseU64(clause_text, value));
            if (bit >= 32) {
              return Status::InvalidArgument(
                  "fault spec: bit index must be < 32 in clause '" +
                  clause_text + "'");
            }
            clause.bit = static_cast<uint32_t>(bit);
            clause.bit_rand = false;
          }
        } else {
          return Status::InvalidArgument("fault spec: unknown key '" + key +
                                         "' in clause '" + clause_text + "'");
        }
      }
    }

    if (clause.at == 0 && clause.p == 0.0) {
      return Status::InvalidArgument(
          "fault spec: clause '" + clause_text +
          "' has neither an op index (@N) nor a probability (p=)");
    }
    plan.clauses.push_back(std::move(clause));
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  rngs_.reserve(plan_.clauses.size());
  for (size_t i = 0; i < plan_.clauses.size(); ++i) {
    uint64_t seed = plan_.clauses[i].seed;
    if (seed == 0) {
      uint64_t sm = kDefaultSeed + i;
      seed = SplitMix64(sm);
    }
    rngs_.emplace_back(seed);
  }
}

bool FaultInjector::Fires(size_t clause_idx, uint64_t index) {
  const FaultClause& clause = plan_.clauses[clause_idx];
  if (clause.at != 0) return index == clause.at;
  return rngs_[clause_idx].Bernoulli(clause.p);
}

Status FaultInjector::LostStatus() const {
  return Status::DeviceLost("device lost (injected)");
}

void FaultInjector::Record(FaultKind kind, uint64_t op_index,
                           std::string detail) {
  events_.push_back({kind, op_index, std::move(detail)});
}

Status FaultInjector::OnAlloc(const char* label, uint64_t bytes) {
  if (lost_) return LostStatus();
  ++allocs_;
  for (size_t i = 0; i < plan_.clauses.size(); ++i) {
    if (plan_.clauses[i].kind != FaultKind::kAllocFail) continue;
    if (Fires(i, allocs_)) {
      Record(FaultKind::kAllocFail, allocs_,
             StrFormat("alloc '%s' (%llu bytes) rejected", label,
                       static_cast<unsigned long long>(bytes)));
      return Status::OutOfMemory(
          StrFormat("injected allocation failure ('%s')", label));
    }
  }
  return Status::OK();
}

Status FaultInjector::OnLaunch(const char* label) {
  if (lost_) return LostStatus();
  ++launches_;
  // device_lost is evaluated first: a launch that kills the device does not
  // also fail transiently.
  for (size_t i = 0; i < plan_.clauses.size(); ++i) {
    if (plan_.clauses[i].kind != FaultKind::kDeviceLost) continue;
    if (Fires(i, launches_)) {
      lost_ = true;
      Record(FaultKind::kDeviceLost, launches_,
             StrFormat("device lost at launch '%s'", label));
      return LostStatus();
    }
  }
  for (size_t i = 0; i < plan_.clauses.size(); ++i) {
    if (plan_.clauses[i].kind != FaultKind::kLaunchFail) continue;
    if (Fires(i, launches_)) {
      Record(FaultKind::kLaunchFail, launches_,
             StrFormat("launch '%s' failed", label));
      return Status::Unavailable(
          StrFormat("injected launch failure ('%s')", label));
    }
  }
  return Status::OK();
}

Status FaultInjector::OnCopy(uint64_t bytes) {
  if (lost_) return LostStatus();
  ++copies_;
  for (size_t i = 0; i < plan_.clauses.size(); ++i) {
    if (plan_.clauses[i].kind != FaultKind::kCopyFail) continue;
    if (Fires(i, copies_)) {
      Record(FaultKind::kCopyFail, copies_,
             StrFormat("copy of %llu bytes failed",
                       static_cast<unsigned long long>(bytes)));
      return Status::Unavailable("injected copy failure");
    }
  }
  return Status::OK();
}

uint32_t FaultInjector::ApplyBitflips(
    std::span<const CorruptibleRange> ranges) {
  if (lost_) return 0;
  uint32_t flipped = 0;
  for (size_t i = 0; i < plan_.clauses.size(); ++i) {
    const FaultClause& clause = plan_.clauses[i];
    if (clause.kind != FaultKind::kBitflip) continue;
    if (!Fires(i, launches_)) continue;

    // Pick the target range: labeled, or uniformly among corruptible words.
    const CorruptibleRange* target = nullptr;
    uint64_t total_words = 0;
    for (const CorruptibleRange& r : ranges) {
      if (!clause.alloc.empty() && r.label != clause.alloc) continue;
      total_words += r.bytes / 4;
    }
    if (total_words == 0) continue;  // nothing eligible (yet)
    uint64_t word_idx =
        clause.word_rand ? rngs_[i].UniformInt(total_words)
                         : std::min(clause.word, total_words - 1);
    for (const CorruptibleRange& r : ranges) {
      if (!clause.alloc.empty() && r.label != clause.alloc) continue;
      const uint64_t words = r.bytes / 4;
      if (word_idx < words) {
        target = &r;
        break;
      }
      word_idx -= words;
    }
    if (target == nullptr) continue;

    const uint32_t bit = clause.bit_rand
                             ? static_cast<uint32_t>(rngs_[i].UniformInt(32))
                             : clause.bit;
    // XOR through memcpy: the word may be any trivially-copyable type.
    auto* base = static_cast<unsigned char*>(target->ptr) + word_idx * 4;
    uint32_t word = 0;
    std::memcpy(&word, base, sizeof(word));
    word ^= (1u << bit);
    std::memcpy(base, &word, sizeof(word));
    ++flipped;
    Record(FaultKind::kBitflip, launches_,
           StrFormat("flipped bit %u of word %llu in '%s'", bit,
                     static_cast<unsigned long long>(word_idx),
                     target->label.c_str()));
  }
  return flipped;
}

}  // namespace kcore::sim
