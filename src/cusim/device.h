#ifndef KCORE_CUSIM_DEVICE_H_
#define KCORE_CUSIM_DEVICE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "cusim/annotations.h"
#include "cusim/block.h"
#include "cusim/fault_injection.h"
#include "cusim/simcheck.h"
#include "cusim/simprof.h"
#include "perf/cost_model.h"
#include "perf/perf_counters.h"

namespace kcore::sim {

class Device;

/// An owning handle to a device-memory allocation (cudaMalloc analogue).
/// Freeing returns the bytes to the device's accounting. Move-only.
template <typename T>
class DeviceArray {
 public:
  DeviceArray() = default;
  ~DeviceArray() { Reset(); }

  DeviceArray(const DeviceArray&) = delete;
  DeviceArray& operator=(const DeviceArray&) = delete;

  DeviceArray(DeviceArray&& other) noexcept { *this = std::move(other); }
  DeviceArray& operator=(DeviceArray&& other) noexcept {
    if (this != &other) {
      Reset();
      device_ = other.device_;
      device_alive_ = std::move(other.device_alive_);
      data_ = std::move(other.data_);
      size_ = other.size_;
      other.device_ = nullptr;
      other.device_alive_.reset();
      other.size_ = 0;
    }
    return *this;
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<T> span() { return {data_.get(), size_}; }
  std::span<const T> span() const { return {data_.get(), size_}; }

  /// cudaMemcpy host->device. `host.size()` must not exceed size(). Fails
  /// with Unavailable (transient, retryable) or DeviceLost when the device's
  /// fault plan says so; no byte moves on failure.
  [[nodiscard]] KCORE_HOST_ONLY Status CopyFromHost(std::span<const T> host);
  /// cudaMemcpy device->host. `host.size()` must not exceed size(). Failure
  /// semantics as CopyFromHost.
  [[nodiscard]] KCORE_HOST_ONLY Status CopyToHost(std::span<T> host) const;

  /// Frees the allocation (cudaFree analogue). Safe to call repeatedly, and
  /// safe after the owning Device is gone (the accounting update is skipped;
  /// the Device already reported the allocation as leaked).
  void Reset();

 private:
  friend class Device;
  DeviceArray(Device* device, std::weak_ptr<const void> device_alive,
              std::unique_ptr<T[]> data, size_t size)
      : device_(device),
        device_alive_(std::move(device_alive)),
        data_(std::move(data)),
        size_(size) {}

  Device* device_ = nullptr;
  std::weak_ptr<const void> device_alive_;
  std::unique_ptr<T[]> data_;
  size_t size_ = 0;
};

/// Configuration of the simulated GPU.
struct DeviceOptions {
  /// Capacity of global memory; allocations beyond it fail with OutOfMemory
  /// (how the paper's Table III/V "OOM" rows arise). The benchmark default
  /// scales the P100's 16 GB by the dataset scale factor.
  uint64_t global_mem_bytes = 512ull << 20;
  /// Streaming multiprocessors; blocks beyond this count run in waves.
  uint32_t num_sms = 108;
  /// Per-block shared-memory budget (P100-class: 48-64 KB usable).
  uint32_t shared_mem_per_block = 56u << 10;
  /// Modeled PCIe host<->device bandwidth, bytes/second.
  double pcie_bytes_per_sec = 12.0e9;
  /// Cost model converting counted kernel work into modeled time.
  CostModel cost = GpuNativeCostModel();
  /// Host threads executing simulated blocks; nullptr = process default.
  ThreadPool* pool = nullptr;
  /// Enables simcheck (memcheck/initcheck/racecheck/synccheck); see
  /// simcheck.h. Also switched on by the environment variable
  /// KCORE_SIMCHECK=1. Zero-cost when off: kernels run the uninstrumented
  /// BlockCtxT<false> instantiation and no shadow memory exists.
  bool check_mode = false;
  /// Fault plan for this device (see fault_injection.h for the grammar);
  /// "" = no injected faults. The environment variable KCORE_FAULTS supplies
  /// a plan when this is empty. A malformed spec surfaces as InvalidArgument
  /// from the first device operation (the constructor cannot return Status).
  std::string fault_spec;
  /// Enables simprof (the Nsight-Systems analogue; see simprof.h): kernel
  /// spans, alloc/free/copy events, and driver NVTX ranges accumulate in an
  /// in-memory Trace exported via Device::WriteTrace. Also switched on by a
  /// non-empty KCORE_TRACE environment variable (KCORE_TRACE=0 stays off).
  /// Zero-cost when off: no profiler object exists and every hook is a null
  /// check on the host path — modeled time is bit-identical either way.
  bool profile = false;
  /// Trace process id (and its label) for this device's events; multi-device
  /// drivers hand each worker a distinct pid. "" derives "gpu<pid>".
  uint32_t profile_pid = 0;
  std::string profile_name;
  /// Per-block lane sub-spans under each kernel span (ProfilerOptions).
  bool profile_block_spans = true;
};

/// The simulated GPU: device-memory accounting with a peak watermark
/// (Table V), a kernel launcher that executes blocks concurrently on host
/// threads, and a modeled clock fed by the cost model.
///
/// Thread compatibility: Alloc/Launch/clock methods must be called from the
/// host (driving) thread only, mirroring a single CUDA stream.
class Device {
 public:
  explicit Device(DeviceOptions options = {}) : options_(std::move(options)) {
    if (options_.check_mode || EnvCheckEnabled()) {
      checker_ = std::make_shared<SimChecker>();
    }
    if (options_.profile || EnvTraceEnabled()) {
      ProfilerOptions prof_options;
      prof_options.pid = options_.profile_pid;
      prof_options.process_name = options_.profile_name;
      prof_options.block_spans = options_.profile_block_spans;
      prof_options.num_sms = options_.num_sms;
      profiler_ = std::make_unique<SimProfiler>(prof_options, &modeled_ns_,
                                                &transfer_ns_);
    }
    std::string spec =
        options_.fault_spec.empty() ? EnvFaultSpec() : options_.fault_spec;
    if (!spec.empty()) {
      StatusOr<FaultPlan> plan = ParseFaultSpec(spec);
      if (!plan.ok()) {
        fault_error_ = plan.status();
      } else if (!plan->empty()) {
        faults_ = std::make_unique<FaultInjector>(*std::move(plan));
      }
    }
  }
  ~Device() {
    if (checker_ != nullptr) checker_->OnDeviceDestroyed();
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceOptions& options() const { return options_; }

  /// Allocates `count` zero-initialized elements of device memory. `label`
  /// names the allocation in simcheck reports.
  template <typename U>
  [[nodiscard]] KCORE_HOST_ONLY StatusOr<DeviceArray<U>> Alloc(
      size_t count, const char* label = "") {
    KCORE_RETURN_IF_ERROR(OnAllocAttempt<U>(label, count));
    KCORE_RETURN_IF_ERROR(Reserve<U>(count));
    auto data = std::make_unique<U[]>(count);
    if (checker_ != nullptr) {
      checker_->RegisterAlloc(data.get(), count * sizeof(U),
                              /*zero_initialized=*/true, label);
    }
    if (profiler_ != nullptr) {
      profiler_->OnAlloc(label, count * sizeof(U), current_bytes_,
                         peak_bytes_);
    }
    return DeviceArray<U>(this, alive_, std::move(data), count);
  }

  /// Allocates `count` *uninitialized* elements (cudaMalloc semantics: the
  /// contents are garbage). For buffers the kernels fully overwrite before
  /// reading — skipping the O(bytes) zeroing memset of Alloc.
  template <typename U>
  [[nodiscard]] KCORE_HOST_ONLY StatusOr<DeviceArray<U>> AllocUninit(
      size_t count, const char* label = "") {
    static_assert(std::is_trivially_default_constructible_v<U>,
                  "AllocUninit requires a trivially constructible type");
    KCORE_RETURN_IF_ERROR(OnAllocAttempt<U>(label, count));
    KCORE_RETURN_IF_ERROR(Reserve<U>(count));
    auto data = std::make_unique_for_overwrite<U[]>(count);
    if (checker_ != nullptr) {
      checker_->RegisterAlloc(data.get(), count * sizeof(U),
                              /*zero_initialized=*/false, label);
    }
    if (profiler_ != nullptr) {
      profiler_->OnAlloc(label, count * sizeof(U), current_bytes_,
                         peak_bytes_);
    }
    return DeviceArray<U>(this, alive_, std::move(data), count);
  }

  /// Launches `kernel` over `num_blocks` blocks of `block_dim` threads.
  /// `kernel` is invoked once per block as kernel(block); distinct blocks
  /// run concurrently on host threads. The kernel must accept the block
  /// generically (`[&](auto& block)`): it is instantiated against both
  /// BlockCtxT<false> and BlockCtxT<true>, and the checked variant is
  /// selected here only when simcheck is enabled — so an unchecked launch
  /// executes code with zero instructions of instrumentation.
  ///
  /// Fails with Unavailable (transient launch rejection — retrying is a new
  /// attempt) or DeviceLost when a fault plan says so; a failed launch is
  /// fail-stop: no block runs, no counter advances, no bitflip applies.
  template <typename Kernel>
  [[nodiscard]] KCORE_HOST_ONLY Status Launch(uint32_t num_blocks,
                                              uint32_t block_dim,
                                              Kernel&& kernel) {
    return Launch(num_blocks, block_dim, "kernel",
                  std::forward<Kernel>(kernel));
  }

  /// As above; `label` names the kernel in simcheck reports.
  template <typename Kernel>
  [[nodiscard]] KCORE_HOST_ONLY Status Launch(uint32_t num_blocks,
                                              uint32_t block_dim,
                                              const char* label,
                Kernel&& kernel) {
    KCORE_CHECK_GT(num_blocks, 0u);
    KCORE_RETURN_IF_ERROR(fault_error_);
    if (faults_ != nullptr) KCORE_RETURN_IF_ERROR(faults_->OnLaunch(label));
    const double launch_start_ns = modeled_ns_;
    if (checker_ != nullptr) {
      checker_->BeginLaunch(label);
      LaunchGrid<true>(num_blocks, block_dim, kernel);
    } else {
      LaunchGrid<false>(num_blocks, block_dim, kernel);
    }
    if (profiler_ != nullptr) {
      // The span is the exact modeled advance of this launch (overhead +
      // body), so summed kernel spans reproduce the clock's phase totals.
      profiler_->OnLaunch(label, num_blocks, block_dim, launch_start_ns,
                          modeled_ns_, options_.cost.kernel_launch_ns,
                          last_launch_stats_.block_ns);
    }
    // Bitflips model ECC double-bit errors surfacing after a kernel
    // completes; they corrupt state but never the launch that ran.
    if (faults_ != nullptr) faults_->ApplyBitflips(corruptible_);
    return Status::OK();
  }

  /// True when a fault plan is attached (DeviceOptions::fault_spec or
  /// KCORE_FAULTS) or the spec failed to parse. Drivers use this to decide
  /// whether checkpoint validation is worth paying for.
  bool fault_injection_enabled() const {
    return faults_ != nullptr || !fault_error_.ok();
  }

  /// The injector behind fault_injection_enabled(); nullptr without a plan.
  /// Exposes the deterministic event log for tests and recovery summaries.
  const FaultInjector* faults() const { return faults_.get(); }

  /// Registers `arr` as eligible for injected bitflips (modeled ECC
  /// double-bit errors). Drivers opt in exactly the state they can validate
  /// and roll back; unregistered allocations are modeled as ECC-protected
  /// static data. No-op without a fault plan; deregistration happens
  /// automatically when the array is freed.
  template <typename U>
  KCORE_HOST_ONLY void MarkCorruptible(DeviceArray<U>& arr,
                                       const char* label) {
    if (faults_ == nullptr || arr.empty()) return;
    corruptible_.push_back({arr.data(), arr.size() * sizeof(U), label});
  }

  /// Liveness probe for multi-device drivers whose workers touch device
  /// memory directly between kernel launches: advances the launch fault
  /// domain (so device_lost@launch=N schedules fire at sub-round
  /// granularity) and reports the latched lost state. Unavailable from a
  /// probe is transient noise; DeviceLost is terminal.
  [[nodiscard]] KCORE_HOST_ONLY Status HealthCheck(
      const char* label = "health_check") {
    KCORE_RETURN_IF_ERROR(fault_error_);
    if (faults_ == nullptr) return Status::OK();
    Status probe = faults_->OnLaunch(label);
    if (probe.ok()) faults_->ApplyBitflips(corruptible_);
    return probe;
  }

 private:
  template <bool Checked, typename Kernel>
  void LaunchGrid(uint32_t num_blocks, uint32_t block_dim, Kernel& kernel) {
    // Per-block counter staging reuses one scratch vector across launches:
    // the host loop issues two launches per peeling round, so a fresh
    // allocation here is measurable wall-clock overhead on deep peels.
    std::vector<PerfCounters>& per_block = launch_scratch_;
    per_block.assign(num_blocks, PerfCounters());
    ThreadPool& workers = pool();
    workers.ParallelFor(num_blocks, [&](uint64_t b) {
      BlockCtxT<Checked> block(static_cast<uint32_t>(b), num_blocks,
                               block_dim, options_.shared_mem_per_block);
      if constexpr (Checked) block.InstallChecker(checker_.get());
      kernel(block);
      // Checked blocks carry CheckedPerfCounters; assigning through the
      // PerfCounters slot slices off the checker wiring, which must not
      // outlive the block anyway.
      per_block[b] = block.counters();
    });

    double max_block_ns = 0.0;
    double sum_block_ns = 0.0;
    PerfCounters launch_total;
    for (const PerfCounters& c : per_block) {
      const double ns = options_.cost.UnitTimeNs(c);
      max_block_ns = std::max(max_block_ns, ns);
      sum_block_ns += ns;
      launch_total += c;
    }
    // Blocks beyond the SM count execute in waves; the kernel cannot finish
    // before its slowest block nor faster than the work spread over all SMs.
    const double body_ns =
        std::max(max_block_ns, sum_block_ns / options_.num_sms);
    last_launch_stats_.max_block_ns = max_block_ns;
    last_launch_stats_.mean_block_ns = sum_block_ns / num_blocks;
    last_launch_stats_.block_ns.assign(num_blocks, 0.0);
    for (uint32_t b = 0; b < num_blocks; ++b) {
      last_launch_stats_.block_ns[b] = options_.cost.UnitTimeNs(per_block[b]);
    }
    modeled_ns_ += options_.cost.kernel_launch_ns + body_ns;
    launch_total.kernel_launches = 1;
    totals_ += launch_total;
  }

 public:
  /// Current and peak global-memory usage (Table V's metric).
  uint64_t current_bytes() const { return current_bytes_; }
  uint64_t peak_bytes() const { return peak_bytes_; }

  /// Modeled kernel-execution time accumulated so far.
  double modeled_ms() const { return modeled_ns_ / 1e6; }

  /// Per-launch block-time spread of the most recent Launch(): the slowest
  /// block's modeled ns and the mean over all blocks of the grid. Drivers
  /// read this right after a launch to measure load imbalance (the max/mean
  /// ratio) without re-deriving per-block costs.
  struct LaunchStats {
    double max_block_ns = 0.0;
    double mean_block_ns = 0.0;
    /// Every block's modeled ns, indexed by block id — lets a driver weight
    /// the spread by what it knows about per-block work assignment (e.g.
    /// exclude blocks whose frontier buffer was empty at launch).
    std::vector<double> block_ns;
  };
  const LaunchStats& last_launch_stats() const { return last_launch_stats_; }
  /// Modeled host<->device transfer time (reported separately, as the paper
  /// separates loading from computation).
  double transfer_ms() const { return transfer_ns_ / 1e6; }
  /// Aggregated operation counters over all launches.
  const PerfCounters& totals() const { return totals_; }

  /// Resets the clock and counters (not the memory watermark).
  KCORE_HOST_ONLY void ResetClock() {
    modeled_ns_ = 0.0;
    transfer_ns_ = 0.0;
    totals_ = PerfCounters();
  }

  /// The simcheck verdict so far: OK when checking is off or no violation
  /// was detected, FailedPrecondition with the report otherwise. Checked
  /// runners call this before returning their result.
  [[nodiscard]] KCORE_HOST_ONLY Status CheckStatus() const {
    return checker_ != nullptr ? checker_->report().ToStatus() : Status::OK();
  }

  /// The checker (nullptr when checking is off). Shared so tests can keep
  /// the report alive past the Device (leak checking).
  std::shared_ptr<SimChecker> checker() const { return checker_; }

  /// The profiler (nullptr when profiling is off — DeviceOptions::profile /
  /// KCORE_TRACE). Drivers pass it to ProfRange and use the flow hooks; the
  /// null case costs one pointer test.
  SimProfiler* profiler() const { return profiler_.get(); }

  /// Exports the profiler's trace as chrome://tracing JSON (load in
  /// Perfetto). FailedPrecondition when profiling is off.
  [[nodiscard]] KCORE_HOST_ONLY Status WriteTrace(const std::string& path) const {
    if (profiler_ == nullptr) {
      return Status::FailedPrecondition(
          "no trace recorded: enable DeviceOptions::profile or KCORE_TRACE");
    }
    return profiler_->trace().WriteChromeTrace(path);
  }

 private:
  template <typename U>
  friend class DeviceArray;

  static std::string StrFormatBytes(uint64_t bytes);
  static bool EnvCheckEnabled();
  static bool EnvTraceEnabled();
  static std::string EnvFaultSpec();

  /// Fault gate for Alloc/AllocUninit, consulted before any byte reserves.
  template <typename U>
  Status OnAllocAttempt(const char* label, size_t count) {
    KCORE_RETURN_IF_ERROR(fault_error_);
    if (faults_ == nullptr) return Status::OK();
    return faults_->OnAlloc(label,
                            static_cast<uint64_t>(count) * sizeof(U));
  }

  /// Fault gate for the DeviceArray copy paths, consulted before any byte
  /// moves.
  Status OnCopy(uint64_t bytes) {
    KCORE_RETURN_IF_ERROR(fault_error_);
    if (faults_ == nullptr) return Status::OK();
    return faults_->OnCopy(bytes);
  }

  /// Accounts `count * sizeof(U)` bytes against global memory, rejecting
  /// requests whose byte size overflows uint64_t (which would otherwise wrap
  /// past the global_mem_bytes check and "succeed").
  template <typename U>
  Status Reserve(size_t count) {
    if (count > std::numeric_limits<uint64_t>::max() / sizeof(U)) {
      return Status::OutOfMemory("allocation size overflows uint64_t");
    }
    const uint64_t bytes = static_cast<uint64_t>(count) * sizeof(U);
    if (bytes > options_.global_mem_bytes - current_bytes_) {
      return Status::OutOfMemory(StrFormatBytes(bytes));
    }
    current_bytes_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, current_bytes_);
    return Status::OK();
  }

  ThreadPool& pool() {
    return options_.pool != nullptr ? *options_.pool : DefaultThreadPool();
  }

  void Release(uint64_t bytes) {
    KCORE_CHECK_GE(current_bytes_, bytes);
    current_bytes_ -= bytes;
  }

  /// cudaFree analogue, called by DeviceArray::Reset.
  void OnFree(const void* ptr, uint64_t bytes) {
    Release(bytes);
    if (profiler_ != nullptr) profiler_->OnFree(bytes, current_bytes_);
    if (checker_ != nullptr) checker_->UnregisterAlloc(ptr);
    if (!corruptible_.empty()) {
      std::erase_if(corruptible_,
                    [ptr](const CorruptibleRange& r) { return r.ptr == ptr; });
    }
  }

  void NotifyHostWrite(const void* ptr, uint64_t bytes) {
    if (checker_ != nullptr) checker_->OnHostWrite(ptr, bytes);
  }

  void NotifyHostRead(const void* ptr, uint64_t bytes) {
    if (checker_ != nullptr) checker_->OnHostRead(ptr, bytes);
  }

  void ChargeTransfer(uint64_t bytes, bool to_device) {
    const double start_ns = transfer_ns_;
    transfer_ns_ += static_cast<double>(bytes) /
                    options_.pcie_bytes_per_sec * 1e9;
    if (profiler_ != nullptr) {
      profiler_->OnCopy(to_device, bytes, start_ns, transfer_ns_ - start_ns);
    }
  }

  DeviceOptions options_;
  uint64_t current_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
  double modeled_ns_ = 0.0;
  double transfer_ns_ = 0.0;
  LaunchStats last_launch_stats_;
  PerfCounters totals_;
  std::vector<PerfCounters> launch_scratch_;
  std::shared_ptr<SimChecker> checker_;
  std::unique_ptr<SimProfiler> profiler_;
  std::unique_ptr<FaultInjector> faults_;
  /// Parse failure of the fault spec, surfaced from the first device op.
  Status fault_error_ = Status::OK();
  /// Live allocations registered via MarkCorruptible.
  std::vector<CorruptibleRange> corruptible_;
  /// Expiry sentinel handed to DeviceArrays: lets an array outliving its
  /// Device skip the accounting callback instead of dereferencing a corpse.
  std::shared_ptr<const void> alive_ = std::make_shared<int>(0);
};

template <typename T>
Status DeviceArray<T>::CopyFromHost(std::span<const T> host) {
  KCORE_CHECK_LE(host.size(), size_);
  KCORE_RETURN_IF_ERROR(device_->OnCopy(host.size() * sizeof(T)));
  std::copy(host.begin(), host.end(), data_.get());
  device_->NotifyHostWrite(data_.get(), host.size() * sizeof(T));
  device_->ChargeTransfer(host.size() * sizeof(T), /*to_device=*/true);
  return Status::OK();
}

template <typename T>
Status DeviceArray<T>::CopyToHost(std::span<T> host) const {
  KCORE_CHECK_LE(host.size(), size_);
  KCORE_RETURN_IF_ERROR(device_->OnCopy(host.size() * sizeof(T)));
  device_->NotifyHostRead(data_.get(), host.size() * sizeof(T));
  std::copy(data_.get(), data_.get() + host.size(), host.begin());
  device_->ChargeTransfer(host.size() * sizeof(T), /*to_device=*/false);
  return Status::OK();
}

template <typename T>
void DeviceArray<T>::Reset() {
  if (device_ != nullptr) {
    // The sentinel expires with the Device; an array outliving its Device
    // (a leak the checker has already reported) must not call back into it.
    if (!device_alive_.expired()) {
      device_->OnFree(data_.get(), size_ * sizeof(T));
    }
    device_ = nullptr;
  }
  device_alive_.reset();
  data_.reset();
  size_ = 0;
}

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_DEVICE_H_
