#include "cusim/simcheck.h"

#include <algorithm>

#include "common/strings.h"
#include "cusim/block.h"

namespace kcore::sim {


namespace {

// Shadow-cell bit layout (one uint64_t per 4 bytes of tracked memory).
// Writer and reader halves share one packing: a present bit, an atomic tag,
// a 14-bit actor (block id for global cells, warp id for shared cells) and
// a 14-bit era (launch epoch / Sync() interval). 14 bits wrap; a stale cell
// colliding with the live era after exactly 16384 launches is the accepted
// false-positive risk of the compression.
constexpr uint64_t kValidBit = 1ull << 0;
constexpr int kWriterShift = 1;
constexpr int kReaderShift = 31;
constexpr uint64_t kHalfFieldMask = 0x3fffffffull;  // 30 bits per half
constexpr uint64_t kActorMask = (1ull << 14) - 1;
constexpr uint64_t kEraMask = (1ull << 14) - 1;
// One report per (cell, analysis): keeps a buggy loop from flooding the log
// with one violation per iteration while still counting every cell.
constexpr uint64_t kRaceReportedBit = 1ull << 61;
constexpr uint64_t kInitReportedBit = 1ull << 62;

struct Half {
  bool present = false;
  bool atomic_op = false;
  uint32_t actor = 0;
  uint32_t era = 0;
};

Half UnpackHalf(uint64_t cell, int shift) {
  Half h;
  h.present = ((cell >> shift) & 1) != 0;
  h.atomic_op = ((cell >> (shift + 1)) & 1) != 0;
  h.actor = static_cast<uint32_t>((cell >> (shift + 2)) & kActorMask);
  h.era = static_cast<uint32_t>((cell >> (shift + 16)) & kEraMask);
  return h;
}

uint64_t PackHalf(int shift, bool atomic_op, uint32_t actor, uint32_t era) {
  return (1ull << shift) | (uint64_t{atomic_op} << (shift + 1)) |
         ((uint64_t{actor} & kActorMask) << (shift + 2)) |
         ((uint64_t{era} & kEraMask) << (shift + 16));
}

/// The conflict predicate shared by racecheck (actors = blocks, era =
/// launch epoch) and synccheck (actors = warps, era = barrier interval):
/// two same-era accesses by distinct actors conflict iff at least one of
/// them is a non-atomic write. Atomic-vs-atomic and atomic-write-vs-plain-
/// read pairs are the patterns the kernels legitimately rely on.
bool Conflicts(const Half& prior, uint32_t era, uint32_t actor,
               bool cur_write, bool cur_atomic, bool prior_is_write) {
  if (!prior.present || prior.era != era || prior.actor == actor) {
    return false;
  }
  const bool prior_nonatomic_write = prior_is_write && !prior.atomic_op;
  const bool cur_nonatomic_write = cur_write && !cur_atomic;
  if (prior_is_write && cur_write) {
    return prior_nonatomic_write || cur_nonatomic_write;
  }
  if (cur_write) return cur_nonatomic_write;  // prior is a read
  return prior_nonatomic_write;               // current is a read
}

std::string DescribeAccess(CheckAccess access) {
  switch (access) {
    case CheckAccess::kRead:
      return "non-atomic read";
    case CheckAccess::kWrite:
      return "non-atomic write";
    case CheckAccess::kAtomic:
      return "atomic";
  }
  return "access";
}

}  // namespace

const char* CheckKindToString(CheckKind kind) {
  switch (kind) {
    case CheckKind::kMemcheck:
      return "memcheck";
    case CheckKind::kInitcheck:
      return "initcheck";
    case CheckKind::kRacecheck:
      return "racecheck";
    case CheckKind::kSynccheck:
      return "synccheck";
    case CheckKind::kLeak:
      return "leak";
  }
  return "unknown";
}

std::string CheckViolation::ToString() const {
  std::string out = CheckKindToString(kind);
  if (!kernel.empty()) {
    out += StrFormat(" [kernel '%s']", kernel.c_str());
  }
  if (!allocation.empty()) {
    out += StrFormat(" allocation '%s' offset %llu", allocation.c_str(),
                     static_cast<unsigned long long>(offset));
  }
  out += ": " + detail;
  return out;
}

KCORE_OBSERVER std::string CheckReport::ToString() const {
  if (clean()) return "simcheck: clean";
  std::string out = StrFormat(
      "simcheck: %llu violation(s) (memcheck=%llu initcheck=%llu "
      "racecheck=%llu synccheck=%llu leak=%llu)",
      static_cast<unsigned long long>(total_),
      static_cast<unsigned long long>(count(CheckKind::kMemcheck)),
      static_cast<unsigned long long>(count(CheckKind::kInitcheck)),
      static_cast<unsigned long long>(count(CheckKind::kRacecheck)),
      static_cast<unsigned long long>(count(CheckKind::kSynccheck)),
      static_cast<unsigned long long>(count(CheckKind::kLeak)));
  for (const CheckViolation& v : violations_) {
    out += "\n  " + v.ToString();
  }
  if (total_ > violations_.size()) {
    out += StrFormat("\n  ... %llu more not recorded",
                     static_cast<unsigned long long>(
                         total_ - violations_.size()));
  }
  return out;
}

KCORE_OBSERVER Status CheckReport::ToStatus() const {
  if (clean()) return Status::OK();
  return Status::FailedPrecondition(ToString());
}

KCORE_OBSERVER void SimChecker::RegisterAlloc(const void* ptr, uint64_t bytes,
                               bool zero_initialized, const char* label) {
  Allocation alloc;
  alloc.start = reinterpret_cast<uintptr_t>(ptr);
  alloc.bytes = bytes;
  alloc.label = label == nullptr ? "" : label;
  const uint64_t cells = (bytes + 3) / 4;
  alloc.shadow = std::make_unique<std::atomic<uint64_t>[]>(cells);
  const uint64_t init = zero_initialized ? kValidBit : 0;
  for (uint64_t i = 0; i < cells; ++i) {
    alloc.shadow[i].store(init, std::memory_order_relaxed);
  }
  allocations_[alloc.start] = std::move(alloc);
}

KCORE_OBSERVER void SimChecker::UnregisterAlloc(const void* ptr) {
  allocations_.erase(reinterpret_cast<uintptr_t>(ptr));
}

KCORE_OBSERVER void SimChecker::OnHostWrite(const void* ptr, uint64_t bytes) {
  if (bytes == 0) return;
  Allocation* alloc = FindAllocation(reinterpret_cast<uintptr_t>(ptr));
  if (alloc == nullptr) return;
  const uint64_t offset = reinterpret_cast<uintptr_t>(ptr) - alloc->start;
  const uint64_t end = std::min(offset + bytes, alloc->bytes);
  for (uint64_t i = offset / 4; i * 4 < end; ++i) {
    // Mark fully (or terminally) covered cells valid.
    if (i * 4 >= offset && ((i + 1) * 4 <= end || end == alloc->bytes)) {
      alloc->shadow[i].fetch_or(kValidBit, std::memory_order_relaxed);
    }
  }
}

KCORE_OBSERVER void SimChecker::OnHostRead(const void* ptr, uint64_t bytes) {
  if (bytes == 0) return;
  Allocation* alloc = FindAllocation(reinterpret_cast<uintptr_t>(ptr));
  if (alloc == nullptr) return;
  const uint64_t offset = reinterpret_cast<uintptr_t>(ptr) - alloc->start;
  const uint64_t end = std::min(offset + bytes, alloc->bytes);
  for (uint64_t i = offset / 4; i * 4 < end; ++i) {
    const uint64_t cell = alloc->shadow[i].load(std::memory_order_relaxed);
    if ((cell & kValidBit) != 0 || (cell & kInitReportedBit) != 0) continue;
    alloc->shadow[i].fetch_or(kInitReportedBit, std::memory_order_relaxed);
    CheckViolation v;
    v.kind = CheckKind::kInitcheck;
    v.allocation = alloc->label;
    v.offset = i * 4;
    v.detail = "CopyToHost reads uninitialized device memory";
    Record(std::move(v));
  }
}

KCORE_OBSERVER void SimChecker::BeginLaunch(const char* label) {
  ++epoch_;
  kernel_ = label == nullptr ? "" : label;
}

KCORE_OBSERVER void SimChecker::OnDeviceDestroyed() {
  for (const auto& [start, alloc] : allocations_) {
    CheckViolation v;
    v.kind = CheckKind::kLeak;
    v.allocation = alloc.label;
    v.detail = StrFormat(
        "allocation of %llu bytes never freed before Device destruction",
        static_cast<unsigned long long>(alloc.bytes));
    Record(std::move(v));
  }
  allocations_.clear();
}

KCORE_OBSERVER SimChecker::Allocation* SimChecker::FindAllocation(uintptr_t addr) {
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) return nullptr;
  --it;
  Allocation& alloc = it->second;
  if (addr >= alloc.start + alloc.bytes) return nullptr;
  return &alloc;
}

KCORE_OBSERVER bool SimChecker::CheckGlobalAccess(const CheckedBlockCtx& block, const void* addr,
                                   uint64_t bytes, CheckAccess access) {
  const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
  Allocation* alloc = FindAllocation(a);
  if (alloc == nullptr || a + bytes > alloc->start + alloc->bytes) {
    CheckViolation v;
    v.kind = CheckKind::kMemcheck;
    v.kernel = kernel_;
    v.actor_a = block.block_id();
    if (alloc != nullptr) {
      v.allocation = alloc->label;
      v.offset = a - alloc->start;
      v.detail = StrFormat("%s of %llu bytes by block %u runs past the "
                           "allocation end",
                           DescribeAccess(access).c_str(),
                           static_cast<unsigned long long>(bytes),
                           block.block_id());
    } else {
      v.offset = a;
      v.detail = StrFormat("%s of %llu bytes by block %u targets no live "
                           "device allocation",
                           DescribeAccess(access).c_str(),
                           static_cast<unsigned long long>(bytes),
                           block.block_id());
    }
    Record(std::move(v));
    return false;  // contain: do not touch the memory
  }

  const uint64_t offset = a - alloc->start;
  const bool cur_write = access != CheckAccess::kRead;
  const bool cur_read = access != CheckAccess::kWrite;
  const bool cur_atomic = access == CheckAccess::kAtomic;
  const uint32_t actor = block.block_id() & kActorMask;
  const uint32_t era = epoch_ & kEraMask;
  bool proceed = true;

  for (uint64_t i = offset / 4; i * 4 < offset + bytes; ++i) {
    std::atomic<uint64_t>& cell_ref = alloc->shadow[i];
    uint64_t cell = cell_ref.load(std::memory_order_relaxed);

    if (cur_read && (cell & kValidBit) == 0) {
      proceed = false;  // contain: the word holds indeterminate garbage
      if ((cell & kInitReportedBit) == 0) {
        cell |= kInitReportedBit;
        CheckViolation v;
        v.kind = CheckKind::kInitcheck;
        v.kernel = kernel_;
        v.allocation = alloc->label;
        v.offset = i * 4;
        v.actor_a = block.block_id();
        v.detail = StrFormat("%s by block %u of uninitialized (AllocUninit, "
                             "never written) memory",
                             DescribeAccess(access).c_str(),
                             block.block_id());
        Record(std::move(v));
      }
    }

    const Half writer = UnpackHalf(cell, kWriterShift);
    const Half reader = UnpackHalf(cell, kReaderShift);
    if ((cell & kRaceReportedBit) == 0) {
      uint32_t other = 0;
      bool conflict = false;
      if (Conflicts(writer, era, actor, cur_write, cur_atomic,
                    /*prior_is_write=*/true)) {
        conflict = true;
        other = writer.actor;
      } else if (Conflicts(reader, era, actor, cur_write, cur_atomic,
                           /*prior_is_write=*/false)) {
        conflict = true;
        other = reader.actor;
      }
      if (conflict) {
        cell |= kRaceReportedBit;
        CheckViolation v;
        v.kind = CheckKind::kRacecheck;
        v.kernel = kernel_;
        v.allocation = alloc->label;
        v.offset = i * 4;
        v.actor_a = other;
        v.actor_b = block.block_id();
        v.detail = StrFormat("%s by block %u conflicts with block %u in the "
                             "same launch (a non-atomic write is involved)",
                             DescribeAccess(access).c_str(), block.block_id(),
                             other);
        Record(std::move(v));
      }
    }

    // Update the shadow. A write validates the word only when it covers the
    // whole cell (or the allocation's trailing partial cell) — sub-word
    // writes must not hide an uninitialized remainder.
    if (cur_write) {
      if (i * 4 >= offset && ((i + 1) * 4 <= offset + bytes ||
                              offset + bytes == alloc->bytes)) {
        cell |= kValidBit;
      }
      cell = (cell & ~(kHalfFieldMask << kWriterShift)) |
             PackHalf(kWriterShift, cur_atomic, actor, era);
    }
    if (cur_read) {
      cell = (cell & ~(kHalfFieldMask << kReaderShift)) |
             PackHalf(kReaderShift, cur_atomic, actor, era);
    }
    cell_ref.store(cell, std::memory_order_relaxed);
  }
  return proceed;
}

KCORE_OBSERVER bool SimChecker::CheckSharedAccess(CheckedBlockCtx& block, const void* addr,
                                   uint64_t bytes, CheckAccess access) {
  const uintptr_t a = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t base = reinterpret_cast<uintptr_t>(block.shared_data());
  if (a < base || a + bytes > base + block.shared_used()) {
    CheckViolation v;
    v.kind = CheckKind::kMemcheck;
    v.kernel = kernel_;
    v.actor_a = block.block_id();
    v.offset = a >= base ? a - base : a;
    v.detail = StrFormat("shared-memory %s of %llu bytes by block %u falls "
                         "outside the SharedAlloc'd region",
                         DescribeAccess(access).c_str(),
                         static_cast<unsigned long long>(bytes),
                         block.block_id());
    Record(std::move(v));
    return false;
  }

  // The block runs on one host thread, so its shared shadow needs no
  // atomics. SharedAlloc zeroes memory, so there is no initcheck here.
  std::vector<uint64_t>& shadow = block.shared_shadow();
  if (shadow.size() * 4 < block.shared_used()) {
    shadow.resize((block.shared_used() + 3) / 4, 0);
  }
  const uint64_t offset = a - base;
  const bool cur_write = access != CheckAccess::kRead;
  const bool cur_read = access != CheckAccess::kWrite;
  const bool cur_atomic = access == CheckAccess::kAtomic;
  const uint32_t actor = block.current_warp() & kActorMask;
  const uint32_t era = block.sync_interval() & kEraMask;

  for (uint64_t i = offset / 4; i * 4 < offset + bytes; ++i) {
    uint64_t& cell = shadow[i];
    const Half writer = UnpackHalf(cell, kWriterShift);
    const Half reader = UnpackHalf(cell, kReaderShift);
    if ((cell & kRaceReportedBit) == 0) {
      uint32_t other = 0;
      bool conflict = false;
      if (Conflicts(writer, era, actor, cur_write, cur_atomic,
                    /*prior_is_write=*/true)) {
        conflict = true;
        other = writer.actor;
      } else if (Conflicts(reader, era, actor, cur_write, cur_atomic,
                           /*prior_is_write=*/false)) {
        conflict = true;
        other = reader.actor;
      }
      if (conflict) {
        cell |= kRaceReportedBit;
        CheckViolation v;
        v.kind = CheckKind::kSynccheck;
        v.kernel = kernel_;
        v.offset = i * 4;
        v.actor_a = other;
        v.actor_b = block.current_warp();
        v.detail = StrFormat(
            "shared-memory %s by warp %u conflicts with warp %u in block %u "
            "with no Sync() between them",
            DescribeAccess(access).c_str(), block.current_warp(), other,
            block.block_id());
        Record(std::move(v));
      }
    }
    if (cur_write) {
      cell = (cell & ~(kHalfFieldMask << kWriterShift)) |
             PackHalf(kWriterShift, cur_atomic, actor, era);
    }
    if (cur_read) {
      cell = (cell & ~(kHalfFieldMask << kReaderShift)) |
             PackHalf(kReaderShift, cur_atomic, actor, era);
    }
  }
  return true;
}

KCORE_OBSERVER void SimChecker::Record(CheckViolation violation) {
  std::lock_guard<std::mutex> lock(mu_);
  ++report_.total_;
  ++report_.by_kind_[static_cast<size_t>(violation.kind)];
  if (report_.violations_.size() < CheckReport::kMaxRecorded) {
    report_.violations_.push_back(std::move(violation));
  }
}

}  // namespace kcore::sim
