#include "cusim/warp_scan.h"

#include "common/check.h"

namespace kcore::sim {

KCORE_KERNEL void HillisSteeleInclusiveScan(uint32_t values[kWarpSize],
                                            PerfCounters& counters) {
  // In iteration i, lane j adds the value from lane j - 2^(i-1). On hardware
  // each iteration is one __shfl_up + add over all lanes; here lanes are
  // evaluated into a temp to preserve the lockstep read-before-write order.
  uint32_t temp[kWarpSize];
  for (uint32_t stride = 1; stride < kWarpSize; stride <<= 1) {
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      temp[lane] =
          lane >= stride ? values[lane] + values[lane - stride] : values[lane];
    }
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) values[lane] = temp[lane];
    counters.scan_steps += kWarpSize;
  }
}

KCORE_KERNEL uint32_t BlellochExclusiveScan(uint32_t values[kWarpSize],
                                            PerfCounters& counters) {
  // Up-sweep (reduce).
  for (uint32_t stride = 1; stride < kWarpSize; stride <<= 1) {
    for (uint32_t i = 2 * stride - 1; i < kWarpSize; i += 2 * stride) {
      values[i] += values[i - stride];
    }
    counters.scan_steps += kWarpSize;
  }
  const uint32_t total = values[kWarpSize - 1];
  values[kWarpSize - 1] = 0;
  // Down-sweep.
  for (uint32_t stride = kWarpSize / 2; stride >= 1; stride >>= 1) {
    for (uint32_t i = 2 * stride - 1; i < kWarpSize; i += 2 * stride) {
      const uint32_t left = values[i - stride];
      values[i - stride] = values[i];
      values[i] += left;
    }
    counters.scan_steps += kWarpSize;
  }
  return total;
}

KCORE_KERNEL uint32_t BallotExclusiveScan(WarpCtx& warp,
                                          const uint32_t flags[kWarpSize],
                                          uint32_t exclusive[kWarpSize]) {
  const uint32_t bits =
      warp.BallotSync([&](uint32_t lane) { return flags[lane] != 0; });
  warp.ForEachLane([&](uint32_t lane) {
    exclusive[lane] = WarpCtx::Popc(bits & WarpCtx::LaneMaskLt(lane));
  });
  warp.counters().scan_steps += kWarpSize;
  return WarpCtx::Popc(bits);
}

}  // namespace kcore::sim
