#include "cusim/warp_scan.h"

#include "common/check.h"

namespace kcore::sim {

void HillisSteeleInclusiveScan(uint32_t values[kWarpSize],
                               PerfCounters& counters) {
  // In iteration i, lane j adds the value from lane j - 2^(i-1). On hardware
  // each iteration is one __shfl_up + add over all lanes; here lanes are
  // evaluated into a temp to preserve the lockstep read-before-write order.
  uint32_t temp[kWarpSize];
  for (uint32_t stride = 1; stride < kWarpSize; stride <<= 1) {
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      temp[lane] =
          lane >= stride ? values[lane] + values[lane - stride] : values[lane];
    }
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) values[lane] = temp[lane];
    counters.scan_steps += kWarpSize;
  }
}

uint32_t BlellochExclusiveScan(uint32_t values[kWarpSize],
                               PerfCounters& counters) {
  // Up-sweep (reduce).
  for (uint32_t stride = 1; stride < kWarpSize; stride <<= 1) {
    for (uint32_t i = 2 * stride - 1; i < kWarpSize; i += 2 * stride) {
      values[i] += values[i - stride];
    }
    counters.scan_steps += kWarpSize;
  }
  const uint32_t total = values[kWarpSize - 1];
  values[kWarpSize - 1] = 0;
  // Down-sweep.
  for (uint32_t stride = kWarpSize / 2; stride >= 1; stride >>= 1) {
    for (uint32_t i = 2 * stride - 1; i < kWarpSize; i += 2 * stride) {
      const uint32_t left = values[i - stride];
      values[i - stride] = values[i];
      values[i] += left;
    }
    counters.scan_steps += kWarpSize;
  }
  return total;
}

uint32_t BallotExclusiveScan(WarpCtx& warp, const uint32_t flags[kWarpSize],
                             uint32_t exclusive[kWarpSize]) {
  const uint32_t bits =
      warp.BallotSync([&](uint32_t lane) { return flags[lane] != 0; });
  warp.ForEachLane([&](uint32_t lane) {
    exclusive[lane] = WarpCtx::Popc(bits & WarpCtx::LaneMaskLt(lane));
  });
  warp.counters().scan_steps += kWarpSize;
  return WarpCtx::Popc(bits);
}

uint32_t BlockExclusiveScan(BlockCtx& block, const uint32_t* flags,
                            uint32_t* exclusive) {
  const uint32_t num_warps = block.num_warps();
  KCORE_CHECK_LE(num_warps, kWarpSize);
  PerfCounters& counters = block.counters();

  // Stage 1: per-warp inclusive HS scan into `exclusive` (temporarily
  // holding inclusive values).
  uint32_t warp_sums[kWarpSize] = {0};
  block.ForEachWarp([&](WarpCtx& warp) {
    uint32_t local[kWarpSize];
    const uint32_t base = warp.warp_id() * kWarpSize;
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      local[lane] = flags[base + lane];
    }
    HillisSteeleInclusiveScan(local, counters);
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      exclusive[base + lane] = local[lane];
    }
    warp_sums[warp.warp_id()] = local[kWarpSize - 1];
  });
  block.Sync();  // Stage 2 barrier: warp sums visible to Warp 0.

  // Stage 3: Warp 0 HS-scans the warp sums (not 0/1, so ballot scan cannot
  // be used here — paper Fig. 9 note).
  HillisSteeleInclusiveScan(warp_sums, counters);
  block.Sync();  // Stage 4 barrier: per-warp global offsets visible.

  // Stage 4: add each warp's global offset; convert inclusive -> exclusive.
  block.ForEachWarp([&](WarpCtx& warp) {
    const uint32_t w = warp.warp_id();
    const uint32_t base = w * kWarpSize;
    const uint32_t warp_offset = w == 0 ? 0 : warp_sums[w - 1];
    warp.ForEachLane([&](uint32_t lane) {
      const uint32_t inclusive = exclusive[base + lane] + warp_offset;
      exclusive[base + lane] = inclusive - flags[base + lane];
    });
  });
  block.Sync();
  return warp_sums[num_warps - 1];
}

}  // namespace kcore::sim
