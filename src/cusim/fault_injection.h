#ifndef KCORE_CUSIM_FAULT_INJECTION_H_
#define KCORE_CUSIM_FAULT_INJECTION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"

namespace kcore::sim {

/// fault_injection — a deterministic fault plan for the simulated device.
///
/// A production k-core service must survive the failure modes real GPUs
/// exhibit: cudaMalloc OOM, lost/failed kernel launches, transient memory
/// corruption (ECC double-bit errors), and whole-device loss in multi-GPU
/// runs. This module makes the simulated Device *inject* those faults on a
/// deterministic, seeded schedule so the recovery paths in the peel drivers
/// can be exercised and regression-tested. Attach a plan with
/// DeviceOptions::fault_spec or the environment variable KCORE_FAULTS.
///
/// Spec grammar (';'-separated clauses):
///
///   spec    := clause (';' clause)*
///   clause  := kind [ ('@' | ':') param (',' param)* ]
///   param   := <index>                 -- bare number: the op index (1-based)
///            | at=<index>              -- same, spelled out
///            | launch=<index>          -- alias for at= (launch-domain kinds)
///            | p=<prob>                -- per-op Bernoulli probability
///            | seed=<u64>              -- per-clause RNG seed
///            | alloc=<label>           -- bitflip: target allocation label
///            | word=<index>|rand       -- bitflip: word within the target
///            | bit=<index>|rand        -- bitflip: bit within the word
///   kind    := alloc_fail | launch_fail | copy_fail | bitflip | device_lost
///
/// Examples:
///   alloc_fail@3                       the 3rd device allocation gets OOM
///   launch_fail:p=0.05,seed=7          each launch attempt fails w.p. 0.05
///   bitflip:launch=12,word=rand        after launch 12 completes, flip a
///                                      random bit of a corruptible word
///   device_lost@launch=40              the 40th launch kills the device
///   copy_fail@2                        the 2nd host<->device copy fails
///
/// Fault semantics (each maps to a real CUDA failure; see DESIGN.md):
///   alloc_fail   Alloc/AllocUninit returns OutOfMemory
///                                        (cudaErrorMemoryAllocation).
///   launch_fail  Launch returns Unavailable *before* executing any block —
///                fail-stop, no partial side effects (a launch-queue
///                rejection; cudaErrorLaunchFailure). Retrying is a new
///                attempt and may succeed.
///   copy_fail    CopyFromHost/CopyToHost returns Unavailable before moving
///                any byte (a failed cudaMemcpy). Retryable.
///   bitflip      After the at-th launch completes (or with probability p
///                after each launch), XOR one bit of one live device word —
///                an ECC double-bit error. Only allocations the driver has
///                registered via Device::MarkCorruptible are eligible:
///                topology arrays are modeled as ECC-scrubbed/checksummed,
///                and drivers opt in exactly the state they can validate
///                and roll back.
///   device_lost  When the launch counter reaches `at`, the device latches
///                into the lost state (cudaErrorDeviceUnavailable): every
///                subsequent alloc/launch/copy fails with DeviceLost.
///
/// Determinism: all probabilistic decisions come from per-clause xoshiro
/// RNGs seeded from the clause (or plan) seed, and index triggers count
/// operations per domain — the same plan driven through the same operation
/// sequence fires the same faults, which is what makes recovery tests
/// reproducible (see events()).
enum class FaultKind : uint8_t {
  kAllocFail = 0,
  kLaunchFail = 1,
  kCopyFail = 2,
  kBitflip = 3,
  kDeviceLost = 4,
};

/// Returns "alloc_fail", "launch_fail", ... for `kind`.
const char* FaultKindToString(FaultKind kind);

/// One parsed clause of a fault spec.
struct FaultClause {
  FaultKind kind = FaultKind::kLaunchFail;
  /// 1-based index of the triggering operation in the clause's op domain
  /// (allocations for alloc_fail, launches for launch_fail/bitflip/
  /// device_lost, copies for copy_fail). 0 = not index-triggered.
  uint64_t at = 0;
  /// Per-operation Bernoulli probability. 0 = not probability-triggered.
  double p = 0.0;
  /// Per-clause RNG seed; 0 = derive from the clause position.
  uint64_t seed = 0;
  /// bitflip targeting: allocation label ("" = any corruptible allocation),
  /// word/bit index or uniformly random.
  std::string alloc;
  uint64_t word = 0;
  bool word_rand = true;
  uint32_t bit = 0;
  bool bit_rand = true;
};

/// A parsed fault plan. Empty plans inject nothing.
struct FaultPlan {
  std::vector<FaultClause> clauses;
  bool empty() const { return clauses.empty(); }
};

/// Parses the spec grammar above. Fails with InvalidArgument naming the
/// offending clause.
StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec);

/// A fault that actually fired, for logs and determinism tests.
struct FaultEvent {
  FaultKind kind = FaultKind::kLaunchFail;
  /// Operation index (in the clause's domain) at which the fault fired.
  uint64_t op_index = 0;
  std::string detail;

  std::string ToString() const;
};

/// A live device allocation eligible for bitflips (registered through
/// Device::MarkCorruptible).
struct CorruptibleRange {
  void* ptr = nullptr;
  uint64_t bytes = 0;
  std::string label;
};

/// Executes a FaultPlan against the stream of device operations. Owned by
/// Device; one injector per device. Host-thread only (like the rest of the
/// Device surface).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Consulted by Device::Alloc/AllocUninit before reserving memory.
  Status OnAlloc(const char* label, uint64_t bytes);
  /// Consulted by Device::Launch before any block executes.
  Status OnLaunch(const char* label);
  /// Consulted by the DeviceArray copy paths before any byte moves.
  Status OnCopy(uint64_t bytes);

  /// Applies bitflips scheduled for the just-completed launch to the
  /// registered corruptible ranges. Returns the number of bits flipped.
  uint32_t ApplyBitflips(std::span<const CorruptibleRange> ranges);

  /// True once a device_lost clause has fired; all ops fail from then on.
  bool device_lost() const { return lost_; }

  uint64_t allocs_seen() const { return allocs_; }
  uint64_t launches_seen() const { return launches_; }
  uint64_t copies_seen() const { return copies_; }

  /// Every fault that fired, in order. Two injectors with the same plan
  /// driven through the same op sequence produce identical event logs.
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  /// Shared trigger logic: does `clause` fire at op index `index`?
  bool Fires(size_t clause_idx, uint64_t index);
  Status LostStatus() const;
  void Record(FaultKind kind, uint64_t op_index, std::string detail);

  FaultPlan plan_;
  std::vector<Rng> rngs_;  ///< One per clause, seeded deterministically.
  uint64_t allocs_ = 0;
  uint64_t launches_ = 0;
  uint64_t copies_ = 0;
  bool lost_ = false;
  std::vector<FaultEvent> events_;
};

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_FAULT_INJECTION_H_
