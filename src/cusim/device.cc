#include "cusim/device.h"

#include "common/strings.h"

namespace kcore::sim {

std::string Device::StrFormatBytes(uint64_t bytes) {
  return StrFormat("device allocation of %s failed",
                   HumanBytes(bytes).c_str());
}

}  // namespace kcore::sim
