#include "cusim/device.h"

#include <cstdlib>

#include "common/strings.h"

namespace kcore::sim {

std::string Device::StrFormatBytes(uint64_t bytes) {
  return StrFormat("device allocation of %s failed",
                   HumanBytes(bytes).c_str());
}

bool Device::EnvCheckEnabled() {
  const char* env = std::getenv("KCORE_SIMCHECK");
  return env != nullptr && env[0] == '1';
}

bool Device::EnvTraceEnabled() {
  const char* env = std::getenv("KCORE_TRACE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

std::string Device::EnvFaultSpec() {
  const char* env = std::getenv("KCORE_FAULTS");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace kcore::sim
