#ifndef KCORE_CUSIM_WARP_SCAN_H_
#define KCORE_CUSIM_WARP_SCAN_H_

#include <cstdint>

#include "common/check.h"
#include "cusim/annotations.h"
#include "cusim/block.h"
#include "cusim/warp.h"
#include "perf/perf_counters.h"

namespace kcore::sim {

/// Warp-level prefix-sum algorithms used by the compaction variants
/// (paper Fig. 8). All operate on one warp's 32 values.

/// Hillis–Steele inclusive scan, in place: log2(32)=5 SIMD iterations.
/// values[i] becomes sum(values[0..i]).
KCORE_KERNEL void HillisSteeleInclusiveScan(uint32_t values[kWarpSize],
                                            PerfCounters& counters);

/// Blelloch work-efficient exclusive scan, in place; returns the total.
/// Runs 2*log2(32) sweeps (the paper notes it needs twice the iterations of
/// Hillis–Steele, which is why HS is preferred at warp width).
KCORE_KERNEL uint32_t BlellochExclusiveScan(uint32_t values[kWarpSize],
                                            PerfCounters& counters);

/// Ballot scan (Fig. 8(c)): for 0/1 flags, compacts the lane votes into one
/// 32-bit bitmap with __ballot_sync, then each lane pops the bits below it.
/// Writes exclusive prefix counts into `exclusive` and returns the total
/// number of set flags.
KCORE_KERNEL uint32_t BallotExclusiveScan(WarpCtx& warp,
                                          const uint32_t flags[kWarpSize],
                                          uint32_t exclusive[kWarpSize]);

/// Two-stage intra-block exclusive scan (paper Fig. 9) over
/// `block.block_dim()` 0/1 flags: (1) per-warp HS scans, (2) warp sums are
/// collected, (3) Warp 0 HS-scans the 32 sums, (4) warp offsets are added.
/// Writes exclusive offsets into `exclusive` and returns the block total.
/// Requires num_warps() <= 32 (one warp must cover the warp sums).
///
/// Templated over the block instantiation (checked or not) so kernels
/// written as `[&](auto& block)` can call it from either. All operands are
/// kernel-local host arrays, not device memory, so binding the base
/// PerfCounters& here does not skip any instrumented accesses.
template <bool Checked>
KCORE_KERNEL uint32_t BlockExclusiveScan(BlockCtxT<Checked>& block,
                                         const uint32_t* flags,
                                         uint32_t* exclusive) {
  const uint32_t num_warps = block.num_warps();
  KCORE_CHECK_LE(num_warps, kWarpSize);
  PerfCounters& counters = block.counters();

  // Stage 1: per-warp inclusive HS scan into `exclusive` (temporarily
  // holding inclusive values).
  uint32_t warp_sums[kWarpSize] = {0};
  block.ForEachWarp([&](WarpCtx& warp) {
    uint32_t local[kWarpSize];
    const uint32_t base = warp.warp_id() * kWarpSize;
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      local[lane] = flags[base + lane];
    }
    HillisSteeleInclusiveScan(local, counters);
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      exclusive[base + lane] = local[lane];
    }
    warp_sums[warp.warp_id()] = local[kWarpSize - 1];
  });
  block.Sync();  // Stage 2 barrier: warp sums visible to Warp 0.

  // Stage 3: Warp 0 HS-scans the warp sums (not 0/1, so ballot scan cannot
  // be used here — paper Fig. 9 note).
  HillisSteeleInclusiveScan(warp_sums, counters);
  block.Sync();  // Stage 4 barrier: per-warp global offsets visible.

  // Stage 4: add each warp's global offset; convert inclusive -> exclusive.
  block.ForEachWarp([&](WarpCtx& warp) {
    const uint32_t w = warp.warp_id();
    const uint32_t base = w * kWarpSize;
    const uint32_t warp_offset = w == 0 ? 0 : warp_sums[w - 1];
    warp.ForEachLane([&](uint32_t lane) {
      const uint32_t inclusive = exclusive[base + lane] + warp_offset;
      exclusive[base + lane] = inclusive - flags[base + lane];
    });
  });
  block.Sync();
  return warp_sums[num_warps - 1];
}

/// Block-wide ballot scan: composes the warp ballot scan (Fig. 8(c)) across
/// warps through shared memory — the block-level analogue backing the
/// block-cooperative (CTA) expansion bin. Stage 1: each warp ballot-scans
/// its 32 flags and lane 0 stages the warp total in shared memory; Stage 2:
/// Warp 0 HS-scans the staged totals (counts, not 0/1 flags, so the ballot
/// trick does not apply — same Fig. 9 note as BlockExclusiveScan); Stage 3:
/// each warp adds its global offset. Writes exclusive offsets into
/// `exclusive` (block_dim() entries) and returns the block total.
/// Requires num_warps() <= 32 (one warp must cover the staged totals).
/// Unlike BlockExclusiveScan, the warp-total staging is modeled as shared
/// traffic (one store per warp, one load per consumer warp).
template <bool Checked>
KCORE_KERNEL uint32_t BlockBallotExclusiveScan(BlockCtxT<Checked>& block,
                                               const uint32_t* flags,
                                               uint32_t* exclusive) {
  const uint32_t num_warps = block.num_warps();
  KCORE_CHECK_LE(num_warps, kWarpSize);
  PerfCounters& counters = block.counters();

  // Stage 1: independent per-warp ballot scans; totals staged in shared.
  uint32_t warp_sums[kWarpSize] = {0};
  block.ForEachWarp([&](WarpCtx& warp) {
    const uint32_t base = warp.warp_id() * kWarpSize;
    warp_sums[warp.warp_id()] =
        BallotExclusiveScan(warp, flags + base, exclusive + base);
    ++counters.shared_ops;  // lane 0 stores the warp total
  });
  block.Sync();  // Stage 2 barrier: warp totals visible to Warp 0.

  counters.shared_ops += num_warps;  // Warp 0 loads the staged totals.
  HillisSteeleInclusiveScan(warp_sums, counters);
  block.Sync();  // Stage 3 barrier: per-warp global offsets visible.

  // Stage 3: add each warp's global offset (0 for Warp 0, which still
  // executes the add in lockstep with the rest of the block).
  block.ForEachWarp([&](WarpCtx& warp) {
    const uint32_t w = warp.warp_id();
    const uint32_t base = w * kWarpSize;
    const uint32_t warp_offset = w == 0 ? 0 : warp_sums[w - 1];
    ++counters.shared_ops;  // each warp loads its offset
    warp.ForEachLane(
        [&](uint32_t lane) { exclusive[base + lane] += warp_offset; });
  });
  block.Sync();
  return warp_sums[num_warps - 1];
}

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_WARP_SCAN_H_
