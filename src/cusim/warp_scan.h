#ifndef KCORE_CUSIM_WARP_SCAN_H_
#define KCORE_CUSIM_WARP_SCAN_H_

#include <cstdint>

#include "cusim/block.h"
#include "cusim/warp.h"
#include "perf/perf_counters.h"

namespace kcore::sim {

/// Warp-level prefix-sum algorithms used by the compaction variants
/// (paper Fig. 8). All operate on one warp's 32 values.

/// Hillis–Steele inclusive scan, in place: log2(32)=5 SIMD iterations.
/// values[i] becomes sum(values[0..i]).
void HillisSteeleInclusiveScan(uint32_t values[kWarpSize],
                               PerfCounters& counters);

/// Blelloch work-efficient exclusive scan, in place; returns the total.
/// Runs 2*log2(32) sweeps (the paper notes it needs twice the iterations of
/// Hillis–Steele, which is why HS is preferred at warp width).
uint32_t BlellochExclusiveScan(uint32_t values[kWarpSize],
                               PerfCounters& counters);

/// Ballot scan (Fig. 8(c)): for 0/1 flags, compacts the lane votes into one
/// 32-bit bitmap with __ballot_sync, then each lane pops the bits below it.
/// Writes exclusive prefix counts into `exclusive` and returns the total
/// number of set flags.
uint32_t BallotExclusiveScan(WarpCtx& warp, const uint32_t flags[kWarpSize],
                             uint32_t exclusive[kWarpSize]);

/// Two-stage intra-block exclusive scan (paper Fig. 9) over
/// `block.block_dim()` 0/1 flags: (1) per-warp HS scans, (2) warp sums are
/// collected, (3) Warp 0 HS-scans the 32 sums, (4) warp offsets are added.
/// Writes exclusive offsets into `exclusive` and returns the block total.
/// Requires num_warps() <= 32 (one warp must cover the warp sums).
uint32_t BlockExclusiveScan(BlockCtx& block, const uint32_t* flags,
                            uint32_t* exclusive);

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_WARP_SCAN_H_
