#ifndef KCORE_CUSIM_SIMPROF_H_
#define KCORE_CUSIM_SIMPROF_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cusim/annotations.h"
#include "perf/trace.h"

namespace kcore::sim {

/// Configuration of a device's profiler (see Device::profiler()).
struct ProfilerOptions {
  /// Process id under which this device's events appear in the exported
  /// trace. Multi-device drivers give each worker its own pid so Perfetto
  /// draws the fleet as separate process groups.
  uint32_t pid = 0;
  /// Process-track label; "" derives "gpu<pid>".
  std::string process_name;
  /// Record one sub-span per simulated block, laid out on per-SM lanes under
  /// the kernel span — the imbalance picture nsys draws from SM occupancy.
  /// Costs O(num_blocks) events per launch; switch off for huge grids.
  bool block_spans = true;
  /// SM lanes available for the block-span layout (DeviceOptions::num_sms).
  uint32_t num_sms = 108;
};

/// The Nsight-Systems analogue for the simulated device: an opt-in recorder
/// that turns device activity into a chrome://tracing timeline on the
/// *modeled* clock (what nsys shows for a real GPU, this shows for the cost
/// model). One span per kernel launch with per-block lane sub-spans, instant
/// + counter events for alloc/free with live/peak accounting, copy spans on
/// a PCIe track, NVTX-style named ranges pushed by the drivers, and flow
/// arrows tying injected faults to their retries/rollbacks.
///
/// Zero-cost when off: the Device only constructs a SimProfiler when
/// profiling is requested, and every hook call is guarded by a null check on
/// the host path — no per-lane instrumentation exists, so a profiled run's
/// modeled time is bit-identical to an unprofiled one (asserted in
/// trace_test.cc). Hooks never touch counters or the clock; they only read
/// it.
///
/// Thread compatibility: host (driving) thread only, like the Device
/// methods that call the hooks.
class KCORE_OBSERVER SimProfiler {
 public:
  /// `modeled_ns` / `transfer_ns` point at the owning device's clocks; the
  /// profiler samples them instead of keeping its own notion of "now".
  SimProfiler(ProfilerOptions options, const double* modeled_ns,
              const double* transfer_ns);

  // --- Device hooks (called by Device; not meant for drivers). ---
  /// One completed Launch. [start_ns, end_ns) is the modeled interval the
  /// launch occupied (launch overhead included), so summed kernel spans
  /// equal the modeled clock's advance exactly. `block_ns` holds each
  /// block's own modeled time for the per-SM lane layout.
  void OnLaunch(const char* label, uint32_t num_blocks, uint32_t block_dim,
                double start_ns, double end_ns, double launch_overhead_ns,
                const std::vector<double>& block_ns);
  void OnAlloc(const char* label, uint64_t bytes, uint64_t live_bytes,
               uint64_t peak_bytes);
  void OnFree(uint64_t bytes, uint64_t live_bytes);
  /// One host<->device copy. `start_ns`/`dur_ns` live on the transfer
  /// timeline (the modeled clock does not advance for copies; see
  /// Device::transfer_ms), drawn on the pid's PCIe track.
  void OnCopy(bool to_device, uint64_t bytes, double start_ns, double dur_ns);

  // --- NVTX analogue (called by drivers, usually via ProfRange). ---
  /// Opens a named range on the pid's "phases" track at the current modeled
  /// time. Ranges nest like nvtxRangePush/Pop.
  void PushRange(std::string name);
  void PopRange();
  /// A labeled point-in-time marker (nvtxMark): checkpoints, reshards,
  /// fallback entries — things with no modeled duration of their own.
  void Mark(std::string name, const char* cat = kTraceCatRecovery);
  /// Opens a flow arrow at the current modeled time and returns its id;
  /// FlowEnd with the same id draws the arrow to the recovery point.
  uint64_t FlowBegin(std::string name);
  void FlowEnd(std::string name, uint64_t id);

  double now_ns() const { return *modeled_ns_; }
  uint32_t pid() const { return options_.pid; }
  const Trace& trace() const { return trace_; }
  Trace& mutable_trace() { return trace_; }

 private:
  /// Lazily names the per-SM lane threads up to `lanes`.
  void EnsureSmLaneNames(uint32_t lanes);

  ProfilerOptions options_;
  const double* modeled_ns_;
  const double* transfer_ns_;
  Trace trace_;
  /// Open PushRange frames: {name, start ts}.
  std::vector<std::pair<std::string, double>> range_stack_;
  uint64_t next_flow_id_ = 1;
  /// Greedy list-scheduler scratch: per-SM busy-until offsets.
  std::vector<double> sm_free_;
  uint32_t named_sm_lanes_ = 0;
};

/// RAII NVTX range (nvtxRangePush/Pop analogue). Null profiler = no-op, so
/// drivers write `ProfRange r(device->profiler(), "scan");` unconditionally
/// and pay nothing when profiling is off.
class KCORE_OBSERVER ProfRange {
 public:
  ProfRange(SimProfiler* profiler, const char* name) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->PushRange(name);
  }
  ~ProfRange() {
    if (profiler_ != nullptr) profiler_->PopRange();
  }
  ProfRange(const ProfRange&) = delete;
  ProfRange& operator=(const ProfRange&) = delete;

 private:
  SimProfiler* profiler_;
};

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_SIMPROF_H_
