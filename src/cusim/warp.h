#ifndef KCORE_CUSIM_WARP_H_
#define KCORE_CUSIM_WARP_H_

#include <bit>
#include <cstdint>

#include "perf/perf_counters.h"

namespace kcore::sim {

/// Number of lanes per warp, as on all NVIDIA architectures.
inline constexpr uint32_t kWarpSize = 32;

/// One warp of the simulated SIMT machine.
///
/// Execution semantics: lane bodies run sequentially in lane order on the
/// host thread that owns the enclosing block. This is one legal SIMT
/// schedule — CUDA guarantees no intra-warp ordering beyond explicit sync
/// primitives, so any kernel that is correct under CUDA's model is correct
/// under this serialization; warp-wide collectives (BallotSync) evaluate all
/// lanes before producing the collective result, matching lockstep hardware.
class WarpCtx {
 public:
  WarpCtx(uint32_t warp_id, uint32_t num_warps, PerfCounters* counters)
      : warp_id_(warp_id), num_warps_(num_warps), counters_(counters) {}

  uint32_t warp_id() const { return warp_id_; }
  uint32_t num_warps() const { return num_warps_; }
  PerfCounters& counters() { return *counters_; }

  /// Runs fn(lane) for lane = 0..31. Equivalent to one SIMD instruction
  /// sequence over the full mask.
  template <typename Fn>
  void ForEachLane(Fn&& fn) {
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) fn(lane);
    counters_->lane_ops += kWarpSize;
  }

  /// __ballot_sync(FULL_MASK, pred): evaluates the predicate on every lane
  /// and returns the 32-bit vote bitmap (bit `lane` = pred(lane)).
  template <typename Pred>
  uint32_t BallotSync(Pred&& pred) {
    uint32_t bits = 0;
    for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
      if (pred(lane)) bits |= 1u << lane;
    }
    counters_->lane_ops += kWarpSize;
    return bits;
  }

  /// __syncwarp(): a warp barrier. Free under lane serialization but counted
  /// so instruction mixes match the real kernels.
  void SyncWarp() { ++counters_->lane_ops; }

  /// __popc(x).
  static uint32_t Popc(uint32_t x) { return std::popcount(x); }

  /// The mask of lanes strictly below `lane` (for exclusive ballot scans).
  static uint32_t LaneMaskLt(uint32_t lane) {
    return lane == 0 ? 0u : (0xffffffffu >> (kWarpSize - lane));
  }

 private:
  uint32_t warp_id_;
  uint32_t num_warps_;
  PerfCounters* counters_;
};

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_WARP_H_
