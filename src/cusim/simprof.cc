#include "cusim/simprof.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"
#include "cusim/annotations.h"

namespace kcore::sim {

SimProfiler::SimProfiler(ProfilerOptions options, const double* modeled_ns,
                         const double* transfer_ns)
    : options_(std::move(options)),
      modeled_ns_(modeled_ns),
      transfer_ns_(transfer_ns) {
  if (options_.process_name.empty()) {
    options_.process_name = StrFormat("gpu%u", options_.pid);
  }
  trace_.SetProcessName(options_.pid, options_.process_name);
  trace_.SetThreadName(options_.pid, kTraceTidKernels, "kernels");
  trace_.SetThreadName(options_.pid, kTraceTidRanges, "phases");
  trace_.SetThreadName(options_.pid, kTraceTidPcie, "pcie");
  trace_.SetThreadName(options_.pid, kTraceTidMemory, "memory");
}

KCORE_OBSERVER void SimProfiler::EnsureSmLaneNames(uint32_t lanes) {
  for (uint32_t sm = named_sm_lanes_; sm < lanes; ++sm) {
    trace_.SetThreadName(options_.pid, kTraceTidBlockLanes + sm,
                         StrFormat("sm %u", sm));
  }
  named_sm_lanes_ = std::max(named_sm_lanes_, lanes);
}

KCORE_OBSERVER void SimProfiler::OnLaunch(const char* label, uint32_t num_blocks,
                           uint32_t block_dim, double start_ns, double end_ns,
                           double launch_overhead_ns,
                           const std::vector<double>& block_ns) {
  trace_.AddComplete(
      label, kTraceCatKernel, options_.pid, kTraceTidKernels, start_ns,
      end_ns - start_ns,
      {{"grid", StrFormat("%u", num_blocks)},
       {"block", StrFormat("%u", block_dim)},
       {"launch_overhead_us", StrFormat("%.9g", launch_overhead_ns / 1e3)}});
  if (!options_.block_spans || block_ns.empty()) return;

  // Lay the blocks out on SM lanes with a greedy list schedule (each block
  // goes to the earliest-free SM), which is how the cost model's wave bound
  // arises: the kernel body cannot end before max(slowest block, total work
  // spread over all SMs). The lanes visualize imbalance — a straggler block
  // sticks out past its wave.
  const uint32_t lanes =
      std::min<uint32_t>(std::max(1u, options_.num_sms), num_blocks);
  EnsureSmLaneNames(lanes);
  sm_free_.assign(lanes, 0.0);
  const double body_start = start_ns + launch_overhead_ns;
  for (uint32_t b = 0; b < block_ns.size(); ++b) {
    const uint32_t sm = static_cast<uint32_t>(
        std::min_element(sm_free_.begin(), sm_free_.end()) - sm_free_.begin());
    trace_.AddComplete(StrFormat("%s b%u", label, b), kTraceCatBlock,
                       options_.pid, kTraceTidBlockLanes + sm,
                       body_start + sm_free_[sm], block_ns[b]);
    sm_free_[sm] += block_ns[b];
  }
}

KCORE_OBSERVER void SimProfiler::OnAlloc(const char* label, uint64_t bytes,
                          uint64_t live_bytes, uint64_t peak_bytes) {
  trace_.AddInstant(
      StrFormat("alloc %s", label), kTraceCatMemory, options_.pid,
      kTraceTidMemory, now_ns(),
      {{"bytes", StrFormat("%llu", static_cast<unsigned long long>(bytes))},
       {"live_bytes",
        StrFormat("%llu", static_cast<unsigned long long>(live_bytes))},
       {"peak_bytes",
        StrFormat("%llu", static_cast<unsigned long long>(peak_bytes))}});
  trace_.AddCounter("device_mem", options_.pid, now_ns(),
                    {{"live", static_cast<double>(live_bytes)}});
}

KCORE_OBSERVER void SimProfiler::OnFree(uint64_t bytes, uint64_t live_bytes) {
  trace_.AddInstant(
      "free", kTraceCatMemory, options_.pid, kTraceTidMemory, now_ns(),
      {{"bytes", StrFormat("%llu", static_cast<unsigned long long>(bytes))},
       {"live_bytes",
        StrFormat("%llu", static_cast<unsigned long long>(live_bytes))}});
  trace_.AddCounter("device_mem", options_.pid, now_ns(),
                    {{"live", static_cast<double>(live_bytes)}});
}

KCORE_OBSERVER void SimProfiler::OnCopy(bool to_device, uint64_t bytes, double start_ns,
                         double dur_ns) {
  trace_.AddComplete(
      to_device ? "memcpy HtoD" : "memcpy DtoH", kTraceCatCopy, options_.pid,
      kTraceTidPcie, start_ns, dur_ns,
      {{"bytes", StrFormat("%llu", static_cast<unsigned long long>(bytes))}});
}

KCORE_OBSERVER void SimProfiler::PushRange(std::string name) {
  range_stack_.emplace_back(std::move(name), now_ns());
}

KCORE_OBSERVER void SimProfiler::PopRange() {
  KCORE_CHECK(!range_stack_.empty());
  auto [name, start] = std::move(range_stack_.back());
  range_stack_.pop_back();
  trace_.AddComplete(std::move(name), kTraceCatRange, options_.pid,
                     kTraceTidRanges, start, now_ns() - start);
}

KCORE_OBSERVER void SimProfiler::Mark(std::string name, const char* cat) {
  trace_.AddInstant(std::move(name), cat, options_.pid, kTraceTidRanges,
                    now_ns());
}

KCORE_OBSERVER uint64_t SimProfiler::FlowBegin(std::string name) {
  const uint64_t id = next_flow_id_++;
  trace_.AddFlowBegin(std::move(name), options_.pid, kTraceTidRanges,
                      now_ns(), id);
  return id;
}

KCORE_OBSERVER void SimProfiler::FlowEnd(std::string name, uint64_t id) {
  trace_.AddFlowEnd(std::move(name), options_.pid, kTraceTidRanges, now_ns(),
                    id);
}

}  // namespace kcore::sim
