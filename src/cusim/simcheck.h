#ifndef KCORE_CUSIM_SIMCHECK_H_
#define KCORE_CUSIM_SIMCHECK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "cusim/annotations.h"
#include "perf/perf_counters.h"

namespace kcore::sim {

template <bool Checked>
class BlockCtxT;
using CheckedBlockCtx = BlockCtxT<true>;

/// simcheck — a compute-sanitizer analogue for the simulated device.
///
/// An opt-in checking layer (DeviceOptions::check_mode or KCORE_SIMCHECK=1)
/// that validates every *instrumented* device-memory access issued from
/// inside a Device::Launch. Four analyses, mirroring NVIDIA's
/// compute-sanitizer tools:
///
///  - memcheck:  every global load/store/atomic must fall entirely inside a
///               live device allocation; shared accesses must fall inside
///               the block's SharedAlloc'd region. Unfreed allocations at
///               Device destruction are reported as leaks.
///  - initcheck: AllocUninit memory carries a shadow valid bitmap (4-byte
///               granularity); reads of never-written words are reported.
///               Alloc (zeroed) memory is born valid; CopyFromHost marks
///               the copied range valid.
///  - racecheck: each global word remembers its last reader/writer (block
///               id + launch epoch + atomic/non-atomic tag). Two accesses
///               to one word from distinct blocks within one launch
///               conflict iff at least one of them is a NON-ATOMIC WRITE.
///               Non-atomic reads racing device-wide atomics are *not*
///               flagged: that is the stale-read pattern the paper's
///               redundancy-avoidance logic (Alg. 3 lines 20-24) is built
///               to survive, and CUDA kernels rely on it routinely.
///  - synccheck: each shared-memory word remembers its last reader/writer
///               (warp id + Sync() interval). Two accesses from distinct
///               warps in the same barrier interval conflict iff at least
///               one is a non-atomic write — a missing __syncthreads().
///
/// Violating accesses are *contained*: an out-of-bounds or uninitialized
/// read returns T{} instead of dereferencing, an out-of-bounds write or
/// atomic is dropped. This keeps deliberately-broken test kernels safe to
/// execute under host sanitizers (ASan) while still reporting the bug.
///
/// Coverage: only accesses issued through the cusim accessors
/// (GlobalLoad/GlobalStore/SharedLoad/SharedStore/Atomic*) are observed,
/// and only from threads executing inside Device::Launch. Raw pointer
/// dereferences — including the host-orchestrated systems baselines and the
/// loop kernel's shared head/tail cells — are invisible. See DESIGN.md
/// "simcheck" for the full observability model.

/// How an instrumented access touches memory. Atomics count as both a read
/// and a write with the atomic tag set.
enum class CheckAccess : uint8_t { kRead, kWrite, kAtomic };

/// Which analysis a violation belongs to.
enum class CheckKind : uint8_t {
  kMemcheck = 0,
  kInitcheck = 1,
  kRacecheck = 2,
  kSynccheck = 3,
  kLeak = 4,
};

/// Returns "memcheck", "initcheck", ... for `kind`.
const char* CheckKindToString(CheckKind kind);

/// One detected violation, with enough context to locate the bug.
struct CheckViolation {
  CheckKind kind = CheckKind::kMemcheck;
  std::string kernel;      ///< Launch label; "" for host-side operations.
  std::string allocation;  ///< Allocation label; "" when address is unmapped.
  uint64_t offset = 0;     ///< Byte offset into the allocation (or address).
  uint32_t actor_a = 0;    ///< Block id (warp id for synccheck) of party A.
  uint32_t actor_b = 0;    ///< Second party for race/sync conflicts.
  std::string detail;      ///< Human-readable description.

  std::string ToString() const;
};

/// The structured result of a checked run: all recorded violations plus
/// per-analysis totals (recording caps at kMaxRecorded to bound memory; the
/// totals keep counting).
class KCORE_OBSERVER CheckReport {
 public:
  bool clean() const { return total_ == 0; }
  uint64_t total_violations() const { return total_; }
  uint64_t count(CheckKind kind) const {
    return by_kind_[static_cast<size_t>(kind)];
  }
  const std::vector<CheckViolation>& violations() const { return violations_; }

  /// Multi-line summary: a per-analysis count header plus one line per
  /// recorded violation. "simcheck: clean" when empty.
  std::string ToString() const;

  /// OK when clean; FailedPrecondition carrying ToString() otherwise — the
  /// StatusOr surface for checked decomposition runs.
  Status ToStatus() const;

 private:
  friend class SimChecker;
  static constexpr size_t kMaxRecorded = 64;

  std::vector<CheckViolation> violations_;
  uint64_t total_ = 0;
  std::array<uint64_t, 5> by_kind_{};
};

/// The checker itself. One instance per checked Device, shared_ptr-owned so
/// tests can hold the report past the Device's destruction (leak checking).
///
/// Threading: the registry methods (RegisterAlloc/UnregisterAlloc/
/// OnHostWrite/OnHostRead/BeginLaunch/report) follow the Device contract —
/// host (driving) thread only, never concurrent with a running launch. The
/// access hooks (CheckGlobalAccess/CheckSharedAccess) are called from
/// concurrently-running simulated blocks; shadow cells are atomic and the
/// violation log is mutex-guarded.
class KCORE_OBSERVER SimChecker {
 public:
  // --- Host side (driving thread only). ---

  /// Registers a device allocation. `zero_initialized` allocations are born
  /// fully valid for initcheck; AllocUninit ones are born invalid.
  void RegisterAlloc(const void* ptr, uint64_t bytes, bool zero_initialized,
                     const char* label);
  /// Removes an allocation (cudaFree analogue). Unknown pointers ignore.
  void UnregisterAlloc(const void* ptr);
  /// CopyFromHost: marks [ptr, ptr+bytes) valid.
  void OnHostWrite(const void* ptr, uint64_t bytes);
  /// CopyToHost: initcheck on the source range (reads of uninit words).
  void OnHostRead(const void* ptr, uint64_t bytes);
  /// Starts a new launch epoch; `label` names the kernel in reports.
  void BeginLaunch(const char* label);
  /// Called from ~Device: reports still-registered allocations as leaks.
  void OnDeviceDestroyed();

  // --- Device side (any worker thread, during a launch). ---

  /// Validates one global-memory access by `block`. Returns false when the
  /// access must be contained (OOB, or an uninitialized read).
  bool CheckGlobalAccess(const CheckedBlockCtx& block, const void* addr,
                         uint64_t bytes, CheckAccess access);
  /// Validates one shared-memory access by the current warp of `block`.
  bool CheckSharedAccess(CheckedBlockCtx& block, const void* addr,
                         uint64_t bytes, CheckAccess access);

  /// The report so far. Host thread, between launches.
  const CheckReport& report() const { return report_; }

 private:
  struct Allocation {
    uintptr_t start = 0;
    uint64_t bytes = 0;
    std::string label;
    /// One shadow cell per 4 bytes (see simcheck.cc for the bit layout).
    std::unique_ptr<std::atomic<uint64_t>[]> shadow;
  };

  /// The live allocation containing `addr`, or nullptr.
  Allocation* FindAllocation(uintptr_t addr);
  void Record(CheckViolation violation);

  std::map<uintptr_t, Allocation> allocations_;
  uint32_t epoch_ = 0;
  std::string kernel_;  ///< Label of the launch in flight.

  std::mutex mu_;  ///< Guards report_ mutation from worker threads.
  CheckReport report_;
};

/// The counters handle of a *checked* block. Device::Launch compiles every
/// kernel twice — against BlockCtxT<false>, whose counters() is a plain
/// PerfCounters (the accessors compile to exactly the unchecked code: zero
/// instructions of checking overhead), and against BlockCtxT<true>, whose
/// counters() is this type, which routes every accessor through the
/// SimChecker — and picks the instantiation when the launch starts. That is
/// compute-sanitizer's own model: instrumented code exists only under the
/// tool, native code pays nothing.
///
/// Caveat: a helper that takes an explicit `PerfCounters&` parameter binds
/// the base class and silently opts its accesses out of checking. Kernel
/// code should thread counters as `auto&` so the checked type survives the
/// call chain.
struct CheckedPerfCounters : PerfCounters {
  SimChecker* checker = nullptr;
  CheckedBlockCtx* block = nullptr;
};

/// Access hooks called by the checked accessor overloads in atomics.h.
/// Return false when the access must be contained (skip the load/store and
/// return T{}).
inline bool CheckGlobalOp(const CheckedPerfCounters& counters,
                          const void* addr, uint64_t bytes,
                          CheckAccess access) {
  return counters.checker->CheckGlobalAccess(*counters.block, addr, bytes,
                                             access);
}

inline bool CheckSharedOp(const CheckedPerfCounters& counters,
                          const void* addr, uint64_t bytes,
                          CheckAccess access) {
  return counters.checker->CheckSharedAccess(*counters.block, addr, bytes,
                                             access);
}

}  // namespace kcore::sim

#endif  // KCORE_CUSIM_SIMCHECK_H_
