#ifndef KCORE_COMMON_CANCELLATION_H_
#define KCORE_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <limits>

#include "common/status.h"

namespace kcore {

/// Cooperative cancellation flag, shared between a request owner (who calls
/// Cancel) and the engine executing the request (which polls cancelled() at
/// round boundaries — see CancelContext below). Thread-safe: Cancel may be
/// called from any thread while an engine is mid-round; the engine observes
/// the flag no later than its next round boundary.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A wall-clock deadline. Default-constructed deadlines never expire; a
/// finite one is anchored at construction time (AfterMillis). Wall clock —
/// not the modeled device clock — because a serving deadline bounds how long
/// the *caller* waits, which includes host-side recovery and queueing, not
/// just modeled kernel time (that budget is Status::Timeout's job).
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `ms` wall-clock milliseconds from now. ms <= 0 is already
  /// expired (useful for tests and for "fail fast" admission probes).
  static Deadline AfterMillis(double ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool infinite() const { return !has_deadline_; }

  bool expired() const { return has_deadline_ && Clock::now() >= when_; }

  /// Milliseconds until expiry; +inf when infinite, clamped at 0 once past.
  double remaining_millis() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    const double ms =
        std::chrono::duration<double, std::milli>(when_ - Clock::now())
            .count();
    return ms < 0.0 ? 0.0 : ms;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point when_{};
};

/// The request-lifecycle context an engine polls at every round boundary:
/// an optional cooperative CancelToken and an optional Deadline. Engines
/// carry a `const CancelContext*` in their options (GpuPeelOptions,
/// MultiGpuOptions, VetgaConfig); nullptr means "no lifecycle" and costs
/// nothing on the hot path.
///
/// The contract (DESIGN.md "deadline at round boundaries"): a check between
/// rounds means an expired or cancelled request stops and releases its
/// device buffers within ONE peel round — never mid-kernel, so the device
/// is left in a consistent state, and never later than the next boundary.
struct CancelContext {
  /// Not owned; may be null (deadline-only context). Must outlive the run.
  const CancelToken* token = nullptr;
  Deadline deadline;

  /// OK while the request is live; Status::Cancelled once the token fires,
  /// Status::DeadlineExceeded once the deadline passes (token wins when both
  /// hold — the caller explicitly asked first). `where` names the checking
  /// round boundary in the error message.
  Status Check(const char* where) const {
    if (token != nullptr && token->cancelled()) {
      return Status::Cancelled(std::string("request cancelled at ") + where);
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(std::string("deadline expired at ") +
                                      where);
    }
    return Status::OK();
  }
};

}  // namespace kcore

#endif  // KCORE_COMMON_CANCELLATION_H_
