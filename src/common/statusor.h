#ifndef KCORE_COMMON_STATUSOR_H_
#define KCORE_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace kcore {

/// A union of a Status and a value of type T; either holds an OK status and
/// a value, or a non-OK status and no value. Modeled on absl::StatusOr.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a failure status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    KCORE_CHECK(!status_.ok());
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); violating this is a programming error.
  const T& value() const& {
    KCORE_CHECK(ok());
    return *value_;
  }
  T& value() & {
    KCORE_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    KCORE_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// failure status to the caller.
#define KCORE_ASSIGN_OR_RETURN(lhs, expr)               \
  auto KCORE_CONCAT_(_statusor_, __LINE__) = (expr);    \
  if (!KCORE_CONCAT_(_statusor_, __LINE__).ok())        \
    return KCORE_CONCAT_(_statusor_, __LINE__).status(); \
  lhs = std::move(KCORE_CONCAT_(_statusor_, __LINE__)).value()

#define KCORE_CONCAT_INNER_(a, b) a##b
#define KCORE_CONCAT_(a, b) KCORE_CONCAT_INNER_(a, b)

}  // namespace kcore

#endif  // KCORE_COMMON_STATUSOR_H_
