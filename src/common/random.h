#ifndef KCORE_COMMON_RANDOM_H_
#define KCORE_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

namespace kcore {

/// SplitMix64: used to expand a user seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, seedable, fast PRNG (xoshiro256**). All dataset generation
/// in this repo is reproducible given a seed; std::mt19937 is avoided so that
/// sequences are stable across standard-library versions.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce
  /// identical sequences.
  explicit Rng(uint64_t seed = 0x9b97f4a7c15ULL) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Uniform over all 64-bit values.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t UniformInt(uint64_t bound) {
    KCORE_CHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    KCORE_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool Bernoulli(double p) { return UniformReal() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace kcore

#endif  // KCORE_COMMON_RANDOM_H_
