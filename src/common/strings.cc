#include "common/strings.h"

#include <cstdio>

namespace kcore {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && i >= first_group && (i - first_group) % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  return unit == 0 ? StrFormat("%llu B", static_cast<unsigned long long>(bytes))
                   : StrFormat("%.1f %s", value, kUnits[unit]);
}

std::vector<std::string> SplitNonEmpty(const std::string& text,
                                       const std::string& delims) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find_first_of(delims, start);
    const size_t stop = end == std::string::npos ? text.size() : end;
    if (stop > start) fields.push_back(text.substr(start, stop - start));
    start = stop + 1;
  }
  return fields;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace kcore
