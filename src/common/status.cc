#include "common/status.h"

namespace kcore {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeviceLost:
      return "DeviceLost";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kcore
