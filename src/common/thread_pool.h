#ifndef KCORE_COMMON_THREAD_POOL_H_
#define KCORE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace kcore {

/// A persistent pool of worker threads executing indexed task batches.
///
/// The pool exists so that simulated GPU thread blocks and CPU-parallel
/// baselines run on real OS threads (true concurrency and real data races on
/// atomics) without paying thread spawn cost per kernel launch.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 picks max(2, hardware_concurrency) so
  /// that even single-core hosts exercise preemptive interleaving.
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Runs fn(i) for i in [0, count), distributing indices dynamically over
  /// the workers plus the calling thread. Blocks until all complete.
  /// `fn` must be safe to invoke concurrently from multiple threads.
  ///
  /// Exception safety: if fn throws, the remaining unclaimed indices are
  /// skipped, already-running invocations finish, and the FIRST exception is
  /// rethrown here on the calling thread once the batch has fully drained.
  /// The pool stays usable afterwards (no wedged batch, no terminated
  /// worker) — the serving loop leans on this to survive a throwing task.
  void ParallelFor(uint64_t count, const std::function<void(uint64_t)>& fn);

  /// Runs fn(lane) once for each lane in [0, lanes). Lanes may exceed the
  /// physical worker count; extras are multiplexed. Used by algorithms with
  /// a fixed logical thread count (e.g. PKC with T logical threads).
  void RunLanes(uint32_t lanes, const std::function<void(uint32_t)>& fn);

 private:
  /// One ParallelFor invocation. Kept in a shared_ptr so a straggling worker
  /// that wakes after completion still touches valid memory; it can only
  /// observe `next >= count` and exits without calling `fn`.
  struct Batch {
    uint64_t count = 0;
    const std::function<void(uint64_t)>* fn = nullptr;
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    /// First exception thrown by fn, rethrown on the ParallelFor caller.
    /// Guarded by the pool's mu_.
    std::exception_ptr error;
  };

  void WorkerLoop();
  void HelpRun(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> current_;  // guarded by mu_
  uint64_t epoch_ = 0;              // guarded by mu_
  bool shutdown_ = false;           // guarded by mu_
};

/// Process-wide default pool (lazily created, intentionally leaked so worker
/// threads never outlive the pool object).
ThreadPool& DefaultThreadPool();

}  // namespace kcore

#endif  // KCORE_COMMON_THREAD_POOL_H_
