#ifndef KCORE_COMMON_STATUS_H_
#define KCORE_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace kcore {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// Status idiom: recoverable failures are reported as values, never thrown.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kOutOfMemory = 3,
  kCapacityExceeded = 4,  ///< A fixed-size device buffer overflowed.
  kNotFound = 5,
  kFailedPrecondition = 6,
  kCorruption = 7,  ///< A persisted graph file failed validation.
  kInternal = 8,
  kTimeout = 9,  ///< Modeled time exceeded the benchmark budget (">1hr").
  /// A device operation failed transiently (injected launch/copy fault, the
  /// cudaErrorLaunchFailure analogue); retrying the operation may succeed.
  kUnavailable = 10,
  /// The device is gone for good (cudaErrorDeviceUnavailable analogue):
  /// every further operation on it fails with this code.
  kDeviceLost = 11,
  /// The caller cancelled the request (cooperative cancellation, see
  /// common/cancellation.h). Checked at round boundaries by the engines.
  kCancelled = 12,
  /// The request's deadline expired before the work completed. Distinct from
  /// kTimeout, which is a *modeled*-time budget (">1hr" benchmark rows);
  /// this is wall-clock request-lifecycle budget.
  kDeadlineExceeded = 13,
  /// Admission control rejected the request (bounded queue full). Carries a
  /// retry-after hint at the serving layer; retrying later may succeed.
  kResourceExhausted = 14,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap value-semantics error carrier. `Status::OK()` is the success
/// value; failures carry a code and a message. Callers must not ignore a
/// returned Status (enforced with [[nodiscard]]).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// The success value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeviceLost(std::string msg) {
    return Status(StatusCode::kDeviceLost, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeviceLost() const { return code_ == StatusCode::kDeviceLost; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define KCORE_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::kcore::Status _kcore_status = (expr);         \
    if (!_kcore_status.ok()) return _kcore_status;  \
  } while (false)

}  // namespace kcore

#endif  // KCORE_COMMON_STATUS_H_
