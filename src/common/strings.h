#ifndef KCORE_COMMON_STRINGS_H_
#define KCORE_COMMON_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace kcore {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithCommas(uint64_t value);

/// Formats a byte count as a human-readable string ("1.5 GB").
std::string HumanBytes(uint64_t bytes);

/// Splits `text` on any of the characters in `delims`, skipping empty fields.
std::vector<std::string> SplitNonEmpty(const std::string& text,
                                       const std::string& delims);

/// True if `text` begins with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

}  // namespace kcore

#endif  // KCORE_COMMON_STRINGS_H_
