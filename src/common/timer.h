#ifndef KCORE_COMMON_TIMER_H_
#define KCORE_COMMON_TIMER_H_

#include <chrono>

namespace kcore {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart(), in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kcore

#endif  // KCORE_COMMON_TIMER_H_
