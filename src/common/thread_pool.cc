#include "common/thread_pool.h"

#include "common/check.h"

namespace kcore {

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) {
    const uint32_t hw = std::thread::hardware_concurrency();
    num_threads = hw < 2 ? 2 : hw;
  }
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (current_ != nullptr && epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
      batch = current_;
    }
    HelpRun(*batch);
  }
}

void ThreadPool::HelpRun(Batch& batch) {
  while (true) {
    const uint64_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.count) break;
    uint64_t accounted = 1;  // this index, plus any bulk-skipped below
    try {
      (*batch.fn)(index);
    } catch (...) {
      // Record the first exception (for the ParallelFor caller to rethrow)
      // and abort the batch: claim every unclaimed index in one step so no
      // further task body runs. Indices claimed by other threads are
      // accounted by those threads as they finish, so `done` still reaches
      // `count` and nobody hangs — a thrown task must never wedge the pool
      // (the batch would stay current_ and the next ParallelFor would
      // CHECK-fail) or escape into a worker thread (std::terminate).
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (batch.error == nullptr) batch.error = std::current_exception();
      }
      uint64_t unclaimed = batch.next.load(std::memory_order_relaxed);
      while (unclaimed < batch.count &&
             !batch.next.compare_exchange_weak(unclaimed, batch.count,
                                               std::memory_order_relaxed)) {
      }
      if (unclaimed < batch.count) accounted += batch.count - unclaimed;
    }
    if (batch.done.fetch_add(accounted, std::memory_order_acq_rel) +
            accounted ==
        batch.count) {
      // Notify while holding the lock so a waiter that has checked the
      // predicate but not yet blocked cannot miss the wakeup.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(uint64_t count,
                             const std::function<void(uint64_t)>& fn) {
  if (count == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    KCORE_CHECK(current_ == nullptr);
    current_ = batch;
    ++epoch_;
  }
  work_cv_.notify_all();
  HelpRun(*batch);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->count;
    });
    current_.reset();
    error = batch->error;
  }
  // Rethrow the first task exception only after the batch fully drained and
  // current_ is cleared: the pool is reusable from the catch block.
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::RunLanes(uint32_t lanes,
                          const std::function<void(uint32_t)>& fn) {
  ParallelFor(lanes, [&fn](uint64_t i) { fn(static_cast<uint32_t>(i)); });
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace kcore
