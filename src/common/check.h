#ifndef KCORE_COMMON_CHECK_H_
#define KCORE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace kcore::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "KCORE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace kcore::internal

/// Aborts the process when `cond` is false. Used for invariants whose
/// violation indicates a bug, never for recoverable conditions (use Status).
#define KCORE_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) ::kcore::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#define KCORE_CHECK_EQ(a, b) KCORE_CHECK((a) == (b))
#define KCORE_CHECK_NE(a, b) KCORE_CHECK((a) != (b))
#define KCORE_CHECK_LT(a, b) KCORE_CHECK((a) < (b))
#define KCORE_CHECK_LE(a, b) KCORE_CHECK((a) <= (b))
#define KCORE_CHECK_GT(a, b) KCORE_CHECK((a) > (b))
#define KCORE_CHECK_GE(a, b) KCORE_CHECK((a) >= (b))

#ifdef NDEBUG
#define KCORE_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define KCORE_DCHECK(cond) KCORE_CHECK(cond)
#endif

#endif  // KCORE_COMMON_CHECK_H_
