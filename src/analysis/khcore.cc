#include "analysis/khcore.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace kcore {

uint32_t HHopDegree(const CsrGraph& graph, VertexId v, uint32_t h,
                    const std::vector<bool>& alive) {
  KCORE_CHECK(alive[v]);
  // Bounded BFS over alive vertices.
  std::vector<uint32_t> depth(graph.NumVertices(),
                              std::numeric_limits<uint32_t>::max());
  std::queue<VertexId> queue;
  depth[v] = 0;
  queue.push(v);
  uint32_t count = 0;
  while (!queue.empty()) {
    const VertexId x = queue.front();
    queue.pop();
    if (depth[x] == h) continue;
    for (VertexId u : graph.Neighbors(x)) {
      if (alive[u] && depth[u] == std::numeric_limits<uint32_t>::max()) {
        depth[u] = depth[x] + 1;
        ++count;
        queue.push(u);
      }
    }
  }
  return count;
}

std::vector<uint32_t> ComputeKhCores(const CsrGraph& graph, uint32_t h) {
  KCORE_CHECK_GE(h, 1u);
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> core(n, 0);
  std::vector<bool> alive(n, true);
  std::vector<uint32_t> hdeg(n, 0);
  for (VertexId v = 0; v < n; ++v) hdeg[v] = HHopDegree(graph, v, h, alive);

  uint64_t remaining = n;
  uint32_t k = 0;
  while (remaining > 0) {
    // Remove every alive vertex with h-hop degree <= k, cascading.
    std::vector<VertexId> stack;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && hdeg[v] <= k) stack.push_back(v);
    }
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      if (!alive[v] || hdeg[v] > k) continue;
      alive[v] = false;
      core[v] = k;
      --remaining;
      // Removing v can shrink the h-neighborhood of any vertex within h
      // hops of v (v was counted, or was an intermediate). Recompute them.
      std::vector<uint32_t> depth(n, std::numeric_limits<uint32_t>::max());
      std::queue<VertexId> queue;
      depth[v] = 0;
      queue.push(v);
      while (!queue.empty()) {
        const VertexId x = queue.front();
        queue.pop();
        if (depth[x] == h) continue;
        for (VertexId u : graph.Neighbors(x)) {
          if (alive[u] &&
              depth[u] == std::numeric_limits<uint32_t>::max()) {
            depth[u] = depth[x] + 1;
            queue.push(u);
            const uint32_t fresh = HHopDegree(graph, u, h, alive);
            hdeg[u] = fresh;
            if (fresh <= k) stack.push_back(u);
          }
        }
      }
    }
    ++k;
  }
  return core;
}

}  // namespace kcore
