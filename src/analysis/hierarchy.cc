#include "analysis/hierarchy.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace kcore {

namespace {

/// Union-find over vertices with path halving; carries the list of current
/// top-level hierarchy nodes per component (merged small-to-large).
class Dsu {
 public:
  explicit Dsu(VertexId n) : parent_(n), top_nodes_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  VertexId Find(VertexId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  /// Unions the components of a and b; returns the surviving root.
  VertexId Union(VertexId a, VertexId b) {
    VertexId ra = Find(a);
    VertexId rb = Find(b);
    if (ra == rb) return ra;
    if (top_nodes_[ra].size() < top_nodes_[rb].size()) std::swap(ra, rb);
    parent_[rb] = ra;
    top_nodes_[ra].insert(top_nodes_[ra].end(), top_nodes_[rb].begin(),
                          top_nodes_[rb].end());
    top_nodes_[rb].clear();
    top_nodes_[rb].shrink_to_fit();
    return ra;
  }

  std::vector<int32_t>& top_nodes(VertexId root) { return top_nodes_[root]; }

 private:
  std::vector<VertexId> parent_;
  /// Current top-level node indices under each root (valid at roots only).
  std::vector<std::vector<int32_t>> top_nodes_;
};

}  // namespace

std::vector<VertexId> CoreHierarchy::ComponentVertices(int32_t node) const {
  KCORE_CHECK_GE(node, 0);
  KCORE_CHECK_LT(static_cast<size_t>(node), nodes.size());
  // Children appear after parents is NOT guaranteed; collect by scanning.
  std::vector<std::vector<int32_t>> children(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent >= 0) {
      children[nodes[i].parent].push_back(static_cast<int32_t>(i));
    }
  }
  std::vector<VertexId> out;
  std::vector<int32_t> stack = {node};
  while (!stack.empty()) {
    const int32_t cur = stack.back();
    stack.pop_back();
    out.insert(out.end(), nodes[cur].vertices.begin(),
               nodes[cur].vertices.end());
    for (int32_t child : children[cur]) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

CoreHierarchy BuildCoreHierarchy(const CsrGraph& graph,
                                 const std::vector<uint32_t>& core) {
  const VertexId n = graph.NumVertices();
  KCORE_CHECK_EQ(core.size(), static_cast<size_t>(n));
  CoreHierarchy hierarchy;
  hierarchy.node_of.assign(n, -1);
  if (n == 0) return hierarchy;

  // Bucket vertices by core number.
  const uint32_t k_max = *std::max_element(core.begin(), core.end());
  std::vector<std::vector<VertexId>> shell(k_max + 1);
  for (VertexId v = 0; v < n; ++v) shell[core[v]].push_back(v);

  Dsu dsu(n);
  std::vector<bool> present(n, false);

  for (uint32_t k = k_max + 1; k-- > 0;) {
    // Add the k-shell and connect within the current (>=k)-core.
    for (VertexId v : shell[k]) present[v] = true;
    for (VertexId v : shell[k]) {
      for (VertexId u : graph.Neighbors(v)) {
        if (present[u]) dsu.Union(v, u);
      }
    }
    // Every component containing a shell-k vertex changed at this level:
    // emit one node per such root, absorbing the previous top nodes.
    // Group the shell vertices by root.
    std::vector<std::pair<VertexId, VertexId>> by_root;  // (root, vertex)
    by_root.reserve(shell[k].size());
    for (VertexId v : shell[k]) by_root.emplace_back(dsu.Find(v), v);
    std::sort(by_root.begin(), by_root.end());
    size_t i = 0;
    while (i < by_root.size()) {
      const VertexId root = by_root[i].first;
      const auto node_index = static_cast<int32_t>(hierarchy.nodes.size());
      CoreHierarchyNode node;
      node.k = k;
      while (i < by_root.size() && by_root[i].first == root) {
        node.vertices.push_back(by_root[i].second);
        hierarchy.node_of[by_root[i].second] = node_index;
        ++i;
      }
      for (int32_t child : dsu.top_nodes(root)) {
        hierarchy.nodes[child].parent = node_index;
      }
      dsu.top_nodes(root) = {node_index};
      hierarchy.nodes.push_back(std::move(node));
    }
  }
  return hierarchy;
}

int32_t DensestComponentContaining(const CoreHierarchy& hierarchy, VertexId v,
                                   size_t min_size) {
  KCORE_CHECK_LT(static_cast<size_t>(v), hierarchy.node_of.size());
  // Subtree sizes: children always precede parents in creation order is not
  // guaranteed, so accumulate bottom-up via parent pointers.
  std::vector<size_t> size(hierarchy.nodes.size(), 0);
  for (size_t i = 0; i < hierarchy.nodes.size(); ++i) {
    size[i] += hierarchy.nodes[i].vertices.size();
  }
  // Nodes are created from k_max downward, so a child (higher k) always has
  // a smaller index than its parent; a single forward pass pushes sizes up.
  for (size_t i = 0; i < hierarchy.nodes.size(); ++i) {
    const int32_t parent = hierarchy.nodes[i].parent;
    if (parent >= 0) size[parent] += size[i];
  }
  int32_t node = hierarchy.node_of[v];
  while (node >= 0) {
    if (size[node] >= min_size) return node;
    node = hierarchy.nodes[node].parent;
  }
  return -1;
}

}  // namespace kcore
