#ifndef KCORE_ANALYSIS_KHCORE_H_
#define KCORE_ANALYSIS_KHCORE_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace kcore {

/// Distance-generalized (k,h)-core decomposition (paper §II-C, Bonchi et
/// al. [33]): the (k,h)-core is the largest subgraph where every vertex has
/// at least k distinct vertices within h hops (inside the subgraph).
/// h = 1 degenerates to the classic k-core.
///
/// Returns per-vertex (k,h)-core numbers via direct peeling with h-hop
/// degree recomputation — the baseline algorithm [33] improves on, suitable
/// for the moderate graphs this library's analyses target (h is typically
/// 2 or 3).
std::vector<uint32_t> ComputeKhCores(const CsrGraph& graph, uint32_t h);

/// The h-hop degree of `v` among vertices where alive[u] is true: the
/// number of distinct alive vertices (excluding v) reachable from v within
/// h hops using only alive intermediate vertices.
uint32_t HHopDegree(const CsrGraph& graph, VertexId v, uint32_t h,
                    const std::vector<bool>& alive);

}  // namespace kcore

#endif  // KCORE_ANALYSIS_KHCORE_H_
