#include "analysis/snapshots.h"

#include <algorithm>

#include "common/check.h"
#include "cpu/bz.h"
#include "graph/graph_builder.h"

namespace kcore {

SnapshotCore AnalyzeSnapshot(const CitationCorpus& corpus,
                             uint32_t cutoff_year) {
  SnapshotCore snapshot;
  snapshot.cutoff_year = cutoff_year;

  const EdgeList edges = BuildAuthorInteractionEdges(corpus, cutoff_year);
  auto built = BuildGraph(edges);  // recodes author IDs densely
  KCORE_CHECK(built.ok());
  const CsrGraph& graph = built->graph;
  snapshot.num_authors = graph.NumVertices();
  snapshot.num_edges = graph.NumUndirectedEdges();
  if (graph.NumVertices() == 0) return snapshot;

  const DecomposeResult result = RunBz(graph);
  snapshot.k_max = result.MaxCore();
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (result.core[v] == snapshot.k_max) {
      snapshot.kmax_core_authors.push_back(built->original_ids[v]);
    }
  }
  std::sort(snapshot.kmax_core_authors.begin(),
            snapshot.kmax_core_authors.end());
  return snapshot;
}

SnapshotComparison CompareSnapshots(const SnapshotCore& first,
                                    const SnapshotCore& second) {
  SnapshotComparison cmp;
  std::set_intersection(first.kmax_core_authors.begin(),
                        first.kmax_core_authors.end(),
                        second.kmax_core_authors.begin(),
                        second.kmax_core_authors.end(),
                        std::back_inserter(cmp.in_both));
  std::set_difference(second.kmax_core_authors.begin(),
                      second.kmax_core_authors.end(),
                      first.kmax_core_authors.begin(),
                      first.kmax_core_authors.end(),
                      std::back_inserter(cmp.only_second));
  std::set_difference(first.kmax_core_authors.begin(),
                      first.kmax_core_authors.end(),
                      second.kmax_core_authors.begin(),
                      second.kmax_core_authors.end(),
                      std::back_inserter(cmp.only_first));
  return cmp;
}

}  // namespace kcore
