#ifndef KCORE_ANALYSIS_HIERARCHY_H_
#define KCORE_ANALYSIS_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace kcore {

/// One node of the hierarchical core decomposition (HCD, paper §II-C): a
/// connected component of the k-core, for the largest k at which this
/// component exists with this exact extent. Children are the denser
/// components it contains (k' > k).
struct CoreHierarchyNode {
  uint32_t k = 0;
  /// Index of the parent node (the enclosing lower-k component); -1 for
  /// roots (components of the 0-core, i.e. connected components plus
  /// isolated vertices).
  int32_t parent = -1;
  /// Vertices whose highest-k component is this node (i.e. vertices with
  /// core number k lying in this component). Each vertex appears in exactly
  /// one node; a node's full component is itself plus its descendants.
  std::vector<VertexId> vertices;
};

/// The HCD forest.
struct CoreHierarchy {
  std::vector<CoreHierarchyNode> nodes;
  /// node_of[v] = index of the node whose `vertices` contains v.
  std::vector<int32_t> node_of;

  /// All vertices of the component represented by `node` (the node's own
  /// vertices plus every descendant's).
  std::vector<VertexId> ComponentVertices(int32_t node) const;
};

/// Builds the core-decomposition hierarchy in O(m α(n)): processes levels
/// from k_max down to 0, adding each k-shell and union-finding components;
/// a node is emitted whenever a component's membership changes at a level
/// (new shell vertices joined or sub-components merged).
CoreHierarchy BuildCoreHierarchy(const CsrGraph& graph,
                                 const std::vector<uint32_t>& core);

/// Finds the "best" k-core component containing `v` with at least
/// `min_size` vertices: the densest (largest-k) ancestor-or-self component
/// of v meeting the size bound. Returns the node index, or -1 if even v's
/// root component is smaller than min_size. (The query HCD exists to answer
/// efficiently — paper §II-C [37].)
int32_t DensestComponentContaining(const CoreHierarchy& hierarchy, VertexId v,
                                   size_t min_size);

}  // namespace kcore

#endif  // KCORE_ANALYSIS_HIERARCHY_H_
