#include "analysis/dcore.h"

#include <vector>

namespace kcore {

namespace {

/// Cascading removal of vertices violating indeg >= k or outdeg >= l.
/// `alive`, `in_deg` and `out_deg` are updated in place; removed vertices
/// are appended to `removed` (if non-null).
void PeelViolators(const DirectedGraph& graph, uint32_t k, uint32_t l,
                   std::vector<bool>& alive, std::vector<uint32_t>& in_deg,
                   std::vector<uint32_t>& out_deg,
                   std::vector<VertexId>* removed) {
  std::vector<VertexId> stack;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (alive[v] && (in_deg[v] < k || out_deg[v] < l)) stack.push_back(v);
  }
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    if (!alive[v]) continue;
    if (in_deg[v] >= k && out_deg[v] >= l) continue;  // re-queued but fine now
    alive[v] = false;
    if (removed != nullptr) removed->push_back(v);
    // v's out-arcs supplied in-degree to heads; in-arcs supplied out-degree
    // to tails.
    for (VertexId u : graph.OutNeighbors(v)) {
      if (alive[u] && in_deg[u]-- == k) stack.push_back(u);
    }
    for (VertexId u : graph.InNeighbors(v)) {
      if (alive[u] && out_deg[u]-- == l) stack.push_back(u);
    }
  }
}

}  // namespace

std::vector<bool> ComputeDCoreMembers(const DirectedGraph& graph, uint32_t k,
                                      uint32_t l) {
  const VertexId n = graph.NumVertices();
  std::vector<bool> alive(n, true);
  std::vector<uint32_t> in_deg(n);
  std::vector<uint32_t> out_deg(n);
  for (VertexId v = 0; v < n; ++v) {
    in_deg[v] = graph.InDegree(v);
    out_deg[v] = graph.OutDegree(v);
  }
  PeelViolators(graph, k, l, alive, in_deg, out_deg, nullptr);
  return alive;
}

DCoreDecomposition ComputeDCoreDecomposition(const DirectedGraph& graph,
                                             uint32_t l) {
  const VertexId n = graph.NumVertices();
  DCoreDecomposition result;
  result.k_number.assign(n, 0);
  result.in_any_core.assign(n, true);

  std::vector<bool> alive(n, true);
  std::vector<uint32_t> in_deg(n);
  std::vector<uint32_t> out_deg(n);
  for (VertexId v = 0; v < n; ++v) {
    in_deg[v] = graph.InDegree(v);
    out_deg[v] = graph.OutDegree(v);
  }

  // (0,l)-core first: vertices peeled here belong to no (k,l)-core.
  {
    std::vector<VertexId> removed;
    PeelViolators(graph, 0, l, alive, in_deg, out_deg, &removed);
    for (VertexId v : removed) result.in_any_core[v] = false;
  }

  // Raise k until everything is gone; the k at which a vertex is peeled
  // (minus one) is its D-core k-number.
  uint64_t alive_count = 0;
  for (VertexId v = 0; v < n; ++v) alive_count += alive[v];
  uint32_t k = 1;
  while (alive_count > 0) {
    std::vector<VertexId> removed;
    PeelViolators(graph, k, l, alive, in_deg, out_deg, &removed);
    for (VertexId v : removed) result.k_number[v] = k - 1;
    alive_count -= removed.size();
    ++k;
    KCORE_CHECK_LE(k, graph.NumVertices() + 2);
  }
  return result;
}

}  // namespace kcore
