#include "analysis/core_analysis.h"

#include <algorithm>

#include "common/check.h"

namespace kcore {

std::vector<VertexId> KShellMembers(const std::vector<uint32_t>& core,
                                    uint32_t k) {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < core.size(); ++v) {
    if (core[v] == k) members.push_back(v);
  }
  return members;
}

InducedSubgraph KCoreSubgraph(const CsrGraph& graph,
                              const std::vector<uint32_t>& core, uint32_t k) {
  KCORE_CHECK_EQ(core.size(), static_cast<size_t>(graph.NumVertices()));
  std::vector<bool> keep(core.size());
  for (VertexId v = 0; v < core.size(); ++v) keep[v] = core[v] >= k;
  return ExtractInducedSubgraph(graph, keep);
}

std::vector<uint64_t> CoreHistogram(const std::vector<uint32_t>& core) {
  uint32_t k_max = 0;
  for (uint32_t c : core) k_max = std::max(k_max, c);
  std::vector<uint64_t> histogram(core.empty() ? 0 : k_max + 1, 0);
  for (uint32_t c : core) ++histogram[c];
  return histogram;
}

std::vector<VertexId> DegeneracyOrdering(const CsrGraph& graph) {
  // BZ's bucketed min-degree removal, recording the removal order.
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> deg = graph.DegreeArray();
  const uint32_t max_degree =
      n == 0 ? 0 : *std::max_element(deg.begin(), deg.end());

  std::vector<VertexId> bin(static_cast<size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[deg[v] + 1];
  for (size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];

  std::vector<VertexId> vert(n);
  std::vector<VertexId> pos(n);
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]];
      vert[pos[v]] = v;
      ++cursor[deg[v]];
    }
  }

  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = vert[i];
    for (VertexId u : graph.Neighbors(v)) {
      if (deg[u] > deg[v]) {
        const uint32_t du = deg[u];
        const VertexId pu = pos[u];
        const VertexId pw = bin[du];
        const VertexId w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --deg[u];
      }
    }
  }
  return vert;
}

std::vector<VertexId> TopSpreaders(const CsrGraph& graph,
                                   const std::vector<uint32_t>& core,
                                   size_t count) {
  KCORE_CHECK_EQ(core.size(), static_cast<size_t>(graph.NumVertices()));
  std::vector<VertexId> order(graph.NumVertices());
  for (VertexId v = 0; v < order.size(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (core[a] != core[b]) return core[a] > core[b];
    if (graph.Degree(a) != graph.Degree(b)) {
      return graph.Degree(a) > graph.Degree(b);
    }
    return a < b;
  });
  order.resize(std::min(count, order.size()));
  return order;
}

}  // namespace kcore
