#ifndef KCORE_ANALYSIS_DCORE_H_
#define KCORE_ANALYSIS_DCORE_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace kcore {

/// D-core variant for directed graphs (paper §II-C, Giatsidis et al.
/// [46][47]): the (k,l)-core is the largest subgraph in which every vertex
/// has in-degree >= k and out-degree >= l.

/// Membership of the (k,l)-core: returns a bitmap over vertices.
std::vector<bool> ComputeDCoreMembers(const DirectedGraph& graph, uint32_t k,
                                      uint32_t l);

/// For a fixed out-degree bound l, the directed analogue of core numbers:
/// result[v] = the largest k such that v belongs to the (k,l)-core
/// (vertices in no (0,l)-core — i.e. peeled purely for out-degree — get
/// k-number 0 and are reported in the companion bitmap).
struct DCoreDecomposition {
  std::vector<uint32_t> k_number;
  /// in_any_core[v] = v survives the (0,l)-core (meets the out-bound).
  std::vector<bool> in_any_core;
};

DCoreDecomposition ComputeDCoreDecomposition(const DirectedGraph& graph,
                                             uint32_t l);

}  // namespace kcore

#endif  // KCORE_ANALYSIS_DCORE_H_
