#ifndef KCORE_ANALYSIS_SNAPSHOTS_H_
#define KCORE_ANALYSIS_SNAPSHOTS_H_

#include <cstdint>
#include <vector>

#include "generators/citation.h"
#include "graph/csr_graph.h"

namespace kcore {

/// One temporal snapshot of the co-citation case study (paper §VI Fig. 10):
/// the author interaction network of papers published up to `cutoff_year`,
/// its k_max, and the authors in the k_max-core.
struct SnapshotCore {
  uint32_t cutoff_year = 0;
  uint32_t k_max = 0;
  uint64_t num_authors = 0;  ///< Vertices of the snapshot network.
  uint64_t num_edges = 0;
  std::vector<uint64_t> kmax_core_authors;  ///< Original author IDs, sorted.
};

/// Builds the author interaction network up to `cutoff_year` and extracts
/// its k_max-core membership.
SnapshotCore AnalyzeSnapshot(const CitationCorpus& corpus,
                             uint32_t cutoff_year);

/// The Fig. 10 set algebra between two snapshots S1 (earlier) and S2:
/// authors most-active in both periods, newly most-active, and dropped out.
struct SnapshotComparison {
  std::vector<uint64_t> in_both;      ///< S1 ∩ S2 (word-cloud center).
  std::vector<uint64_t> only_second;  ///< S2 − S1 (middle ring).
  std::vector<uint64_t> only_first;   ///< S1 − S2 (bottom).
};

SnapshotComparison CompareSnapshots(const SnapshotCore& first,
                                    const SnapshotCore& second);

}  // namespace kcore

#endif  // KCORE_ANALYSIS_SNAPSHOTS_H_
