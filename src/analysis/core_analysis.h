#ifndef KCORE_ANALYSIS_CORE_ANALYSIS_H_
#define KCORE_ANALYSIS_CORE_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/subgraph.h"

namespace kcore {

/// Vertices whose core number equals exactly k (the k-shell V^(k)).
std::vector<VertexId> KShellMembers(const std::vector<uint32_t>& core,
                                    uint32_t k);

/// The k-core as an induced subgraph: all vertices with core >= k. Returns
/// the subgraph plus the parent-ID mapping.
InducedSubgraph KCoreSubgraph(const CsrGraph& graph,
                              const std::vector<uint32_t>& core, uint32_t k);

/// histogram[k] = number of vertices with core number k (size k_max+1).
std::vector<uint64_t> CoreHistogram(const std::vector<uint32_t>& core);

/// A degeneracy ordering: vertices in the order a min-degree peeling removes
/// them. For every vertex, at most core(v) neighbors appear *later* in the
/// order — the property that makes this ordering the standard preprocessing
/// for clique-style enumeration (paper §I's pruning applications).
std::vector<VertexId> DegeneracyOrdering(const CsrGraph& graph);

/// Top influential spreaders (Kitsak et al., paper application [55]):
/// vertices ranked by core number descending, ties broken by degree then ID.
/// Returns up to `count` vertex IDs.
std::vector<VertexId> TopSpreaders(const CsrGraph& graph,
                                   const std::vector<uint32_t>& core,
                                   size_t count);

}  // namespace kcore

#endif  // KCORE_ANALYSIS_CORE_ANALYSIS_H_
