#include "cpu/dynamic_core.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "cpu/hindex.h"

namespace kcore {

DynamicKCore::DynamicKCore(const CsrGraph& initial) {
  const VertexId n = initial.NumVertices();
  adjacency_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = initial.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
    KCORE_CHECK(std::is_sorted(adjacency_[v].begin(), adjacency_[v].end()));
  }
  num_edges_ = initial.NumUndirectedEdges();

  // Initial decomposition: degrees as upper bounds, refine everywhere.
  core_.resize(n);
  std::vector<VertexId> all(n);
  for (VertexId v = 0; v < n; ++v) {
    core_[v] = Degree(v);
    all[v] = v;
  }
  Refine(std::move(all));
}

DynamicKCore::DynamicKCore(const CsrGraph& initial,
                           std::vector<uint32_t> known_core)
    : core_(std::move(known_core)) {
  const VertexId n = initial.NumVertices();
  KCORE_CHECK(core_.size() == n);
  adjacency_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = initial.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
    KCORE_CHECK(std::is_sorted(adjacency_[v].begin(), adjacency_[v].end()));
  }
  num_edges_ = initial.NumUndirectedEdges();
}

bool DynamicKCore::HasEdge(VertexId u, VertexId v) const {
  const auto& list = adjacency_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

Status DynamicKCore::InsertEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::InvalidArgument("endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop");
  if (HasEdge(u, v)) {
    return Status::FailedPrecondition(
        StrFormat("edge (%u,%u) already present", u, v));
  }
  auto insert_sorted = [](std::vector<VertexId>& list, VertexId x) {
    list.insert(std::upper_bound(list.begin(), list.end(), x), x);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  ++num_edges_;

  // Only the core==K component around the endpoints can rise, by one.
  const uint32_t k = std::min(core_[u], core_[v]);
  std::vector<VertexId> seeds;
  if (core_[u] == k) seeds.push_back(u);
  if (core_[v] == k) seeds.push_back(v);
  std::vector<VertexId> candidates = CollectCandidates(std::move(seeds), k);
  for (VertexId c : candidates) core_[c] = k + 1;  // valid upper bound
  Refine(std::move(candidates));
  return Status::OK();
}

Status DynamicKCore::RemoveEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::InvalidArgument("endpoint out of range");
  }
  if (!HasEdge(u, v)) {
    return Status::NotFound(StrFormat("edge (%u,%u) not present", u, v));
  }
  auto erase_sorted = [](std::vector<VertexId>& list, VertexId x) {
    list.erase(std::lower_bound(list.begin(), list.end(), x));
  };
  erase_sorted(adjacency_[u], v);
  erase_sorted(adjacency_[v], u);
  --num_edges_;

  // Deletion only lowers coreness, so current values stay upper bounds.
  Refine({u, v});
  return Status::OK();
}

StatusOr<std::vector<VertexId>> DynamicKCore::ApplyBatch(
    std::span<const EdgeUpdate> batch) {
  // Validation pass: judge each update against the committed edge set plus
  // the *net effect* of the preceding updates in the batch (a toggle set —
  // each undirected pair flips presence each time it appears). Rejecting
  // here keeps the batch atomic: nothing below can fail.
  std::set<std::pair<VertexId, VertexId>> toggled;
  for (size_t i = 0; i < batch.size(); ++i) {
    const EdgeUpdate& e = batch[i];
    if (e.u >= NumVertices() || e.v >= NumVertices()) {
      return Status::InvalidArgument(
          StrFormat("update %zu: endpoint out of range", i));
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(StrFormat("update %zu: self-loop", i));
    }
    const auto key = std::minmax(e.u, e.v);
    const std::pair<VertexId, VertexId> kp{key.first, key.second};
    const bool present = HasEdge(e.u, e.v) != (toggled.count(kp) != 0);
    if (e.kind == EdgeUpdate::Kind::kInsert) {
      if (present) {
        return Status::FailedPrecondition(StrFormat(
            "update %zu: edge (%u,%u) already present", i, e.u, e.v));
      }
    } else if (!present) {
      return Status::NotFound(
          StrFormat("update %zu: edge (%u,%u) not present", i, e.u, e.v));
    }
    if (toggled.count(kp) != 0) {
      toggled.erase(kp);
    } else {
      toggled.insert(kp);
    }
  }

  const std::vector<uint32_t> before = core_;
  uint64_t evaluations = 0;
  for (const EdgeUpdate& e : batch) {
    const Status status = e.kind == EdgeUpdate::Kind::kInsert
                              ? InsertEdge(e.u, e.v)
                              : RemoveEdge(e.u, e.v);
    KCORE_CHECK(status.ok());  // validated above
    evaluations += last_update_evaluations_;
  }
  last_update_evaluations_ = evaluations;

  std::vector<VertexId> changed;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    if (core_[v] != before[v]) changed.push_back(v);
  }
  return changed;
}

std::vector<VertexId> DynamicKCore::CollectCandidates(
    std::vector<VertexId> seeds, uint32_t k) const {
  std::vector<VertexId> out;
  std::vector<VertexId> stack = std::move(seeds);
  std::vector<bool> visited(NumVertices(), false);
  for (VertexId s : stack) visited[s] = true;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    for (VertexId u : adjacency_[v]) {
      if (!visited[u] && core_[u] == k) {
        visited[u] = true;
        stack.push_back(u);
      }
    }
  }
  return out;
}

void DynamicKCore::Refine(std::vector<VertexId> worklist) {
  last_update_evaluations_ = 0;
  std::vector<bool> queued(NumVertices(), false);
  for (VertexId v : worklist) queued[v] = true;
  HIndexEvaluator evaluator;
  std::vector<uint32_t> neighbor_estimates;
  while (!worklist.empty()) {
    const VertexId v = worklist.back();
    worklist.pop_back();
    queued[v] = false;
    ++last_update_evaluations_;

    neighbor_estimates.clear();
    for (VertexId u : adjacency_[v]) neighbor_estimates.push_back(core_[u]);
    const uint32_t refined = evaluator.Evaluate(neighbor_estimates, core_[v]);
    if (refined >= core_[v]) continue;
    core_[v] = refined;
    // Only neighbors whose estimate exceeds the new value can be affected:
    // v still supports any neighbor at level <= refined.
    for (VertexId u : adjacency_[v]) {
      if (core_[u] > refined && !queued[u]) {
        queued[u] = true;
        worklist.push_back(u);
      }
    }
  }
}

CsrGraph DynamicKCore::ToCsrGraph() const {
  const VertexId n = NumVertices();
  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + adjacency_[v].size();
  }
  std::vector<VertexId> neighbors;
  neighbors.reserve(offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    neighbors.insert(neighbors.end(), adjacency_[v].begin(),
                     adjacency_[v].end());
  }
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace kcore
