#include "cpu/semi_external.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "cpu/hindex.h"
#include "graph/csr_graph.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

constexpr uint64_t kCsrMagic = 0x4b43524547524148ULL;  // must match graph_io
constexpr uint32_t kCsrVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Sequential reader over the neighbor payload of a CSR binary file.
class NeighborStream {
 public:
  NeighborStream(std::FILE* file, long payload_offset, EdgeIndex count,
                 size_t buffer_bytes)
      : file_(file),
        payload_offset_(payload_offset),
        count_(count),
        buffer_(std::max<size_t>(1024, buffer_bytes) / sizeof(VertexId)) {}

  /// Rewinds to the start of the payload for a new pass.
  Status StartPass() {
    if (std::fseek(file_, payload_offset_, SEEK_SET) != 0) {
      return Status::IOError("seek failed");
    }
    position_ = 0;
    filled_ = 0;
    cursor_ = 0;
    return Status::OK();
  }

  /// Reads the next `n` neighbor IDs into `out`. Fails on short files.
  Status Read(VertexId* out, size_t n, uint64_t& bytes_read) {
    size_t produced = 0;
    while (produced < n) {
      if (cursor_ == filled_) {
        const size_t want =
            std::min<uint64_t>(buffer_.size(), count_ - position_);
        if (want == 0) return Status::Corruption("payload shorter than CSR");
        const size_t got =
            std::fread(buffer_.data(), sizeof(VertexId), want, file_);
        if (got == 0) return Status::IOError("short read of neighbor stream");
        bytes_read += got * sizeof(VertexId);
        position_ += got;
        filled_ = got;
        cursor_ = 0;
      }
      const size_t take = std::min(n - produced, filled_ - cursor_);
      std::copy(buffer_.begin() + cursor_, buffer_.begin() + cursor_ + take,
                out + produced);
      cursor_ += take;
      produced += take;
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  long payload_offset_;
  EdgeIndex count_;
  uint64_t position_ = 0;
  std::vector<VertexId> buffer_;
  size_t filled_ = 0;
  size_t cursor_ = 0;
};

}  // namespace

StatusOr<DecomposeResult> RunSemiExternal(const std::string& csr_path,
                                          size_t io_buffer_bytes) {
  WallTimer timer;
  FilePtr file(std::fopen(csr_path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open " + csr_path);
  }
  uint64_t header[4] = {0, 0, 0, 0};
  if (std::fread(header, sizeof(uint64_t), 4, file.get()) != 4) {
    return Status::IOError("short header in " + csr_path);
  }
  if (header[0] != kCsrMagic || header[1] != kCsrVersion) {
    return Status::Corruption(csr_path + ": not a CSR binary");
  }
  const uint64_t offsets_count = header[2];
  const uint64_t neighbors_count = header[3];
  if (offsets_count == 0) {
    return Status::Corruption(csr_path + ": empty offsets");
  }

  // In-memory O(|V|) state: offsets + estimates.
  std::vector<EdgeIndex> offsets(offsets_count);
  if (std::fread(offsets.data(), sizeof(EdgeIndex), offsets_count,
                 file.get()) != offsets_count) {
    return Status::IOError("short offsets in " + csr_path);
  }
  if (offsets.front() != 0 || offsets.back() != neighbors_count) {
    return Status::Corruption(csr_path + ": inconsistent offsets");
  }
  const auto n = static_cast<VertexId>(offsets_count - 1);
  const long payload_offset =
      static_cast<long>(sizeof(header) + offsets_count * sizeof(EdgeIndex));

  DecomposeResult result;
  PerfCounters& c = result.metrics.counters;
  std::vector<uint32_t> estimate(n);
  for (VertexId v = 0; v < n; ++v) {
    estimate[v] = static_cast<uint32_t>(offsets[v + 1] - offsets[v]);
  }

  NeighborStream stream(file.get(), payload_offset, neighbors_count,
                        io_buffer_bytes);
  HIndexEvaluator evaluator;
  std::vector<VertexId> adjacency;
  std::vector<uint32_t> values;
  uint64_t bytes_streamed = 0;

  bool changed = true;
  while (changed) {
    changed = false;
    KCORE_RETURN_IF_ERROR(stream.StartPass());
    for (VertexId v = 0; v < n; ++v) {
      const auto degree = static_cast<size_t>(offsets[v + 1] - offsets[v]);
      adjacency.resize(degree);
      KCORE_RETURN_IF_ERROR(
          stream.Read(adjacency.data(), degree, bytes_streamed));
      values.clear();
      for (VertexId u : adjacency) {
        if (u >= n) return Status::Corruption(csr_path + ": bad neighbor");
        values.push_back(estimate[u]);
      }
      const uint32_t refined = evaluator.Evaluate(values, estimate[v]);
      ++c.hindex_evals;
      c.edges_traversed += degree;
      c.lane_ops += degree;
      if (refined < estimate[v]) {
        estimate[v] = refined;
        changed = true;
      }
    }
    ++result.metrics.iterations;
    if (result.metrics.iterations > n + 2) {
      return Status::Internal("semi-external refinement diverged");
    }
  }

  c.global_reads = bytes_streamed;
  result.core = std::move(estimate);
  result.metrics.rounds = result.metrics.iterations;
  result.metrics.wall_ms = timer.ElapsedMillis();
  // Disk-pass model: sequential HDD/SSD streaming at ~500 MB/s plus the
  // in-memory h-index work on one core.
  ModeledClock clock(CpuCostModel());
  clock.AddSerial(c);
  clock.AddOverheadNs(static_cast<double>(bytes_streamed) / 500e6 * 1e9);
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes =
      offsets.size() * sizeof(EdgeIndex) + result.core.size() * 4 +
      io_buffer_bytes;
  return result;
}

}  // namespace kcore
