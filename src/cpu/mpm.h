#ifndef KCORE_CPU_MPM_H_
#define KCORE_CPU_MPM_H_

#include <cstdint>

#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

struct MpmOptions {
  /// Logical worker threads; 1 = serial execution of the same schedule.
  uint32_t num_threads = 48;
};

/// MPM (Montresor, De Pellegrini, Miorandi — paper §II-A): every vertex
/// keeps a core-number estimate a(v), initialized to deg(v), and repeatedly
/// replaces it with the h-index of its neighbors' estimates until a global
/// fixpoint. Estimates are monotonically non-increasing and always upper
/// bounds on core(v), so concurrent (even stale) neighbor reads are safe —
/// the property that makes MPM the algorithm of choice for distributed
/// settings despite its higher total workload than peeling.
///
/// This implementation runs bulk-synchronous supersteps with an active set:
/// a vertex re-evaluates when a neighbor's estimate changed in the previous
/// superstep. Metrics count h-index evaluations and edge traffic, which is
/// where MPM's extra workload shows up in Table IV.
DecomposeResult RunMpm(const CsrGraph& graph, const MpmOptions& options = {});

/// Serial MPM convenience wrapper.
DecomposeResult RunMpmSerial(const CsrGraph& graph);

}  // namespace kcore

#endif  // KCORE_CPU_MPM_H_
