#ifndef KCORE_CPU_BZ_H_
#define KCORE_CPU_BZ_H_

#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

/// The Batagelj–Zaversnik serial peeling algorithm (paper §II-A "BZ"):
/// O(m) k-core decomposition using the classic four-array bucket structure
/// (vert/pos/bin/deg). Removes a minimum-degree vertex at each step and
/// keeps the degree-ordered vertex array consistent with O(1) swaps.
DecomposeResult RunBz(const CsrGraph& graph);

}  // namespace kcore

#endif  // KCORE_CPU_BZ_H_
