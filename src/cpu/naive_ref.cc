#include "cpu/naive_ref.h"

#include <vector>

#include "common/timer.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

DecomposeResult RunNaiveReference(const CsrGraph& graph) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  DecomposeResult result;
  PerfCounters& c = result.metrics.counters;

  std::vector<uint32_t> deg = graph.DegreeArray();
  std::vector<bool> removed(n, false);
  result.core.assign(n, 0);

  VertexId removed_count = 0;
  uint32_t k = 0;
  std::vector<VertexId> stack;
  while (removed_count < n) {
    // Collect every still-present vertex with degree <= k.
    for (VertexId v = 0; v < n; ++v) {
      ++c.vertices_scanned;
      if (!removed[v] && deg[v] <= k) stack.push_back(v);
    }
    // Cascade removals at this k.
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      if (removed[v]) continue;
      removed[v] = true;
      result.core[v] = k;
      ++removed_count;
      for (VertexId u : graph.Neighbors(v)) {
        ++c.edges_traversed;
        if (!removed[u] && deg[u] > 0) {
          if (--deg[u] <= k) stack.push_back(u);
        }
      }
    }
    ++result.metrics.rounds;
    ++k;
  }

  c.lane_ops = c.vertices_scanned + c.edges_traversed;
  c.global_reads = c.vertices_scanned + 2 * c.edges_traversed;
  c.global_writes = n + c.edges_traversed;

  result.metrics.wall_ms = timer.ElapsedMillis();
  ModeledClock clock(CpuCostModel());
  clock.AddSerial(c);
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes =
      graph.MemoryBytes() + n * (sizeof(uint32_t) * 2 + 1);
  return result;
}

}  // namespace kcore
