#ifndef KCORE_CPU_XIANG_H_
#define KCORE_CPU_XIANG_H_

#include <cstdint>

#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

/// Xiang's sort-free linear single-k core mining ("Simple linear algorithms
/// for mining graph cores", PAPERS.md): when only the k-core for one given k
/// is wanted, the BZ bucket structure (and any full decomposition) is
/// overkill. One pass seeds a deletion stack with every vertex of degree
/// < k; draining the stack decrements surviving neighbors and pushes each
/// one the moment it drops below k. No sorting, no rounds: O(V + E) worst
/// case, and typically far less — work is proportional to the part of the
/// graph that is *not* in the k-core plus its boundary, while a full
/// peel-then-filter pays for every shell below k.
///
/// Requires k >= 1 (checked). deg converges to the k-core's induced degrees
/// for members; membership is deg >= k.
SingleKCoreResult XiangSingleKCore(const CsrGraph& graph, uint32_t k);

}  // namespace kcore

#endif  // KCORE_CPU_XIANG_H_
