#ifndef KCORE_CPU_SEMI_EXTERNAL_H_
#define KCORE_CPU_SEMI_EXTERNAL_H_

#include <string>

#include "common/statusor.h"
#include "perf/decompose_result.h"

namespace kcore {

/// Disk-based k-core decomposition (the setting of paper §II-C [35][53]
/// [78]): the adjacency array stays on disk and is *streamed* sequentially;
/// only O(|V|) state (offsets + core estimates) is held in memory.
///
/// Algorithm (semi-external h-index refinement, à la Wen et al. [78]):
/// estimates start at the degrees; each pass streams the neighbor array of
/// the on-disk CSR file in order, re-evaluating every vertex's h-index
/// against the in-memory estimates; passes repeat until a fixpoint, which
/// equals the core numbers (same convergence argument as MPM, §II-A).
///
/// `csr_path` must be a file written by SaveCsrBinary. The header and
/// offsets are read up front (O(|V|) memory); the neighbor payload is
/// re-streamed per pass in `io_buffer_bytes` chunks. Metrics report:
///   iterations          = passes over the on-disk adjacency,
///   counters.global_reads = bytes streamed from disk,
///   peak_device_bytes   = resident memory (offsets + estimates + buffer).
StatusOr<DecomposeResult> RunSemiExternal(const std::string& csr_path,
                                          size_t io_buffer_bytes = 1 << 20);

}  // namespace kcore

#endif  // KCORE_CPU_SEMI_EXTERNAL_H_
