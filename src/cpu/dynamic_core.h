#ifndef KCORE_CPU_DYNAMIC_CORE_H_
#define KCORE_CPU_DYNAMIC_CORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "graph/csr_graph.h"
#include "graph/edge_update.h"

namespace kcore {

/// Incremental k-core maintenance on a dynamic graph (the streaming setting
/// of paper §II-C [68][69], and the use case motivating the §VI case study:
/// decomposition that can be kept current as the network evolves).
///
/// Algorithm: the classic traversal/locality insight — a single edge update
/// changes core numbers by at most 1, and only within the connected region
/// of vertices with core number K = min(core(u), core(v)) reachable from
/// the updated endpoints. Updates seed an h-index worklist refinement
/// restricted to that region:
///  - insertion: candidate vertices' estimates are lifted to K+1 (a valid
///    upper bound), then refined downward to the exact new cores;
///  - deletion: old cores remain upper bounds, so refinement starting from
///    the endpoints converges to the exact new cores.
/// Both converge to the coreness function because coreness is the unique
/// greatest fixpoint of the neighborhood h-index operator below any valid
/// upper bound (Montresor et al., paper §II-A).
class DynamicKCore {
 public:
  /// Takes the initial graph; computes its decomposition eagerly.
  explicit DynamicKCore(const CsrGraph& initial);

  /// Takes the initial graph together with its already-known decomposition,
  /// skipping the eager from-scratch refinement. `known_core` is trusted:
  /// callers (the GPU incremental engine's CPU fallback, which holds the
  /// last committed epoch's coreness) must pass exact values for `initial`.
  DynamicKCore(const CsrGraph& initial, std::vector<uint32_t> known_core);

  /// Inserts undirected edge {u,v}. Fails with InvalidArgument for
  /// self-loops or out-of-range vertices, AlreadyExists-style
  /// FailedPrecondition if the edge is present.
  Status InsertEdge(VertexId u, VertexId v);

  /// Removes undirected edge {u,v}; NotFound if absent.
  Status RemoveEdge(VertexId u, VertexId v);

  /// Applies a whole insert/delete window as one batch and returns the
  /// vertices whose core number changed, sorted ascending. The batch is
  /// validated up front against sequential semantics (an edge inserted
  /// earlier in the batch may be removed later); on any invalid update the
  /// whole batch is rejected with the single-edge API's status code and
  /// *nothing* is applied. last_update_evaluations() aggregates across the
  /// batch. This is the differential oracle for the GPU incremental path.
  StatusOr<std::vector<VertexId>> ApplyBatch(
      std::span<const EdgeUpdate> batch);

  /// Current core numbers (exact at all times).
  const std::vector<uint32_t>& core() const { return core_; }

  VertexId NumVertices() const {
    return static_cast<VertexId>(adjacency_.size());
  }
  uint64_t NumEdges() const { return num_edges_; }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  /// Vertices whose estimate was re-evaluated by the last update — the
  /// locality win over full recomputation.
  uint64_t last_update_evaluations() const {
    return last_update_evaluations_;
  }

  /// Materializes the current graph as CSR (for verification / export).
  CsrGraph ToCsrGraph() const;

 private:
  bool HasEdge(VertexId u, VertexId v) const;
  /// Collects the core==K component containing the seeds, walking only
  /// through core==K vertices (the candidate set of the traversal insight).
  std::vector<VertexId> CollectCandidates(std::vector<VertexId> seeds,
                                          uint32_t k) const;
  /// Worklist h-index refinement; assumes core_ holds valid upper bounds.
  void Refine(std::vector<VertexId> worklist);

  std::vector<std::vector<VertexId>> adjacency_;  // sorted neighbor lists
  std::vector<uint32_t> core_;
  uint64_t num_edges_ = 0;
  uint64_t last_update_evaluations_ = 0;
};

}  // namespace kcore

#endif  // KCORE_CPU_DYNAMIC_CORE_H_
