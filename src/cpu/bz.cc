#include "cpu/bz.h"

#include <algorithm>

#include "common/timer.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

DecomposeResult RunBz(const CsrGraph& graph) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  DecomposeResult result;
  PerfCounters& c = result.metrics.counters;

  std::vector<uint32_t> deg = graph.DegreeArray();
  c.vertices_scanned += n;
  c.global_reads += n;

  const uint32_t max_degree = n == 0 ? 0 : *std::max_element(deg.begin(), deg.end());

  // bin[d] = start index in `vert` of the vertices with current degree d.
  std::vector<VertexId> bin(static_cast<size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[deg[v] + 1];
  for (size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];

  // vert: vertices sorted by degree; pos[v]: index of v in vert.
  std::vector<VertexId> vert(n);
  std::vector<VertexId> pos(n);
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]];
      vert[pos[v]] = v;
      ++cursor[deg[v]];
    }
  }
  c.global_writes += 3ull * n;
  c.lane_ops += 4ull * n;

  // Peel in degree order; deg[v] freezes at core(v) when v is removed.
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = vert[i];
    c.global_reads += 1;
    for (VertexId u : graph.Neighbors(v)) {
      ++c.edges_traversed;
      ++c.global_reads;
      if (deg[u] > deg[v]) {
        // Move u to the front of its bucket and shift the bucket boundary,
        // decreasing deg[u] by one in O(1).
        const uint32_t du = deg[u];
        const VertexId pu = pos[u];
        const VertexId pw = bin[du];
        const VertexId w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --deg[u];
        c.global_writes += 4;
        c.lane_ops += 4;
      }
    }
  }

  result.core = std::move(deg);
  result.metrics.rounds = result.MaxCore() + 1;
  result.metrics.wall_ms = timer.ElapsedMillis();

  ModeledClock clock(CpuCostModel());
  clock.AddSerial(c);
  result.metrics.modeled_ms = clock.ms();
  // Host-resident algorithm: "device" footprint = its working arrays.
  result.metrics.peak_device_bytes =
      graph.MemoryBytes() + (vert.size() + pos.size()) * sizeof(VertexId) +
      bin.size() * sizeof(VertexId) + result.core.size() * sizeof(uint32_t);
  return result;
}

}  // namespace kcore
