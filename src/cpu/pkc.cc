#include "cpu/pkc.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

DecomposeResult RunPkcImpl(const CsrGraph& graph, const PkcOptions& options,
                           std::vector<uint32_t> deg0, uint32_t start_k) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  const uint32_t num_threads = options.num_threads;
  DecomposeResult result;
  ModeledClock clock(CpuCostModel());

  std::vector<uint32_t> deg = std::move(deg0);
  KCORE_CHECK_EQ(deg.size(), static_cast<size_t>(n));
  std::atomic<uint64_t> removed{0};
  // Enqueue-once claim flags. PKC overlaps one lane's loop phase with
  // another lane's scan phase (its point is having no intra-round barrier),
  // so a vertex decremented to k by a loop can also be seen as degree-k by a
  // later scan; the flag guarantees a single collector. The paper's GPU
  // variant gets this for free from the barrier between its two kernels.
  //
  // Warm start (start_k > 0): `deg` is a round-boundary snapshot, so every
  // vertex with deg < start_k was peeled in an earlier round and its deg is
  // already its final core number — mark it claimed/removed up front.
  std::vector<uint8_t> claimed(n, 0);
  uint64_t already_removed = 0;
  if (start_k > 0) {
    for (VertexId v = 0; v < n; ++v) {
      if (deg[v] < start_k) {
        claimed[v] = 1;
        ++already_removed;
      }
    }
    removed.store(already_removed, std::memory_order_relaxed);
  }

  // The scan universe: initially all unpeeled vertices; after compaction,
  // only the survivors (kCompacted). Stored as an explicit list so scans
  // touch just `universe_size` entries.
  std::vector<VertexId> universe(n);
  uint64_t universe_size = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (claimed[v] == 0) universe[universe_size++] = v;
  }

  std::vector<PerfCounters> lanes(num_threads);
  std::vector<std::vector<VertexId>> local_buffers(num_threads);
  ThreadPool& pool = DefaultThreadPool();
  uint64_t peak_local_buffer_items = 0;

  uint32_t k = start_k;
  while (removed.load(std::memory_order_relaxed) < n) {
    for (auto& lane : lanes) lane = PerfCounters();

    auto round_fn = [&](uint32_t lane) {
      PerfCounters& c = lanes[lane];
      std::vector<VertexId>& local = local_buffers[lane];
      local.clear();

      // Scan phase: this lane's slice of the universe.
      const uint64_t chunk = (universe_size + num_threads - 1) / num_threads;
      const uint64_t begin = static_cast<uint64_t>(lane) * chunk;
      const uint64_t end = std::min<uint64_t>(begin + chunk, universe_size);
      for (uint64_t i = begin; i < end; ++i) {
        const VertexId v = universe[i];
        ++c.vertices_scanned;
        ++c.global_reads;
        ++c.lane_ops;
        if (std::atomic_ref<uint32_t>(deg[v]).load(
                std::memory_order_relaxed) == k) {
          ++c.global_atomics;
          if (std::atomic_ref<uint8_t>(claimed[v]).exchange(
                  1, std::memory_order_relaxed) == 0) {
            local.push_back(v);
            ++c.buffer_appends;
            ++c.global_writes;
          }
        }
      }

      // Loop phase: drain the private buffer with no synchronization.
      uint64_t processed = 0;
      size_t cursor = 0;
      while (cursor < local.size()) {
        const VertexId v = local[cursor++];
        ++processed;
        ++c.global_reads;
        for (VertexId u : graph.Neighbors(v)) {
          ++c.edges_traversed;
          ++c.global_reads;
          ++c.lane_ops;
          const uint32_t du = std::atomic_ref<uint32_t>(deg[u]).load(
              std::memory_order_relaxed);
          if (du > k) {
            const uint32_t old = std::atomic_ref<uint32_t>(deg[u]).fetch_sub(
                1, std::memory_order_relaxed);
            ++c.global_atomics;
            if (old == k + 1) {
              ++c.global_atomics;
              if (std::atomic_ref<uint8_t>(claimed[u]).exchange(
                      1, std::memory_order_relaxed) == 0) {
                local.push_back(u);
                ++c.buffer_appends;
                ++c.global_writes;
              }
            } else if (old <= k) {
              std::atomic_ref<uint32_t>(deg[u]).fetch_add(
                  1, std::memory_order_relaxed);
              ++c.global_atomics;
            }
          }
        }
      }
      removed.fetch_add(processed, std::memory_order_relaxed);
    };

    if (num_threads == 1) {
      round_fn(0);
      clock.AddParallelPhase({lanes.data(), 1}, /*ends_with_barrier=*/false);
    } else {
      pool.RunLanes(num_threads, round_fn);
      clock.AddParallelPhase({lanes.data(), lanes.size()});
    }
    for (const auto& lane : lanes) result.metrics.counters += lane;
    for (const auto& local : local_buffers) {
      peak_local_buffer_items =
          std::max<uint64_t>(peak_local_buffer_items, local.capacity());
    }

    // Compaction (PKC vs PKC-o): once the alive fraction is small, shrink
    // the scan universe to the survivors; recompact when it halves again.
    if (options.variant == PkcVariant::kCompacted) {
      const uint64_t alive = n - removed.load(std::memory_order_relaxed);
      const bool first_trigger =
          universe_size == n &&
          alive < static_cast<uint64_t>(options.compact_threshold * n);
      const bool re_trigger = universe_size < n && alive < universe_size / 2;
      if ((first_trigger || re_trigger) && alive < universe_size) {
        PerfCounters compact_cost;
        uint64_t write = 0;
        for (uint64_t i = 0; i < universe_size; ++i) {
          ++compact_cost.vertices_scanned;
          ++compact_cost.global_reads;
          if (deg[universe[i]] > k) {
            universe[write++] = universe[i];
            ++compact_cost.global_writes;
          }
        }
        universe_size = write;
        clock.AddSerial(compact_cost);
        result.metrics.counters += compact_cost;
      }
    }

    ++result.metrics.rounds;
    ++k;
  }

  result.core = std::move(deg);
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes =
      graph.MemoryBytes() + n * sizeof(uint32_t) +
      (options.variant == PkcVariant::kCompacted ? n * sizeof(VertexId) : 0) +
      peak_local_buffer_items * sizeof(VertexId);
  return result;
}

}  // namespace

DecomposeResult RunPkc(const CsrGraph& graph, const PkcOptions& options) {
  KCORE_CHECK_GE(options.num_threads, 1u);
  return RunPkcImpl(graph, options, graph.DegreeArray(), /*start_k=*/0);
}

DecomposeResult RunPkcSerial(const CsrGraph& graph, PkcVariant variant) {
  PkcOptions options;
  options.variant = variant;
  options.num_threads = 1;
  return RunPkcImpl(graph, options, graph.DegreeArray(), /*start_k=*/0);
}

DecomposeResult ResumePkc(const CsrGraph& graph, std::vector<uint32_t> deg,
                          uint32_t start_k, const PkcOptions& options) {
  KCORE_CHECK_GE(options.num_threads, 1u);
  return RunPkcImpl(graph, options, std::move(deg), start_k);
}

}  // namespace kcore
