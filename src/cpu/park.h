#ifndef KCORE_CPU_PARK_H_
#define KCORE_CPU_PARK_H_

#include <cstdint>

#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

/// Options for ParK (Dasari, Ranjan, Zubair — paper §II-A).
struct ParKOptions {
  /// Logical worker threads (the paper's server exposes 48). They are
  /// multiplexed over the host pool; modeled time uses this logical width.
  uint32_t num_threads = 48;
};

/// ParK's two-phase peeling: per round k, a parallel *scan* collects
/// degree-k vertices into a shared global buffer B, then *loop* sub-levels
/// repeatedly expand B into B_new (BFS within the k-shell) with a barrier
/// between sub-levels. The global buffer + sub-level synchronization are
/// exactly the overheads PKC later removed.
DecomposeResult RunParK(const CsrGraph& graph, const ParKOptions& options = {});

/// Serial ParK: the same two-phase structure executed by one thread
/// (the paper's Table IV "Serial ParK" column).
DecomposeResult RunParKSerial(const CsrGraph& graph);

}  // namespace kcore

#endif  // KCORE_CPU_PARK_H_
