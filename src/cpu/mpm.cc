#include "cpu/mpm.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "cpu/hindex.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

DecomposeResult RunMpmImpl(const CsrGraph& graph, uint32_t num_threads) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  DecomposeResult result;
  ModeledClock clock(CpuCostModel());

  // a(v) estimates; relaxed atomic access because estimates are monotone
  // upper bounds (stale reads only delay convergence, never break it).
  std::vector<uint32_t> estimate = graph.DegreeArray();
  std::vector<uint8_t> active(n, 1);
  std::vector<uint8_t> next_active(n, 0);
  std::atomic<uint64_t> changed{1};

  std::vector<PerfCounters> lanes(num_threads);
  ThreadPool& pool = DefaultThreadPool();

  while (changed.load(std::memory_order_relaxed) != 0) {
    changed.store(0, std::memory_order_relaxed);
    for (auto& lane : lanes) lane = PerfCounters();
    std::fill(next_active.begin(), next_active.end(), 0);

    auto superstep = [&](uint32_t lane) {
      PerfCounters& c = lanes[lane];
      HIndexEvaluator evaluator;
      std::vector<uint32_t> neighbor_estimates;
      const uint64_t chunk = (n + num_threads - 1) / num_threads;
      const uint64_t begin = static_cast<uint64_t>(lane) * chunk;
      const uint64_t end = std::min<uint64_t>(begin + chunk, n);
      uint64_t local_changed = 0;
      for (uint64_t v = begin; v < end; ++v) {
        ++c.vertices_scanned;
        if (active[v] == 0) continue;
        const uint32_t current = std::atomic_ref<uint32_t>(estimate[v]).load(
            std::memory_order_relaxed);
        neighbor_estimates.clear();
        for (VertexId u : graph.Neighbors(v)) {
          ++c.edges_traversed;
          ++c.global_reads;
          ++c.lane_ops;
          neighbor_estimates.push_back(
              std::atomic_ref<uint32_t>(estimate[u]).load(
                  std::memory_order_relaxed));
        }
        const uint32_t refined =
            evaluator.Evaluate(neighbor_estimates, current);
        ++c.hindex_evals;
        c.lane_ops += neighbor_estimates.size();
        if (refined < current) {
          std::atomic_ref<uint32_t>(estimate[v]).store(
              refined, std::memory_order_relaxed);
          ++c.global_writes;
          ++local_changed;
          // Wake the neighborhood for the next superstep.
          for (VertexId u : graph.Neighbors(v)) {
            std::atomic_ref<uint8_t>(next_active[u]).store(
                1, std::memory_order_relaxed);
            ++c.global_writes;
          }
        }
      }
      if (local_changed != 0) {
        changed.fetch_add(local_changed, std::memory_order_relaxed);
      }
    };

    if (num_threads == 1) {
      superstep(0);
      clock.AddParallelPhase({lanes.data(), 1}, /*ends_with_barrier=*/false);
    } else {
      pool.RunLanes(num_threads, superstep);
      clock.AddParallelPhase({lanes.data(), lanes.size()});
    }
    for (const auto& lane : lanes) result.metrics.counters += lane;
    // The per-superstep reset of the next-active array is real O(n) work on
    // the driving thread; charge it (it bounds MPM's minimum superstep cost).
    PerfCounters reset_cost;
    reset_cost.global_writes = n;
    clock.AddSerial(reset_cost);
    result.metrics.counters += reset_cost;
    std::swap(active, next_active);
    ++result.metrics.iterations;
  }

  result.metrics.rounds = result.metrics.iterations;
  result.core = std::move(estimate);
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes =
      graph.MemoryBytes() + n * (sizeof(uint32_t) + 2);
  return result;
}

}  // namespace

DecomposeResult RunMpm(const CsrGraph& graph, const MpmOptions& options) {
  KCORE_CHECK_GE(options.num_threads, 1u);
  return RunMpmImpl(graph, options.num_threads);
}

DecomposeResult RunMpmSerial(const CsrGraph& graph) {
  return RunMpmImpl(graph, 1);
}

}  // namespace kcore
