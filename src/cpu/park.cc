#include "cpu/park.h"

#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

/// Shared implementation: `num_threads` logical lanes run each phase as one
/// bulk-synchronous step (scan, then loop sub-levels). With num_threads == 1
/// this is the serial variant with identical instruction mix.
DecomposeResult RunParKImpl(const CsrGraph& graph, uint32_t num_threads) {
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  DecomposeResult result;
  ModeledClock clock(CpuCostModel());

  std::vector<uint32_t> deg = graph.DegreeArray();
  // Global frontier buffers (ParK's shared B and B_new).
  std::vector<VertexId> buffer(n);
  std::vector<VertexId> buffer_new(n);
  std::atomic<uint64_t> buffer_size{0};
  std::atomic<uint64_t> buffer_new_size{0};
  std::atomic<uint64_t> removed{0};

  std::vector<PerfCounters> lanes(num_threads);
  ThreadPool& pool = DefaultThreadPool();

  auto run_phase = [&](const std::function<void(uint32_t)>& fn) {
    for (auto& lane : lanes) lane = PerfCounters();
    if (num_threads == 1) {
      fn(0);
      clock.AddParallelPhase({lanes.data(), 1}, /*ends_with_barrier=*/false);
    } else {
      pool.RunLanes(num_threads, fn);
      clock.AddParallelPhase({lanes.data(), lanes.size()});
    }
    for (const auto& lane : lanes) result.metrics.counters += lane;
  };

  uint32_t k = 0;
  while (removed.load(std::memory_order_relaxed) < n) {
    // --- Scan phase: partition the degree array over the lanes. ---
    buffer_size.store(0, std::memory_order_relaxed);
    run_phase([&](uint32_t lane) {
      PerfCounters& c = lanes[lane];
      const uint64_t chunk = (n + num_threads - 1) / num_threads;
      const uint64_t begin = static_cast<uint64_t>(lane) * chunk;
      const uint64_t end = std::min<uint64_t>(begin + chunk, n);
      for (uint64_t v = begin; v < end; ++v) {
        ++c.vertices_scanned;
        ++c.global_reads;
        ++c.lane_ops;
        if (std::atomic_ref<uint32_t>(deg[v]).load(
                std::memory_order_relaxed) == k) {
          const uint64_t pos =
              buffer_size.fetch_add(1, std::memory_order_relaxed);
          ++c.global_atomics;
          buffer[pos] = static_cast<VertexId>(v);
          ++c.global_writes;
          ++c.buffer_appends;
        }
      }
    });

    // --- Loop phase: sub-levels with a barrier after each (ParK's B_new). --
    while (buffer_size.load(std::memory_order_relaxed) > 0) {
      ++result.metrics.iterations;
      buffer_new_size.store(0, std::memory_order_relaxed);
      const uint64_t frontier = buffer_size.load(std::memory_order_relaxed);
      std::atomic<uint64_t> next{0};
      run_phase([&](uint32_t lane) {
        PerfCounters& c = lanes[lane];
        while (true) {
          const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= frontier) break;
          const VertexId v = buffer[i];
          ++c.global_reads;
          for (VertexId u : graph.Neighbors(v)) {
            ++c.edges_traversed;
            ++c.global_reads;
            ++c.lane_ops;
            const uint32_t du = std::atomic_ref<uint32_t>(deg[u]).load(
                std::memory_order_relaxed);
            if (du > k) {
              const uint32_t old =
                  std::atomic_ref<uint32_t>(deg[u]).fetch_sub(
                      1, std::memory_order_relaxed);
              ++c.global_atomics;
              if (old == k + 1) {
                const uint64_t pos =
                    buffer_new_size.fetch_add(1, std::memory_order_relaxed);
                ++c.global_atomics;
                buffer_new[pos] = u;
                ++c.global_writes;
                ++c.buffer_appends;
              } else if (old <= k) {
                // Concurrent decrements overshot; restore (add-back trick).
                std::atomic_ref<uint32_t>(deg[u]).fetch_add(
                    1, std::memory_order_relaxed);
                ++c.global_atomics;
              }
            }
          }
        }
      });
      removed.fetch_add(frontier, std::memory_order_relaxed);
      std::swap(buffer, buffer_new);
      buffer_size.store(buffer_new_size.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    ++result.metrics.rounds;
    ++k;
  }

  result.core = std::move(deg);
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes =
      graph.MemoryBytes() + 3ull * n * sizeof(uint32_t);
  return result;
}

}  // namespace

DecomposeResult RunParK(const CsrGraph& graph, const ParKOptions& options) {
  KCORE_CHECK_GE(options.num_threads, 1u);
  return RunParKImpl(graph, options.num_threads);
}

DecomposeResult RunParKSerial(const CsrGraph& graph) {
  return RunParKImpl(graph, 1);
}

}  // namespace kcore
