#ifndef KCORE_CPU_HINDEX_H_
#define KCORE_CPU_HINDEX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace kcore {

/// The h-index operator of MPM (paper §II-A, Fig. 2): the largest h such
/// that at least h elements of `values` are >= h.
///
/// Implemented with a counting pass bounded by `cap` (a vertex's h-index
/// never exceeds its degree), which is the standard O(d) evaluation — no
/// sort needed. `cap` = values.size() gives the unconstrained h-index.
uint32_t HIndex(std::span<const uint32_t> values, uint32_t cap);

/// Convenience overload with cap = values.size().
inline uint32_t HIndex(std::span<const uint32_t> values) {
  return HIndex(values, static_cast<uint32_t>(values.size()));
}

/// Scratch-reusing h-index evaluator for hot loops: counts into an internal
/// histogram sized to the largest cap seen.
class HIndexEvaluator {
 public:
  uint32_t Evaluate(std::span<const uint32_t> values, uint32_t cap);

 private:
  std::vector<uint32_t> histogram_;
};

}  // namespace kcore

#endif  // KCORE_CPU_HINDEX_H_
