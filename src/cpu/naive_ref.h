#ifndef KCORE_CPU_NAIVE_REF_H_
#define KCORE_CPU_NAIVE_REF_H_

#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

/// A deliberately simple reference decomposition used two ways:
///  (1) as the correctness oracle every other engine is tested against, and
///  (2) as the stand-in for the paper's NetworkX row in Table IV (same
///      peeling structure an interpreted library runs, charged interpreter
///      overhead by the benchmark).
///
/// Algorithm: repeated peeling with an explicit worklist — for k = 0,1,...,
/// remove every vertex whose residual degree is <= k until none remain,
/// recording core numbers. O(m + n*k_max) worst case; no clever arrays.
DecomposeResult RunNaiveReference(const CsrGraph& graph);

}  // namespace kcore

#endif  // KCORE_CPU_NAIVE_REF_H_
