#include "cpu/hindex.h"

#include <algorithm>

namespace kcore {

uint32_t HIndex(std::span<const uint32_t> values, uint32_t cap) {
  HIndexEvaluator evaluator;
  return evaluator.Evaluate(values, cap);
}

uint32_t HIndexEvaluator::Evaluate(std::span<const uint32_t> values,
                                   uint32_t cap) {
  cap = std::min<uint64_t>(cap, values.size());
  if (cap == 0) return 0;
  if (histogram_.size() < static_cast<size_t>(cap) + 1) {
    histogram_.resize(cap + 1);
  }
  std::fill(histogram_.begin(), histogram_.begin() + cap + 1, 0u);
  for (uint32_t v : values) {
    ++histogram_[std::min(v, cap)];
  }
  // Scan from the top: h is the largest value where the suffix count >= h.
  uint32_t at_least_h = 0;
  for (uint32_t h = cap; h >= 1; --h) {
    at_least_h += histogram_[h];
    if (at_least_h >= h) return h;
  }
  return 0;
}

}  // namespace kcore
