#ifndef KCORE_CPU_PKC_H_
#define KCORE_CPU_PKC_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

/// Which PKC variant to run (Kabir & Madduri; paper §II-A).
enum class PkcVariant {
  /// PKC-o: thread-local buffers remove ParK's sub-level barriers, but every
  /// round still scans the full degree array.
  kOriginal,
  /// PKC: additionally compacts the set of still-alive vertices once most
  /// of the graph has been peeled, so late rounds scan only survivors —
  /// the difference that makes PKC several times faster on high-k_max
  /// graphs (Table IV: indochina-2004, Serial PKC-o 64s vs Serial PKC 3s).
  kCompacted,
};

struct PkcOptions {
  PkcVariant variant = PkcVariant::kCompacted;
  /// Logical worker threads (48 on the paper's server; 1 = serial).
  uint32_t num_threads = 48;
  /// Alive-fraction threshold that triggers compaction (kCompacted only).
  double compact_threshold = 0.02;
};

/// PKC peeling: per round k each thread scans its partition of the degree
/// array into a private local buffer, then drains that buffer as a stack
/// (removing vertices and appending newly-degree-k neighbors) with no
/// intra-round synchronization. One barrier per round.
DecomposeResult RunPkc(const CsrGraph& graph, const PkcOptions& options = {});

/// Serial convenience wrappers (Table IV columns).
DecomposeResult RunPkcSerial(const CsrGraph& graph,
                             PkcVariant variant = PkcVariant::kCompacted);

/// Warm start: finishes a decomposition someone else began. `deg` is a
/// round-boundary snapshot taken after all rounds < `start_k` completed —
/// every vertex with deg[v] < start_k is final (deg[v] is its core number)
/// and survivors carry their current induced degrees. This is the CPU
/// fallback path of the resilient GPU peel drivers: they hand over their
/// last verified checkpoint when the device dies mid-decomposition, and the
/// returned core array equals what an uninterrupted run would produce.
DecomposeResult ResumePkc(const CsrGraph& graph, std::vector<uint32_t> deg,
                          uint32_t start_k, const PkcOptions& options = {});

}  // namespace kcore

#endif  // KCORE_CPU_PKC_H_
