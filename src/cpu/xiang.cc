#include "cpu/xiang.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

SingleKCoreResult XiangSingleKCore(const CsrGraph& graph, uint32_t k) {
  KCORE_CHECK_GE(k, 1u);
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  SingleKCoreResult result;
  result.k = k;
  PerfCounters& c = result.metrics.counters;

  std::vector<uint32_t> deg = graph.DegreeArray();
  c.vertices_scanned += n;
  c.global_reads += n;

  // Seed the deletion stack with everything already below k. Deleted
  // vertices keep deg < k forever, so "deg[v] < k" doubles as the visited
  // mark — no vertex enters the stack twice.
  std::vector<VertexId> stack;
  for (VertexId v = 0; v < n; ++v) {
    if (deg[v] < k) stack.push_back(v);
  }
  c.lane_ops += n;
  c.global_writes += stack.size();

  // Cascade: deleting v strips one edge from each surviving neighbor; a
  // neighbor crossing below k joins the deletion front. Only survivors are
  // ever decremented, so deg[u] cannot underflow past k - 1.
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    c.global_reads += 1;
    for (VertexId u : graph.Neighbors(v)) {
      ++c.edges_traversed;
      ++c.global_reads;
      ++c.lane_ops;
      if (deg[u] >= k) {
        --deg[u];
        ++c.global_writes;
        if (deg[u] == k - 1) {
          stack.push_back(u);
          ++c.global_writes;
        }
      }
    }
  }

  // Survivors are exactly the k-core (maximality: every survivor keeps >= k
  // surviving neighbors; soundness: the cascade only deletes vertices that
  // cannot be in any subgraph of minimum degree k).
  result.in_core.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (deg[v] >= k) {
      result.in_core[v] = 1;
      result.vertices.push_back(v);
    }
  }
  c.lane_ops += n;
  c.global_reads += n;

  result.metrics.rounds = 1;
  result.metrics.wall_ms = timer.ElapsedMillis();
  ModeledClock clock(CpuCostModel());
  clock.AddSerial(c);
  result.metrics.modeled_ms = clock.ms();
  result.metrics.peak_device_bytes =
      graph.MemoryBytes() + deg.size() * sizeof(uint32_t) +
      result.in_core.size() + result.vertices.size() * sizeof(uint32_t);
  return result;
}

}  // namespace kcore
