#include "core/gpu_peel_options.h"

namespace kcore {

std::string GpuPeelOptions::VariantName() const {
  std::string base;
  switch (append) {
    case AppendStrategy::kAtomic:
      base = "";
      break;
    case AppendStrategy::kBallotCompact:
      base = "BC";
      break;
    case AppendStrategy::kEfficientCompact:
      base = "EC";
      break;
  }
  std::string extra;
  if (shared_memory_buffering) extra = "SM";
  if (vertex_prefetching) extra = extra.empty() ? "VP" : extra + "+VP";
  if (base.empty() && extra.empty()) return "Ours";
  if (base.empty()) return extra;
  if (extra.empty()) return base;
  return base + "+" + extra;
}

std::vector<GpuPeelOptions> GpuPeelOptions::AblationVariants() {
  return {Ours(),         Sm(),          Vp(),
          Bc(),           Bc().WithSm(), Bc().WithVp(),
          Ec(),           Ec().WithSm(), Ec().WithVp()};
}

}  // namespace kcore
