#include "core/gpu_peel_options.h"

namespace kcore {

const char* ExpandStrategyName(ExpandStrategy strategy) {
  switch (strategy) {
    case ExpandStrategy::kThread:
      return "thread";
    case ExpandStrategy::kWarp:
      return "warp";
    case ExpandStrategy::kBlock:
      return "block";
    case ExpandStrategy::kAuto:
      return "auto";
  }
  return "unknown";
}

bool ParseExpandStrategy(const std::string& token, ExpandStrategy* out) {
  if (token == "thread") {
    *out = ExpandStrategy::kThread;
  } else if (token == "warp") {
    *out = ExpandStrategy::kWarp;
  } else if (token == "block") {
    *out = ExpandStrategy::kBlock;
  } else if (token == "auto") {
    *out = ExpandStrategy::kAuto;
  } else {
    return false;
  }
  return true;
}

std::string GpuPeelOptions::VariantName() const {
  std::string base;
  switch (append) {
    case AppendStrategy::kAtomic:
      base = "";
      break;
    case AppendStrategy::kBallotCompact:
      base = "BC";
      break;
    case AppendStrategy::kEfficientCompact:
      base = "EC";
      break;
  }
  std::string extra;
  if (shared_memory_buffering) extra = "SM";
  if (vertex_prefetching) extra = extra.empty() ? "VP" : extra + "+VP";
  if (base.empty() && extra.empty()) return "Ours";
  if (base.empty()) return extra;
  if (extra.empty()) return base;
  return base + "+" + extra;
}

std::vector<GpuPeelOptions> GpuPeelOptions::AblationVariants() {
  return {Ours(),         Sm(),          Vp(),
          Bc(),           Bc().WithSm(), Bc().WithVp(),
          Ec(),           Ec().WithSm(), Ec().WithVp()};
}

}  // namespace kcore
