#include "core/single_k.h"

#include "core/gpu_peel.h"
#include "cpu/xiang.h"

namespace kcore {

const char* SingleKEngineName(SingleKEngine engine) {
  switch (engine) {
    case SingleKEngine::kAuto:
      return "auto";
    case SingleKEngine::kCpu:
      return "cpu";
    case SingleKEngine::kGpu:
      return "gpu";
  }
  return "?";
}

StatusOr<SingleKCoreResult> SingleKCore(const CsrGraph& graph, uint32_t k,
                                        const SingleKOptions& options) {
  if (k < 1) {
    return Status::InvalidArgument(
        "single-k mining requires k >= 1 (the 0-core is every vertex)");
  }
  SingleKEngine engine = options.engine;
  if (engine == SingleKEngine::kAuto) {
    engine = graph.NumDirectedEdges() >= options.auto_gpu_min_edges
                 ? SingleKEngine::kGpu
                 : SingleKEngine::kCpu;
  }
  if (engine == SingleKEngine::kCpu) {
    return XiangSingleKCore(graph, k);
  }
  if (options.device != nullptr) {
    return GpuSingleKCore(graph, k, options.gpu, options.device);
  }
  return RunGpuSingleKCore(graph, k, options.gpu);
}

}  // namespace kcore
