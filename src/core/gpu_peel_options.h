#ifndef KCORE_CORE_GPU_PEEL_OPTIONS_H_
#define KCORE_CORE_GPU_PEEL_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"

namespace kcore {

/// How newly found k-shell vertices are appended to a block's buffer
/// (paper §IV-C "Reducing Contention for Buffer Appending").
enum class AppendStrategy {
  /// One shared-memory atomicAdd per element (the basic algorithm, "Ours").
  kAtomic,
  /// BC: warp-level ballot compaction (Fig. 8(c)), one atomicAdd per warp.
  kBallotCompact,
  /// EC: block-level two-stage compaction in the scan kernel (Fig. 9) and
  /// warp-level compaction in the loop kernel.
  kEfficientCompact,
};

/// How the loop kernel expands the adjacency of a frontier vertex
/// (degree-aware load balancing, cf. Gunrock's TWC load-balanced advance).
enum class ExpandStrategy {
  /// One lane peels the whole adjacency; a warp handles 32 frontier
  /// vertices in lockstep. Best for deg < 32.
  kThread,
  /// One warp per frontier vertex, 32 lanes per neighbor chunk — the
  /// paper's Alg. 3 path, and the default (exactly the pre-binning
  /// instruction sequence).
  kWarp,
  /// All warps of the block cooperatively sweep one vertex's adjacency in
  /// grid-stride batches; appends go through a block-wide ballot scan.
  kBlock,
  /// Per-window classification: each fetched frontier window is binned by
  /// degree into thread / warp / block granularity.
  kAuto,
};

/// Short name used by CLI flags and bench labels ("thread", "warp", ...).
const char* ExpandStrategyName(ExpandStrategy strategy);

/// Parses a CLI token ("thread"/"warp"/"block"/"auto"); returns false on an
/// unknown token, leaving *out untouched.
bool ParseExpandStrategy(const std::string& token, ExpandStrategy* out);

/// Fault-recovery policy of the resilient peel drivers. The machinery only
/// engages when the device carries a fault plan (cusim/fault_injection.h);
/// without one the drivers run the plain fast path — no checkpoints, no
/// validation, no retry bookkeeping.
struct ResilienceOptions {
  /// Master switch; off = injected faults surface as plain Status errors.
  bool enabled = true;
  /// Retries per device operation for transient (Unavailable) launch/copy
  /// failures before the failure is treated as permanent.
  uint32_t max_op_retries = 3;
  /// Rounds re-executed from the last checkpoint after corruption is caught
  /// by post-round validation (or after a buffer overflow, which corruption
  /// can also cause) before giving up on the device.
  uint32_t max_level_retries = 2;
  /// Exponential backoff between op retries: attempt i sleeps
  /// backoff_base_ms * 2^i. 0 (the test default) never sleeps.
  uint32_t backoff_base_ms = 0;
  /// Finish on CPU PKC from the last checkpoint once the device is lost or
  /// a budget is exhausted (Metrics.degraded = true); false = surface the
  /// Status instead.
  bool cpu_fallback = true;
};

/// Configuration of the GPU peeling decomposer and its ablation variants.
struct GpuPeelOptions {
  /// Kernel grid geometry (paper §VI: BLK_NUM=108, BLK_DIM=1024).
  uint32_t num_blocks = 108;
  uint32_t block_dim = 1024;

  /// Per-block global-memory buffer capacity in vertex IDs (paper: 1M).
  /// 0 = auto-size from the graph (max(4096, V/4)).
  uint64_t buffer_capacity = 0;

  /// Organize buf[i] as a ring buffer so consumed slots are recycled
  /// (paper §IV-C "Ring Buffers"). When false, a buffer that fills up makes
  /// the run fail with CapacityExceeded instead of invoking UB.
  bool ring_buffer = true;

  /// SM: stage loop-phase appends through a shared-memory buffer B with
  /// position translation (paper Fig. 7).
  bool shared_memory_buffering = false;
  /// Capacity of B in vertex IDs (paper: 10,000, near the SM limit).
  uint32_t shared_buffer_capacity = 10000;

  /// VP: Warp 0 prefetches the next frontier batch into shared memory while
  /// the other 31 warps process the current batch.
  bool vertex_prefetching = false;

  AppendStrategy append = AppendStrategy::kAtomic;

  /// Loop-phase frontier expansion granularity. kWarp (the default) is the
  /// paper's warp-per-vertex path, bit-identical to the pre-binning code;
  /// kAuto classifies each fetched window by degree into thread / warp /
  /// block bins (see DESIGN.md §8). Composes with every append / ring /
  /// SM / VP variant.
  ExpandStrategy expand_strategy = ExpandStrategy::kWarp;
  /// Adjacency length at or above which kAuto moves a vertex from the warp
  /// bin to the block-cooperative bin. Default from bench_micro_expand:
  /// block sweeps pay ~3 extra barriers per block_dim-neighbor batch, so
  /// they only amortize once the adjacency spans several full batches.
  uint32_t block_expand_threshold = 4096;

  /// Degree-ordered vertex renumbering (src/graph/renumber.h): relabel the
  /// graph by degree rank before peeling — dealt block-cyclically across
  /// block_dim-wide ID chunks, so each scan block's window holds a
  /// stratified degree sample and hub expansion spreads over all frontier
  /// buffers (shrinks Metrics.loop_imbalance on skewed graphs) — then map
  /// the core numbers back to the original IDs on return. The peeling
  /// pipeline itself is untouched — it just sees a relabeled CSR — so
  /// renumbering composes with every append / ring / SM / VP / expand
  /// variant, active compaction, fusion, multi-GPU sharding, simcheck,
  /// fault recovery, and simprof. Host-side preprocessing; its cost lands
  /// in wall_ms, not modeled_ms (it is amortizable across queries on a
  /// static graph).
  bool renumber = false;

  /// Fuse the round-boundary scan and active-list compaction into a single
  /// kernel launch: each round's fused kernel reads every surviving
  /// vertex's degree once, ballot-compacting the deg == k vertices into the
  /// block frontier buffers *and* the deg >= k survivors into the next
  /// active array. The separate CompactKernel launch disappears, the active
  /// list shrinks every round instead of at halvings, and the host skips
  /// the loop launch entirely for rounds whose frontier came up empty —
  /// on high-k_max graphs (many empty shells between the tail and the
  /// densest core) that removes most launches, the overhead the paper's
  /// profiling singles out. Requires active_compaction. Core numbers are
  /// bit-identical with fusion on or off.
  bool fuse_scan_compact = false;

  /// AC: active-vertex compaction for the scan phase. The scan kernel
  /// normally sweeps all n vertices every round k even when almost all of
  /// them are already peeled (the inefficiency PKC's graph compaction
  /// targets). With AC the host maintains a device-side dense array of
  /// still-active vertices (deg >= k): once the surviving fraction drops
  /// below `compaction_threshold`, a CompactKernel (warp-ballot compaction)
  /// rebuilds the dense array and subsequent scans sweep it instead of
  /// [0, n). Re-compacts each time the survivors halve again relative to
  /// the current active array. Output is bit-identical with AC on or off;
  /// only scan work changes.
  bool active_compaction = true;
  /// Surviving fraction (remaining / active-array length) below which the
  /// active array is (re)built. 0.5 = compact at every halving.
  double compaction_threshold = 0.5;

  /// Recovery policy under fault injection (inert without a fault plan).
  ResilienceOptions resilience;

  /// Request lifecycle (common/cancellation.h): non-null makes the driver
  /// poll the token/deadline at every round boundary and return
  /// Cancelled / DeadlineExceeded — releasing the device within one peel
  /// round — instead of running to completion. Not owned; must outlive the
  /// run. nullptr (the default) costs nothing.
  const CancelContext* cancel = nullptr;

  /// Named ablation presets matching the columns of Table II.
  static GpuPeelOptions Ours() { return {}; }
  static GpuPeelOptions Sm() {
    GpuPeelOptions o;
    o.shared_memory_buffering = true;
    return o;
  }
  static GpuPeelOptions Vp() {
    GpuPeelOptions o;
    o.vertex_prefetching = true;
    return o;
  }
  static GpuPeelOptions Bc() {
    GpuPeelOptions o;
    o.append = AppendStrategy::kBallotCompact;
    return o;
  }
  static GpuPeelOptions Ec() {
    GpuPeelOptions o;
    o.append = AppendStrategy::kEfficientCompact;
    return o;
  }

  /// Applies SM/VP on top of an append-strategy preset (BC+SM, EC+VP, ...).
  GpuPeelOptions WithSm() const {
    GpuPeelOptions o = *this;
    o.shared_memory_buffering = true;
    return o;
  }
  GpuPeelOptions WithVp() const {
    GpuPeelOptions o = *this;
    o.vertex_prefetching = true;
    return o;
  }
  /// Disables active-vertex compaction (the paper's original full-sweep
  /// scan) — the "off" arm of the compaction ablation.
  GpuPeelOptions WithoutCompaction() const {
    GpuPeelOptions o = *this;
    o.active_compaction = false;
    return o;
  }
  /// Selects a loop-phase expansion strategy on top of any preset.
  GpuPeelOptions WithExpand(ExpandStrategy strategy) const {
    GpuPeelOptions o = *this;
    o.expand_strategy = strategy;
    return o;
  }
  /// Enables degree-ordered renumbering on top of any preset.
  GpuPeelOptions WithRenumber() const {
    GpuPeelOptions o = *this;
    o.renumber = true;
    return o;
  }
  /// Enables scan->compact kernel fusion on top of any preset.
  GpuPeelOptions WithFusion() const {
    GpuPeelOptions o = *this;
    o.fuse_scan_compact = true;
    return o;
  }

  /// Table II column label for this configuration ("Ours", "BC+SM", ...).
  std::string VariantName() const;

  /// All nine Table II variants in column order.
  static std::vector<GpuPeelOptions> AblationVariants();
};

}  // namespace kcore

#endif  // KCORE_CORE_GPU_PEEL_OPTIONS_H_
