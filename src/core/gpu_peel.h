#ifndef KCORE_CORE_GPU_PEEL_H_
#define KCORE_CORE_GPU_PEEL_H_

#include "common/statusor.h"
#include "core/gpu_peel_options.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

/// The paper's primary contribution: PKC-style two-phase peeling executed as
/// CUDA-style kernels (Algorithms 1-3) on the simulated GPU.
///
/// Per round k the host launches a *scan* kernel (each block collects its
/// degree-k vertices into its global-memory buffer buf[i]) and a *loop*
/// kernel (each warp pops a frontier vertex, decrements its neighbors'
/// degrees with atomicSub, rolls back decrements that undershoot k, and
/// appends neighbors whose degree reaches k). deg[] converges to the core
/// numbers (§IV-B Cases 1-3).
class GpuPeelDecomposer {
 public:
  /// `device` must outlive the decomposer. Options are validated at
  /// Decompose time.
  GpuPeelDecomposer(sim::Device* device, GpuPeelOptions options)
      : device_(device), options_(options) {}

  /// Runs the full decomposition. Fails with:
  ///  - InvalidArgument for inconsistent kernel geometry,
  ///  - OutOfMemory if the graph + buffers exceed device global memory,
  ///  - CapacityExceeded if a block buffer overflows (non-ring, or ring
  ///    backlog beyond capacity) — the failure the paper's §VII notes as the
  ///    current limitation.
  [[nodiscard]] StatusOr<DecomposeResult> Decompose(const CsrGraph& graph);

 private:
  sim::Device* device_;
  GpuPeelOptions options_;
};

/// One-shot convenience: creates a device with `device_options` and runs the
/// decomposition with `options`.
[[nodiscard]] StatusOr<DecomposeResult> RunGpuPeel(const CsrGraph& graph,
                                     const GpuPeelOptions& options = {},
                                     const sim::DeviceOptions& device_options = {});

/// Direct single-k core mining on the simulated GPU (the device analogue of
/// XiangSingleKCore): one scan launch collects every deg < k vertex into the
/// block frontier buffers — the initial deletion stack — and one loop launch
/// at threshold k-1 runs the full cascade, so the query costs a single
/// scan+loop kernel pair instead of k rounds of peeling. Composes with every
/// append / ring / SM / VP / expand variant and with renumbering; active
/// compaction and fusion are full-decomposition concepts and are ignored.
///
/// Fails with InvalidArgument for k < 1 or bad kernel geometry,
/// CapacityExceeded on frontier-buffer overflow, or — under an attached
/// fault plan with resilience enabled — degrades to the CPU algorithm
/// (Metrics.degraded) when the device is lost.
[[nodiscard]] StatusOr<SingleKCoreResult> GpuSingleKCore(const CsrGraph& graph, uint32_t k,
                                           const GpuPeelOptions& options,
                                           sim::Device* device);

/// One-shot convenience: creates a device with `device_options` and mines
/// the k-core with `options`.
[[nodiscard]] StatusOr<SingleKCoreResult> RunGpuSingleKCore(
    const CsrGraph& graph, uint32_t k, const GpuPeelOptions& options = {},
    const sim::DeviceOptions& device_options = {});

}  // namespace kcore

#endif  // KCORE_CORE_GPU_PEEL_H_
