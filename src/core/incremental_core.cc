#include "core/incremental_core.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/gpu_peel.h"
#include "cpu/bz.h"
#include "cpu/dynamic_core.h"
#include "cusim/annotations.h"
#include "cusim/atomics.h"
#include "cusim/block.h"
#include "cusim/simprof.h"
#include "cusim/warp.h"
#include "cusim/warp_scan.h"

namespace kcore {
namespace {

using sim::AtomicAdd;
using sim::AtomicCas;
using sim::AtomicMax;
using sim::AtomicSub;
using sim::BallotExclusiveScan;
using sim::GlobalLoad;
using sim::GlobalStore;
using sim::kWarpSize;
using sim::WarpCtx;

/// Dead base-CSR slot (a deleted neighbor) / empty overlay-chain link. Valid
/// vertex ids are < V < 2^32-1, so the sentinel can never collide.
constexpr VertexId kTombstone = 0xFFFFFFFFu;
constexpr uint32_t kNilLink = 0xFFFFFFFFu;

/// Raw device pointers + geometry handed to every incremental kernel.
///
/// Graph representation (the delta-CSR overlay): the base CSR keeps its
/// original layout with deleted slots tombstoned in place; inserted edges
/// live in a pool of per-vertex linked slabs (ov_dst/ov_next nodes chained
/// from ov_head[v]). A vertex's live adjacency = non-tombstoned base slots +
/// non-tombstoned chain nodes. Unsorted — every consumer does linear sweeps.
struct IncCtx {
  const EdgeIndex* offsets = nullptr;
  VertexId* base_nbrs = nullptr;
  uint32_t* core = nullptr;

  VertexId* ov_dst = nullptr;
  uint32_t* ov_next = nullptr;
  uint32_t* ov_head = nullptr;
  uint64_t ov_capacity = 0;

  const VertexId* stage_u = nullptr;
  const VertexId* stage_v = nullptr;

  /// Batch-stamped union of every vertex the batch looked at (the affected
  /// region); claimed once per batch via batch_stamp.
  VertexId* touched = nullptr;
  uint64_t* touched_count = nullptr;
  uint64_t* batch_stamp = nullptr;

  /// Wave-claimed worklist: BFS frontier windows and re-peel activation
  /// windows are consecutive slices of this append-only array.
  VertexId* act = nullptr;
  uint64_t* act_count = nullptr;
  uint64_t* wave_stamp = nullptr;
  uint64_t act_capacity = 0;

  uint32_t* overflow = nullptr;  // sticky: act/overlay capacity exhausted
  uint32_t* invalid = nullptr;   // sticky: structural or fixpoint violation
  uint32_t* gather = nullptr;    // gather[i] = core[touched[i]]

  VertexId num_vertices = 0;
};

/// Claims v into the batch-stamped affected set (at most once per batch).
template <typename Counters>
KCORE_KERNEL void ClaimTouched(const IncCtx& ctx, VertexId v,
                               uint64_t batch_tag, Counters& c) {
  if (AtomicMax(ctx.batch_stamp + v, batch_tag, c) >= batch_tag) return;
  const uint64_t pos = AtomicAdd(ctx.touched_count, uint64_t{1}, c);
  // touched has exactly V slots and claims dedup, so pos < V always; the
  // guard contains the fallout of a corrupted stamp word.
  if (pos >= ctx.num_vertices) {
    AtomicMax(ctx.invalid, 1u, c);
    return;
  }
  GlobalStore(ctx.touched + pos, v, c);
}

/// Appends v to the worklist tail if it has not been claimed for `wave_tag`
/// yet. Serial (single-lane) variant used for overlay-chain discoveries.
template <typename Counters>
KCORE_KERNEL void PushActSerial(const IncCtx& ctx, VertexId v,
                                uint64_t wave_tag, uint64_t batch_tag,
                                Counters& c) {
  if (AtomicMax(ctx.wave_stamp + v, wave_tag, c) >= wave_tag) return;
  ClaimTouched(ctx, v, batch_tag, c);
  const uint64_t pos = AtomicAdd(ctx.act_count, uint64_t{1}, c);
  if (pos >= ctx.act_capacity) {
    AtomicMax(ctx.overflow, 1u, c);
    return;
  }
  GlobalStore(ctx.act + pos, v, c);
  ++c.buffer_appends;
}

/// Warp-ballot append (the PR-1 compaction idiom): lanes stage claimed
/// candidates in registers, one ballot scan assigns dense slots, one
/// atomicAdd per warp reserves them.
template <typename Counters>
KCORE_KERNEL void PushActBallot(const IncCtx& ctx, WarpCtx& warp,
                                const uint32_t flags[kWarpSize],
                                const VertexId cand[kWarpSize],
                                Counters& c) {
  uint32_t exclusive[kWarpSize];
  const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
  if (total == 0) return;
  const uint64_t base = AtomicAdd(ctx.act_count, uint64_t{total}, c);
  ++c.shared_ops;  // lane 0 broadcasts the reserved base
  warp.ForEachLane([&](uint32_t lane) {
    if (flags[lane] == 0) return;
    const uint64_t pos = base + exclusive[lane];
    if (pos >= ctx.act_capacity) {
      AtomicMax(ctx.overflow, 1u, c);
      return;
    }
    GlobalStore(ctx.act + pos, cand[lane], c);
    ++c.buffer_appends;
  });
}

/// Counts v's live neighbors with core >= t: lanes stride the base slab in
/// kWarpSize chunks (skipping tombstones), lane 0 walks the short overlay
/// chain. One call = one adjacency sweep of the h-index descent.
template <typename Counters>
KCORE_KERNEL uint32_t WarpCountNeighborsGE(const IncCtx& ctx, VertexId v,
                                           uint32_t t, WarpCtx& warp,
                                           Counters& c) {
  uint32_t lane_cnt[kWarpSize] = {0};
  const EdgeIndex lo = GlobalLoad(ctx.offsets + v, c);
  const EdgeIndex hi = GlobalLoad(ctx.offsets + v + 1, c);
  for (EdgeIndex base = lo; base < hi; base += kWarpSize) {
    warp.ForEachLane([&](uint32_t lane) {
      const EdgeIndex e = base + lane;
      if (e >= hi) return;
      const VertexId u = GlobalLoad(ctx.base_nbrs + e, c);
      ++c.edges_traversed;
      if (u == kTombstone) return;
      if (GlobalLoad(ctx.core + u, c) >= t) ++lane_cnt[lane];
    });
  }
  uint32_t cnt = 0;
  for (uint32_t lane = 0; lane < kWarpSize; ++lane) cnt += lane_cnt[lane];
  c.lane_ops += 5;  // log2(32) shuffle reduction
  uint32_t node = GlobalLoad(ctx.ov_head + v, c);
  while (node != kNilLink) {
    const VertexId u = GlobalLoad(ctx.ov_dst + node, c);
    ++c.edges_traversed;
    if (u != kTombstone && GlobalLoad(ctx.core + u, c) >= t) ++cnt;
    node = GlobalLoad(ctx.ov_next + node, c);
  }
  return cnt;
}

/// Links `n` staged directed inserts (stage_u[i] -> stage_v[i]) into the
/// overlay pool at slots [slot_base, slot_base + n). Slot assignment is
/// host-side (slot_base + i); only the per-vertex head push needs a CAS
/// loop — two concurrent inserts on one vertex chain through it safely.
template <typename BlockT>
KCORE_KERNEL void OverlayAppendKernel(const IncCtx& ctx, uint64_t n,
                                      uint64_t slot_base, BlockT& block) {
  auto& c = block.counters();
  const uint64_t grid = block.grid_threads();
  const uint64_t first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();
  for (uint64_t s = 0; s < n; s += grid) {
    if (s + first >= n) continue;
    block.ForEachThread([&](uint32_t t) {
      const uint64_t i = s + first + t;
      if (i >= n) return;
      const VertexId src = GlobalLoad(ctx.stage_u + i, c);
      const VertexId dst = GlobalLoad(ctx.stage_v + i, c);
      const uint64_t slot = slot_base + i;
      if (slot >= ctx.ov_capacity) {  // host pre-checks; contain anyway
        AtomicMax(ctx.overflow, 1u, c);
        return;
      }
      GlobalStore(ctx.ov_dst + slot, dst, c);
      for (;;) {
        const uint32_t old = GlobalLoad(ctx.ov_head + src, c);
        GlobalStore(ctx.ov_next + slot, old, c);
        if (AtomicCas(ctx.ov_head + src, old,
                      static_cast<uint32_t>(slot), c) == old) {
          break;
        }
      }
    });
  }
}

/// Tombstones `n` staged directed deletes: each thread linear-scans the
/// source's base slab for the target (CAS so concurrent scanners of the
/// same slab never race a plain write), falling back to the overlay chain
/// for edges inserted since the last merge.
template <typename BlockT>
KCORE_KERNEL void TombstoneKernel(const IncCtx& ctx, uint64_t n,
                                  BlockT& block) {
  auto& c = block.counters();
  const uint64_t grid = block.grid_threads();
  const uint64_t first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();
  for (uint64_t s = 0; s < n; s += grid) {
    if (s + first >= n) continue;
    block.ForEachThread([&](uint32_t t) {
      const uint64_t i = s + first + t;
      if (i >= n) return;
      const VertexId src = GlobalLoad(ctx.stage_u + i, c);
      const VertexId dst = GlobalLoad(ctx.stage_v + i, c);
      const EdgeIndex lo = GlobalLoad(ctx.offsets + src, c);
      const EdgeIndex hi = GlobalLoad(ctx.offsets + src + 1, c);
      for (EdgeIndex e = lo; e < hi; ++e) {
        ++c.edges_traversed;
        if (GlobalLoad(ctx.base_nbrs + e, c) != dst) continue;
        if (AtomicCas(ctx.base_nbrs + e, dst, kTombstone, c) == dst) return;
      }
      uint32_t node = GlobalLoad(ctx.ov_head + src, c);
      while (node != kNilLink) {
        ++c.edges_traversed;
        if (GlobalLoad(ctx.ov_dst + node, c) == dst) {
          if (AtomicCas(ctx.ov_dst + node, dst, kTombstone, c) == dst) return;
        }
        node = GlobalLoad(ctx.ov_next + node, c);
      }
      AtomicMax(ctx.invalid, 1u, c);  // validated host-side; must exist
    });
  }
}

/// Claims `n` staged seed vertices into the affected set and the worklist.
template <typename BlockT>
KCORE_KERNEL void SeedKernel(const IncCtx& ctx, uint64_t n,
                             uint64_t batch_tag, uint64_t wave_tag,
                             BlockT& block) {
  auto& c = block.counters();
  const uint64_t grid = block.grid_threads();
  const uint64_t first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();
  for (uint64_t s = 0; s < n; s += grid) {
    if (s + first >= n) continue;
    block.ForEachThread([&](uint32_t t) {
      const uint64_t i = s + first + t;
      if (i >= n) return;
      PushActSerial(ctx, GlobalLoad(ctx.stage_u + i, c), wave_tag, batch_tag,
                    c);
    });
  }
}

/// One BFS wave of insert-candidate collection: for each frontier vertex in
/// act[window), append its live neighbors whose core equals the frontier
/// vertex's own core (the equal-coreness subcore walk of cpu/dynamic_core.h
/// CollectCandidates) to the worklist tail. Comparing against the frontier
/// vertex's core — not a scalar K — lets one joint wave grow every insert's
/// component at once: a component is equal-coreness by construction, so
/// components seeded at different K levels expand side by side without
/// merging. Warp per frontier vertex; appends warp-ballot-compacted.
template <typename BlockT>
KCORE_KERNEL void ExpandFrontierKernel(const IncCtx& ctx, uint64_t win_start,
                                       uint64_t win_end, uint64_t batch_tag,
                                       uint64_t wave_tag, BlockT& block) {
  auto& c = block.counters();
  const uint32_t warps_per_block = block.num_warps();
  const uint64_t grid_warps =
      static_cast<uint64_t>(block.num_blocks()) * warps_per_block;
  const uint64_t len = win_end - win_start;
  for (uint64_t s = 0; s < len; s += grid_warps) {
    block.ForEachWarp([&](WarpCtx& warp) {
      const uint64_t idx =
          s + static_cast<uint64_t>(block.block_id()) * warps_per_block +
          warp.warp_id();
      if (idx >= len) return;
      const VertexId v = GlobalLoad(ctx.act + win_start + idx, c);
      ++c.vertices_scanned;
      const uint32_t k = GlobalLoad(ctx.core + v, c);
      const EdgeIndex lo = GlobalLoad(ctx.offsets + v, c);
      const EdgeIndex hi = GlobalLoad(ctx.offsets + v + 1, c);
      for (EdgeIndex base = lo; base < hi; base += kWarpSize) {
        uint32_t flags[kWarpSize] = {0};
        VertexId cand[kWarpSize];
        warp.ForEachLane([&](uint32_t lane) {
          const EdgeIndex e = base + lane;
          if (e >= hi) return;
          const VertexId u = GlobalLoad(ctx.base_nbrs + e, c);
          ++c.edges_traversed;
          if (u == kTombstone) return;
          if (GlobalLoad(ctx.core + u, c) != k) return;
          if (AtomicMax(ctx.wave_stamp + u, wave_tag, c) >= wave_tag) return;
          ClaimTouched(ctx, u, batch_tag, c);
          flags[lane] = 1;
          cand[lane] = u;
        });
        PushActBallot(ctx, warp, flags, cand, c);
      }
      uint32_t node = GlobalLoad(ctx.ov_head + v, c);
      while (node != kNilLink) {
        const VertexId u = GlobalLoad(ctx.ov_dst + node, c);
        ++c.edges_traversed;
        if (u != kTombstone && GlobalLoad(ctx.core + u, c) == k) {
          PushActSerial(ctx, u, wave_tag, batch_tag, c);
        }
        node = GlobalLoad(ctx.ov_next + node, c);
      }
    });
  }
}

/// Lifts every candidate in act[window) by one (K -> K+1): the valid upper
/// bound an edge insert can raise the subcore to. AtomicAdd so concurrent
/// sweeps reading core[] race an atomic, not a plain write.
template <typename BlockT>
KCORE_KERNEL void LiftKernel(const IncCtx& ctx, uint64_t win_start,
                             uint64_t win_end, BlockT& block) {
  auto& c = block.counters();
  const uint64_t grid = block.grid_threads();
  const uint64_t first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();
  const uint64_t len = win_end - win_start;
  for (uint64_t s = 0; s < len; s += grid) {
    if (s + first >= len) continue;
    block.ForEachThread([&](uint32_t t) {
      const uint64_t i = s + first + t;
      if (i >= len) return;
      const VertexId v = GlobalLoad(ctx.act + win_start + i, c);
      AtomicAdd(ctx.core + v, 1u, c);
    });
  }
}

/// One localized re-peel wave: every vertex in act[window) re-evaluates its
/// h-index against live neighbor cores (descent from the current value —
/// each step one warp sweep), and on a drop pushes the neighbors whose core
/// exceeds the new value into the next wave's window. Chaotic relaxation:
/// estimates only decrease and stay upper bounds, so concurrent evaluation
/// order cannot change the fixpoint — the greatest fixpoint below the
/// upper bounds, i.e. the exact coreness (Montresor locality).
template <typename BlockT>
KCORE_KERNEL void RefineWaveKernel(const IncCtx& ctx, uint64_t win_start,
                                   uint64_t win_end, uint64_t batch_tag,
                                   uint64_t push_tag, BlockT& block) {
  auto& c = block.counters();
  const uint32_t warps_per_block = block.num_warps();
  const uint64_t grid_warps =
      static_cast<uint64_t>(block.num_blocks()) * warps_per_block;
  const uint64_t len = win_end - win_start;
  for (uint64_t s = 0; s < len; s += grid_warps) {
    block.ForEachWarp([&](WarpCtx& warp) {
      const uint64_t idx =
          s + static_cast<uint64_t>(block.block_id()) * warps_per_block +
          warp.warp_id();
      if (idx >= len) return;
      const VertexId v = GlobalLoad(ctx.act + win_start + idx, c);
      ++c.vertices_scanned;
      ++c.hindex_evals;
      const uint32_t cap = GlobalLoad(ctx.core + v, c);
      if (cap == 0) return;
      uint32_t t = cap;
      while (t > 0) {
        const uint32_t cnt = WarpCountNeighborsGE(ctx, v, t, warp, c);
        if (cnt >= t) break;
        --t;
      }
      if (t == cap) return;
      // Single writer per vertex per wave (the wave-stamp claim), so the
      // subtraction is exact; atomic so concurrent readers race an atomic.
      AtomicSub(ctx.core + v, cap - t, c);
      ClaimTouched(ctx, v, batch_tag, c);
      // Push affected neighbors: only estimates above the new value can
      // lose support (v still supports any neighbor at level <= t).
      const EdgeIndex lo = GlobalLoad(ctx.offsets + v, c);
      const EdgeIndex hi = GlobalLoad(ctx.offsets + v + 1, c);
      for (EdgeIndex base = lo; base < hi; base += kWarpSize) {
        uint32_t flags[kWarpSize] = {0};
        VertexId cand[kWarpSize];
        warp.ForEachLane([&](uint32_t lane) {
          const EdgeIndex e = base + lane;
          if (e >= hi) return;
          const VertexId u = GlobalLoad(ctx.base_nbrs + e, c);
          ++c.edges_traversed;
          if (u == kTombstone) return;
          if (GlobalLoad(ctx.core + u, c) <= t) return;
          if (AtomicMax(ctx.wave_stamp + u, push_tag, c) >= push_tag) return;
          ClaimTouched(ctx, u, batch_tag, c);
          flags[lane] = 1;
          cand[lane] = u;
        });
        PushActBallot(ctx, warp, flags, cand, c);
      }
      uint32_t node = GlobalLoad(ctx.ov_head + v, c);
      while (node != kNilLink) {
        const VertexId u = GlobalLoad(ctx.ov_dst + node, c);
        ++c.edges_traversed;
        if (u != kTombstone && GlobalLoad(ctx.core + u, c) > t) {
          PushActSerial(ctx, u, push_tag, batch_tag, c);
        }
        node = GlobalLoad(ctx.ov_next + node, c);
      }
    });
  }
}

/// gather[i] = core[touched[i]] for the whole affected prefix — the
/// index-gather that a prefix-only host copy cannot express.
template <typename BlockT>
KCORE_KERNEL void GatherKernel(const IncCtx& ctx, uint64_t n, BlockT& block) {
  auto& c = block.counters();
  const uint64_t grid = block.grid_threads();
  const uint64_t first =
      static_cast<uint64_t>(block.block_id()) * block.block_dim();
  for (uint64_t s = 0; s < n; s += grid) {
    if (s + first >= n) continue;
    block.ForEachThread([&](uint32_t t) {
      const uint64_t i = s + first + t;
      if (i >= n) return;
      const VertexId v = GlobalLoad(ctx.touched + i, c);
      GlobalStore(ctx.gather + i, GlobalLoad(ctx.core + v, c), c);
    });
  }
}

/// Post-batch corruption check (fault plans only): exact coreness satisfies
/// the locality fixpoint core(v) == H(live neighbor cores), verified as
/// count(>= c) >= c && count(>= c+1) <= c in one sweep. Any single flipped
/// word of core[] breaks the test at the flipped vertex itself (its
/// neighborhood is unchanged, so H still equals the pre-flip value).
template <typename BlockT>
KCORE_KERNEL void ValidateCoreKernel(const IncCtx& ctx, BlockT& block) {
  auto& c = block.counters();
  const uint32_t warps_per_block = block.num_warps();
  const uint64_t grid_warps =
      static_cast<uint64_t>(block.num_blocks()) * warps_per_block;
  const uint64_t n = ctx.num_vertices;
  for (uint64_t s = 0; s < n; s += grid_warps) {
    block.ForEachWarp([&](WarpCtx& warp) {
      const uint64_t idx =
          s + static_cast<uint64_t>(block.block_id()) * warps_per_block +
          warp.warp_id();
      if (idx >= n) return;
      const VertexId v = static_cast<VertexId>(idx);
      ++c.vertices_scanned;
      const uint32_t cv = GlobalLoad(ctx.core + v, c);
      uint32_t lane_ge[kWarpSize] = {0};
      uint32_t lane_gt[kWarpSize] = {0};
      const EdgeIndex lo = GlobalLoad(ctx.offsets + v, c);
      const EdgeIndex hi = GlobalLoad(ctx.offsets + v + 1, c);
      for (EdgeIndex base = lo; base < hi; base += kWarpSize) {
        warp.ForEachLane([&](uint32_t lane) {
          const EdgeIndex e = base + lane;
          if (e >= hi) return;
          const VertexId u = GlobalLoad(ctx.base_nbrs + e, c);
          ++c.edges_traversed;
          if (u == kTombstone) return;
          const uint32_t cu = GlobalLoad(ctx.core + u, c);
          if (cu >= cv) ++lane_ge[lane];
          if (cu >= cv + 1) ++lane_gt[lane];
        });
      }
      uint32_t ge = 0;
      uint32_t gt = 0;
      for (uint32_t lane = 0; lane < kWarpSize; ++lane) {
        ge += lane_ge[lane];
        gt += lane_gt[lane];
      }
      c.lane_ops += 10;
      uint32_t node = GlobalLoad(ctx.ov_head + v, c);
      while (node != kNilLink) {
        const VertexId u = GlobalLoad(ctx.ov_dst + node, c);
        ++c.edges_traversed;
        if (u != kTombstone) {
          const uint32_t cu = GlobalLoad(ctx.core + u, c);
          if (cu >= cv) ++ge;
          if (cu >= cv + 1) ++gt;
        }
        node = GlobalLoad(ctx.ov_next + node, c);
      }
      if (ge < cv || gt > cv) AtomicMax(ctx.invalid, 1u, c);
    });
  }
}

/// Streams the live adjacency (non-tombstoned base slots, then overlay
/// chain) of every vertex into a freshly laid-out CSR at new_offsets — the
/// compaction that folds the delta overlay back into the base. Warp per
/// vertex; base-slab survivors placed by ballot scan, chain nodes appended
/// serially by lane 0. The host computed new_offsets from its mirror, so a
/// final cursor mismatch marks the device structure corrupt.
template <typename BlockT>
KCORE_KERNEL void MergeCompactKernel(const IncCtx& ctx,
                                     const EdgeIndex* new_offsets,
                                     VertexId* new_nbrs, BlockT& block) {
  auto& c = block.counters();
  const uint32_t warps_per_block = block.num_warps();
  const uint64_t grid_warps =
      static_cast<uint64_t>(block.num_blocks()) * warps_per_block;
  const uint64_t n = ctx.num_vertices;
  for (uint64_t s = 0; s < n; s += grid_warps) {
    block.ForEachWarp([&](WarpCtx& warp) {
      const uint64_t idx =
          s + static_cast<uint64_t>(block.block_id()) * warps_per_block +
          warp.warp_id();
      if (idx >= n) return;
      const VertexId v = static_cast<VertexId>(idx);
      ++c.vertices_scanned;
      EdgeIndex cursor = GlobalLoad(new_offsets + v, c);
      const EdgeIndex out_end = GlobalLoad(new_offsets + v + 1, c);
      const EdgeIndex lo = GlobalLoad(ctx.offsets + v, c);
      const EdgeIndex hi = GlobalLoad(ctx.offsets + v + 1, c);
      for (EdgeIndex base = lo; base < hi; base += kWarpSize) {
        uint32_t flags[kWarpSize] = {0};
        VertexId live[kWarpSize];
        warp.ForEachLane([&](uint32_t lane) {
          const EdgeIndex e = base + lane;
          if (e >= hi) return;
          const VertexId u = GlobalLoad(ctx.base_nbrs + e, c);
          ++c.edges_traversed;
          if (u == kTombstone) return;
          flags[lane] = 1;
          live[lane] = u;
        });
        uint32_t exclusive[kWarpSize];
        const uint32_t total = BallotExclusiveScan(warp, flags, exclusive);
        warp.ForEachLane([&](uint32_t lane) {
          if (flags[lane] == 0) return;
          const EdgeIndex pos = cursor + exclusive[lane];
          if (pos < out_end) {
            GlobalStore(new_nbrs + pos, live[lane], c);
          } else {
            AtomicMax(ctx.invalid, 1u, c);
          }
        });
        cursor += total;
      }
      uint32_t node = GlobalLoad(ctx.ov_head + v, c);
      while (node != kNilLink) {
        const VertexId u = GlobalLoad(ctx.ov_dst + node, c);
        ++c.edges_traversed;
        if (u != kTombstone) {
          if (cursor < out_end) {
            GlobalStore(new_nbrs + cursor, u, c);
          } else {
            AtomicMax(ctx.invalid, 1u, c);
          }
          ++cursor;
        }
        node = GlobalLoad(ctx.ov_next + node, c);
      }
      if (cursor != out_end) AtomicMax(ctx.invalid, 1u, c);
    });
  }
}

}  // namespace

Status ValidateIncrementalOptions(const IncrementalOptions& options,
                                  const sim::Device& device) {
  (void)device;
  if (options.num_blocks == 0) {
    return Status::InvalidArgument("num_blocks must be positive");
  }
  if (options.block_dim == 0 || options.block_dim % kWarpSize != 0) {
    return Status::InvalidArgument(
        "block_dim must be a positive multiple of 32");
  }
  if (options.compact_threshold < 0.0 || options.compact_threshold > 1.0) {
    return Status::InvalidArgument(
        "compact_threshold must be a fraction in [0, 1]");
  }
  if (options.full_repeel_fraction <= 0.0 ||
      options.full_repeel_fraction > 1.0) {
    return Status::InvalidArgument(
        "full_repeel_fraction must be a fraction in (0, 1]");
  }
  return Status::OK();
}

/// Everything resident on the attached device, plus the host-side
/// bookkeeping that describes it.
struct IncrementalCoreEngine::DeviceState {
  sim::DeviceArray<EdgeIndex> offsets;
  sim::DeviceArray<VertexId> base_nbrs;
  sim::DeviceArray<uint32_t> core;
  sim::DeviceArray<VertexId> ov_dst;
  sim::DeviceArray<uint32_t> ov_next;
  sim::DeviceArray<uint32_t> ov_head;
  sim::DeviceArray<VertexId> touched;
  sim::DeviceArray<uint64_t> touched_count;
  sim::DeviceArray<uint64_t> batch_stamp;
  sim::DeviceArray<VertexId> act;
  sim::DeviceArray<uint64_t> act_count;
  sim::DeviceArray<uint64_t> wave_stamp;
  sim::DeviceArray<uint32_t> overflow;
  sim::DeviceArray<uint32_t> invalid;
  sim::DeviceArray<uint32_t> gather;
  sim::DeviceArray<VertexId> stage_u;
  sim::DeviceArray<VertexId> stage_v;

  uint64_t base_dir_edges = 0;  ///< Base CSR directed slots (incl. dead).
  uint64_t ov_used = 0;         ///< Pool slots consumed since last merge.
  uint64_t tombstones = 0;      ///< Dead base+overlay slots since last merge.
  uint64_t stamp_counter = 0;   ///< Monotone source of batch/wave tags.
  uint64_t stage_capacity = 0;

  IncCtx ctx;
};

IncrementalCoreEngine::IncrementalCoreEngine(
    const CsrGraph& initial, IncrementalOptions options,
    sim::DeviceOptions device_options)
    : options_(options), device_options_(device_options) {
  const VertexId n = initial.NumVertices();
  adjacency_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = initial.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = initial.NumUndirectedEdges();
}

IncrementalCoreEngine::~IncrementalCoreEngine() = default;

StatusOr<std::unique_ptr<IncrementalCoreEngine>> IncrementalCoreEngine::Create(
    const CsrGraph& initial, const IncrementalOptions& options,
    const sim::DeviceOptions& device_options,
    const std::vector<uint32_t>* known_core) {
  KCORE_RETURN_IF_ERROR(initial.Validate());
  std::unique_ptr<IncrementalCoreEngine> engine(
      new IncrementalCoreEngine(initial, options, device_options));
  if (known_core != nullptr) {
    if (known_core->size() != initial.NumVertices()) {
      return Status::InvalidArgument("known_core size mismatch");
    }
    engine->core_ = *known_core;
  } else {
    engine->core_ = RunBz(initial).core;
  }
  KCORE_RETURN_IF_ERROR(engine->Attach());
  KCORE_RETURN_IF_ERROR(
      ValidateIncrementalOptions(options, *engine->device_));
  return engine;
}

CsrGraph IncrementalCoreEngine::CurrentGraph() const {
  const VertexId n = NumVertices();
  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + adjacency_[v].size();
  }
  std::vector<VertexId> neighbors;
  neighbors.reserve(offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    neighbors.insert(neighbors.end(), adjacency_[v].begin(),
                     adjacency_[v].end());
  }
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

Status IncrementalCoreEngine::HealthCheck() {
  if (device_ == nullptr || needs_reattach_) {
    // A detached engine re-attaches on the next batch; probe by attaching.
    KCORE_RETURN_IF_ERROR(Attach());
  }
  return device_->HealthCheck("incremental_probe");
}

Status IncrementalCoreEngine::ValidateAndSplit(
    std::span<const EdgeUpdate> batch, std::vector<EdgeUpdate>* net_inserts,
    std::vector<EdgeUpdate>* net_deletes) const {
  const VertexId n = NumVertices();
  std::set<std::pair<VertexId, VertexId>> toggled;
  const auto has_edge = [&](VertexId u, VertexId v) {
    const auto& list = adjacency_[u];
    return std::binary_search(list.begin(), list.end(), v);
  };
  for (size_t i = 0; i < batch.size(); ++i) {
    const EdgeUpdate& e = batch[i];
    if (e.u >= n || e.v >= n) {
      return Status::InvalidArgument(
          StrFormat("update %zu: endpoint out of range", i));
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(StrFormat("update %zu: self-loop", i));
    }
    const auto key = std::minmax(e.u, e.v);
    const std::pair<VertexId, VertexId> kp{key.first, key.second};
    const bool present = has_edge(e.u, e.v) != (toggled.count(kp) != 0);
    if (e.kind == EdgeUpdate::Kind::kInsert) {
      if (present) {
        return Status::FailedPrecondition(StrFormat(
            "update %zu: edge (%u,%u) already present", i, e.u, e.v));
      }
    } else if (!present) {
      return Status::NotFound(
          StrFormat("update %zu: edge (%u,%u) not present", i, e.u, e.v));
    }
    if (toggled.count(kp) != 0) {
      toggled.erase(kp);
    } else {
      toggled.insert(kp);
    }
  }
  // The surviving toggles are the batch's net structural effect; order
  // between distinct edges is immaterial.
  for (const auto& [u, v] : toggled) {
    if (has_edge(u, v)) {
      net_deletes->push_back(EdgeUpdate::Remove(u, v));
    } else {
      net_inserts->push_back(EdgeUpdate::Insert(u, v));
    }
  }
  return Status::OK();
}

Status IncrementalCoreEngine::Attach() {
  const VertexId n = NumVertices();
  device_ = std::make_unique<sim::Device>(device_options_);
  state_ = std::make_unique<DeviceState>();
  DeviceState& st = *state_;

  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + adjacency_[v].size();
  }
  std::vector<VertexId> neighbors;
  neighbors.reserve(offsets[n]);
  for (VertexId v = 0; v < n; ++v) {
    neighbors.insert(neighbors.end(), adjacency_[v].begin(),
                     adjacency_[v].end());
  }
  st.base_dir_edges = neighbors.size();
  const uint64_t ov_capacity = std::max<uint64_t>(
      1024, static_cast<uint64_t>(options_.compact_threshold *
                                  static_cast<double>(st.base_dir_edges)) +
                64);
  const uint64_t act_capacity = 4 * static_cast<uint64_t>(n) + 256;

  sim::Device& dev = *device_;
  KCORE_ASSIGN_OR_RETURN(
      st.offsets, dev.AllocUninit<EdgeIndex>(offsets.size(), "inc_offsets"));
  KCORE_ASSIGN_OR_RETURN(
      st.base_nbrs, dev.AllocUninit<VertexId>(
                        std::max<size_t>(1, neighbors.size()), "inc_nbrs"));
  KCORE_ASSIGN_OR_RETURN(
      st.core, dev.AllocUninit<uint32_t>(std::max<VertexId>(1, n), "inc_core"));
  KCORE_ASSIGN_OR_RETURN(st.ov_dst,
                         dev.AllocUninit<VertexId>(ov_capacity, "inc_ov_dst"));
  KCORE_ASSIGN_OR_RETURN(st.ov_next,
                         dev.AllocUninit<uint32_t>(ov_capacity, "inc_ov_next"));
  KCORE_ASSIGN_OR_RETURN(
      st.ov_head,
      dev.AllocUninit<uint32_t>(std::max<VertexId>(1, n), "inc_ov_head"));
  KCORE_ASSIGN_OR_RETURN(
      st.touched,
      dev.AllocUninit<VertexId>(std::max<VertexId>(1, n), "inc_touched"));
  KCORE_ASSIGN_OR_RETURN(st.touched_count,
                         dev.Alloc<uint64_t>(1, "inc_touched_count"));
  KCORE_ASSIGN_OR_RETURN(
      st.batch_stamp,
      dev.Alloc<uint64_t>(std::max<VertexId>(1, n), "inc_batch_stamp"));
  KCORE_ASSIGN_OR_RETURN(st.act,
                         dev.AllocUninit<VertexId>(act_capacity, "inc_act"));
  KCORE_ASSIGN_OR_RETURN(st.act_count, dev.Alloc<uint64_t>(1, "inc_act_count"));
  KCORE_ASSIGN_OR_RETURN(
      st.wave_stamp,
      dev.Alloc<uint64_t>(std::max<VertexId>(1, n), "inc_wave_stamp"));
  KCORE_ASSIGN_OR_RETURN(st.overflow, dev.Alloc<uint32_t>(1, "inc_overflow"));
  KCORE_ASSIGN_OR_RETURN(st.invalid, dev.Alloc<uint32_t>(1, "inc_invalid"));
  KCORE_ASSIGN_OR_RETURN(
      st.gather,
      dev.AllocUninit<uint32_t>(std::max<VertexId>(1, n), "inc_gather"));

  KCORE_RETURN_IF_ERROR(
      st.offsets.CopyFromHost(std::span<const EdgeIndex>(offsets)));
  if (!neighbors.empty()) {
    KCORE_RETURN_IF_ERROR(
        st.base_nbrs.CopyFromHost(std::span<const VertexId>(neighbors)));
  }
  if (n > 0) {
    KCORE_RETURN_IF_ERROR(
        st.core.CopyFromHost(std::span<const uint32_t>(core_)));
    const std::vector<uint32_t> nil_heads(n, kNilLink);
    KCORE_RETURN_IF_ERROR(
        st.ov_head.CopyFromHost(std::span<const uint32_t>(nil_heads)));
  }
  // core[] is the one array the epoch checkpoint can validate and roll
  // back; topology and bookkeeping stay modeled as ECC-protected.
  dev.MarkCorruptible(st.core, "inc_core");

  st.ctx.offsets = st.offsets.data();
  st.ctx.base_nbrs = st.base_nbrs.data();
  st.ctx.core = st.core.data();
  st.ctx.ov_dst = st.ov_dst.data();
  st.ctx.ov_next = st.ov_next.data();
  st.ctx.ov_head = st.ov_head.data();
  st.ctx.ov_capacity = ov_capacity;
  st.ctx.touched = st.touched.data();
  st.ctx.touched_count = st.touched_count.data();
  st.ctx.batch_stamp = st.batch_stamp.data();
  st.ctx.act = st.act.data();
  st.ctx.act_count = st.act_count.data();
  st.ctx.wave_stamp = st.wave_stamp.data();
  st.ctx.act_capacity = act_capacity;
  st.ctx.overflow = st.overflow.data();
  st.ctx.invalid = st.invalid.data();
  st.ctx.gather = st.gather.data();
  st.ctx.num_vertices = n;

  needs_reattach_ = false;
  return Status::OK();
}

namespace {

/// Host-side escape signal: not a failure — the affected region outgrew the
/// localized pass and the batch must finish as a full re-peel.
bool IsEscapeSignal(const Status& st) {
  return st.IsCapacityExceeded() &&
         st.message().rfind("affected region", 0) == 0;
}

}  // namespace

Status IncrementalCoreEngine::RunGpuBatch(
    std::span<const EdgeUpdate> net_inserts,
    std::span<const EdgeUpdate> net_deletes, UpdateResult* result) {
  DeviceState& st = *state_;
  sim::Device& dev = *device_;
  IncCtx& ctx = st.ctx;
  const VertexId n = NumVertices();
  sim::SimProfiler* const prof = dev.profiler();
  Metrics& m = result->metrics;

  const bool resilient = dev.fault_injection_enabled();
  const auto with_retry = [&](auto&& op) -> Status {
    Status s = op();
    if (!resilient) return s;
    for (uint32_t attempt = 0;
         s.IsUnavailable() && attempt < options_.max_op_retries; ++attempt) {
      ++m.retries;
      s = op();
    }
    return s;
  };

  double phase_mark = dev.modeled_ms();
  const auto charge = [&](double& phase_ms) {
    const double now = dev.modeled_ms();
    phase_ms += now - phase_mark;
    phase_mark = now;
  };

  // Reset the batch's device accumulators.
  const uint64_t zero64 = 0;
  const uint32_t zero32 = 0;
  KCORE_RETURN_IF_ERROR(
      with_retry([&] { return st.act_count.CopyFromHost({&zero64, 1}); }));
  KCORE_RETURN_IF_ERROR(
      with_retry([&] { return st.touched_count.CopyFromHost({&zero64, 1}); }));
  KCORE_RETURN_IF_ERROR(
      with_retry([&] { return st.overflow.CopyFromHost({&zero32, 1}); }));
  KCORE_RETURN_IF_ERROR(
      with_retry([&] { return st.invalid.CopyFromHost({&zero32, 1}); }));

  const uint64_t batch_tag = ++st.stamp_counter;
  const uint64_t escape_limit = std::max<uint64_t>(
      1, static_cast<uint64_t>(options_.full_repeel_fraction *
                               static_cast<double>(n)));

  // Running coreness mirror for this attempt: K of each insert must see the
  // batch's earlier phases. Synced from the device after every phase via
  // the gather kernel over the affected prefix.
  std::vector<uint32_t> cur = core_;

  const auto ensure_stage = [&](uint64_t needed) -> Status {
    if (needed <= st.stage_capacity) return Status::OK();
    const uint64_t cap = std::max<uint64_t>(256, needed * 2);
    KCORE_ASSIGN_OR_RETURN(st.stage_u,
                           dev.AllocUninit<VertexId>(cap, "inc_stage_u"));
    KCORE_ASSIGN_OR_RETURN(st.stage_v,
                           dev.AllocUninit<VertexId>(cap, "inc_stage_v"));
    st.stage_capacity = cap;
    ctx.stage_u = st.stage_u.data();
    ctx.stage_v = st.stage_v.data();
    return Status::OK();
  };

  const auto launch = [&](const char* label, auto&& kernel) -> Status {
    return with_retry([&] {
      return dev.Launch(options_.num_blocks, options_.block_dim, label,
                        kernel);
    });
  };

  const auto read_act_count = [&](uint64_t* out) -> Status {
    return with_retry([&] { return st.act_count.CopyToHost({out, 1}); });
  };
  const auto read_touched_count = [&](uint64_t* out) -> Status {
    return with_retry([&] { return st.touched_count.CopyToHost({out, 1}); });
  };

  // Sticky-flag checks after a wave: overflow escalates to the full-repeel
  // escape; invalid means the device structure diverged (corruption).
  const auto check_flags = [&]() -> Status {
    uint32_t overflow = 0;
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return st.overflow.CopyToHost({&overflow, 1}); }));
    if (overflow != 0) {
      return Status::CapacityExceeded("affected region overflowed worklist");
    }
    uint32_t invalid = 0;
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return st.invalid.CopyToHost({&invalid, 1}); }));
    if (invalid != 0) {
      return Status::Corruption("device graph structure diverged from host");
    }
    uint64_t touched = 0;
    KCORE_RETURN_IF_ERROR(read_touched_count(&touched));
    result->affected = touched;
    if (touched > escape_limit) {
      return Status::CapacityExceeded(StrFormat(
          "affected region %llu exceeds %.2f * V",
          static_cast<unsigned long long>(touched),
          options_.full_repeel_fraction));
    }
    return Status::OK();
  };

  const auto boundary_check = [&](const char* where) -> Status {
    if (options_.cancel != nullptr) {
      if (Status live = options_.cancel->Check(where); !live.ok()) {
        if (prof != nullptr) {
          prof->Mark(StrFormat("%s epoch=%llu",
                               live.IsCancelled() ? "cancelled"
                                                  : "deadline_exceeded",
                               static_cast<unsigned long long>(epoch_ + 1)));
        }
        return live;
      }
    }
    return check_flags();
  };

  // Syncs `cur` (and the host copy of the affected list) with the device
  // after a phase: gather over the whole affected prefix, prefix-copy both.
  // Values of ALREADY-touched vertices can change in any later phase (a
  // later insert's subcore may sit entirely inside the touched set), so the
  // whole affected prefix is re-gathered every time — never skipped.
  std::vector<VertexId> touched_host;
  const auto sync_cur = [&]() -> Status {
    uint64_t tc = 0;
    KCORE_RETURN_IF_ERROR(read_touched_count(&tc));
    if (tc == 0) return Status::OK();
    KCORE_RETURN_IF_ERROR(launch("inc_gather", [&](auto& block) {
      GatherKernel(ctx, tc, block);
    }));
    touched_host.resize(tc);
    KCORE_RETURN_IF_ERROR(with_retry([&] {
      return st.touched.CopyToHost(std::span<VertexId>(touched_host));
    }));
    std::vector<uint32_t> values(tc);
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return st.gather.CopyToHost(std::span<uint32_t>(values)); }));
    for (uint64_t i = 0; i < tc; ++i) cur[touched_host[i]] = values[i];
    return Status::OK();
  };

  // Runs localized re-peel waves until the worklist stops growing; the
  // initial window [win_start, win_end) must already be claimed+appended.
  const auto refine_to_fixpoint = [&](uint64_t win_start,
                                      uint64_t win_end) -> Status {
    while (win_end > win_start) {
      KCORE_RETURN_IF_ERROR(boundary_check("incremental re-peel wave"));
      const uint64_t push_tag = ++st.stamp_counter;
      KCORE_RETURN_IF_ERROR(launch("inc_refine", [&](auto& block) {
        RefineWaveKernel(ctx, win_start, win_end, batch_tag, push_tag, block);
      }));
      ++result->refine_waves;
      ++m.rounds;
      win_start = win_end;
      KCORE_RETURN_IF_ERROR(read_act_count(&win_end));
      // A worklist overflow drops appends; treat the wave as unreliable and
      // let check_flags escalate before the next wave reads the window.
      win_end = std::min(win_end, ctx.act_capacity);
    }
    charge(m.loop_ms);
    return Status::OK();
  };

  uint64_t act_end = 0;  // host mirror of the worklist tail

  // ---- Phase D: net deletes, one batched localized refine ---------------
  // Structure first (tombstones), then refine seeded with every endpoint:
  // deletion only lowers coreness, so the committed values stay valid upper
  // bounds for the whole delete set at once (cpu/dynamic_core.h RemoveEdge,
  // batched).
  if (!net_deletes.empty()) {
    KCORE_RETURN_IF_ERROR(boundary_check("incremental delete phase"));
    const uint64_t n_dir = 2 * net_deletes.size();
    KCORE_RETURN_IF_ERROR(ensure_stage(n_dir));
    std::vector<VertexId> su;
    std::vector<VertexId> sv;
    su.reserve(n_dir);
    sv.reserve(n_dir);
    for (const EdgeUpdate& e : net_deletes) {
      su.push_back(e.u);
      sv.push_back(e.v);
      su.push_back(e.v);
      sv.push_back(e.u);
    }
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return st.stage_u.CopyFromHost(std::span<const VertexId>(su)); }));
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return st.stage_v.CopyFromHost(std::span<const VertexId>(sv)); }));
    KCORE_RETURN_IF_ERROR(launch("inc_tombstone", [&](auto& block) {
      TombstoneKernel(ctx, n_dir, block);
    }));
    st.tombstones += n_dir;

    // Seed the refine with the (unique) delete endpoints.
    std::vector<VertexId> seeds = su;
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    KCORE_RETURN_IF_ERROR(with_retry([&] {
      return st.stage_u.CopyFromHost(std::span<const VertexId>(seeds));
    }));
    const uint64_t wave_tag = ++st.stamp_counter;
    KCORE_RETURN_IF_ERROR(launch("inc_seed", [&](auto& block) {
      SeedKernel(ctx, seeds.size(), batch_tag, wave_tag, block);
    }));
    const uint64_t win_start = act_end;
    KCORE_RETURN_IF_ERROR(read_act_count(&act_end));
    charge(m.scan_ms);
    KCORE_RETURN_IF_ERROR(refine_to_fixpoint(win_start, act_end));
    KCORE_RETURN_IF_ERROR(read_act_count(&act_end));
    KCORE_RETURN_IF_ERROR(boundary_check("incremental delete fixpoint"));
    KCORE_RETURN_IF_ERROR(sync_cur());
    charge(m.compact_ms);
  }

  // ---- Phase I: net inserts, batched multi-source lift+refine rounds ----
  // Structure first: every directed overlay pair lands in ONE append launch,
  // mirroring the delete phase's joint tombstone pass. Value repair then
  // runs in rounds. A round seeds every insert endpoint sitting at its
  // edge's K = min level under the current values, grows all the
  // equal-coreness components in one joint BFS (the expansion compares
  // against the frontier vertex's own core, so components at different K
  // levels grow side by side without merging), lifts the claimed set by
  // one, and refines to the h-index fixpoint — the device analogue of
  // cpu/dynamic_core.h InsertEdge applied to every insert at once.
  //
  // One round is exact when the inserts' subcores interact at most
  // additively; chained effects (a lift that merges two components, or a
  // vertex that must rise more than once) are caught by re-running the
  // round on the updated values until nothing changes. Soundness: a
  // sustained value is a feasible h-index witness, so estimates never
  // exceed the true coreness of the updated graph at a fixpoint; each
  // round starts from a feasible assignment, so values are nondecreasing
  // across rounds and bounded by degree — the loop terminates with every
  // deficiency repaired (any remaining rise is reachable from some
  // insert's K-level subcore under the current values, which is exactly
  // what the next round seeds).
  if (!net_inserts.empty()) {
    KCORE_RETURN_IF_ERROR(boundary_check("incremental insert phase"));
    const uint64_t n_dir = 2 * net_inserts.size();
    if (st.ov_used + n_dir > ctx.ov_capacity) {
      return Status::CapacityExceeded("affected region overflowed worklist");
    }
    KCORE_RETURN_IF_ERROR(ensure_stage(n_dir));
    std::vector<VertexId> su;
    std::vector<VertexId> sv;
    su.reserve(n_dir);
    sv.reserve(n_dir);
    for (const EdgeUpdate& e : net_inserts) {
      su.push_back(e.u);
      sv.push_back(e.v);
      su.push_back(e.v);
      sv.push_back(e.u);
    }
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return st.stage_u.CopyFromHost(std::span<const VertexId>(su)); }));
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return st.stage_v.CopyFromHost(std::span<const VertexId>(sv)); }));
    KCORE_RETURN_IF_ERROR(launch("inc_ov_append", [&](auto& block) {
      OverlayAppendKernel(ctx, n_dir, st.ov_used, block);
    }));
    st.ov_used += n_dir;

    // Each insert raises any one vertex by at most one, so a fault-free
    // batch converges within |inserts|+1 rounds; exceeding that means the
    // monotone-rise invariant broke (a bitflip in core[]).
    const uint64_t max_rounds = net_inserts.size() + 1;
    std::vector<uint32_t> prev_round;
    for (uint64_t round = 0;; ++round) {
      if (round >= max_rounds) {
        return Status::Corruption(
            "insert rounds failed to converge (bitflip?)");
      }
      KCORE_RETURN_IF_ERROR(boundary_check("incremental insert round"));
      // Recycle the worklist: entries from the delete phase and earlier
      // rounds are dead (every lift/refine window has been consumed), and
      // without the reset a large batch's rounds overflow the act buffer
      // and needlessly escalate to the full re-peel escape.
      KCORE_RETURN_IF_ERROR(
          with_retry([&] { return st.act_count.CopyFromHost({&zero64, 1}); }));
      act_end = 0;
      // Candidate seeds: endpoints at their edge's K level under the
      // CURRENT values. Later rounds see the previous round's rises, which
      // is what re-fires an insert whose component merged with a risen one.
      std::vector<VertexId> seeds;
      for (const EdgeUpdate& e : net_inserts) {
        const uint32_t k = std::min(cur[e.u], cur[e.v]);
        if (cur[e.u] == k) seeds.push_back(e.u);
        if (cur[e.v] == k && e.v != e.u) seeds.push_back(e.v);
      }
      std::sort(seeds.begin(), seeds.end());
      seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
      KCORE_RETURN_IF_ERROR(ensure_stage(seeds.size()));
      KCORE_RETURN_IF_ERROR(with_retry([&] {
        return st.stage_u.CopyFromHost(std::span<const VertexId>(seeds));
      }));
      // One tag for the seed and every expansion wave: the walk needs
      // visited-set semantics (a vertex joins the candidate set once per
      // round), unlike the re-peel worklist where re-claiming across waves
      // is the point.
      const uint64_t wave_tag = ++st.stamp_counter;
      KCORE_RETURN_IF_ERROR(launch("inc_seed", [&](auto& block) {
        SeedKernel(ctx, seeds.size(), batch_tag, wave_tag, block);
      }));
      const uint64_t cand_start = act_end;
      uint64_t win_start = act_end;
      KCORE_RETURN_IF_ERROR(read_act_count(&act_end));
      while (act_end > win_start) {
        KCORE_RETURN_IF_ERROR(boundary_check("incremental frontier wave"));
        const uint64_t ws = win_start;
        const uint64_t we = act_end;
        KCORE_RETURN_IF_ERROR(launch("inc_expand", [&](auto& block) {
          ExpandFrontierKernel(ctx, ws, we, batch_tag, wave_tag, block);
        }));
        win_start = act_end;
        KCORE_RETURN_IF_ERROR(read_act_count(&act_end));
        act_end = std::min(act_end, ctx.act_capacity);
      }
      // Lift every candidate component to its K+1 upper bound, refine down.
      KCORE_RETURN_IF_ERROR(boundary_check("incremental lift"));
      KCORE_RETURN_IF_ERROR(launch("inc_lift", [&](auto& block) {
        LiftKernel(ctx, cand_start, act_end, block);
      }));
      charge(m.scan_ms);
      KCORE_RETURN_IF_ERROR(refine_to_fixpoint(cand_start, act_end));
      KCORE_RETURN_IF_ERROR(read_act_count(&act_end));
      KCORE_RETURN_IF_ERROR(boundary_check("incremental insert fixpoint"));
      prev_round = cur;
      KCORE_RETURN_IF_ERROR(sync_cur());
      charge(m.compact_ms);
      if (cur == prev_round) break;
    }
  }

  // ---- Post-batch validation (fault plans only) -------------------------
  if (resilient) {
    KCORE_RETURN_IF_ERROR(launch("inc_validate", [&](auto& block) {
      ValidateCoreKernel(ctx, block);
    }));
    uint32_t invalid = 0;
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return st.invalid.CopyToHost({&invalid, 1}); }));
    if (invalid != 0) {
      return Status::Corruption(
          "coreness failed the locality fixpoint check (bitflip?)");
    }
    ++m.checkpoints_taken;
    if (prof != nullptr) {
      prof->Mark(StrFormat("checkpoint epoch=%llu",
                           static_cast<unsigned long long>(epoch_ + 1)));
    }
    charge(m.compact_ms);
  }

  // Incident-edge mass of the affected region, from the last gather's
  // touched prefix and the committed-epoch host degrees (within one batch
  // of exact — good enough for the "touched x% of edges" locality report).
  result->affected_edges = 0;
  for (const VertexId v : touched_host) {
    result->affected_edges += adjacency_[v].size();
  }
  result->core = std::move(cur);
  result->overlay_edges = st.ov_used;
  return Status::OK();
}

void IncrementalCoreEngine::Commit(std::span<const EdgeUpdate> net_inserts,
                                   std::span<const EdgeUpdate> net_deletes,
                                   std::vector<uint32_t> new_core,
                                   UpdateResult* result) {
  const auto insert_sorted = [](std::vector<VertexId>& list, VertexId x) {
    list.insert(std::upper_bound(list.begin(), list.end(), x), x);
  };
  const auto erase_sorted = [](std::vector<VertexId>& list, VertexId x) {
    list.erase(std::lower_bound(list.begin(), list.end(), x));
  };
  for (const EdgeUpdate& e : net_deletes) {
    erase_sorted(adjacency_[e.u], e.v);
    erase_sorted(adjacency_[e.v], e.u);
    --num_edges_;
  }
  for (const EdgeUpdate& e : net_inserts) {
    insert_sorted(adjacency_[e.u], e.v);
    insert_sorted(adjacency_[e.v], e.u);
    ++num_edges_;
  }
  result->changed.clear();
  for (VertexId v = 0; v < NumVertices(); ++v) {
    if (new_core[v] != core_[v]) result->changed.push_back(v);
  }
  core_ = std::move(new_core);
  ++epoch_;
  result->epoch = epoch_;
  result->core = core_;
}

StatusOr<UpdateResult> IncrementalCoreEngine::ApplyUpdates(
    std::span<const EdgeUpdate> batch) {
  WallTimer timer;
  std::vector<EdgeUpdate> net_inserts;
  std::vector<EdgeUpdate> net_deletes;
  KCORE_RETURN_IF_ERROR(ValidateAndSplit(batch, &net_inserts, &net_deletes));
  if (options_.cancel != nullptr) {
    KCORE_RETURN_IF_ERROR(options_.cancel->Check("incremental batch entry"));
  }

  UpdateResult result;
  Status st = Status::OK();
  for (uint32_t attempt = 0; attempt <= options_.max_batch_retries;
       ++attempt) {
    if (needs_reattach_ || device_ == nullptr) {
      st = Attach();
      if (!st.ok()) break;
    }
    KCORE_RETURN_IF_ERROR(
        ValidateIncrementalOptions(options_, *device_));
    device_->ResetClock();
    sim::SimProfiler* const prof = device_->profiler();
    if (prof != nullptr) {
      prof->PushRange(StrFormat(
          "update_epoch_%llu", static_cast<unsigned long long>(epoch_ + 1)));
    }
    UpdateResult attempt_result;
    attempt_result.metrics.retries = result.metrics.retries;
    attempt_result.metrics.levels_reexecuted = result.metrics.levels_reexecuted;
    st = RunGpuBatch(net_inserts, net_deletes, &attempt_result);

    if (IsEscapeSignal(st)) {
      // Correctness escape hatch: the affected region outgrew the localized
      // pass — finish with a full from-scratch peel of the updated graph on
      // the same device. The incremental device image is stale afterwards.
      if (prof != nullptr) {
        prof->Mark(StrFormat("full_repeel epoch=%llu",
                             static_cast<unsigned long long>(epoch_ + 1)));
      }
      const double banked_ms = device_->modeled_ms();
      const PerfCounters banked = device_->totals();
      CsrGraph updated = [&] {
        std::vector<std::vector<VertexId>> adj = adjacency_;
        for (const EdgeUpdate& e : net_deletes) {
          adj[e.u].erase(std::lower_bound(adj[e.u].begin(), adj[e.u].end(),
                                          e.v));
          adj[e.v].erase(std::lower_bound(adj[e.v].begin(), adj[e.v].end(),
                                          e.u));
        }
        for (const EdgeUpdate& e : net_inserts) {
          adj[e.u].insert(
              std::upper_bound(adj[e.u].begin(), adj[e.u].end(), e.v), e.v);
          adj[e.v].insert(
              std::upper_bound(adj[e.v].begin(), adj[e.v].end(), e.u), e.u);
        }
        std::vector<EdgeIndex> offsets(adj.size() + 1, 0);
        for (size_t v = 0; v < adj.size(); ++v) {
          offsets[v + 1] = offsets[v] + adj[v].size();
        }
        std::vector<VertexId> nbrs;
        nbrs.reserve(offsets.back());
        for (const auto& list : adj) {
          nbrs.insert(nbrs.end(), list.begin(), list.end());
        }
        return CsrGraph(std::move(offsets), std::move(nbrs));
      }();
      GpuPeelOptions repeel = options_.repeel;
      repeel.cancel = options_.cancel;
      GpuPeelDecomposer decomposer(device_.get(), repeel);
      auto repeeled = decomposer.Decompose(updated);  // resets the clock
      needs_reattach_ = true;  // device image no longer matches committed
      if (prof != nullptr) prof->PopRange();
      if (!repeeled.ok()) {
        st = repeeled.status();
      } else {
        attempt_result.full_repeel = true;
        attempt_result.affected = NumVertices();
        attempt_result.affected_edges = updated.NumDirectedEdges();
        attempt_result.degraded = repeeled->metrics.degraded;
        attempt_result.metrics = repeeled->metrics;
        attempt_result.metrics.modeled_ms += banked_ms;
        attempt_result.metrics.counters += banked;
        result = std::move(attempt_result);
        Commit(net_inserts, net_deletes, std::move(repeeled->core), &result);
        result.metrics.wall_ms = timer.ElapsedMillis();
        return result;
      }
    } else if (st.ok()) {
      if (prof != nullptr) prof->PopRange();
      // Simcheck verdict gates the commit: a contained violation means the
      // batch's device results are untrustworthy, so nothing is applied.
      st = device_->CheckStatus();
      if (st.ok()) {
        attempt_result.metrics.modeled_ms = device_->modeled_ms();
        attempt_result.metrics.peak_device_bytes = device_->peak_bytes();
        attempt_result.metrics.counters = device_->totals();
        result = std::move(attempt_result);
        std::vector<uint32_t> new_core = std::move(result.core);
        Commit(net_inserts, net_deletes, std::move(new_core), &result);
        // A failed merge only stales the device image (the commit already
        // happened); the next batch re-attaches from the host mirror.
        if (Status merge = MaybeMergeOverlay(&result); !merge.ok()) {
          needs_reattach_ = true;
        }
        result.metrics.wall_ms = timer.ElapsedMillis();
        return result;
      }
    } else {
      if (device_ != nullptr && device_->profiler() != nullptr) {
        device_->profiler()->PopRange();
      }
    }

    result.metrics.retries = attempt_result.metrics.retries;
    result.metrics.levels_reexecuted = attempt_result.metrics.levels_reexecuted;
    if (st.IsCorruption() && attempt < options_.max_batch_retries) {
      // Injected bitflip caught by the post-batch fixpoint check (or a
      // structural divergence): roll back to the committed epoch — the
      // checkpoint is the last epoch's coreness array — by re-attaching,
      // and re-run the whole batch.
      ++result.metrics.levels_reexecuted;
      needs_reattach_ = true;
      continue;
    }
    break;
  }

  // Failure: the committed epoch is untouched. Cancellation surfaces as-is;
  // device-level failures degrade to the exact CPU path when allowed.
  needs_reattach_ = true;
  if (st.IsCancelled() || st.IsDeadlineExceeded() || st.IsInvalidArgument()) {
    return st;
  }
  if (!options_.cpu_fallback) return st;
  const bool device_lost = st.IsDeviceLost();
  KCORE_ASSIGN_OR_RETURN(UpdateResult degraded, ApplyUpdatesCpu(batch));
  degraded.metrics.retries += result.metrics.retries;
  degraded.metrics.levels_reexecuted += result.metrics.levels_reexecuted;
  if (device_lost) ++degraded.metrics.devices_lost;
  degraded.metrics.wall_ms = timer.ElapsedMillis();
  return degraded;
}

Status IncrementalCoreEngine::MaybeMergeOverlay(UpdateResult* result) {
  DeviceState& st = *state_;
  if (st.ov_used + st.tombstones <=
      static_cast<uint64_t>(options_.compact_threshold *
                            static_cast<double>(st.base_dir_edges))) {
    return Status::OK();
  }
  sim::Device& dev = *device_;
  sim::SimProfiler* const prof = dev.profiler();
  sim::ProfRange merge_range(prof, "overlay_merge");
  const double pre_ms = dev.modeled_ms();

  const VertexId n = NumVertices();
  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + adjacency_[v].size();
  }
  const uint64_t new_dir = offsets[n];
  sim::DeviceArray<EdgeIndex> new_offsets;
  sim::DeviceArray<VertexId> new_nbrs;
  KCORE_ASSIGN_OR_RETURN(
      new_offsets, dev.AllocUninit<EdgeIndex>(offsets.size(), "inc_offsets"));
  KCORE_ASSIGN_OR_RETURN(
      new_nbrs,
      dev.AllocUninit<VertexId>(std::max<uint64_t>(1, new_dir), "inc_nbrs"));
  KCORE_RETURN_IF_ERROR(
      new_offsets.CopyFromHost(std::span<const EdgeIndex>(offsets)));
  KCORE_RETURN_IF_ERROR(
      dev.Launch(options_.num_blocks, options_.block_dim, "inc_merge",
                 [&, no = new_offsets.data(), nn = new_nbrs.data()](
                     auto& block) {
                   MergeCompactKernel(st.ctx, no, nn, block);
                 }));
  uint32_t invalid = 0;
  KCORE_RETURN_IF_ERROR(st.invalid.CopyToHost({&invalid, 1}));
  if (invalid != 0) {
    // The merged image is unreliable; rebuild from the committed mirror on
    // the next batch. The batch itself is already committed host-side.
    needs_reattach_ = true;
    return Status::OK();
  }
  st.offsets = std::move(new_offsets);
  st.base_nbrs = std::move(new_nbrs);
  st.ctx.offsets = st.offsets.data();
  st.ctx.base_nbrs = st.base_nbrs.data();
  st.base_dir_edges = new_dir;
  st.ov_used = 0;
  st.tombstones = 0;
  if (n > 0) {
    const std::vector<uint32_t> nil_heads(n, kNilLink);
    KCORE_RETURN_IF_ERROR(
        st.ov_head.CopyFromHost(std::span<const uint32_t>(nil_heads)));
  }
  result->compacted = true;
  result->overlay_edges = 0;
  ++result->metrics.counters.compactions;
  result->metrics.compact_ms += dev.modeled_ms() - pre_ms;
  result->metrics.modeled_ms = dev.modeled_ms();
  return Status::OK();
}

StatusOr<UpdateResult> IncrementalCoreEngine::ApplyUpdatesCpu(
    std::span<const EdgeUpdate> batch) {
  WallTimer timer;
  std::vector<EdgeUpdate> net_inserts;
  std::vector<EdgeUpdate> net_deletes;
  KCORE_RETURN_IF_ERROR(ValidateAndSplit(batch, &net_inserts, &net_deletes));
  if (options_.cancel != nullptr) {
    KCORE_RETURN_IF_ERROR(options_.cancel->Check("incremental cpu batch"));
  }
  // The committed epoch seeds the exact host-side maintenance; the device
  // image (if any) goes stale and re-attaches on the next GPU batch.
  DynamicKCore dynamic(CurrentGraph(), core_);
  KCORE_ASSIGN_OR_RETURN(std::vector<VertexId> changed,
                         dynamic.ApplyBatch(batch));
  UpdateResult result;
  result.degraded = true;
  result.affected = dynamic.last_update_evaluations();
  Commit(net_inserts, net_deletes, dynamic.core(), &result);
  result.changed = std::move(changed);
  needs_reattach_ = true;
  result.metrics.degraded = true;
  result.metrics.wall_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace kcore
