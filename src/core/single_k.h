#ifndef KCORE_CORE_SINGLE_K_H_
#define KCORE_CORE_SINGLE_K_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "core/gpu_peel_options.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "perf/decompose_result.h"

namespace kcore {

/// Which algorithm answers a single-k query.
enum class SingleKEngine {
  /// Pick per query: CPU for small graphs (kernel launch overhead dominates
  /// below SingleKOptions::auto_gpu_min_edges), GPU otherwise.
  kAuto,
  /// Xiang's sort-free linear CPU algorithm (cpu/xiang.h).
  kCpu,
  /// GpuSingleKCore: one scan+loop kernel pair on the simulated device.
  kGpu,
};

/// Short name used by CLI output and bench labels ("auto", "cpu", "gpu").
const char* SingleKEngineName(SingleKEngine engine);

/// Configuration of the single-k query router.
struct SingleKOptions {
  SingleKEngine engine = SingleKEngine::kAuto;
  /// GPU path configuration (geometry, variants, renumber, resilience).
  GpuPeelOptions gpu;
  /// Device for the GPU path. Owned by the caller; nullptr = the router
  /// creates a default-options device for the query.
  sim::Device* device = nullptr;
  /// kAuto routes to the GPU at or above this edge count — below it the
  /// two fixed-cost kernel launches outweigh the linear CPU pass.
  uint64_t auto_gpu_min_edges = uint64_t{1} << 14;
};

/// Routes a "give me the k-core" query to the right engine (ROADMAP: engines
/// route per-k queries here instead of running a full decomposition and
/// filtering). Fails with InvalidArgument for k < 1; GPU-path failures
/// surface as in GpuSingleKCore. The CPU path honors gpu.renumber trivially
/// (membership is label-invariant, so it never relabels).
[[nodiscard]] StatusOr<SingleKCoreResult> SingleKCore(const CsrGraph& graph, uint32_t k,
                                        const SingleKOptions& options = {});

}  // namespace kcore

#endif  // KCORE_CORE_SINGLE_K_H_
