#include "core/resilience.h"

#include "common/strings.h"

namespace kcore {

bool ValidatePeelRound(const CsrGraph& graph,
                       const std::vector<uint32_t>& prev,
                       const std::vector<uint32_t>& deg, uint32_t k,
                       uint64_t count, std::string* why) {
  const VertexId n = graph.NumVertices();
  uint64_t removed = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (prev[v] < k) {
      if (deg[v] != prev[v]) {
        *why = StrFormat("round k=%u: peeled vertex %u changed (%u -> %u)", k,
                         v, prev[v], deg[v]);
        return false;
      }
    } else {
      if (deg[v] > prev[v]) {
        *why = StrFormat("round k=%u: deg[%u] increased (%u -> %u)", k, v,
                         prev[v], deg[v]);
        return false;
      }
      if (deg[v] < k) {
        *why = StrFormat(
            "round k=%u: vertex %u skipped below the k-shell (deg %u)", k, v,
            deg[v]);
        return false;
      }
    }
    if (deg[v] <= k) ++removed;
  }
  if (removed != count) {
    *why = StrFormat(
        "round k=%u: removed count %llu != %llu vertices with deg <= k", k,
        static_cast<unsigned long long>(count),
        static_cast<unsigned long long>(removed));
    return false;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (prev[v] < k) continue;  // frozen before this round; checked above.
    uint64_t live = 0;
    for (VertexId u : graph.Neighbors(v)) {
      if (deg[u] > k) ++live;
    }
    if (deg[v] > k) {
      if (live != deg[v]) {
        *why = StrFormat(
            "round k=%u: survivor %u has deg %u but %llu live neighbors", k,
            v, deg[v], static_cast<unsigned long long>(live));
        return false;
      }
    } else if (live > k) {
      *why = StrFormat(
          "round k=%u: vertex %u peeled with %llu live neighbors", k, v,
          static_cast<unsigned long long>(live));
      return false;
    }
  }
  return true;
}

}  // namespace kcore
