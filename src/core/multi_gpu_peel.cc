#include "core/multi_gpu_peel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "cusim/atomics.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

/// One worker GPU: owns a contiguous vertex range, its CSR slice resident
/// in its own device memory, and a buffer of outgoing border updates.
struct Worker {
  VertexId begin = 0;
  VertexId end = 0;  // exclusive
  std::unique_ptr<sim::Device> device;
  sim::DeviceArray<EdgeIndex> d_offsets;  // slice offsets, rebased
  sim::DeviceArray<VertexId> d_neighbors;
  sim::DeviceArray<uint32_t> d_deg;       // owned vertices only
  sim::DeviceArray<VertexId> d_buffer;    // local frontier buffer
  /// Outgoing decrement counts for foreign vertices, drained per sub-round.
  std::unordered_map<VertexId, uint32_t> border_updates;
  PerfCounters counters;                  // per-sub-round, merged by master
  /// Per-partition active-vertex compaction state: once built, `active`
  /// holds this worker's still-unpeeled vertices and the scan sweeps it
  /// instead of [begin, end).
  std::vector<VertexId> active;
  bool use_active = false;
  uint64_t local_removed = 0;
};

}  // namespace

StatusOr<DecomposeResult> RunMultiGpuPeel(const CsrGraph& graph,
                                          const MultiGpuOptions& options) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (options.active_compaction && (options.compaction_threshold < 0.0 ||
                                    options.compaction_threshold > 1.0)) {
    return Status::InvalidArgument(
        "compaction_threshold must be a fraction in [0, 1]");
  }
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  const uint32_t num_workers = options.num_workers;
  const VertexId chunk = (n + num_workers - 1) / num_workers;
  DecomposeResult result;
  ModeledClock clock(GpuNativeCostModel());

  auto owner_of = [&](VertexId v) -> uint32_t {
    return chunk == 0 ? 0 : std::min<uint32_t>(v / chunk, num_workers - 1);
  };

  // --- Partition the graph: each worker loads its CSR slice. ---
  std::vector<Worker> workers(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    Worker& worker = workers[w];
    worker.begin = std::min<VertexId>(w * chunk, n);
    worker.end = std::min<VertexId>(worker.begin + chunk, n);
    worker.device = std::make_unique<sim::Device>(options.worker_device);
    const VertexId local_n = worker.end - worker.begin;

    std::vector<EdgeIndex> offsets(static_cast<size_t>(local_n) + 1, 0);
    for (VertexId v = 0; v < local_n; ++v) {
      offsets[v + 1] = offsets[v] + graph.Degree(worker.begin + v);
    }
    std::vector<VertexId> neighbors;
    neighbors.reserve(offsets[local_n]);
    for (VertexId v = 0; v < local_n; ++v) {
      const auto nbrs = graph.Neighbors(worker.begin + v);
      neighbors.insert(neighbors.end(), nbrs.begin(), nbrs.end());
    }
    std::vector<uint32_t> deg(std::max<VertexId>(1, local_n), 0);
    for (VertexId v = 0; v < local_n; ++v) {
      deg[v] = graph.Degree(worker.begin + v);
    }

    // All four arrays are fully overwritten (host copies / buffer appends)
    // before any read — the uninitialized-alloc path skips the zeroing.
    KCORE_ASSIGN_OR_RETURN(worker.d_offsets,
                           worker.device->AllocUninit<EdgeIndex>(
                               offsets.size(), "worker_offsets"));
    KCORE_ASSIGN_OR_RETURN(
        worker.d_neighbors,
        worker.device->AllocUninit<VertexId>(
            std::max<size_t>(1, neighbors.size()), "worker_neighbors"));
    KCORE_ASSIGN_OR_RETURN(worker.d_deg,
                           worker.device->AllocUninit<uint32_t>(deg.size(),
                                                                "worker_deg"));
    KCORE_ASSIGN_OR_RETURN(
        worker.d_buffer,
        worker.device->AllocUninit<VertexId>(std::max<VertexId>(1024, local_n),
                                             "worker_buffer"));
    worker.d_offsets.CopyFromHost(offsets);
    worker.d_neighbors.CopyFromHost(neighbors);
    worker.d_deg.CopyFromHost(deg);
  }

  std::vector<uint8_t> claimed(n, 0);
  std::atomic<uint64_t> removed{0};
  ThreadPool& pool = DefaultThreadPool();

  auto deg_of = [&](VertexId v) -> uint32_t& {
    Worker& worker = workers[owner_of(v)];
    return worker.d_deg.data()[v - worker.begin];
  };

  uint32_t k = 0;
  const uint32_t k_limit = graph.MaxDegree() + 2;
  while (removed.load(std::memory_order_relaxed) < n) {
    // Sub-rounds to a fixpoint: local peeling, then border aggregation.
    while (true) {
      ++result.metrics.iterations;
      std::atomic<uint64_t> removed_this_subround{0};

      // --- Each worker peels its own range (parallel; workers only touch
      // their owned deg entries and private border buffers). ---
      pool.RunLanes(num_workers, [&](uint32_t w) {
        Worker& worker = workers[w];
        PerfCounters& c = worker.counters;
        const EdgeIndex* offsets = worker.d_offsets.data();
        const VertexId* neighbors = worker.d_neighbors.data();
        uint32_t* deg = worker.d_deg.data();
        VertexId* buffer = worker.d_buffer.data();

        // Per-partition compaction: once this worker's survivors drop below
        // the threshold fraction of its current sweep domain, rebuild the
        // dense active list from the unclaimed vertices (claimed[] is
        // owner-private, so this races with nobody).
        const uint64_t local_n = worker.end - worker.begin;
        if (options.active_compaction) {
          const uint64_t remaining = local_n - worker.local_removed;
          const uint64_t sweep_len =
              worker.use_active ? worker.active.size() : local_n;
          if (static_cast<double>(remaining) <
              options.compaction_threshold * static_cast<double>(sweep_len)) {
            std::vector<VertexId> next;
            next.reserve(remaining);
            if (worker.use_active) {
              for (VertexId v : worker.active) {
                ++c.global_reads;
                if (claimed[v] == 0) next.push_back(v);
              }
            } else {
              for (VertexId v = worker.begin; v < worker.end; ++v) {
                ++c.global_reads;
                if (claimed[v] == 0) next.push_back(v);
              }
            }
            c.global_writes += next.size();
            ++c.compactions;
            worker.active = std::move(next);
            worker.use_active = true;
          }
        }

        // Scan the owned range (or the compacted active list) for unclaimed
        // degree-k vertices.
        uint64_t head = 0;
        uint64_t tail = 0;
        auto scan_vertex = [&](VertexId v) {
          ++c.vertices_scanned;
          ++c.global_reads;
          if (claimed[v] == 0 && deg[v - worker.begin] == k) {
            claimed[v] = 1;
            buffer[tail++] = v;
            ++c.buffer_appends;
          }
        };
        if (worker.use_active) {
          c.scan_vertices_skipped += local_n - worker.active.size();
          for (VertexId v : worker.active) scan_vertex(v);
        } else {
          for (VertexId v = worker.begin; v < worker.end; ++v) scan_vertex(v);
        }
        // Local cascade (the worker's loop phase).
        uint64_t processed = 0;
        while (head < tail) {
          const VertexId v = buffer[head++];
          ++processed;
          const VertexId local = v - worker.begin;
          for (EdgeIndex e = offsets[local]; e < offsets[local + 1]; ++e) {
            const VertexId u = neighbors[e];
            ++c.edges_traversed;
            ++c.global_reads;
            if (owner_of(u) == w) {
              uint32_t& du = deg[u - worker.begin];
              if (du > k) {
                --du;
                ++c.global_atomics;
                if (du == k && claimed[u] == 0) {
                  claimed[u] = 1;
                  buffer[tail++] = u;
                  ++c.buffer_appends;
                }
              }
            } else {
              // Border edge: buffer the decrement for the master.
              ++worker.border_updates[u];
              ++c.messages;
            }
          }
        }
        worker.local_removed += tail;
        if (processed != 0) {
          removed_this_subround.fetch_add(processed,
                                          std::memory_order_relaxed);
        }
      });

      // Modeled time: slowest worker gates the sub-round.
      {
        std::vector<PerfCounters> lane_counters;
        lane_counters.reserve(num_workers);
        for (Worker& worker : workers) {
          lane_counters.push_back(worker.counters);
          result.metrics.counters += worker.counters;
          worker.counters = PerfCounters();
        }
        clock.AddParallelPhase(lane_counters);
        // Two kernels per worker sub-round (scan + loop), plus the border
        // exchange (PCIe transfer of the update lists to the master).
        clock.AddOverheadNs(2 * clock.cost().kernel_launch_ns);
        result.metrics.counters.kernel_launches += 2 * num_workers;
      }

      // --- Master: aggregate border updates and apply to owners. ---
      uint64_t border_applied = 0;
      uint64_t border_entries = 0;
      for (Worker& worker : workers) {
        border_entries += worker.border_updates.size();
        for (const auto& [u, count] : worker.border_updates) {
          uint32_t& du = deg_of(u);
          if (du > k) {
            // Clamp at k: decrements past the k-shell boundary are exactly
            // the ones the single-GPU kernel rolls back (Alg. 3 line 24).
            const uint32_t applied = std::min(count, du - k);
            du -= applied;
            border_applied += applied;
          }
        }
        worker.border_updates.clear();
      }
      // Transfer + apply cost at the master.
      clock.AddOverheadNs(clock.cost().kernel_launch_ns +
                          static_cast<double>(border_entries) * 8.0);

      removed.fetch_add(removed_this_subround.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      if (removed_this_subround.load(std::memory_order_relaxed) == 0 &&
          border_applied == 0) {
        break;  // fixpoint for this k
      }
    }
    ++k;
    ++result.metrics.rounds;
    if (k > k_limit) {
      return Status::Internal("multi-GPU peeling failed to converge");
    }
  }

  // Gather core numbers (deg has converged per owner).
  result.core.assign(n, 0);
  for (const Worker& worker : workers) {
    for (VertexId v = worker.begin; v < worker.end; ++v) {
      result.core[v] = worker.d_deg.data()[v - worker.begin];
    }
  }
  uint64_t max_peak = 0;
  for (const Worker& worker : workers) {
    max_peak = std::max(max_peak, worker.device->peak_bytes());
    // The workers peel through raw host pointers (no Launch), so simcheck
    // observes only allocation lifetimes and host copies here — still worth
    // surfacing: a leak or an uninitialized CopyToHost fails the run.
    KCORE_RETURN_IF_ERROR(worker.device->CheckStatus());
  }
  result.metrics.peak_device_bytes = max_peak;
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  return result;
}

}  // namespace kcore
