#include "core/multi_gpu_peel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/resilience.h"
#include "cpu/pkc.h"
#include "graph/renumber.h"
#include "cusim/atomics.h"
#include "perf/cost_model.h"
#include "perf/modeled_clock.h"

namespace kcore {

namespace {

/// One worker GPU: owns a contiguous vertex range, its CSR slice resident
/// in its own device memory, and a buffer of outgoing border updates.
struct Worker {
  VertexId begin = 0;
  VertexId end = 0;  // exclusive
  std::unique_ptr<sim::Device> device;
  sim::DeviceArray<EdgeIndex> d_offsets;  // slice offsets, rebased
  sim::DeviceArray<VertexId> d_neighbors;
  sim::DeviceArray<uint32_t> d_deg;       // owned vertices only
  sim::DeviceArray<VertexId> d_buffer;    // local frontier buffer
  /// Outgoing decrement counts for foreign vertices, drained per sub-round.
  std::unordered_map<VertexId, uint32_t> border_updates;
  PerfCounters counters;                  // per-sub-round, merged by master
  /// Per-partition active-vertex compaction state: once built, `active`
  /// holds this worker's still-unpeeled vertices and the scan sweeps it
  /// instead of [begin, end).
  std::vector<VertexId> active;
  bool use_active = false;
  uint64_t local_removed = 0;
  /// Health: false once the worker's device is permanently lost. Its range
  /// is then resharded onto an adjacent survivor.
  bool alive = true;
};

/// The round-boundary checkpoint shared by every worker: the verified
/// degree snapshot, the claim flags, and the cumulative removed count.
/// Restoring it (plus rebuilding any resharded partitions from it) puts the
/// whole fleet back at the start of round k.
struct RoundCheckpoint {
  std::vector<uint32_t> deg;
  std::vector<uint8_t> claimed;
  uint64_t removed = 0;
};

}  // namespace

StatusOr<DecomposeResult> RunMultiGpuPeel(const CsrGraph& graph,
                                          const MultiGpuOptions& options) {
  if (options.num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (options.renumber) {
    // Degree-ordered renumbering wrap (see GpuPeelOptions::renumber): the
    // fleet peels the relabeled CSR — whose contiguous shards are
    // degree-homogeneous — and the core numbers are permuted back at the
    // end. Remap cost lands in wall_ms only.
    WallTimer total;
    const Renumbering rn = DegreeOrderRenumber(graph);
    MultiGpuOptions inner_options = options;
    inner_options.renumber = false;
    KCORE_ASSIGN_OR_RETURN(DecomposeResult result,
                           RunMultiGpuPeel(rn.graph, inner_options));
    result.core = rn.ToOriginal(result.core);
    result.metrics.wall_ms = total.ElapsedMillis();
    return result;
  }
  if (options.active_compaction && (options.compaction_threshold < 0.0 ||
                                    options.compaction_threshold > 1.0)) {
    return Status::InvalidArgument(
        "compaction_threshold must be a fraction in [0, 1]");
  }
  if (options.expand_strategy == ExpandStrategy::kAuto &&
      options.block_expand_threshold < 32) {
    return Status::InvalidArgument(
        "block_expand_threshold must be >= 32 (the warp bin starts there)");
  }
  WallTimer timer;
  const VertexId n = graph.NumVertices();
  const uint32_t num_workers = options.num_workers;
  const VertexId chunk = (n + num_workers - 1) / num_workers;
  DecomposeResult result;
  ModeledClock clock(GpuNativeCostModel());

  // simprof: the master assembles the fleet timeline itself because the
  // workers peel through host pointers (no Device::Launch to hook). Worker
  // devices still profile their alloc/copy activity under their own pid;
  // those traces are merged in at the end.
  const bool tracing = options.trace != nullptr;
  Trace trace;
  const auto now_ns = [&] { return clock.ms() * 1e6; };
  if (tracing) {
    trace.SetProcessName(0, "master");
    trace.SetThreadName(0, kTraceTidKernels, "border exchange");
    trace.SetThreadName(0, kTraceTidRanges, "rounds");
  }

  // Sub-round imbalance accumulators: slowest vs mean alive-worker modeled
  // ns per sub-round; the time-weighted ratio is Metrics.loop_imbalance
  // (workers run scan + cascade fused, so this covers the whole sub-round).
  double subround_max_ns = 0.0;
  double subround_mean_ns = 0.0;
  const auto finish_loop_imbalance = [&]() {
    result.metrics.loop_imbalance =
        subround_mean_ns > 0.0 ? subround_max_ns / subround_mean_ns : 0.0;
  };

  // Chunk index -> worker index. Identity at first; resharding after a
  // device loss redirects the dead worker's chunks to its successor (ranges
  // stay contiguous because a range is always merged into an adjacent
  // survivor).
  std::vector<uint32_t> owner_map(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) owner_map[w] = w;
  auto owner_of = [&](VertexId v) -> uint32_t {
    return chunk == 0
               ? 0
               : owner_map[std::min<uint32_t>(v / chunk, num_workers - 1)];
  };

  // --- Create the worker devices (arrays are built below, from the
  // checkpoint, so partition rebuilds after a device loss reuse the same
  // path). ---
  std::vector<Worker> workers(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    sim::DeviceOptions device_options = options.worker_device;
    if (w < options.worker_fault_specs.size() &&
        !options.worker_fault_specs[w].empty()) {
      device_options.fault_spec = options.worker_fault_specs[w];
    }
    if (tracing) {
      device_options.profile = true;
      device_options.profile_pid = w + 1;
      device_options.profile_name = StrFormat("worker%u", w);
    }
    workers[w].device = std::make_unique<sim::Device>(device_options);
  }
  bool any_faults = false;
  for (const Worker& worker : workers) {
    any_faults = any_faults || worker.device->fault_injection_enabled();
  }
  const bool resilient = options.resilience.enabled && any_faults;

  // Hands the merged fleet timeline to the caller; called on every exit
  // path that produces a result.
  const auto flush_trace = [&] {
    if (!tracing) return;
    for (const Worker& worker : workers) {
      if (sim::SimProfiler* prof = worker.device->profiler()) {
        trace.Append(prof->trace());
      }
    }
    *options.trace = std::move(trace);
  };

  // Bounded retry for transient (Unavailable) copy failures; fail-stop, so
  // re-issuing is safe.
  const auto with_retry = [&](auto&& op) -> Status {
    Status st = op();
    if (!resilient) return st;
    for (uint32_t attempt = 0;
         st.IsUnavailable() && attempt < options.resilience.max_op_retries;
         ++attempt) {
      ++result.metrics.retries;
      st = op();
    }
    return st;
  };

  RoundCheckpoint ckpt;
  ckpt.deg = graph.DegreeArray();
  ckpt.claimed.assign(n, 0);
  ckpt.removed = 0;

  // (Re)builds a worker's device-resident partition for [begin, end) from
  // the host graph and the checkpoint — used for the initial load and for
  // resharding a dead worker's range onto a survivor.
  const auto build_worker = [&](Worker& worker, VertexId begin,
                                VertexId end) -> Status {
    worker.begin = begin;
    worker.end = end;
    worker.use_active = false;
    worker.active.clear();
    worker.border_updates.clear();
    const VertexId local_n = end - begin;

    std::vector<EdgeIndex> offsets(static_cast<size_t>(local_n) + 1, 0);
    for (VertexId v = 0; v < local_n; ++v) {
      offsets[v + 1] = offsets[v] + graph.Degree(begin + v);
    }
    std::vector<VertexId> neighbors;
    neighbors.reserve(offsets[local_n]);
    for (VertexId v = 0; v < local_n; ++v) {
      const auto nbrs = graph.Neighbors(begin + v);
      neighbors.insert(neighbors.end(), nbrs.begin(), nbrs.end());
    }
    std::vector<uint32_t> deg(std::max<VertexId>(1, local_n), 0);
    uint64_t removed_in_range = 0;
    for (VertexId v = 0; v < local_n; ++v) {
      deg[v] = ckpt.deg[begin + v];
      if (ckpt.claimed[begin + v] != 0) ++removed_in_range;
    }

    // Free any previous partition first so a reshard doesn't double-count
    // against the device's memory budget.
    worker.d_offsets.Reset();
    worker.d_neighbors.Reset();
    worker.d_deg.Reset();
    worker.d_buffer.Reset();

    // All four arrays are fully overwritten (host copies / buffer appends)
    // before any read — the uninitialized-alloc path skips the zeroing.
    KCORE_ASSIGN_OR_RETURN(worker.d_offsets,
                           worker.device->AllocUninit<EdgeIndex>(
                               offsets.size(), "worker_offsets"));
    KCORE_ASSIGN_OR_RETURN(
        worker.d_neighbors,
        worker.device->AllocUninit<VertexId>(
            std::max<size_t>(1, neighbors.size()), "worker_neighbors"));
    KCORE_ASSIGN_OR_RETURN(worker.d_deg,
                           worker.device->AllocUninit<uint32_t>(deg.size(),
                                                                "worker_deg"));
    KCORE_ASSIGN_OR_RETURN(
        worker.d_buffer,
        worker.device->AllocUninit<VertexId>(std::max<VertexId>(1024, local_n),
                                             "worker_buffer"));
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return worker.d_offsets.CopyFromHost(offsets); }));
    KCORE_RETURN_IF_ERROR(with_retry(
        [&] { return worker.d_neighbors.CopyFromHost(neighbors); }));
    KCORE_RETURN_IF_ERROR(
        with_retry([&] { return worker.d_deg.CopyFromHost(deg); }));
    // The degree slice is the one array the checkpoint protocol can
    // validate and restore, so it alone is eligible for injected bitflips.
    worker.device->MarkCorruptible(worker.d_deg, "worker_deg");
    worker.local_removed = removed_in_range;
    return Status::OK();
  };

  // Finishes on CPU PKC from the checkpoint once no usable fleet remains.
  const auto cpu_finish = [&](uint32_t start_k) -> DecomposeResult {
    WallTimer recovery;
    if (tracing) {
      trace.AddInstant(StrFormat("cpu_fallback k=%u", start_k),
                       kTraceCatRecovery, 0, kTraceTidRanges, now_ns());
    }
    result.metrics.degraded = true;
    DecomposeResult cpu = ResumePkc(graph, std::move(ckpt.deg), start_k);
    result.core = std::move(cpu.core);
    result.metrics.cpu_fallback_levels = cpu.metrics.rounds;
    result.metrics.rounds += cpu.metrics.rounds;
    result.metrics.counters += cpu.metrics.counters;
    result.metrics.modeled_ms = clock.ms() + cpu.metrics.modeled_ms;
    uint64_t max_peak = 0;
    for (const Worker& worker : workers) {
      max_peak = std::max(max_peak, worker.device->peak_bytes());
    }
    result.metrics.peak_device_bytes = max_peak;
    result.metrics.recovery_ms += recovery.ElapsedMillis();
    finish_loop_imbalance();
    result.metrics.wall_ms = timer.ElapsedMillis();
    flush_trace();
    return result;
  };

  // Reshards every unhandled dead worker's range onto the nearest alive
  // neighbor (by worker index; ranges are contiguous in index order, so the
  // nearest survivor is range-adjacent after earlier merges). A successor
  // that fails its rebuild — lost, out of memory for the doubled partition,
  // or transiently unreachable past the retry budget — is declared dead
  // itself and the scan restarts; each pass shrinks the fleet, so this
  // terminates. DeviceLost is returned once nobody survives.
  std::vector<uint8_t> death_counted(num_workers, 0);
  std::vector<uint8_t> resharded(num_workers, 0);
  const auto handle_deaths = [&]() -> Status {
    bool again = true;
    while (again) {
      again = false;
      for (uint32_t w = 0; w < num_workers; ++w) {
        if (!workers[w].alive && death_counted[w] == 0) {
          death_counted[w] = 1;
          ++result.metrics.devices_lost;
          if (tracing) {
            trace.AddInstant(StrFormat("device_lost worker%u", w),
                             kTraceCatRecovery, 0, kTraceTidRanges, now_ns());
          }
        }
      }
      for (uint32_t w = 0; w < num_workers; ++w) {
        Worker& dead = workers[w];
        if (dead.alive || resharded[w] != 0) continue;
        dead.d_offsets.Reset();
        dead.d_neighbors.Reset();
        dead.d_deg.Reset();
        dead.d_buffer.Reset();
        dead.active.clear();
        dead.use_active = false;
        dead.border_updates.clear();
        if (dead.begin == dead.end) {
          resharded[w] = 1;
          continue;
        }
        int succ = -1;
        for (int i = static_cast<int>(w) - 1; i >= 0; --i) {
          if (workers[i].alive) {
            succ = i;
            break;
          }
        }
        if (succ < 0) {
          for (uint32_t i = w + 1; i < num_workers; ++i) {
            if (workers[i].alive) {
              succ = static_cast<int>(i);
              break;
            }
          }
        }
        if (succ < 0) return Status::DeviceLost("all worker devices lost");
        Worker& successor = workers[succ];
        const VertexId merged_begin = std::min(successor.begin, dead.begin);
        const VertexId merged_end = std::max(successor.end, dead.end);
        Status built = build_worker(successor, merged_begin, merged_end);
        if (!built.ok()) {
          successor.alive = false;
          again = true;
          break;
        }
        resharded[w] = 1;
        if (tracing) {
          trace.AddInstant(
              StrFormat("reshard worker%u -> worker%d", w, succ),
              kTraceCatRecovery, 0, kTraceTidRanges, now_ns());
        }
        if (chunk > 0 && merged_end > merged_begin) {
          for (uint32_t c = merged_begin / chunk;
               c <= (merged_end - 1) / chunk; ++c) {
            owner_map[std::min<uint32_t>(c, num_workers - 1)] =
                static_cast<uint32_t>(succ);
          }
        }
      }
    }
    return Status::OK();
  };

  // --- Initial partition load. A worker that cannot even load (injected
  // cudaMalloc OOM, lost before the first copy) starts out dead and its
  // range is resharded like a mid-run loss. ---
  for (uint32_t w = 0; w < num_workers; ++w) {
    const VertexId begin = std::min<VertexId>(w * chunk, n);
    const VertexId end = std::min<VertexId>(begin + chunk, n);
    Status built = build_worker(workers[w], begin, end);
    if (!built.ok()) {
      if (resilient && (built.IsOutOfMemory() || built.IsUnavailable() ||
                        built.IsDeviceLost())) {
        workers[w].alive = false;
        continue;
      }
      return built;
    }
  }
  if (Status fleet = handle_deaths(); !fleet.ok()) {
    if (resilient && options.resilience.cpu_fallback) return cpu_finish(0);
    return fleet;
  }

  // --- Live peeling state (checkpointed at every round boundary). ---
  std::vector<uint8_t> claimed(n, 0);
  std::atomic<uint64_t> removed{0};
  ThreadPool& pool = DefaultThreadPool();

  auto deg_of = [&](VertexId v) -> uint32_t& {
    Worker& worker = workers[owner_of(v)];
    return worker.d_deg.data()[v - worker.begin];
  };

  // Restores every survivor to the checkpoint: claim flags, removed count,
  // degree slices, and invalidated active lists. A worker lost during the
  // restore surfaces as DeviceLost for the caller to reshard first.
  const auto rollback_alive = [&]() -> Status {
    std::copy(ckpt.claimed.begin(), ckpt.claimed.end(), claimed.begin());
    removed.store(ckpt.removed, std::memory_order_relaxed);
    for (Worker& worker : workers) {
      if (!worker.alive) continue;
      const VertexId local_n = worker.end - worker.begin;
      worker.use_active = false;
      worker.active.clear();
      worker.border_updates.clear();
      uint64_t removed_in_range = 0;
      for (VertexId v = worker.begin; v < worker.end; ++v) {
        if (ckpt.claimed[v] != 0) ++removed_in_range;
      }
      worker.local_removed = removed_in_range;
      if (local_n == 0) continue;
      Status st = with_retry([&] {
        return worker.d_deg.CopyFromHost(
            std::span<const uint32_t>(ckpt.deg).subspan(worker.begin,
                                                        local_n));
      });
      if (st.IsDeviceLost()) worker.alive = false;
      KCORE_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  };

  // Gathers the fleet's degree slices into `out` for validation.
  const auto gather_deg = [&](std::vector<uint32_t>& out) -> Status {
    out.resize(n);
    for (Worker& worker : workers) {
      if (!worker.alive) continue;
      const VertexId local_n = worker.end - worker.begin;
      if (local_n == 0) continue;
      Status st = with_retry([&] {
        return worker.d_deg.CopyToHost(
            std::span<uint32_t>(out).subspan(worker.begin, local_n));
      });
      if (st.IsDeviceLost()) worker.alive = false;
      KCORE_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  };

  uint32_t k = 0;
  const uint32_t k_limit = graph.MaxDegree() + 2;
  std::vector<uint32_t> post_deg;

  // One round k to its border fixpoint, ending (resilient mode) with the
  // gathered-state validation against the checkpoint.
  const auto run_round = [&]() -> Status {
    uint64_t subrounds = 0;
    // Corruption can manufacture endless border traffic (a flipped degree
    // re-arms decrements); a clean round never needs more sub-rounds than
    // vertices, so past that we declare the round corrupt and roll back.
    const uint64_t subround_limit = static_cast<uint64_t>(n) + 2;
    while (true) {
      ++result.metrics.iterations;
      if (++subrounds > subround_limit) {
        return Status::Corruption(StrFormat(
            "round k=%u: no fixpoint after %llu sub-rounds — suspected "
            "degree corruption",
            k, static_cast<unsigned long long>(subrounds - 1)));
      }
      std::atomic<uint64_t> removed_this_subround{0};
      std::atomic<bool> death{false};

      // --- Each worker peels its own range (parallel; workers only touch
      // their owned deg entries and private border buffers). ---
      pool.RunLanes(num_workers, [&](uint32_t w) {
        Worker& worker = workers[w];
        if (!worker.alive) return;
        if (resilient) {
          // Liveness probe at sub-round granularity: the launch-domain
          // fault point for workers that peel through host pointers. A
          // transient probe failure is noise; DeviceLost is terminal.
          const Status health = worker.device->HealthCheck("subround");
          if (health.IsDeviceLost()) {
            worker.alive = false;
            death.store(true, std::memory_order_relaxed);
            return;
          }
        }
        PerfCounters& c = worker.counters;
        const EdgeIndex* offsets = worker.d_offsets.data();
        const VertexId* neighbors = worker.d_neighbors.data();
        uint32_t* deg = worker.d_deg.data();
        VertexId* buffer = worker.d_buffer.data();

        // Per-partition compaction: once this worker's survivors drop below
        // the threshold fraction of its current sweep domain, rebuild the
        // dense active list from the unclaimed vertices (claimed[] is
        // owner-private, so this races with nobody).
        const uint64_t local_n = worker.end - worker.begin;
        if (options.active_compaction) {
          const uint64_t remaining = local_n - worker.local_removed;
          const uint64_t sweep_len =
              worker.use_active ? worker.active.size() : local_n;
          if (static_cast<double>(remaining) <
              options.compaction_threshold * static_cast<double>(sweep_len)) {
            std::vector<VertexId> next;
            next.reserve(remaining);
            if (worker.use_active) {
              for (VertexId v : worker.active) {
                ++c.global_reads;
                if (claimed[v] == 0) next.push_back(v);
              }
            } else {
              for (VertexId v = worker.begin; v < worker.end; ++v) {
                ++c.global_reads;
                if (claimed[v] == 0) next.push_back(v);
              }
            }
            c.global_writes += next.size();
            ++c.compactions;
            worker.active = std::move(next);
            worker.use_active = true;
          }
        }

        // Scan the owned range (or the compacted active list) for unclaimed
        // degree-k vertices.
        uint64_t head = 0;
        uint64_t tail = 0;
        auto scan_vertex = [&](VertexId v) {
          ++c.vertices_scanned;
          ++c.global_reads;
          if (claimed[v] == 0 && deg[v - worker.begin] == k) {
            claimed[v] = 1;
            buffer[tail++] = v;
            ++c.buffer_appends;
          }
        };
        if (worker.use_active) {
          c.scan_vertices_skipped += local_n - worker.active.size();
          for (VertexId v : worker.active) scan_vertex(v);
        } else {
          for (VertexId v = worker.begin; v < worker.end; ++v) scan_vertex(v);
        }
        // Local cascade (the worker's loop phase).
        uint64_t processed = 0;
        while (head < tail) {
          const VertexId v = buffer[head++];
          ++processed;
          const VertexId local = v - worker.begin;
          // Expansion-bin attribution (uncharged meters; see MultiGpuOptions).
          switch (options.expand_strategy) {
            case ExpandStrategy::kThread:
              ++c.loop_bin_thread;
              break;
            case ExpandStrategy::kWarp:
              ++c.loop_bin_warp;
              break;
            case ExpandStrategy::kBlock:
              ++c.loop_bin_block;
              break;
            case ExpandStrategy::kAuto: {
              const uint64_t len = offsets[local + 1] - offsets[local];
              if (len < 32) {
                ++c.loop_bin_thread;
              } else if (len < options.block_expand_threshold) {
                ++c.loop_bin_warp;
              } else {
                ++c.loop_bin_block;
              }
              break;
            }
          }
          for (EdgeIndex e = offsets[local]; e < offsets[local + 1]; ++e) {
            const VertexId u = neighbors[e];
            ++c.edges_traversed;
            ++c.global_reads;
            if (owner_of(u) == w) {
              uint32_t& du = deg[u - worker.begin];
              if (du > k) {
                --du;
                ++c.global_atomics;
                if (du == k && claimed[u] == 0) {
                  claimed[u] = 1;
                  buffer[tail++] = u;
                  ++c.buffer_appends;
                }
              }
            } else {
              // Border edge: buffer the decrement for the master.
              ++worker.border_updates[u];
              ++c.messages;
            }
          }
        }
        worker.local_removed += tail;
        if (processed != 0) {
          removed_this_subround.fetch_add(processed,
                                          std::memory_order_relaxed);
        }
      });

      // Modeled time: slowest worker gates the sub-round.
      uint32_t alive_count = 0;
      {
        const double subround_start_ns = now_ns();
        std::vector<PerfCounters> lane_counters;
        lane_counters.reserve(num_workers);
        double max_ns = 0.0;
        double sum_ns = 0.0;
        for (Worker& worker : workers) {
          if (worker.alive) {
            ++alive_count;
            const double ns = clock.cost().UnitTimeNs(worker.counters);
            max_ns = std::max(max_ns, ns);
            sum_ns += ns;
            if (tracing) {
              // One span per alive worker on its own pid, laid on the
              // master's clock: all workers start the sub-round together and
              // each runs for its own modeled time (the barrier waits for
              // the longest span — the fleet's imbalance picture).
              const auto w =
                  static_cast<uint32_t>(&worker - workers.data());
              trace.AddComplete(
                  StrFormat("subround k=%u", k), kTraceCatKernel, w + 1,
                  kTraceTidKernels, subround_start_ns, ns,
                  {{"subround",
                    StrFormat("%llu",
                              static_cast<unsigned long long>(subrounds))}});
            }
          }
          lane_counters.push_back(worker.counters);
          result.metrics.counters += worker.counters;
          worker.counters = PerfCounters();
        }
        if (alive_count > 0) {
          subround_max_ns += max_ns;
          subround_mean_ns += sum_ns / alive_count;
        }
        clock.AddParallelPhase(lane_counters);
        // Two kernels per worker sub-round (scan + loop), plus the border
        // exchange (PCIe transfer of the update lists to the master).
        clock.AddOverheadNs(2 * clock.cost().kernel_launch_ns);
        result.metrics.counters.kernel_launches += 2 * alive_count;
      }
      if (death.load(std::memory_order_relaxed)) {
        return Status::DeviceLost("worker device lost mid-round");
      }

      // --- Master: aggregate border updates and apply to owners. ---
      uint64_t border_applied = 0;
      uint64_t border_entries = 0;
      for (Worker& worker : workers) {
        border_entries += worker.border_updates.size();
        for (const auto& [u, count] : worker.border_updates) {
          uint32_t& du = deg_of(u);
          if (du > k) {
            // Clamp at k: decrements past the k-shell boundary are exactly
            // the ones the single-GPU kernel rolls back (Alg. 3 line 24).
            const uint32_t applied = std::min(count, du - k);
            du -= applied;
            border_applied += applied;
          }
        }
        worker.border_updates.clear();
      }
      // Transfer + apply cost at the master.
      const double exchange_start_ns = now_ns();
      clock.AddOverheadNs(clock.cost().kernel_launch_ns +
                          static_cast<double>(border_entries) * 8.0);
      if (tracing) {
        trace.AddComplete(
            "border_exchange", kTraceCatKernel, 0, kTraceTidKernels,
            exchange_start_ns, now_ns() - exchange_start_ns,
            {{"entries",
              StrFormat("%llu",
                        static_cast<unsigned long long>(border_entries))},
             {"applied",
              StrFormat("%llu",
                        static_cast<unsigned long long>(border_applied))}});
      }

      removed.fetch_add(removed_this_subround.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      if (removed_this_subround.load(std::memory_order_relaxed) == 0 &&
          border_applied == 0) {
        break;  // fixpoint for this k
      }
    }

    if (resilient) {
      KCORE_RETURN_IF_ERROR(gather_deg(post_deg));
      WallTimer validate;
      std::string why;
      const bool valid =
          ValidatePeelRound(graph, ckpt.deg, post_deg, k,
                            removed.load(std::memory_order_relaxed), &why);
      result.metrics.recovery_ms += validate.ElapsedMillis();
      if (!valid) return Status::Corruption(why);
    }
    return Status::OK();
  };

  // Reshard any dead workers, then roll every survivor back to the
  // checkpoint; a death during the restore loops back to resharding. Each
  // iteration shrinks the fleet, so this terminates.
  const auto recover_fleet = [&]() -> Status {
    while (true) {
      KCORE_RETURN_IF_ERROR(handle_deaths());
      Status restored = rollback_alive();
      if (restored.ok()) return Status::OK();
      if (!restored.IsDeviceLost()) return restored;
    }
  };

  uint32_t level_retries = 0;
  while (removed.load(std::memory_order_relaxed) < n) {
    // Round-boundary lifecycle check (common/cancellation.h): between
    // k-levels every worker is quiescent (the fleet's natural barrier), so
    // stopping here releases all partitions within one round. The merged
    // trace is still handed to the caller so the cancellation marker is
    // visible on the timeline.
    if (options.cancel != nullptr) {
      if (Status live = options.cancel->Check("multi_gpu round boundary");
          !live.ok()) {
        if (tracing) {
          trace.AddInstant(
              StrFormat("%s k=%u",
                        live.IsCancelled() ? "cancelled" : "deadline_exceeded",
                        k),
              kTraceCatRecovery, 0, kTraceTidRanges, now_ns());
          flush_trace();
        }
        return live;
      }
    }
    const double round_start_ns = now_ns();
    Status round = run_round();
    if (tracing) {
      trace.AddComplete(StrFormat("round k=%u", k), kTraceCatRange, 0,
                        kTraceTidRanges, round_start_ns,
                        now_ns() - round_start_ns);
    }
    if (round.ok()) {
      if (resilient) {
        // The validated post-round state becomes the new checkpoint.
        std::swap(ckpt.deg, post_deg);
        std::copy(claimed.begin(), claimed.end(), ckpt.claimed.begin());
        ckpt.removed = removed.load(std::memory_order_relaxed);
        ++result.metrics.checkpoints_taken;
        if (tracing) {
          trace.AddInstant(StrFormat("checkpoint k=%u", k), kTraceCatRecovery,
                           0, kTraceTidRanges, now_ns());
        }
      }
      ++k;
      ++result.metrics.rounds;
      level_retries = 0;
      if (k > k_limit) {
        return Status::Internal("multi-GPU peeling failed to converge");
      }
      continue;
    }
    if (!resilient) return round;

    Status cause = round;
    // Device losses are recovered unconditionally (bounded by the fleet
    // size); corruption and transient-budget failures consume the level
    // retry budget.
    const bool death_cause = cause.IsDeviceLost();
    if (death_cause || level_retries < options.resilience.max_level_retries) {
      WallTimer recovery;
      if (!death_cause) ++level_retries;
      ++result.metrics.levels_reexecuted;
      Status recovered = recover_fleet();
      result.metrics.recovery_ms += recovery.ElapsedMillis();
      if (recovered.ok()) continue;
      cause = recovered;
    }
    if (!options.resilience.cpu_fallback) return cause;
    return cpu_finish(k);
  }

  // Gather core numbers (deg has converged per owner). In resilient mode
  // every round was validated, so the checkpoint IS the final state.
  if (resilient) {
    result.core = std::move(ckpt.deg);
  } else {
    result.core.assign(n, 0);
    for (const Worker& worker : workers) {
      for (VertexId v = worker.begin; v < worker.end; ++v) {
        result.core[v] = worker.d_deg.data()[v - worker.begin];
      }
    }
  }
  uint64_t max_peak = 0;
  for (const Worker& worker : workers) {
    max_peak = std::max(max_peak, worker.device->peak_bytes());
    // The workers peel through raw host pointers (no Launch), so simcheck
    // observes only allocation lifetimes and host copies here — still worth
    // surfacing: a leak or an uninitialized CopyToHost fails the run.
    if (worker.alive) {
      KCORE_RETURN_IF_ERROR(worker.device->CheckStatus());
    }
  }
  result.metrics.peak_device_bytes = max_peak;
  finish_loop_imbalance();
  result.metrics.wall_ms = timer.ElapsedMillis();
  result.metrics.modeled_ms = clock.ms();
  flush_trace();
  return result;
}

}  // namespace kcore
