#ifndef KCORE_CORE_MULTI_GPU_PEEL_H_
#define KCORE_CORE_MULTI_GPU_PEEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/gpu_peel_options.h"
#include "cusim/device.h"
#include "graph/csr_graph.h"
#include "perf/decompose_result.h"
#include "perf/trace.h"

namespace kcore {

/// Options for the multi-GPU extension sketched in the paper's §VII: the
/// graph is partitioned among worker GPUs, each peeling its own vertices;
/// degree decrements that cross a partition border are buffered and
/// aggregated by a master between sub-rounds, and because aggregated
/// updates can push new border vertices into the k-shell, each round k
/// iterates sub-rounds to a fixpoint.
struct MultiGpuOptions {
  /// Number of worker GPUs (vertex ranges are split evenly among them).
  uint32_t num_workers = 4;
  /// Per-worker device configuration (global memory budget applies to each
  /// worker individually — the point of going multi-GPU).
  sim::DeviceOptions worker_device;
  /// Per-partition active-vertex compaction: each worker keeps a dense list
  /// of its still-unpeeled vertices and scans that instead of its full
  /// range once survivors drop below `compaction_threshold` (same
  /// halving-rebuild policy as GpuPeelOptions::active_compaction).
  bool active_compaction = true;
  double compaction_threshold = 0.5;

  /// Loop-phase expansion accounting, mirroring GpuPeelOptions. The workers
  /// emulate their cascade through host pointers (no warp scheduling), so
  /// the strategy cannot change which instructions run — it selects how the
  /// popped frontier vertices are attributed to the loop_bin_* meters:
  /// kWarp/kThread/kBlock book every vertex to that one bin; kAuto
  /// classifies by adjacency length exactly like the single-GPU engine
  /// (deg < 32 -> thread, < block_expand_threshold -> warp, else block).
  ExpandStrategy expand_strategy = ExpandStrategy::kWarp;
  uint32_t block_expand_threshold = 4096;

  /// Degree-ordered vertex renumbering (src/graph/renumber.h) before
  /// sharding: with the contiguous even-split partitioning below, sorting by
  /// degree makes each worker's range degree-homogeneous, so the fleet's
  /// per-sub-round load spread shrinks on skewed graphs. Same wrap as the
  /// single-GPU engine — remap, peel, permute the core numbers back — so it
  /// composes with compaction, faults, resharding, and tracing; cost lands
  /// in wall_ms only.
  bool renumber = false;

  /// Per-worker fault plans (cusim/fault_injection.h grammar): entry i
  /// overrides worker_device.fault_spec for worker i, letting tests kill or
  /// degrade one GPU of the fleet. Shorter vectors leave later workers on
  /// worker_device's spec (and KCORE_FAULTS applies to every worker).
  std::vector<std::string> worker_fault_specs;
  /// Recovery policy under fault injection (inert without a fault plan).
  /// A worker whose device is permanently lost has its vertex range
  /// resharded onto an adjacent surviving worker and the interrupted round
  /// re-executed from the last checkpoint; when no worker survives, the
  /// remaining rounds run on CPU PKC (Metrics.degraded).
  ResilienceOptions resilience;

  /// Request lifecycle (common/cancellation.h): non-null makes the master
  /// poll the token/deadline at every round boundary (between k-levels, the
  /// fleet's natural barrier) and return Cancelled / DeadlineExceeded,
  /// releasing every worker's partition within one round. Not owned.
  const CancelContext* cancel = nullptr;

  /// simprof output (see cusim/simprof.h): non-null enables profiling and
  /// receives the fleet's merged timeline on return — the master as pid 0
  /// (round ranges, border exchanges, checkpoint/reshard markers) and worker
  /// w as pid w+1 (per-sub-round spans on the master's modeled clock, plus
  /// the worker device's own alloc/copy events). The workers peel through
  /// host pointers rather than Device::Launch, so their kernel-level spans
  /// are assembled here by the driver, exactly like the modeled clock is.
  Trace* trace = nullptr;
};

/// Multi-GPU peeling. Returns the usual DecomposeResult where
///  - metrics.rounds     = peeling rounds (k_max + 1),
///  - metrics.iterations = total sub-rounds (border-synchronization steps),
///  - metrics.peak_device_bytes = max over workers (per-GPU footprint).
[[nodiscard]] StatusOr<DecomposeResult> RunMultiGpuPeel(const CsrGraph& graph,
                                          const MultiGpuOptions& options = {});

}  // namespace kcore

#endif  // KCORE_CORE_MULTI_GPU_PEEL_H_
